//! The published evaluation numbers, transcribed from the paper.
//!
//! `None` encodes the paper's `X` cells (elastic did not fit the 6 GB Fermi
//! card; the CRAY-compiled elastic-3D RTM build failed). Values are seconds
//! for times and ratios for speedups.

use seismic_model::footprint::{Dims, Formulation};

/// One row of Table 3 or Table 4 as printed in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Row case.
    pub formulation: Formulation,
    /// Row dimensionality.
    pub dims: Dims,
    /// CRAY cluster, CRAY compiler: total GPU time (s).
    pub cray_total_cray: Option<f64>,
    /// CRAY cluster, PGI compiler: total GPU time (s).
    pub cray_total_pgi: Option<f64>,
    /// Total speedup, CRAY compiler vs 10-core baseline.
    pub cray_speedup_cray: Option<f64>,
    /// Total speedup, PGI compiler vs 10-core baseline.
    pub cray_speedup_pgi: Option<f64>,
    /// CRAY cluster, CRAY compiler: kernels time (s).
    pub cray_kernel_cray: Option<f64>,
    /// CRAY cluster, PGI compiler: kernels time (s).
    pub cray_kernel_pgi: Option<f64>,
    /// Kernel speedup, CRAY compiler.
    pub cray_kspeedup_cray: Option<f64>,
    /// Kernel speedup, PGI compiler.
    pub cray_kspeedup_pgi: Option<f64>,
    /// IBM cluster (PGI): total GPU time (s).
    pub ibm_total: Option<f64>,
    /// IBM total speedup vs 8-core baseline.
    pub ibm_speedup: Option<f64>,
    /// IBM kernels time (s).
    pub ibm_kernel: Option<f64>,
    /// IBM kernel speedup.
    pub ibm_kspeedup: Option<f64>,
}

#[allow(clippy::too_many_arguments)]
const fn row(formulation: Formulation, dims: Dims, v: [Option<f64>; 12]) -> PaperRow {
    PaperRow {
        formulation,
        dims,
        cray_total_cray: v[0],
        cray_total_pgi: v[1],
        cray_speedup_cray: v[2],
        cray_speedup_pgi: v[3],
        cray_kernel_cray: v[4],
        cray_kernel_pgi: v[5],
        cray_kspeedup_cray: v[6],
        cray_kspeedup_pgi: v[7],
        ibm_total: v[8],
        ibm_speedup: v[9],
        ibm_kernel: v[10],
        ibm_kspeedup: v[11],
    }
}

const S: fn(f64) -> Option<f64> = Some;

/// Table 3: seismic modeling timing and speedup measurements.
pub fn table3() -> [PaperRow; 6] {
    use Dims::*;
    use Formulation::*;
    [
        row(
            Isotropic,
            Two,
            [
                S(2.3),
                S(1.4),
                S(0.6),
                S(1.0),
                S(1.6),
                S(1.0),
                S(0.7),
                S(1.1),
                S(2.0),
                S(2.0),
                S(1.5),
                S(2.3),
            ],
        ),
        row(
            Acoustic,
            Two,
            [
                S(4.1),
                S(3.2),
                S(0.7),
                S(0.9),
                S(3.4),
                S(2.7),
                S(0.9),
                S(1.1),
                S(5.0),
                S(1.3),
                S(4.4),
                S(1.2),
            ],
        ),
        row(
            Elastic,
            Two,
            [
                S(7.0),
                S(4.5),
                S(0.9),
                S(1.2),
                S(6.6),
                S(4.3),
                S(0.7),
                S(1.1),
                S(7.0),
                S(1.9),
                S(4.8),
                S(2.4),
            ],
        ),
        row(
            Isotropic,
            Three,
            [
                S(460.0),
                S(365.0),
                S(1.0),
                S(1.3),
                S(365.0),
                S(285.0),
                S(0.9),
                S(1.2),
                S(448.0),
                S(1.2),
                S(385.0),
                S(1.0),
            ],
        ),
        row(
            Acoustic,
            Three,
            [
                S(310.0),
                S(235.0),
                S(1.5),
                S(2.0),
                S(220.0),
                S(155.0),
                S(1.2),
                S(1.7),
                S(260.0),
                S(2.3),
                S(200.0),
                S(2.3),
            ],
        ),
        row(
            Elastic,
            Three,
            [
                S(4000.0),
                S(3200.0),
                S(2.1),
                S(2.7),
                S(3100.0),
                S(2700.0),
                S(2.4),
                S(2.7),
                None,
                None,
                None,
                None,
            ],
        ),
    ]
}

/// Table 4: RTM timing and speedup measurements.
pub fn table4() -> [PaperRow; 6] {
    use Dims::*;
    use Formulation::*;
    [
        row(
            Isotropic,
            Two,
            [
                S(8.5),
                S(14.0),
                S(0.4),
                S(0.2),
                S(2.0),
                S(2.3),
                S(1.2),
                S(1.0),
                S(11.5),
                S(0.5),
                S(4.0),
                S(1.3),
            ],
        ),
        row(
            Acoustic,
            Two,
            [
                S(12.2),
                S(16.0),
                S(1.2),
                S(0.9),
                S(4.5),
                S(5.6),
                S(2.4),
                S(2.0),
                S(19.0),
                S(5.3),
                S(9.0),
                S(7.9),
            ],
        ),
        row(
            Elastic,
            Two,
            [
                S(20.0),
                S(23.0),
                S(0.8),
                S(0.7),
                S(7.0),
                S(8.0),
                S(1.7),
                S(1.5),
                S(30.0),
                S(1.1),
                S(12.0),
                S(2.3),
            ],
        ),
        row(
            Isotropic,
            Three,
            [
                S(1600.0),
                S(1500.0),
                S(0.6),
                S(0.6),
                S(600.0),
                S(550.0),
                S(1.1),
                S(1.2),
                S(1200.0),
                S(0.9),
                S(800.0),
                S(1.1),
            ],
        ),
        row(
            Acoustic,
            Three,
            [
                S(870.0),
                S(765.0),
                S(1.1),
                S(1.3),
                S(320.0),
                S(310.0),
                S(1.3),
                S(1.3),
                S(530.0),
                S(10.2),
                S(400.0),
                S(10.8),
            ],
        ),
        row(
            Elastic,
            Three,
            [
                None,
                S(15000.0),
                None,
                S(1.3),
                None,
                S(6000.0),
                None,
                S(2.9),
                None,
                None,
                None,
                None,
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_six_cases_in_order() {
        for t in [table3(), table4()] {
            assert_eq!(t[0].dims, Dims::Two);
            assert_eq!(t[3].dims, Dims::Three);
            assert_eq!(t[0].formulation, Formulation::Isotropic);
            assert_eq!(t[5].formulation, Formulation::Elastic);
        }
    }

    #[test]
    fn x_cells_match_the_paper() {
        // Table 3: elastic 3D unavailable on the IBM/Fermi side only.
        let t3 = table3();
        assert!(t3[5].ibm_total.is_none());
        assert!(t3[5].cray_total_pgi.is_some());
        // Table 4: elastic 3D additionally lacks the CRAY-compiled build.
        let t4 = table4();
        assert!(t4[5].cray_total_cray.is_none());
        assert!(t4[5].cray_total_pgi.is_some());
        assert!(t4[5].ibm_total.is_none());
    }

    #[test]
    fn headline_numbers_present() {
        // The abstract's ~10x acoustic RTM speedup on IBM.
        assert_eq!(table4()[4].ibm_speedup, Some(10.2));
        assert_eq!(table4()[4].ibm_kspeedup, Some(10.8));
        // Best modeling speedup 2.7x (elastic 3D, PGI on CRAY).
        assert_eq!(table3()[5].cray_speedup_pgi, Some(2.7));
    }
}
