//! Data series for Figures 6–15.
//!
//! Each function prices the figure's experiment through the same
//! `rtm-core`/`openacc-sim`/`accel-sim` stack as the tables, varying
//! exactly the knob the paper varies. The returned series are what the
//! figure binaries print and what the integration tests assert shapes on.

use crate::cases::table_workload;
use openacc_sim::{Compiler, PgiVersion};
use rtm_core::case::{Cluster, ImagePlacement, OptimizationConfig, SeismicCase, Workload};
use rtm_core::gpu_time::{modeling_time, rtm_time};
use seismic_model::footprint::{Dims, Formulation};
use seismic_prop::{FissionVariant, IsoPmlVariant, TransposeVariant};

fn iso3() -> SeismicCase {
    SeismicCase {
        formulation: Formulation::Isotropic,
        dims: Dims::Three,
    }
}

fn acoustic(dims: Dims) -> SeismicCase {
    SeismicCase {
        formulation: Formulation::Acoustic,
        dims,
    }
}

fn elastic(dims: Dims) -> SeismicCase {
    SeismicCase {
        formulation: Formulation::Elastic,
        dims,
    }
}

/// Human label of an isotropic PML variant as used in Figures 6/7.
pub fn variant_label(v: IsoPmlVariant) -> &'static str {
    match v {
        IsoPmlVariant::OriginalIfs => "original (boundary ifs)",
        IsoPmlVariant::RestructuredIndices => "restructured loop indices",
        IsoPmlVariant::PmlEverywhere => "PML everywhere",
    }
}

/// Figures 6 and 7: ISO modeling 3D total time for the three PML-kernel
/// restructurings, under one PGI version. Run with `PgiVersion::V14_6` for
/// Figure 6 and `V14_3` for Figure 7.
pub fn fig6_7(version: PgiVersion) -> Vec<(IsoPmlVariant, f64)> {
    let case = iso3();
    let w = table_workload(&case);
    [
        IsoPmlVariant::OriginalIfs,
        IsoPmlVariant::RestructuredIndices,
        IsoPmlVariant::PmlEverywhere,
    ]
    .into_iter()
    .map(|v| {
        let cfg = OptimizationConfig {
            iso_pml: v,
            ..OptimizationConfig::default()
        };
        let r = modeling_time(&case, &cfg, Compiler::Pgi(version), Cluster::CrayXc30, &w)
            .expect("iso 3D fits the K40");
        (v, r.breakdown.total_s)
    })
    .collect()
}

/// Figures 8 and 9: acoustic modeling under the CRAY compiler, `kernels`
/// construct vs explicit `parallel`, across grid sizes. Returns
/// `(grid_n, kernels_total_s, parallel_total_s)`.
pub fn fig8_9(dims: Dims) -> Vec<(usize, f64, f64)> {
    use openacc_sim::{ConstructKind, LoopNest};
    let case = acoustic(dims);
    let cfg = OptimizationConfig::default();
    let grids: &[usize] = match dims {
        Dims::Two => &[800, 1600, 3200],
        Dims::Three => &[200, 300, 400],
    };
    grids
        .iter()
        .map(|&n| {
            let w = Workload {
                nx: n,
                ny: if dims == Dims::Two { 1 } else { n },
                nz: n,
                steps: 200,
                snap_period: 50,
                n_receivers: 100,
            };
            // Price one representative step under each construct by
            // launching the plan's kernels with overridden constructs.
            let phases = rtm_core::plan::step_phases(&case, &cfg, &w, Compiler::Cray);
            let mut t_parallel = 0.0;
            let mut t_kernels = 0.0;
            for s in phases.iter().flatten() {
                let mut rt_p = openacc_sim::AccRuntime::new(
                    Cluster::CrayXc30.device().clone(),
                    Compiler::Cray,
                );
                rt_p.launch(&s.desc, &s.nest, s.kind, &s.clauses);
                t_parallel += rt_p.elapsed();
                let mut rt_k = openacc_sim::AccRuntime::new(
                    Cluster::CrayXc30.device().clone(),
                    Compiler::Cray,
                );
                // The kernels construct: no explicit loop scheduling.
                let bare = LoopNest::new(&s.nest.sizes);
                rt_k.launch(&s.desc, &bare, ConstructKind::Kernels, &s.clauses);
                t_kernels += rt_k.elapsed();
            }
            (n, t_kernels * w.steps as f64, t_parallel * w.steps as f64)
        })
        .collect()
}

/// Figure 10: elastic modeling 3D total time vs `maxregcount`, on both
/// cards, using a reduced grid that fits the 6 GB M2090 (as the paper's
/// figure must have). Returns `(maxregcount, cray_k40_s, ibm_m2090_s)`.
pub fn fig10() -> Vec<(u32, f64, f64)> {
    let case = elastic(Dims::Three);
    let w = Workload {
        nx: 280,
        ny: 280,
        nz: 280,
        steps: 500,
        snap_period: 25,
        n_receivers: 400,
    };
    [16u32, 32, 64, 128, 255]
        .into_iter()
        .map(|m| {
            let cfg = OptimizationConfig {
                maxregcount: Some(m),
                ..OptimizationConfig::default()
            };
            let k40 = modeling_time(
                &case,
                &cfg,
                Compiler::Pgi(PgiVersion::V14_6),
                Cluster::CrayXc30,
                &w,
            )
            .expect("fits K40")
            .breakdown
            .total_s;
            let m2090 = modeling_time(
                &case,
                &cfg,
                Compiler::Pgi(PgiVersion::V14_3),
                Cluster::Ibm,
                &w,
            )
            .expect("reduced grid fits M2090")
            .breakdown
            .total_s;
            (m, k40, m2090)
        })
        .collect()
}

/// Figure 11: elastic 2D under the CRAY compiler, synchronous vs async
/// streams. Returns `(sync_total_s, async_total_s)` plus the async run's
/// profiler rendering (the figure is an NVIDIA profiler screenshot).
pub fn fig11() -> (f64, f64, String) {
    let case = elastic(Dims::Two);
    // The profiler screenshot of Figure 11 shows per-kernel slices of a
    // small 2D demo model; launch-side lag only matters when kernels are
    // this short ("small jobs packing on to the device ... reduced lag
    // time between kernel launches").
    let w = Workload {
        nx: 400,
        ny: 1,
        nz: 400,
        steps: 2000,
        snap_period: 50,
        n_receivers: 200,
    };
    let sync_cfg = OptimizationConfig {
        async_streams: false,
        ..OptimizationConfig::default()
    };
    let async_cfg = OptimizationConfig {
        async_streams: true,
        ..OptimizationConfig::default()
    };
    let s = modeling_time(&case, &sync_cfg, Compiler::Cray, Cluster::CrayXc30, &w)
        .expect("fits")
        .breakdown
        .total_s;
    let a_run =
        modeling_time(&case, &async_cfg, Compiler::Cray, Cluster::CrayXc30, &w).expect("fits");
    let profile = a_run.runtime.profiler().render("Tesla K40 (CRAY, async)");
    (s, a_run.breakdown.total_s, profile)
}

/// Figure 12: acoustic 3D, fused vs fissioned pressure kernel, per card.
/// Returns `((fermi_fused, fermi_fissioned), (kepler_fused, kepler_fissioned))`.
pub fn fig12() -> ((f64, f64), (f64, f64)) {
    let case = acoustic(Dims::Three);
    let w = table_workload(&case);
    let run = |variant, compiler, cluster| {
        let cfg = OptimizationConfig {
            fission: variant,
            // The figure isolates fission: no maxregcount cap so the fused
            // kernel's register pressure plays out on each card's HW limit.
            maxregcount: None,
            ..OptimizationConfig::default()
        };
        modeling_time(&case, &cfg, compiler, cluster, &w)
            .expect("acoustic fits both cards")
            .breakdown
            .kernel_s
    };
    let fermi = (
        run(
            FissionVariant::Fused,
            Compiler::Pgi(PgiVersion::V14_3),
            Cluster::Ibm,
        ),
        run(
            FissionVariant::Fissioned,
            Compiler::Pgi(PgiVersion::V14_3),
            Cluster::Ibm,
        ),
    );
    let kepler = (
        run(
            FissionVariant::Fused,
            Compiler::Pgi(PgiVersion::V14_6),
            Cluster::CrayXc30,
        ),
        run(
            FissionVariant::Fissioned,
            Compiler::Pgi(PgiVersion::V14_6),
            Cluster::CrayXc30,
        ),
    );
    (fermi, kepler)
}

/// Figure 13: acoustic 2D backward kernel, direct (strided, apparent
/// dependence) vs transposed. Returns per card `(direct_s, transposed_s)`.
pub fn fig13() -> ((f64, f64), (f64, f64)) {
    let case = acoustic(Dims::Two);
    let w = table_workload(&case);
    let run = |variant, compiler, cluster| {
        let cfg = OptimizationConfig {
            transpose: variant,
            ..OptimizationConfig::default()
        };
        modeling_time(&case, &cfg, compiler, cluster, &w)
            .expect("2D fits")
            .breakdown
            .kernel_s
    };
    let fermi = (
        run(
            TransposeVariant::Direct,
            Compiler::Pgi(PgiVersion::V14_3),
            Cluster::Ibm,
        ),
        run(
            TransposeVariant::Transposed,
            Compiler::Pgi(PgiVersion::V14_3),
            Cluster::Ibm,
        ),
    );
    let kepler = (
        run(TransposeVariant::Direct, Compiler::Cray, Cluster::CrayXc30),
        run(
            TransposeVariant::Transposed,
            Compiler::Cray,
            Cluster::CrayXc30,
        ),
    );
    (fermi, kepler)
}

/// Figures 14/15: isotropic 2D RTM profiler output with the imaging
/// condition on CPU (14) vs GPU (15). Returns the two profiler renderings
/// plus the main kernel's compute share in each.
pub fn fig14_15() -> (String, f64, String, f64) {
    let case = SeismicCase {
        formulation: Formulation::Isotropic,
        dims: Dims::Two,
    };
    let w = table_workload(&case);
    let run = |placement| {
        let cfg = OptimizationConfig {
            image_placement: placement,
            ..OptimizationConfig::default()
        };
        rtm_time(
            &case,
            &cfg,
            Compiler::Pgi(PgiVersion::V14_3),
            Cluster::Ibm,
            &w,
        )
        .expect("2D fits")
    };
    let cpu = run(ImagePlacement::Cpu);
    let gpu = run(ImagePlacement::Gpu);
    let share = |r: &rtm_core::gpu_time::GpuRun| {
        r.runtime
            .profiler()
            .summary()
            .iter()
            .find(|(n, _)| n.starts_with("iso_kernel"))
            .map(|(_, s)| s.compute_share)
            .unwrap_or(0.0)
    };
    (
        cpu.runtime.profiler().render("Tesla M2090 (image on CPU)"),
        share(&cpu),
        gpu.runtime.profiler().render("Tesla M2090 (image on GPU)"),
        share(&gpu),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 6/7 shape: restructuring helps a lot under 14.3, little
    /// under 14.6.
    #[test]
    fn fig6_7_shapes() {
        let f7 = fig6_7(PgiVersion::V14_3);
        let orig = f7[0].1;
        let restructured = f7[1].1;
        let everywhere = f7[2].1;
        assert!(
            restructured < orig * 0.8,
            "14.3: restructuring must give a big win ({restructured} vs {orig})"
        );
        assert!(everywhere < orig, "14.3: PML-everywhere beats original");
        let f6 = fig6_7(PgiVersion::V14_6);
        let ratio = f6[0].1 / f6[1].1;
        assert!(
            (0.8..1.15).contains(&ratio),
            "14.6: restructuring roughly neutral, ratio {ratio}"
        );
        assert!(f6[2].1 >= f6[0].1 * 0.95, "14.6: PML-everywhere not faster");
    }

    /// Figures 8/9: explicit parallel beats kernels at every size.
    #[test]
    fn fig8_9_parallel_wins() {
        for dims in [Dims::Two, Dims::Three] {
            for (n, kernels, parallel) in fig8_9(dims) {
                assert!(
                    parallel < kernels,
                    "{dims:?} n={n}: parallel {parallel} vs kernels {kernels}"
                );
                let ratio = kernels / parallel;
                assert!(ratio > 1.1 && ratio < 2.5, "ratio {ratio}");
            }
        }
    }

    /// Figure 10: 64 registers per thread is the sweet spot on both cards.
    #[test]
    fn fig10_best_at_64() {
        let series = fig10();
        let best_k40 = series.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
        let best_m2090 = series.iter().min_by(|a, b| a.2.total_cmp(&b.2)).unwrap().0;
        assert_eq!(best_k40, 64, "{series:?}");
        // Fermi's HW cap is 63: 64 and above clamp to the same code, so any
        // of {64, 128, 255} ties; the minimum must not be a spilling cap.
        assert!(best_m2090 >= 64, "{series:?}");
        // Tight caps must clearly hurt (spills).
        let t16 = series[0].1;
        let t64 = series[2].1;
        assert!(t16 > 1.3 * t64, "16-reg cap must spill: {t16} vs {t64}");
    }

    /// Figure 11: async streams cut ~30 % under CRAY.
    #[test]
    fn fig11_async_gain() {
        let (sync_s, async_s, profile) = fig11();
        let gain = 1.0 - async_s / sync_s;
        assert!(gain > 0.10 && gain < 0.45, "gain {gain}");
        assert!(profile.contains("el2d_vx"));
    }

    /// Figure 12: fission ≈3× on Fermi, ≈neutral on Kepler.
    #[test]
    fn fig12_fission_shape() {
        let ((f_fused, f_fiss), (k_fused, k_fiss)) = fig12();
        let fermi_gain = f_fused / f_fiss;
        let kepler_gain = k_fused / k_fiss;
        assert!(fermi_gain > 2.0, "Fermi gain {fermi_gain}");
        assert!(kepler_gain < 1.3, "Kepler gain {kepler_gain}");
    }

    /// Figure 13: transposition ≈3× on both cards.
    #[test]
    fn fig13_transpose_shape() {
        let ((f_dir, f_tr), (k_dir, k_tr)) = fig13();
        for (dir, tr, card) in [(f_dir, f_tr, "Fermi"), (k_dir, k_tr, "Kepler")] {
            let gain = dir / tr;
            assert!(gain > 2.0 && gain < 6.0, "{card} gain {gain}");
        }
    }

    /// Figures 14/15: the main kernel dominates compute, the injection
    /// kernels are low-utilization, and moving the image to the GPU barely
    /// moves the main kernel's share.
    #[test]
    fn fig14_15_profiles() {
        let (cpu_prof, cpu_share, gpu_prof, gpu_share) = fig14_15();
        assert!(cpu_share > 0.5, "main kernel dominates: {cpu_share}");
        assert!((cpu_share - gpu_share).abs() < 0.15);
        assert!(gpu_prof.contains("imaging_condition"));
        assert!(!cpu_prof.contains("imaging_condition"));
        assert!(cpu_prof.contains("receiver_injection"));
    }
}
