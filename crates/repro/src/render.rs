//! Wavefield and image rendering: ASCII art for the terminal (Figures 3
//! and 5) and binary PGM files for external viewers.

use seismic_grid::Field2;
use std::io::Write as _;
use std::path::Path;

/// Symmetric grayscale ramp used by the ASCII renderer.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Downsample and normalise a field into an ASCII block of about `cols` columns.
///
/// Amplitudes are mapped symmetrically around zero (seismic display
/// convention) with a gain so weak arrivals stay visible.
pub fn ascii_field(f: &Field2, cols: usize, gain: f32) -> String {
    let e = f.extent();
    let cols = cols.clamp(8, e.nx);
    let step = (e.nx / cols).max(1);
    // Terminal cells are ~2x taller than wide.
    let zstep = (2 * step).max(1);
    let peak = f.max_abs().max(1e-30);
    let mut out = String::new();
    let mut iz = 0;
    while iz < e.nz {
        let mut ix = 0;
        while ix < e.nx {
            // Block max-abs preserves thin events under downsampling.
            let mut v = 0.0f32;
            for dz in 0..zstep.min(e.nz - iz) {
                for dx in 0..step.min(e.nx - ix) {
                    let x = f.get(ix + dx, iz + dz);
                    if x.abs() > v.abs() {
                        v = x;
                    }
                }
            }
            // Perceptual compression: weak arrivals stay visible next to
            // the near-source peak (seismic plotting convention).
            let a = ((v.abs() / peak) * gain).powf(0.6).min(1.0);
            let idx = ((a * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
            ix += step;
        }
        out.push('\n');
        iz += zstep;
    }
    out
}

/// Write a field as a binary 8-bit PGM (portable graymap), amplitude
/// mapped symmetrically: 128 = zero, 0/255 = ±peak.
pub fn write_pgm(f: &Field2, path: &Path) -> std::io::Result<()> {
    let e = f.extent();
    let peak = f.max_abs().max(1e-30);
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(file, "P5")?;
    writeln!(file, "{} {}", e.nx, e.nz)?;
    writeln!(file, "255")?;
    let mut row = Vec::with_capacity(e.nx);
    for iz in 0..e.nz {
        row.clear();
        for ix in 0..e.nx {
            let v = f.get(ix, iz) / peak; // [-1, 1]
            let g = ((v * 0.5 + 0.5) * 255.0).clamp(0.0, 255.0) as u8;
            row.push(g);
        }
        file.write_all(&row)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::Extent2;

    fn bump() -> Field2 {
        let e = Extent2::new(64, 64, 4);
        Field2::from_fn(e, |ix, iz| {
            let dx = ix as f32 - 32.0;
            let dz = iz as f32 - 32.0;
            (-(dx * dx + dz * dz) / 50.0).exp()
        })
    }

    #[test]
    fn ascii_has_expected_shape() {
        let s = ascii_field(&bump(), 32, 1.0);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 8);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        // Center is bright, corners dark.
        let mid = lines[lines.len() / 2];
        assert_eq!(mid.as_bytes()[0], b' ');
        assert!(mid.contains('@'));
    }

    #[test]
    fn ascii_handles_zero_field() {
        let e = Extent2::new(16, 16, 2);
        let s = ascii_field(&Field2::zeros(e), 16, 1.0);
        assert!(s.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn pgm_roundtrip_header_and_size() {
        let dir = std::env::temp_dir().join("acc_rtm_render_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bump.pgm");
        write_pgm(&bump(), &p).unwrap();
        let data = std::fs::read(&p).unwrap();
        assert!(data.starts_with(b"P5\n64 64\n255\n"));
        assert_eq!(data.len(), 13 + 64 * 64);
        // Center pixel much brighter than the corner.
        let pix = &data[13..];
        assert!(pix[32 * 64 + 32] > pix[0] + 100);
        std::fs::remove_file(&p).ok();
    }
}
