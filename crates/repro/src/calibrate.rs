//! Model-vs-measured calibration: the host engine against the GPU
//! timing model.
//!
//! The repo carries two notions of "how long does a case take":
//!
//! * **measured** — a real run of the numerical kernels on the host
//!   execution engine (`exec-host` pool, wall-clock seconds, with the
//!   [`exec_host::prof`] profiler supplying the per-phase split), and
//! * **modeled** — [`rtm_core::gpu_time`]'s roofline pricing of the same
//!   schedule on one of the paper's two GPUs.
//!
//! The two are *not* expected to agree in absolute terms: the model
//! prices a Tesla on the paper's production grids, the measurement runs
//! a laptop-scale grid on host cores. What a healthy model must get
//! right is the *structure*: the relative ordering of the six cases, and
//! a per-case measured/modeled ratio that stays stable rather than
//! drifting by orders of magnitude between formulations. This module
//! runs all six propagator cases for real on the host engine (same small
//! workload fed to both sides), prices each on both devices, and emits
//! the 12-row model-vs-measured table plus per-device Spearman rank
//! correlations — the calibration artifact CI regenerates
//! (`calibration.json`, and the table in EXPERIMENTS.md).
//!
//! Rows the model refuses to price (the device-memory ledger rejects the
//! footprint — at production scale this is elastic 3D on the 6 GB M2090)
//! are carried as "X" cells and excluded from the correlation, mirroring
//! the paper's own table conventions.

use crate::accprof::{case_name, DeviceChoice};
use acc_obs::wallclock::{self, HostReport};
use openacc_sim::exec::{engine, set_engine, Engine};
use rtm_core::case::{OptimizationConfig, SeismicCase, Workload};
use rtm_core::gpu_time::rtm_time;
use rtm_core::modeling::Medium2;
use rtm_core::modeling3::Medium3;
use rtm_core::rtm::run_rtm;
use rtm_core::rtm3::run_rtm3;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{
    acoustic2_layered, acoustic3_layered, elastic2_layered, elastic3_layered, iso2_constant,
    iso3_layered, standard_layers,
};
use seismic_model::footprint::Dims;
use seismic_model::{extent2, extent3, Geometry};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_source::{Acquisition2, Acquisition3, Wavelet};
use std::sync::Mutex;
use std::time::Instant;

/// Serializes everything in this crate that toggles the process-global
/// host profiler (calibration runs, `accprof --host`, their tests).
pub static PROF_GATE: Mutex<()> = Mutex::new(());

/// Grid spacing shared by every calibration medium.
const H: f32 = 10.0;
/// Velocity cap of [`standard_layers`] media, used for CFL-stable dt.
const VMAX: f32 = 3200.0;
/// Gangs used for the measured runs.
const GANGS: usize = 4;

/// One measured host run of a case.
#[derive(Debug, Clone)]
pub struct Measured {
    /// The workload actually run (also fed to the model verbatim).
    pub w: Workload,
    /// End-to-end wall-clock seconds of the RTM driver.
    pub wall_s: f64,
    /// Measured throughput in giga-points per second
    /// (`points × steps / wall_s / 1e9`).
    pub gp_per_s: f64,
    /// Profiler-derived phase seconds `[forward, backward, imaging]`;
    /// backward *includes* the nested imaging phase.
    pub phases_s: [f64; 3],
    /// The full derived gang report of the run.
    pub report: HostReport,
}

/// One row of the 12-row calibration table.
#[derive(Debug, Clone)]
pub struct CalRow {
    /// The seismic case.
    pub case: SeismicCase,
    /// The device the model priced.
    pub device: DeviceChoice,
    /// Measured host wall-clock seconds.
    pub measured_s: f64,
    /// Measured throughput (Gpoints/s).
    pub measured_gp_s: f64,
    /// Measured phase split `[forward, backward incl. imaging, imaging]`.
    pub phases_s: [f64; 3],
    /// Modeled seconds on the device, `None` when the model's memory
    /// ledger rejects the footprint (an "X" cell).
    pub predicted_s: Option<f64>,
}

impl CalRow {
    /// `measured / predicted` — the calibration ratio. >1 means the host
    /// run is slower than the modeled GPU (the expected regime).
    pub fn ratio(&self) -> Option<f64> {
        self.predicted_s.map(|p| self.measured_s / p.max(1e-12))
    }
}

/// The full calibration artifact.
#[derive(Debug, Clone)]
pub struct CalReport {
    /// Whether this was a smoke-scale run.
    pub smoke: bool,
    /// Gangs used for the measured runs.
    pub gangs: usize,
    /// All 12 rows in `SeismicCase::all()` × `[M2090, K40]` order.
    pub rows: Vec<CalRow>,
    /// Per-device Spearman rank correlation between measured and modeled
    /// orderings of the priceable cases: `(device, rho, n_cases)`.
    pub spearman: Vec<(DeviceChoice, f64, usize)>,
}

/// The small per-case workload: big enough that the phase structure is
/// visible in the profile, small enough that all six cases run in
/// seconds. The *same* workload is handed to the model so the comparison
/// is apples-to-apples.
pub fn calibration_workload(case: &SeismicCase, smoke: bool) -> Workload {
    match case.dims {
        Dims::Two => {
            let (n, steps) = if smoke { (48, 30) } else { (160, 220) };
            Workload {
                nx: n,
                ny: 1,
                nz: n,
                steps,
                snap_period: 6,
                n_receivers: n.div_ceil(4),
            }
        }
        Dims::Three => {
            let (n, steps) = if smoke { (14, 12) } else { (32, 60) };
            Workload {
                nx: n,
                ny: n,
                nz: n,
                steps,
                snap_period: 4,
                n_receivers: n.div_ceil(4) * n.div_ceil(4),
            }
        }
    }
}

fn medium2(case: &SeismicCase, n: usize) -> Medium2 {
    use seismic_model::footprint::Formulation::*;
    let e = extent2(n, n);
    match case.formulation {
        Isotropic => {
            let dt = stable_dt(8, 2, 2000.0, H, 0.8);
            let d = DampProfile::new(n, e.halo, 10, 2000.0, H, 1e-4);
            Medium2::Iso {
                model: iso2_constant(e, 2000.0, Geometry::uniform(H, dt)),
                damp_x: d.clone(),
                damp_z: d,
            }
        }
        Acoustic => {
            let dt = stable_dt(8, 2, VMAX, H, 0.6);
            let c = CpmlAxis::new(n, e.halo, 10, dt, VMAX, H, 1e-4);
            Medium2::Acoustic {
                model: acoustic2_layered(e, &standard_layers(n), Geometry::uniform(H, dt)),
                cpml: [c.clone(), c],
            }
        }
        Elastic => {
            let dt = stable_dt(8, 2, VMAX, H, 0.5);
            let c = CpmlAxis::new(n, e.halo, 10, dt, VMAX, H, 1e-4);
            Medium2::Elastic {
                model: elastic2_layered(e, &standard_layers(n), Geometry::uniform(H, dt)),
                cpml: [c.clone(), c],
            }
        }
    }
}

fn medium3(case: &SeismicCase, n: usize) -> Medium3 {
    use seismic_model::footprint::Formulation::*;
    let e = extent3(n, n, n);
    let geom = |safety: f32| Geometry::uniform(H, stable_dt(8, 3, VMAX, H, safety));
    let cp = CpmlAxis::new(n, e.halo, 6, stable_dt(8, 3, VMAX, H, 0.5), VMAX, H, 1e-4);
    match case.formulation {
        Isotropic => {
            let d = DampProfile::new(n, e.halo, 6, VMAX, H, 1e-4);
            Medium3::Iso {
                model: iso3_layered(e, &standard_layers(n), geom(0.7)),
                damp: [d.clone(), d.clone(), d],
            }
        }
        Acoustic => Medium3::Acoustic {
            model: acoustic3_layered(e, &standard_layers(n), geom(0.55)),
            cpml: [cp.clone(), cp.clone(), cp],
        },
        Elastic => Medium3::Elastic {
            model: elastic3_layered(e, &standard_layers(n), geom(0.5)),
            cpml: [cp.clone(), cp.clone(), cp],
        },
    }
}

/// One unprofiled/untimed execution of a case's RTM driver.
fn run_once(case: &SeismicCase, w: &Workload, cfg: &OptimizationConfig, gangs: usize) {
    let wavelet = Wavelet::ricker(15.0);
    match case.dims {
        Dims::Two => {
            let m = medium2(case, w.nx);
            let acq = Acquisition2::surface_line(w.nx, w.nx / 2, 2, 1, 4);
            let r = run_rtm(&m, &acq, &wavelet, cfg, w.steps, w.snap_period, gangs);
            assert!(r.snapshots_saved > 0);
        }
        Dims::Three => {
            let m = medium3(case, w.nx);
            let acq = Acquisition3::surface_patch(w.nx, w.ny, (w.nx / 2, w.ny / 2, 2), 1, 4);
            let r = run_rtm3(&m, &acq, &wavelet, cfg, w.steps, w.snap_period, gangs);
            assert!(r.snapshots_saved > 0);
        }
    }
}

/// Run one case for real on the pooled host engine with the wall-clock
/// profiler on, returning wall time, throughput, and the phase split.
/// One untimed warm-up spins up the worker pool and faults in the model
/// fields; the reported run is the fastest of the timed reps (min over
/// reps filters scheduler noise the same way `bench_host`'s median does).
///
/// The caller must hold [`PROF_GATE`]: the profiler enable is
/// process-global.
pub fn measure_case(case: &SeismicCase, smoke: bool, gangs: usize) -> Measured {
    let w = calibration_workload(case, smoke);
    let cfg = OptimizationConfig::default();
    let reps = if smoke { 1 } else { 3 };

    // The scoped engine spawns fresh threads per launch and would exhaust
    // the profiler's worker slots; measured runs are pooled.
    let prior = engine();
    set_engine(Engine::Pooled);
    run_once(case, &w, &cfg, gangs); // warm-up, unprofiled

    exec_host::prof::set_enabled(true);
    let mut best: Option<(f64, exec_host::HostProfile)> = None;
    for _ in 0..reps {
        let _ = exec_host::prof::drain(); // discard anything stale
        let t0 = Instant::now();
        run_once(case, &w, &cfg, gangs);
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        let profile = exec_host::prof::drain();
        if best.as_ref().is_none_or(|(b, _)| wall < *b) {
            best = Some((wall, profile));
        }
    }
    exec_host::prof::set_enabled(false);
    set_engine(prior);

    let (wall_s, profile) = best.expect("at least one rep");
    let report = wallclock::report(&profile);
    let gp_per_s = (w.points() as f64) * (w.steps as f64) / wall_s / 1e9;
    Measured {
        phases_s: report.phases_s,
        w,
        wall_s,
        gp_per_s,
        report,
    }
}

/// One smoke-scale profiled host run, returning the raw per-slot event
/// profile (the `accprof --host` entry point: the caller ingests the
/// profile into its own [`acc_obs::ObsSession`] so the wall-clock tracks
/// join the simulated-time trace). Takes [`PROF_GATE`] itself — do not
/// call while holding it.
pub fn profiled_host_run(
    case: &SeismicCase,
    gangs: usize,
) -> (Workload, f64, exec_host::HostProfile) {
    let _gate = PROF_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let w = calibration_workload(case, true);
    let cfg = OptimizationConfig::default();
    let prior = engine();
    set_engine(Engine::Pooled);
    exec_host::prof::set_enabled(true);
    let _ = exec_host::prof::drain();
    let t0 = Instant::now();
    run_once(case, &w, &cfg, gangs);
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let profile = exec_host::prof::drain();
    exec_host::prof::set_enabled(false);
    set_engine(prior);
    (w, wall_s, profile)
}

/// Spearman rank correlation between two equal-length series (no-tie
/// formula: `1 − 6Σd²/(n(n²−1))`; f64 timings never tie in practice).
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ranks = |xs: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
        let mut r = vec![0usize; xs.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank;
        }
        r
    };
    let (ra, rb) = (ranks(a), ranks(b));
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    1.0 - 6.0 * d2 / (n as f64 * ((n * n - 1) as f64))
}

/// Run the full calibration: six measured host runs, twelve model
/// pricings, per-device rank correlations.
pub fn run_calibration(smoke: bool) -> CalReport {
    let _gate = PROF_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = OptimizationConfig::default();
    let devices = [DeviceChoice::M2090, DeviceChoice::K40];

    let mut rows = Vec::with_capacity(12);
    for case in SeismicCase::all() {
        let m = measure_case(&case, smoke, GANGS);
        for device in devices {
            let predicted_s = rtm_time(&case, &cfg, device.compiler(), device.cluster(), &m.w)
                .ok()
                .map(|run| run.breakdown.total_s);
            rows.push(CalRow {
                case,
                device,
                measured_s: m.wall_s,
                measured_gp_s: m.gp_per_s,
                phases_s: m.phases_s,
                predicted_s,
            });
        }
    }

    let spearman = devices
        .iter()
        .map(|&device| {
            let (meas, pred): (Vec<f64>, Vec<f64>) = rows
                .iter()
                .filter(|r| r.device == device)
                .filter_map(|r| r.predicted_s.map(|p| (r.measured_s, p)))
                .unzip();
            (device, spearman_rho(&meas, &pred), meas.len())
        })
        .collect();

    CalReport {
        smoke,
        gangs: GANGS,
        rows,
        spearman,
    }
}

fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.1}", s * 1e3).to_string() + "m"
    }
}

impl CalReport {
    /// The EXPERIMENTS.md table: one row per (case, device).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "| case | device | measured (s) | modeled (s) | meas/model | meas Gp/s | fwd (s) | bwd (s) | img (s) |\n",
        );
        out.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|\n");
        for r in &self.rows {
            let (pred, ratio) = match (r.predicted_s, r.ratio()) {
                (Some(p), Some(q)) => (fmt_s(p), format!("{q:.1}")),
                _ => ("X".to_string(), "X".to_string()),
            };
            // Backward shown exclusive of the nested imaging phase.
            let bwd_excl = (r.phases_s[1] - r.phases_s[2]).max(0.0);
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {:.4} | {} | {} | {} |\n",
                case_name(&r.case),
                r.device.as_str(),
                fmt_s(r.measured_s),
                pred,
                ratio,
                r.measured_gp_s,
                fmt_s(r.phases_s[0]),
                fmt_s(bwd_excl),
                fmt_s(r.phases_s[2]),
            ));
        }
        out.push('\n');
        for (device, rho, n) in &self.spearman {
            out.push_str(&format!(
                "Spearman rank correlation (measured vs modeled, {}): rho = {:.3} over {} cases\n",
                device.as_str(),
                rho,
                n
            ));
        }
        out
    }

    /// The machine-readable `calibration.json` document.
    pub fn to_json(&self) -> String {
        let mut doc = serde_json::Map::new();
        doc.insert("tool", "calibrate");
        doc.insert("smoke", self.smoke);
        doc.insert("gangs", self.gangs as u64);
        doc.insert("clock_measured", "wall");
        doc.insert("clock_modeled", "simulated");
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|r| {
                let mut m = serde_json::Map::new();
                m.insert("case", case_name(&r.case));
                m.insert("device", r.device.as_str());
                m.insert("measured_s", r.measured_s);
                m.insert("measured_gp_s", r.measured_gp_s);
                m.insert("forward_s", r.phases_s[0]);
                m.insert("backward_s", r.phases_s[1]);
                m.insert("imaging_s", r.phases_s[2]);
                match (r.predicted_s, r.ratio()) {
                    (Some(p), Some(q)) => {
                        m.insert("predicted_s", p);
                        m.insert("ratio", q);
                    }
                    _ => {
                        m.insert("predicted_s", serde_json::Value::Null);
                        m.insert("ratio", serde_json::Value::Null);
                    }
                }
                serde_json::Value::Object(m)
            })
            .collect();
        doc.insert("rows", rows);
        let sp: Vec<serde_json::Value> = self
            .spearman
            .iter()
            .map(|(device, rho, n)| {
                let mut m = serde_json::Map::new();
                m.insert("device", device.as_str());
                m.insert("rho", *rho);
                m.insert("cases", *n as u64);
                serde_json::Value::Object(m)
            })
            .collect();
        doc.insert("spearman", sp);
        serde_json::to_string_pretty(&serde_json::Value::Object(doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_agrees_on_known_orderings() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((spearman_rho(&a, &a) - 1.0).abs() < 1e-12);
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman_rho(&a, &rev) + 1.0).abs() < 1e-12);
        // One swapped adjacent pair: rho = 1 − 6·2/(4·15) = 0.8.
        let near = [1.0, 3.0, 2.0, 4.0];
        assert!((spearman_rho(&a, &near) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn calibration_workloads_are_laptop_scale() {
        for case in SeismicCase::all() {
            for smoke in [false, true] {
                let w = calibration_workload(&case, smoke);
                // Laptop scale: worst case is the 32-cubed 3D grid.
                assert!(
                    w.points() <= 32 * 32 * 32,
                    "{case:?} too big: {}",
                    w.points()
                );
                assert!(w.steps >= 10);
                assert!(w.n_receivers > 0);
            }
        }
    }

    /// One measured smoke run produces a coherent profile: phases cover
    /// most of the wall time, forward dominates nothing unreasonable, and
    /// throughput is finite.
    #[test]
    fn measured_smoke_run_has_phase_structure() {
        let _gate = PROF_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let case = SeismicCase::all()[0]; // iso2d
        let m = measure_case(&case, true, 2);
        assert!(m.wall_s > 0.0 && m.gp_per_s > 0.0);
        assert!(
            m.phases_s[0] > 0.0 && m.phases_s[1] > 0.0 && m.phases_s[2] > 0.0,
            "phases: {:?}",
            m.phases_s
        );
        // Imaging nests inside backward.
        assert!(m.phases_s[2] <= m.phases_s[1] + 1e-9);
        assert!(m.report.sweeps > 0 && m.report.slabs > 0);
    }
}
