//! The `accprof` pseudo-profiler: one observed run, four artifacts.
//!
//! Reproduces the paper's profiling workflow (`nvprof` summaries like
//! Figures 14/15, `nvprof --metrics` counter tables, and a visual
//! timeline) from the simulation stack: any of the twelve seismic cases
//! runs through [`rtm_core::gpu_time`] with an [`ObsSession`] attached,
//! and the session is serialized as
//!
//! 1. `nvprof_summary.txt` — the per-kernel/memcpy time table,
//! 2. `metrics.txt` — the per-kernel hardware-counter table,
//! 3. `trace.json` — a Chrome/Perfetto trace-event timeline with one
//!    track per device stream, the host, and the MPI ranks of a 2-way
//!    decomposed companion run,
//! 4. `report.json` — the machine-readable roll-up (breakdown, metrics,
//!    registry, track inventory).

use crate::cases::table_workload;
use acc_obs::ObsSession;
use openacc_sim::{Compiler, PgiVersion};
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase, Workload};
use rtm_core::error::RtmError;
use rtm_core::gpu_time::{modeling_time_obs, rtm_time_obs, GpuRun};
use rtm_core::multi_gpu::{emit_halo_timeline, modeling_time_multi, CommMode, GhostPacking};
use seismic_model::footprint::{Dims, Formulation};
use std::sync::Arc;

/// Which driver the profiled run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Forward modeling only.
    Modeling,
    /// Forward + backward + imaging.
    Rtm,
}

impl RunMode {
    /// CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            RunMode::Modeling => "modeling",
            RunMode::Rtm => "rtm",
        }
    }

    /// Parse a `--mode` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "modeling" => Some(RunMode::Modeling),
            "rtm" => Some(RunMode::Rtm),
            _ => None,
        }
    }
}

/// Which evaluation platform the run is priced on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceChoice {
    /// Tesla M2090 on the IBM cluster (PGI 14.3).
    M2090,
    /// Tesla K40 on the CRAY XC30 (PGI 14.6).
    K40,
}

impl DeviceChoice {
    /// CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceChoice::M2090 => "m2090",
            DeviceChoice::K40 => "k40",
        }
    }

    /// Parse a `--device` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "m2090" => Some(DeviceChoice::M2090),
            "k40" => Some(DeviceChoice::K40),
            _ => None,
        }
    }

    /// The cluster hosting the card.
    pub fn cluster(self) -> Cluster {
        match self {
            DeviceChoice::M2090 => Cluster::Ibm,
            DeviceChoice::K40 => Cluster::CrayXc30,
        }
    }

    /// The compiler the paper pairs with the platform.
    pub fn compiler(self) -> Compiler {
        match self {
            DeviceChoice::M2090 => Compiler::Pgi(PgiVersion::V14_3),
            DeviceChoice::K40 => Compiler::Pgi(PgiVersion::V14_6),
        }
    }
}

/// Parse a `--case` value (`iso2d`, `ac2d`, `el2d`, `iso3d`, `ac3d`,
/// `el3d`).
pub fn parse_case(s: &str) -> Option<SeismicCase> {
    let (formulation, dims) = match s {
        "iso2d" => (Formulation::Isotropic, Dims::Two),
        "ac2d" => (Formulation::Acoustic, Dims::Two),
        "el2d" => (Formulation::Elastic, Dims::Two),
        "iso3d" => (Formulation::Isotropic, Dims::Three),
        "ac3d" => (Formulation::Acoustic, Dims::Three),
        "el3d" => (Formulation::Elastic, Dims::Three),
        _ => return None,
    };
    Some(SeismicCase { formulation, dims })
}

/// CLI name of a case.
pub fn case_name(case: &SeismicCase) -> &'static str {
    match (case.formulation, case.dims) {
        (Formulation::Isotropic, Dims::Two) => "iso2d",
        (Formulation::Acoustic, Dims::Two) => "ac2d",
        (Formulation::Elastic, Dims::Two) => "el2d",
        (Formulation::Isotropic, Dims::Three) => "iso3d",
        (Formulation::Acoustic, Dims::Three) => "ac3d",
        (Formulation::Elastic, Dims::Three) => "el3d",
    }
}

/// One fully-specified profiling request.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRequest {
    /// The seismic case.
    pub case: SeismicCase,
    /// Modeling or RTM.
    pub mode: RunMode,
    /// Evaluation platform.
    pub device: DeviceChoice,
    /// Override the table workload's step count (smoke runs); `None`
    /// keeps the calibrated production scale.
    pub steps: Option<usize>,
    /// Also run the `acc-serve` smoke burst against the same session:
    /// the service tracks join the timeline and the server's queue-depth
    /// and shed-rate gauges land in the report registry.
    pub serve: bool,
    /// Also run the case for real (smoke scale) on the pooled host engine
    /// with the wall-clock profiler on: the per-worker wall-clock tracks
    /// join the same timeline (distinct clock domain, labeled `wall
    /// worker N` with a `clock=wall` arg), the derived gang metrics land
    /// in the registry, and `host_profile.json` is emitted.
    pub host: bool,
}

/// The four artifacts plus the raw session, for tests that want to poke.
pub struct ProfileOutput {
    /// Figure-14/15-style nvprof text summary.
    pub nvprof_summary: String,
    /// `nvprof --metrics`-style per-kernel counter table.
    pub metrics: String,
    /// Schema-valid Chrome/Perfetto trace-event JSON.
    pub trace_json: String,
    /// Machine-readable roll-up.
    pub report_json: String,
    /// Standalone wall-clock profile document (`--host` only): the
    /// derived gang report plus the raw per-slot event streams.
    pub host_profile_json: Option<String>,
    /// The observed session (tracer + metrics + registry).
    pub session: Arc<ObsSession>,
    /// The priced run (timing breakdown + profiler ledger).
    pub run: GpuRun,
}

/// Human label used in the text artifacts.
fn device_label(device: DeviceChoice) -> String {
    device.cluster().device().name.to_string()
}

/// Run one profiled case and build all four artifacts. The trace is
/// self-validated before being returned: it must re-parse as JSON and
/// every track must hold monotone, flame-nested spans.
pub fn profile(req: &ProfileRequest) -> Result<ProfileOutput, RtmError> {
    let mut w = table_workload(&req.case);
    if let Some(steps) = req.steps {
        w.steps = steps.max(1);
        w.snap_period = w.snap_period.min(w.steps);
    }
    let cfg = OptimizationConfig::default();
    let cluster = req.device.cluster();
    let compiler = req.device.compiler();
    let obs = Arc::new(ObsSession::new());

    let run = match req.mode {
        RunMode::Modeling => {
            modeling_time_obs(&req.case, &cfg, compiler, cluster, &w, Some(obs.clone()))?
        }
        RunMode::Rtm => rtm_time_obs(&req.case, &cfg, compiler, cluster, &w, Some(obs.clone()))?,
    };

    // The MPI-rank tracks: a 2-way decomposed companion run of the same
    // case prices the halo exchanges the paper's hybrid OpenACC-MPI code
    // performs; its timeline rides along on its own tracks. A case too big
    // even for the decomposed slabs simply has no rank tracks.
    if let Ok(mt) = modeling_time_multi(
        &req.case,
        &cfg,
        compiler,
        cluster,
        &w,
        2,
        GhostPacking::DevicePacked,
        CommMode::Overlapped,
    ) {
        emit_halo_timeline(&obs, &req.case, &w, &mt);
    }

    // The served burst rides on the same session: its spans land on the
    // per-device service tracks and its queue/shed gauges in the registry.
    if req.serve {
        crate::serve::smoke_run(Some(&obs))?;
    }

    // The real host run rides on the same session too: a smoke-scale
    // execution of the same case on the pooled host engine, its
    // wall-clock worker tracks merged next to the simulated-time tracks
    // (two clock domains, one timeline; each wall span carries a
    // `clock=wall` arg so the domains cannot be confused).
    let (host_profile_json, host_report) = if req.host {
        let (_hw, _wall_s, hp) = crate::calibrate::profiled_host_run(&req.case, 4);
        let report = acc_obs::wallclock::ingest(&hp, &obs);
        (
            Some(acc_obs::wallclock::host_profile_json(&hp)),
            Some(report),
        )
    } else {
        (None, None)
    };

    let label = device_label(req.device);
    let nvprof_summary = run.runtime.profiler().render(&label);
    let metrics = obs.metrics().render(&label);
    let trace_json = obs.tracer.export_chrome("accprof");

    // Self-validation: the emitted trace must be machine-readable and the
    // timeline well-formed.
    serde_json::from_str(&trace_json)
        .map_err(|e| RtmError::Observability(format!("trace is not valid JSON: {e:?}")))?;
    obs.tracer
        .validate_tracks()
        .map_err(RtmError::Observability)?;

    let report_json = build_report(req, &w, &run, &obs, host_report.as_ref());
    Ok(ProfileOutput {
        nvprof_summary,
        metrics,
        trace_json,
        report_json,
        host_profile_json,
        session: obs,
        run,
    })
}

/// The machine-readable roll-up of one profiled run.
fn build_report(
    req: &ProfileRequest,
    w: &Workload,
    run: &GpuRun,
    obs: &ObsSession,
    host: Option<&acc_obs::wallclock::HostReport>,
) -> String {
    let mut doc = serde_json::Map::new();
    doc.insert("tool", "accprof");
    doc.insert("case", case_name(&req.case));
    doc.insert("mode", req.mode.as_str());
    doc.insert("device", req.device.as_str());
    doc.insert("serve", req.serve);

    let mut wl = serde_json::Map::new();
    wl.insert("nx", w.nx as u64);
    wl.insert("ny", w.ny as u64);
    wl.insert("nz", w.nz as u64);
    wl.insert("steps", w.steps as u64);
    wl.insert("snap_period", w.snap_period as u64);
    wl.insert("n_receivers", w.n_receivers as u64);
    doc.insert("workload", wl);

    let mut bd = serde_json::Map::new();
    bd.insert("total_s", run.breakdown.total_s);
    bd.insert("kernel_s", run.breakdown.kernel_s);
    bd.insert("transfer_s", run.breakdown.transfer_s);
    doc.insert("breakdown", bd);

    let tracks: Vec<serde_json::Value> = obs
        .tracer
        .tracks()
        .iter()
        .map(|t| serde_json::Value::from(t.label()))
        .collect();
    doc.insert("tracks", tracks);
    if let Some(h) = host {
        doc.insert("host", h.to_json());
    }
    doc.insert("span_count", obs.tracer.len() as u64);
    doc.insert("metrics", obs.metrics().to_json());
    doc.insert("registry", obs.registry.to_json());
    serde_json::to_string(&serde_json::Value::Object(doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        for name in ["iso2d", "ac2d", "el2d", "iso3d", "ac3d", "el3d"] {
            let c = parse_case(name).unwrap();
            assert_eq!(case_name(&c), name);
        }
        assert!(parse_case("nope").is_none());
        assert_eq!(RunMode::parse("rtm"), Some(RunMode::Rtm));
        assert_eq!(RunMode::parse("modeling"), Some(RunMode::Modeling));
        assert!(RunMode::parse("x").is_none());
        assert_eq!(DeviceChoice::parse("k40"), Some(DeviceChoice::K40));
        assert_eq!(DeviceChoice::parse("m2090"), Some(DeviceChoice::M2090));
        assert!(DeviceChoice::parse("x").is_none());
    }

    /// A smoke-scale profile emits all four artifacts, the trace holds the
    /// host, at least one device-stream, and both MPI-rank tracks, and the
    /// report round-trips as JSON.
    #[test]
    fn smoke_profile_emits_all_artifacts() {
        let req = ProfileRequest {
            case: parse_case("iso2d").unwrap(),
            mode: RunMode::Rtm,
            device: DeviceChoice::K40,
            steps: Some(20),
            serve: false,
            host: false,
        };
        let out = profile(&req).expect("smoke profile runs");
        assert!(out.nvprof_summary.contains("Compute"));
        assert!(out.nvprof_summary.contains("MemCpy (HtoD)"));
        assert!(out.metrics.contains("==accprof== Metrics result"));
        assert!(out.metrics.contains("achieved_occupancy"));

        let trace = serde_json::from_str(&out.trace_json).expect("valid trace JSON");
        let events = trace.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        let labels: Vec<String> = out
            .session
            .tracer
            .tracks()
            .iter()
            .map(|t| t.label())
            .collect();
        assert!(labels.iter().any(|l| l == "host"));
        assert!(labels.iter().any(|l| l.starts_with("stream")));
        assert!(labels.iter().any(|l| l.starts_with("rank")));
        assert!(labels.len() >= 3, "{labels:?}");

        let report = serde_json::from_str(&out.report_json).expect("valid report JSON");
        assert_eq!(report.get("case").unwrap().as_str(), Some("iso2d"));
        assert_eq!(report.get("mode").unwrap().as_str(), Some("rtm"));
        assert!(report.get("breakdown").unwrap().get("total_s").is_some());
        assert!(report
            .get("registry")
            .unwrap()
            .get("counters")
            .unwrap()
            .get("kernels_launched")
            .is_some());
    }

    /// `--serve` folds the served smoke burst into the same session: the
    /// service tracks join the timeline and the server's queue-depth and
    /// shed-rate gauges land in the report registry.
    #[test]
    fn serve_profile_reports_queue_gauges() {
        let req = ProfileRequest {
            case: parse_case("iso2d").unwrap(),
            mode: RunMode::Modeling,
            device: DeviceChoice::K40,
            steps: Some(10),
            serve: true,
            host: false,
        };
        let out = profile(&req).expect("served profile runs");
        let report = serde_json::from_str(&out.report_json).expect("valid report JSON");
        let gauges = report
            .get("registry")
            .unwrap()
            .get("gauges")
            .expect("registry has gauges");
        for name in ["queue_depth", "shed_rate"] {
            assert!(gauges.get(name).is_some(), "missing gauge {name}");
        }
        let counters = report.get("registry").unwrap().get("counters").unwrap();
        assert!(counters.get("jobs_submitted").is_some());
        let labels: Vec<String> = out
            .session
            .tracer
            .tracks()
            .iter()
            .map(|t| t.label())
            .collect();
        assert!(
            labels.iter().any(|l| l.starts_with("serve dev")),
            "{labels:?}"
        );
    }

    /// `--host` merges a real wall-clock run into the same timeline: the
    /// `wall worker N` tracks join the simulated-time tracks (the merged
    /// trace still self-validates inside `profile`), the derived gang
    /// metrics land in the registry, and the standalone host profile
    /// document is emitted.
    #[test]
    fn host_profile_merges_wall_tracks() {
        let req = ProfileRequest {
            case: parse_case("iso2d").unwrap(),
            mode: RunMode::Rtm,
            device: DeviceChoice::K40,
            steps: Some(10),
            serve: false,
            host: true,
        };
        let out = profile(&req).expect("host profile runs");
        let labels: Vec<String> = out
            .session
            .tracer
            .tracks()
            .iter()
            .map(|t| t.label())
            .collect();
        // Both clock domains on one timeline.
        assert!(
            labels.iter().any(|l| l.starts_with("wall worker")),
            "{labels:?}"
        );
        assert!(labels.iter().any(|l| l == "host"), "{labels:?}");

        let hp = out.host_profile_json.expect("host profile emitted");
        let doc = serde_json::from_str(&hp).expect("valid host profile JSON");
        assert_eq!(doc.get("clock").unwrap().as_str(), Some("wall"));
        assert!(doc.get("report").unwrap().get("utilization").is_some());
        assert!(!doc.get("slots").unwrap().as_array().unwrap().is_empty());

        let report = serde_json::from_str(&out.report_json).expect("valid report JSON");
        assert!(report.get("host").unwrap().get("wall_s").is_some());
        let gauges = report.get("registry").unwrap().get("gauges").unwrap();
        assert!(gauges.get("host_utilization").is_some());
    }

    /// Observability must not perturb the modeled timings: the observed
    /// run's breakdown equals the plain pricing.
    #[test]
    fn observed_breakdown_matches_plain() {
        let case = parse_case("ac2d").unwrap();
        let mut w = table_workload(&case);
        w.steps = 15;
        let cfg = OptimizationConfig::default();
        let plain = rtm_core::gpu_time::rtm_time(
            &case,
            &cfg,
            DeviceChoice::K40.compiler(),
            Cluster::CrayXc30,
            &w,
        )
        .unwrap();
        let obs = Arc::new(ObsSession::new());
        let observed = rtm_time_obs(
            &case,
            &cfg,
            DeviceChoice::K40.compiler(),
            Cluster::CrayXc30,
            &w,
            Some(obs),
        )
        .unwrap();
        assert_eq!(plain.breakdown, observed.breakdown);
    }
}
