//! Directive verification over the twelve paper cases.
//!
//! Runs the `acc-verify` static tier over the modeling and RTM programs of
//! every seismic case at table scale and renders the lint report the
//! `accverify` binary (and CI) consumes. The paper's best configuration
//! must come back clean — that is the acceptance gate — while the naive
//! configuration reproduces the Section 5 findings as diagnostics.

use crate::cases::table_workload;
use acc_verify::diag::report_json;
use acc_verify::{Diagnostic, Severity, VerifyContext};
use openacc_sim::{Compiler, PgiVersion};
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase};
use rtm_core::verify::case_programs;

/// One verified program's findings.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Program label (`"ISOTROPIC 2D modeling"`, …).
    pub program: String,
    /// All diagnostics, ordered as [`acc_verify::verify_program`] returns.
    pub diagnostics: Vec<Diagnostic>,
}

impl CaseReport {
    /// Diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        acc_verify::count_at(&self.diagnostics, severity)
    }

    /// Does this report fail under the given policy?
    pub fn fails(&self, deny_warnings: bool) -> bool {
        acc_verify::fails(&self.diagnostics, deny_warnings)
    }
}

/// The verification context the tables use: the paper's best-performing
/// toolchain (PGI 14.6 on the K40 cluster).
pub fn table_context() -> VerifyContext {
    VerifyContext {
        compiler: Compiler::Pgi(PgiVersion::V14_6),
        device: Cluster::CrayXc30.device(),
    }
}

/// Verify the 12 cases (6 propagators × {modeling, RTM}) at table scale
/// under `config`.
pub fn verify_all_cases(config: &OptimizationConfig) -> Vec<CaseReport> {
    let ctx = table_context();
    let mut reports = Vec::with_capacity(12);
    for case in SeismicCase::all() {
        let w = table_workload(&case);
        for prog in case_programs(&case, config, ctx.compiler, &w) {
            let diagnostics = acc_verify::verify_program(&prog, &ctx);
            reports.push(CaseReport {
                program: prog.name,
                diagnostics,
            });
        }
    }
    reports
}

/// Render the report table plus every diagnostic line.
pub fn report_table(reports: &[CaseReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>6} {:>8} {:>5}  verdict\n",
        "program", "errors", "warnings", "info"
    ));
    out.push_str(&"-".repeat(56));
    out.push('\n');
    for r in reports {
        let errors = r.count(Severity::Error);
        let warnings = r.count(Severity::Warning);
        let info = r.count(Severity::Info);
        let verdict = if errors > 0 {
            "FAIL"
        } else if warnings > 0 {
            "warn"
        } else {
            "clean"
        };
        out.push_str(&format!(
            "{:<24} {errors:>6} {warnings:>8} {info:>5}  {verdict}\n",
            r.program
        ));
    }
    for r in reports {
        for d in &r.diagnostics {
            out.push_str(&format!("  {}: {}\n", r.program, d.render()));
        }
    }
    out
}

/// The machine-readable report: a JSON array with one object per program.
pub fn reports_json(reports: &[CaseReport]) -> String {
    let items: Vec<String> = reports
        .iter()
        .map(|r| report_json(&r.program, &r.diagnostics))
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_verify::Rule;

    #[test]
    fn twelve_programs_and_best_config_is_clean() {
        let reports = verify_all_cases(&OptimizationConfig::default());
        assert_eq!(reports.len(), 12);
        for r in &reports {
            assert_eq!(
                r.count(Severity::Error),
                0,
                "{}: {:?}",
                r.program,
                r.diagnostics
            );
            assert_eq!(
                r.count(Severity::Warning),
                0,
                "{}: {:?}",
                r.program,
                r.diagnostics
            );
            assert!(!r.fails(true));
        }
        let labels: std::collections::HashSet<_> =
            reports.iter().map(|r| r.program.as_str()).collect();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn naive_config_reproduces_section5_findings() {
        let reports = verify_all_cases(&OptimizationConfig::naive());
        let all: Vec<&Diagnostic> = reports.iter().flat_map(|r| &r.diagnostics).collect();
        // Figure 13: the direct acoustic-2D sweep is uncoalesced.
        assert!(all
            .iter()
            .any(|d| d.rule == Rule::UncoalescedAccess && d.severity == Severity::Warning));
        // Figure 10/12: the fused pressure kernel's register pressure.
        assert!(all.iter().any(|d| d.rule == Rule::RegisterPressure));
        // Still no correctness errors: naive is slow, not wrong.
        assert!(reports.iter().all(|r| r.count(Severity::Error) == 0));
        assert!(reports.iter().any(|r| r.fails(true)));
    }

    #[test]
    fn table_and_json_render() {
        let reports = verify_all_cases(&OptimizationConfig::default());
        let table = report_table(&reports);
        assert!(table.contains("ISOTROPIC 2D modeling"));
        assert!(table.contains("ELASTIC 3D RTM"));
        assert!(table.contains("clean"));
        let json = reports_json(&reports);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"program\"").count(), 12);
        assert!(json.contains("\"errors\":0"));
    }
}
