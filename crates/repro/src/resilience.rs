//! Resilience-overhead study: what seeded faults cost a survey, as a
//! function of the device mean-time-to-interrupt (MTTI).
//!
//! Production RTM occupies a cluster long enough that device loss,
//! transient allocation failures and stragglers all fire (the fault
//! processes of `accel_sim::fault`). The resilient executor keeps the
//! image bitwise-identical; the *price* is retried work, backoff sleep and
//! rescheduled shots. This module sweeps the MTTI and aggregates that
//! price over many seeds, plus the Young-rule checkpoint interval each
//! MTTI implies, and measures checkpoint-restart recompute directly on the
//! real 2D RTM driver.

use accel_sim::fault::{FaultPlan, FaultRates};
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::Medium2;
use rtm_core::resilient::{
    optimal_checkpoint_interval, plan_survey, run_rtm_with_restart, RetryPolicy,
};
use rtm_core::shot_parallel::Shot;
use seismic_source::Wavelet;

/// One MTTI point of the overhead sweep, aggregated over seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct MttiRow {
    /// Device-lost mean time to interrupt, seconds.
    pub mtti_s: f64,
    /// Mean overhead fraction (wasted + backoff over total simulated time).
    pub overhead_frac: f64,
    /// Mean shots rescheduled off their nominal rank.
    pub rescheduled: f64,
    /// Mean ranks lost per survey.
    pub dead_ranks: f64,
    /// Surveys that completed (≥ 1 rank survived) out of the seeds tried.
    pub completed: usize,
    /// Seeds tried.
    pub seeds: usize,
    /// Young's optimal checkpoint interval `√(2·C·MTTI)` for this MTTI.
    pub young_interval_s: f64,
}

/// Sweep survey overhead against MTTI: for each MTTI, schedule the same
/// survey under `seeds.len()` independent fault plans and aggregate the
/// resilience accounting. Surveys that lose every rank count as not
/// completed and contribute nothing to the means. Deterministic.
pub fn overhead_vs_mtti(
    n_shots: usize,
    ranks: usize,
    shot_cost_s: f64,
    ckpt_cost_s: f64,
    mttis: &[f64],
    seeds: &[u64],
) -> Vec<MttiRow> {
    let policy = RetryPolicy::default();
    // Horizon: generous multiple of the fault-free makespan so reschedules
    // and their knock-on slowdowns fit inside the sampled window.
    let makespan = shot_cost_s * (n_shots as f64 / ranks as f64).ceil();
    let horizon = 6.0 * makespan;
    mttis
        .iter()
        .map(|&mtti| {
            let rates = FaultRates {
                device_lost_mtti_s: mtti,
                transient_oom_prob: 0.02,
                straggler_mtti_s: 4.0 * mtti,
                straggler_duration_s: shot_cost_s,
                straggler_slowdown: 1.5,
                ..FaultRates::none()
            };
            let mut over = 0.0;
            let mut resched = 0.0;
            let mut dead = 0.0;
            let mut completed = 0usize;
            for &seed in seeds {
                let plan = FaultPlan::generate(seed, ranks, horizon, rates);
                // Err means every rank was lost: survey abandoned.
                if let Ok(s) = plan_survey(n_shots, ranks, shot_cost_s, &plan, &policy) {
                    over += s.stats.overhead_frac();
                    resched += s.stats.rescheduled_shots as f64;
                    dead += s.stats.dead_ranks.len() as f64;
                    completed += 1;
                }
            }
            let n = completed.max(1) as f64;
            MttiRow {
                mtti_s: mtti,
                overhead_frac: over / n,
                rescheduled: resched / n,
                dead_ranks: dead / n,
                completed,
                seeds: seeds.len(),
                young_interval_s: optimal_checkpoint_interval(ckpt_cost_s, mtti),
            }
        })
        .collect()
}

/// One checkpoint-interval point of the restart study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartRow {
    /// Steps between stored forward states (`steps` = restart-from-zero).
    pub ckpt_every: usize,
    /// Forward steps executed including replay.
    pub forward_steps: usize,
    /// Steps replayed beyond the uninterrupted count.
    pub recompute: usize,
}

/// Measure checkpoint-restart recompute on the real 2D RTM driver: run the
/// same shot with an interrupt at `interrupt_step` under several
/// checkpoint intervals and report the replayed work. Every row's image is
/// bitwise-identical to the uninterrupted run (asserted by the tier-1
/// tests); only the recompute varies.
pub fn restart_recompute_rows(
    medium: &Medium2,
    acq: &Shot,
    wavelet: &Wavelet,
    steps: usize,
    interrupt_step: usize,
    intervals: &[usize],
) -> Vec<RestartRow> {
    let cfg = OptimizationConfig::default();
    intervals
        .iter()
        .map(|&ck| {
            let out = run_rtm_with_restart(
                medium,
                acq,
                wavelet,
                &cfg,
                steps,
                4,
                2,
                ck,
                &[interrupt_step],
            )
            .expect("valid restart configuration");
            RestartRow {
                ckpt_every: ck,
                forward_steps: out.forward_steps_executed,
                recompute: out.forward_steps_executed - steps,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_falls_as_mtti_grows() {
        let seeds: Vec<u64> = (0..40).collect();
        let rows = overhead_vs_mtti(24, 4, 10.0, 2.0, &[40.0, 5000.0], &seeds);
        assert_eq!(rows.len(), 2);
        // Harsh faults cost real overhead; near-infinite MTTI costs ~none.
        assert!(rows[0].overhead_frac > rows[1].overhead_frac);
        assert!(rows[1].dead_ranks < rows[0].dead_ranks);
        // Young interval grows with the square root of the MTTI.
        let ratio = rows[1].young_interval_s / rows[0].young_interval_s;
        assert!((ratio - (5000.0f64 / 40.0).sqrt()).abs() < 1e-9);
        // Determinism: the sweep is a pure function of its inputs.
        assert_eq!(
            rows,
            overhead_vs_mtti(24, 4, 10.0, 2.0, &[40.0, 5000.0], &seeds)
        );
    }

    #[test]
    fn recompute_shrinks_with_denser_checkpoints() {
        use seismic_grid::cfl::stable_dt;
        use seismic_model::builder::{acoustic2_layered, Layer};
        use seismic_model::{extent2, Geometry};
        use seismic_pml::CpmlAxis;
        use seismic_source::Acquisition2;

        let n = 40;
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3000.0, h, 0.6);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: n / 2,
                vp: 3000.0,
                vs: 0.0,
                rho: 2400.0,
            },
        ];
        let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
        let m = Medium2::Acoustic {
            model,
            cpml: [c.clone(), c],
        };
        let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 4);
        let w = Wavelet::ricker(20.0);

        let steps = 80;
        let rows = restart_recompute_rows(&m, &acq, &w, steps, 70, &[10, 40, steps]);
        // Denser checkpoints → monotonically less replay; from-zero replays
        // everything up to the interrupt.
        assert!(rows[0].recompute <= rows[1].recompute);
        assert!(rows[1].recompute <= rows[2].recompute);
        assert_eq!(rows[2].recompute, 70);
        // Crash at 70 with checkpoints every 10: the interrupt fires before
        // the step-70 state is stored, so replay runs from step 60.
        assert_eq!(rows[0].recompute, 10);
    }
}
