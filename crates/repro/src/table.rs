//! Table 3 / Table 4 regeneration and paper-vs-model comparison.

use crate::cases::table_workload;
use crate::paper::{self, PaperRow};
use openacc_sim::{Compiler, PgiVersion};
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase};
use rtm_core::cpu_time::{modeling_cpu_time, rtm_cpu_time, CpuBreakdown};
use rtm_core::gpu_time::{modeling_time, rtm_time, GpuRun};
use seismic_model::footprint::{Dims, Formulation};

/// Which table to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Table 3: forward modeling.
    Modeling,
    /// Table 4: Reverse Time Migration.
    Rtm,
}

/// The compiler used for each table column.
pub const CRAY_COMPILER: Compiler = Compiler::Cray;
/// PGI on the CRAY cluster (CUDA 5.5 per Section 6).
pub const PGI_ON_CRAY: Compiler = Compiler::Pgi(PgiVersion::V14_6);
/// PGI on the IBM cluster (CUDA 5.0 per Section 6).
pub const PGI_ON_IBM: Compiler = Compiler::Pgi(PgiVersion::V14_3);

fn gpu_run(
    kind: TableKind,
    case: &SeismicCase,
    compiler: Compiler,
    cluster: Cluster,
) -> Option<GpuRun> {
    // Reproduce the paper's Table 4 `X`: the CRAY-compiled elastic 3D RTM
    // binary was not available (only the PGI build ran on the K40).
    if kind == TableKind::Rtm
        && compiler == CRAY_COMPILER
        && case.formulation == Formulation::Elastic
        && case.dims == Dims::Three
    {
        return None;
    }
    let config = OptimizationConfig::default();
    let w = table_workload(case);
    let r = match kind {
        TableKind::Modeling => modeling_time(case, &config, compiler, cluster, &w),
        TableKind::Rtm => rtm_time(case, &config, compiler, cluster, &w),
    };
    r.ok()
}

fn cpu_baseline(kind: TableKind, case: &SeismicCase, cluster: Cluster) -> CpuBreakdown {
    let w = table_workload(case);
    match kind {
        TableKind::Modeling => modeling_cpu_time(case, cluster, &w),
        TableKind::Rtm => rtm_cpu_time(case, cluster, &w),
    }
}

/// Compute the modeled row for one case.
pub fn model_row(kind: TableKind, case: &SeismicCase) -> PaperRow {
    let cray_cpu = cpu_baseline(kind, case, Cluster::CrayXc30);
    let ibm_cpu = cpu_baseline(kind, case, Cluster::Ibm);

    let cray_cray = gpu_run(kind, case, CRAY_COMPILER, Cluster::CrayXc30);
    let cray_pgi = gpu_run(kind, case, PGI_ON_CRAY, Cluster::CrayXc30);
    let ibm_pgi = gpu_run(kind, case, PGI_ON_IBM, Cluster::Ibm);

    let total = |r: &Option<GpuRun>| r.as_ref().map(|g| g.breakdown.total_s);
    let kernel = |r: &Option<GpuRun>| r.as_ref().map(|g| g.breakdown.kernel_s);
    let sp = |t: Option<f64>, cpu: f64| t.map(|t| cpu / t);

    PaperRow {
        formulation: case.formulation,
        dims: case.dims,
        cray_total_cray: total(&cray_cray),
        cray_total_pgi: total(&cray_pgi),
        cray_speedup_cray: sp(total(&cray_cray), cray_cpu.total_s()),
        cray_speedup_pgi: sp(total(&cray_pgi), cray_cpu.total_s()),
        cray_kernel_cray: kernel(&cray_cray),
        cray_kernel_pgi: kernel(&cray_pgi),
        cray_kspeedup_cray: sp(kernel(&cray_cray), cray_cpu.kernel_s),
        cray_kspeedup_pgi: sp(kernel(&cray_pgi), cray_cpu.kernel_s),
        ibm_total: total(&ibm_pgi),
        ibm_speedup: sp(total(&ibm_pgi), ibm_cpu.total_s()),
        ibm_kernel: kernel(&ibm_pgi),
        ibm_kspeedup: sp(kernel(&ibm_pgi), ibm_cpu.kernel_s),
    }
}

/// The full modeled table, one row per seismic case.
pub fn model_table(kind: TableKind) -> Vec<PaperRow> {
    SeismicCase::all()
        .iter()
        .map(|c| model_row(kind, c))
        .collect()
}

fn cell(v: Option<f64>) -> String {
    match v {
        Some(x) if x >= 100.0 => format!("{x:7.0}"),
        Some(x) if x >= 10.0 => format!("{x:7.1}"),
        Some(x) => format!("{x:7.2}"),
        None => format!("{:>7}", "X"),
    }
}

/// Render a paper-vs-model comparison table.
pub fn render_comparison(kind: TableKind) -> String {
    let modeled = model_table(kind);
    let reference = match kind {
        TableKind::Modeling => paper::table3(),
        TableKind::Rtm => paper::table4(),
    };
    let title = match kind {
        TableKind::Modeling => "Table 3: Seismic modeling timing and speedup",
        TableKind::Rtm => "Table 4: RTM timing and speedup",
    };
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(
        "(each cell: modeled value / paper value; times in seconds, speedups vs full-socket MPI)\n\n",
    );
    out.push_str(&format!(
        "{:14} | {:>15} {:>15} {:>15} {:>15} | {:>15} {:>15}\n",
        "",
        "CRAYcl total",
        "CRAYcl speedup",
        "CRAYcl kernel",
        "CRAYcl kspeed",
        "IBM total",
        "IBM speedup"
    ));
    out.push_str(&format!(
        "{:14} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} | {:>15} {:>15}\n",
        "Model", "CRAY", "PGI", "CRAY", "PGI", "CRAY", "PGI", "CRAY", "PGI", "PGI", "PGI"
    ));
    for (m, p) in modeled.iter().zip(reference.iter()) {
        let case = SeismicCase {
            formulation: m.formulation,
            dims: m.dims,
        };
        out.push_str(&format!("{:14} |", case.label()));
        for (mv, pv) in [
            (m.cray_total_cray, p.cray_total_cray),
            (m.cray_total_pgi, p.cray_total_pgi),
            (m.cray_speedup_cray, p.cray_speedup_cray),
            (m.cray_speedup_pgi, p.cray_speedup_pgi),
            (m.cray_kernel_cray, p.cray_kernel_cray),
            (m.cray_kernel_pgi, p.cray_kernel_pgi),
            (m.cray_kspeedup_cray, p.cray_kspeedup_cray),
            (m.cray_kspeedup_pgi, p.cray_kspeedup_pgi),
            (m.ibm_total, p.ibm_total),
            (m.ibm_speedup, p.ibm_speedup),
            (m.ibm_kernel, p.ibm_kernel),
            (m.ibm_kspeedup, p.ibm_kspeedup),
        ] {
            out.push_str(&format!(" {}/{}", cell(mv).trim(), cell(pv).trim()));
        }
        out.push('\n');
    }
    out
}

/// One named shape criterion and whether the model satisfies it.
pub type ShapeCheck = (&'static str, bool);

/// The qualitative claims of Table 3 that the reproduction must preserve.
pub fn table3_shape_checks() -> Vec<ShapeCheck> {
    let t = model_table(TableKind::Modeling);
    let (iso2, ac2, el2, iso3, ac3, el3) = (&t[0], &t[1], &t[2], &t[3], &t[4], &t[5]);
    vec![
        (
            "elastic 3D is the best PGI-on-CRAY modeling speedup",
            el3.cray_speedup_pgi.unwrap_or(0.0)
                > iso3
                    .cray_speedup_pgi
                    .unwrap_or(0.0)
                    .max(ac3.cray_speedup_pgi.unwrap_or(0.0)),
        ),
        (
            "isotropic 3D is the worst 3D modeling speedup (memory-bound)",
            iso3.cray_speedup_pgi.unwrap_or(9.9) < ac3.cray_speedup_pgi.unwrap_or(0.0),
        ),
        (
            "elastic 3D OOMs on Fermi (X) but runs on Kepler",
            el3.ibm_total.is_none() && el3.cray_total_pgi.is_some(),
        ),
        (
            "kernel speedup >= total speedup (transfers only hurt)",
            t.iter()
                .all(|r| match (r.cray_kspeedup_pgi, r.cray_speedup_pgi) {
                    (Some(k), Some(s)) => k >= s * 0.95,
                    _ => true,
                }),
        ),
        (
            "acoustic 3D GPU time is about half of isotropic 3D (paper: 2x)",
            {
                let r = iso3.cray_total_pgi.unwrap_or(0.0) / ac3.cray_total_pgi.unwrap_or(1.0);
                r > 1.3 && r < 2.8
            },
        ),
        (
            "PGI beats CRAY compiler on every total (Section 6.1)",
            t.iter()
                .all(|r| match (r.cray_total_cray, r.cray_total_pgi) {
                    (Some(c), Some(p)) => c > p,
                    _ => true,
                }),
        ),
        (
            "2D cases give small speedups (lack of computations)",
            [iso2, ac2, el2]
                .iter()
                .all(|r| r.cray_speedup_pgi.unwrap_or(9.9) < 2.0),
        ),
    ]
}

/// The qualitative claims of Table 4 that the reproduction must preserve.
pub fn table4_shape_checks() -> Vec<ShapeCheck> {
    let t = model_table(TableKind::Rtm);
    let m = model_table(TableKind::Modeling);
    let (iso2, ac3, el3) = (&t[0], &t[4], &t[5]);
    let iso3 = &t[3];
    vec![
        (
            "acoustic 3D RTM speedup on IBM is large (paper: 10.2x)",
            ac3.ibm_speedup.unwrap_or(0.0) > 4.0,
        ),
        (
            "acoustic 3D RTM speedup on CRAY stays small (paper: 1.3x)",
            ac3.cray_speedup_pgi.unwrap_or(9.9) < 2.5,
        ),
        (
            "IBM RTM speedup far exceeds CRAY for acoustic 3D",
            ac3.ibm_speedup.unwrap_or(0.0) > 3.0 * ac3.cray_speedup_pgi.unwrap_or(9.9),
        ),
        (
            "isotropic RTM total speedups dip below 1 (consistency updates)",
            iso2.cray_speedup_pgi.unwrap_or(9.9) < 1.0
                && iso3.cray_speedup_pgi.unwrap_or(9.9) < 1.0,
        ),
        (
            "elastic 3D RTM: X on CRAY build and on Fermi, runs under PGI/K40",
            el3.cray_total_cray.is_none()
                && el3.ibm_total.is_none()
                && el3.cray_total_pgi.is_some(),
        ),
        (
            "RTM costs more than modeling for every available case",
            t.iter()
                .zip(m.iter())
                .all(|(r, f)| match (r.cray_total_pgi, f.cray_total_pgi) {
                    (Some(r_), Some(f_)) => r_ > f_,
                    _ => true,
                }),
        ),
        (
            "isotropic RTM is transfer-bound: kernel speedup >> total speedup",
            iso3.cray_kspeedup_pgi.unwrap_or(0.0) > 1.5 * iso3.cray_speedup_pgi.unwrap_or(9.9),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_rows_have_expected_x_cells() {
        let t3 = model_table(TableKind::Modeling);
        assert!(t3[5].ibm_total.is_none());
        assert!(t3[5].cray_total_pgi.is_some());
        let t4 = model_table(TableKind::Rtm);
        assert!(t4[5].cray_total_cray.is_none());
        assert!(t4[5].ibm_total.is_none());
    }

    #[test]
    fn render_includes_all_rows() {
        let s = render_comparison(TableKind::Modeling);
        for label in ["ISOTROPIC 2D", "ACOUSTIC 3D", "ELASTIC 3D"] {
            assert!(s.contains(label), "missing {label}:\n{s}");
        }
        assert!(s.contains("/X") || s.contains("X/"));
    }
}
