//! Random-boundary remodeling vs Young-interval checkpointing: the memory
//! and time comparison behind the checkpoint-free migration subsystem.
//!
//! For each of the twelve table cases (six seismic cases on each cluster)
//! the row reports, at the production workload of [`crate::cases`]:
//!
//! * **memory** — the per-component device footprint of both strategies
//!   from [`seismic_model::footprint::rtm_breakdown`]: a Young-interval
//!   checkpoint schedule (slots from `√(2·C·MTTI)` with the checkpoint
//!   store priced as a PCIe transfer of one propagation state and the
//!   per-step time taken from the cluster's timing model) against the
//!   random-boundary halo (zero snapshots, zero checkpoints, one extra
//!   co-resident propagation set plus the perturbed parameter strip),
//! * **simulated time** — the snapshot-based RTM total plus one extra
//!   forward sweep of kernel work (every step is replayed exactly once
//!   under checkpointing) against the [`rtm_core::gpu_time`]
//!   random-boundary estimate (forward + reversed source + receiver
//!   propagation, no snapshot traffic),
//! * **wall time** — what this harness spent producing the row. Only the
//!   JSON artifact carries it; the rendered table omits the column so the
//!   binary's stdout stays byte-identical across runs.
//!
//! Cases that do not fit the cluster's device render as `X`, exactly like
//! the paper's tables (the 6 GB M2090 cannot co-residence two elastic-3D
//! propagation sets; that is the real price of remodeling and the table
//! shows it).

use crate::cases::table_workload;
use crate::table::{CRAY_COMPILER, PGI_ON_IBM};
use openacc_sim::Compiler;
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase, Workload};
use rtm_core::gpu_time::{modeling_time, rand_bound_time, rtm_time};
use rtm_core::resilient::optimal_checkpoint_interval;
use seismic_grid::STENCIL_HALF;
use seismic_model::footprint::{
    modeling_array_count, rtm_breakdown, Dims, Formulation, MigrationStrategy, RtmBreakdown,
};

/// Nominal device mean-time-to-interrupt used to size the Young interval
/// (matches the middle of the resilience sweep: 4 hours).
pub const YOUNG_MTTI_S: f64 = 14_400.0;

/// Effective host↔device bandwidth used to price one checkpoint store,
/// bytes per second (conservative PCIe gen-2/3 effective rate).
pub const CKPT_STORE_BYTES_PER_S: f64 = 8.0e9;

/// One row of the comparison: a seismic case on a cluster.
#[derive(Debug, Clone)]
pub struct RandBoundRow {
    /// Case label, e.g. `ISOTROPIC 2D`.
    pub case: String,
    /// Cluster label.
    pub cluster: String,
    /// Young-interval checkpoint slots the MTTI implies (≥ 1).
    pub young_slots: usize,
    /// Checkpointed-strategy footprint.
    pub ckpt: RtmBreakdown,
    /// Random-boundary footprint.
    pub rand: RtmBreakdown,
    /// Snapshot bytes a full dense forward pass would have stored — the
    /// bytes the remodeling path avoids (the `checkpoint_bytes_avoided`
    /// counter of an observed run).
    pub checkpoint_bytes_avoided: u64,
    /// Simulated checkpointed-RTM time: snapshot RTM plus one replayed
    /// forward sweep of kernel work. `None` when the case does not fit.
    pub ckpt_time_s: Option<f64>,
    /// Simulated random-boundary time. `None` when the two co-resident
    /// propagation sets do not fit the device.
    pub rand_time_s: Option<f64>,
    /// Wall-clock milliseconds this harness spent on the row.
    pub wall_ms: f64,
}

/// Boundary strip width (grid points) the comparison charges the
/// random-boundary path for; matches the drivers' default-scale halos.
pub const BOUNDARY_WIDTH: usize = 20;

fn cluster_compiler(cluster: Cluster) -> Compiler {
    match cluster {
        Cluster::CrayXc30 => CRAY_COMPILER,
        Cluster::Ibm => PGI_ON_IBM,
    }
}

/// Young-interval slot count for one case: `√(2·C·MTTI)` seconds between
/// stored states, with `C` the PCIe price of one propagation state and the
/// per-step time taken from the simulated run. Falls back to the
/// memory-optimal `√(steps/(arrays·snap_period))` rule when the case does
/// not fit the device (no simulated time exists to convert seconds into
/// steps).
pub fn young_slots(f: Formulation, d: Dims, w: &Workload, sim_total_s: Option<f64>) -> usize {
    let arrays = modeling_array_count(f, d);
    let state_bytes = arrays as f64 * w.alloc_points(STENCIL_HALF) as f64 * 4.0;
    match sim_total_s {
        Some(total_s) if total_s > 0.0 => {
            let t_step = total_s / w.steps.max(1) as f64;
            let ckpt_cost_s = state_bytes / CKPT_STORE_BYTES_PER_S;
            let interval_s = optimal_checkpoint_interval(ckpt_cost_s, YOUNG_MTTI_S);
            let interval_steps = (interval_s / t_step).floor().max(1.0) as usize;
            w.steps.div_ceil(interval_steps).clamp(1, w.steps)
        }
        _ => {
            let opt = (w.steps as f64 / (arrays * w.snap_period.max(1)) as f64).sqrt();
            (opt.ceil() as usize).clamp(1, w.steps)
        }
    }
}

/// Compute one row.
pub fn rand_bound_row(case: &SeismicCase, cluster: Cluster) -> RandBoundRow {
    let started = std::time::Instant::now();
    let config = OptimizationConfig::default();
    let compiler = cluster_compiler(cluster);
    let w = table_workload(case);
    let (f, d) = (case.formulation, case.dims);
    let points = w.alloc_points(STENCIL_HALF) as usize;
    let n = [w.nx, w.ny, w.nz];

    let rtm = rtm_time(case, &config, compiler, cluster, &w).ok();
    let fwd = modeling_time(case, &config, compiler, cluster, &w).ok();
    let rb = rand_bound_time(case, &config, compiler, cluster, &w).ok();

    // Checkpointing replays every forward step exactly once during the
    // backward phase; its simulated price is the snapshot RTM plus one
    // extra forward sweep of kernel work.
    let ckpt_time_s = match (&rtm, &fwd) {
        (Some(r), Some(m)) => Some(r.breakdown.total_s + m.breakdown.kernel_s),
        _ => None,
    };

    let slots = young_slots(f, d, &w, ckpt_time_s);
    let ckpt = rtm_breakdown(
        f,
        d,
        n,
        points,
        MigrationStrategy::Checkpointed {
            slots,
            steps: w.steps,
            snap_period: w.snap_period,
        },
    );
    let rand = rtm_breakdown(
        f,
        d,
        n,
        points,
        MigrationStrategy::RandomBoundary {
            width: BOUNDARY_WIDTH,
        },
    );
    let n_snaps = w.steps.div_ceil(w.snap_period.max(1)) as u64;
    RandBoundRow {
        case: case.label(),
        cluster: cluster.label().to_string(),
        young_slots: slots,
        ckpt,
        rand,
        checkpoint_bytes_avoided: n_snaps * points as u64 * 4,
        ckpt_time_s,
        rand_time_s: rb.map(|g| g.breakdown.total_s),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// All twelve rows: the six seismic cases on both clusters.
pub fn rand_bound_rows() -> Vec<RandBoundRow> {
    let mut rows = Vec::with_capacity(12);
    for cluster in [Cluster::CrayXc30, Cluster::Ibm] {
        for case in SeismicCase::all() {
            rows.push(rand_bound_row(&case, cluster));
        }
    }
    rows
}

/// The two representative CI smoke rows: the cheapest 2D case and a 3D
/// case, one per cluster.
pub fn rand_bound_smoke_rows() -> Vec<RandBoundRow> {
    let iso2 = SeismicCase {
        formulation: Formulation::Isotropic,
        dims: Dims::Two,
    };
    let ac3 = SeismicCase {
        formulation: Formulation::Acoustic,
        dims: Dims::Three,
    };
    vec![
        rand_bound_row(&iso2, Cluster::CrayXc30),
        rand_bound_row(&ac3, Cluster::Ibm),
    ]
}

/// Table invariants — the gate the `rand_bound` binary (and CI) enforces.
/// Returns human-readable violations; empty means the table is sound.
pub fn rand_bound_violations(rows: &[RandBoundRow]) -> Vec<String> {
    let mut v = Vec::new();
    for r in rows {
        if r.rand.snapshot_bytes != 0 {
            v.push(format!(
                "{} / {}: random-boundary path stores {} snapshot bytes (must be 0)",
                r.case, r.cluster, r.rand.snapshot_bytes
            ));
        }
        if r.rand.total() >= r.ckpt.total() {
            v.push(format!(
                "{} / {}: random-boundary footprint {} B is not below checkpointing {} B",
                r.case,
                r.cluster,
                r.rand.total(),
                r.ckpt.total()
            ));
        }
        if r.checkpoint_bytes_avoided == 0 {
            v.push(format!(
                "{} / {}: zero checkpoint bytes avoided",
                r.case, r.cluster
            ));
        }
    }
    v
}

/// The machine-readable artifact the binary writes (and CI uploads).
pub fn rand_bound_rows_json(rows: &[RandBoundRow]) -> serde_json::Value {
    let out: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            let mut o = serde_json::Map::new();
            o.insert("case", r.case.as_str());
            o.insert("cluster", r.cluster.as_str());
            o.insert("young_slots", r.young_slots);
            o.insert("ckpt_field_bytes", r.ckpt.field_bytes);
            o.insert("ckpt_snapshot_bytes", r.ckpt.snapshot_bytes);
            o.insert("ckpt_total_bytes", r.ckpt.total());
            o.insert("rand_field_bytes", r.rand.field_bytes);
            o.insert("rand_snapshot_bytes", r.rand.snapshot_bytes);
            o.insert("rand_boundary_bytes", r.rand.boundary_bytes);
            o.insert("rand_total_bytes", r.rand.total());
            o.insert("checkpoint_bytes_avoided", r.checkpoint_bytes_avoided);
            o.insert("ckpt_time_s", serde_json::Value::from(r.ckpt_time_s));
            o.insert("rand_time_s", serde_json::Value::from(r.rand_time_s));
            o.insert("wall_ms", r.wall_ms);
            serde_json::Value::Object(o)
        })
        .collect();
    serde_json::Value::from(out)
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}

fn time_cell(v: Option<f64>) -> String {
    match v {
        Some(x) if x >= 100.0 => format!("{x:8.0}"),
        Some(x) => format!("{x:8.1}"),
        None => format!("{:>8}", "X"),
    }
}

/// Render the comparison as the aligned text table the binary prints.
pub fn render_rand_bound_table(rows: &[RandBoundRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Random-boundary remodeling vs Young-interval checkpointing\n\
         (memory in MB; times simulated seconds; X = does not fit device)\n\n",
    );
    out.push_str(&format!(
        "  {:<13} {:<9} {:>5}  {:>9} {:>9} {:>9}  {:>8} {:>8}\n",
        "case", "cluster", "slots", "ckpt MB", "rand MB", "avoided", "ckpt s", "rand s"
    ));
    for r in rows {
        out.push_str(&format!(
            "  {:<13} {:<9} {:>5}  {:>9.1} {:>9.1} {:>9.1}  {} {}\n",
            r.case,
            r.cluster,
            r.young_slots,
            mb(r.ckpt.total()),
            mb(r.rand.total()),
            mb(r.checkpoint_bytes_avoided),
            time_cell(r.ckpt_time_s),
            time_cell(r.rand_time_s),
        ));
    }
    out.push_str(
        "\nEvery row keeps zero snapshot bytes on the random-boundary path;\n\
         the remodeling price is the co-resident source set (memory) and the\n\
         reversed forward sweep (kernel time).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion of the subsystem: across all twelve table
    /// cases, the random-boundary footprint is strictly below the
    /// Young-interval checkpointing footprint, with zero snapshot bytes.
    #[test]
    fn all_twelve_cases_beat_checkpoint_memory() {
        let rows = rand_bound_rows();
        assert_eq!(rows.len(), 12);
        assert_eq!(rand_bound_violations(&rows), Vec::<String>::new());
        // At least one case must show the co-residency limit (the honest
        // price of remodeling on the 6 GB M2090).
        assert!(
            rows.iter().any(|r| r.rand_time_s.is_none()),
            "expected at least one X cell on the small device"
        );
        // And the 2D cases all fit and produce times on both clusters.
        for r in rows.iter().filter(|r| r.case.ends_with("2D")) {
            assert!(r.ckpt_time_s.is_some() && r.rand_time_s.is_some(), "{r:?}");
        }
    }

    #[test]
    fn smoke_rows_are_sound_and_render() {
        let rows = rand_bound_smoke_rows();
        assert_eq!(rows.len(), 2);
        assert!(rand_bound_violations(&rows).is_empty());
        let txt = render_rand_bound_table(&rows);
        assert!(txt.contains("ISOTROPIC 2D"));
        assert!(txt.contains("ACOUSTIC 3D"));
        let json = serde_json::to_string(&rand_bound_rows_json(&rows));
        assert!(json.contains("\"rand_snapshot_bytes\":0"));
    }

    #[test]
    fn young_slots_scale_with_step_count() {
        let w = table_workload(&SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Two,
        });
        // Fallback rule: no simulated time.
        let s = young_slots(Formulation::Isotropic, Dims::Two, &w, None);
        assert!(s >= 1 && s <= w.steps);
        // Slower simulated runs imply shorter intervals in steps → more
        // slots.
        let fast = young_slots(Formulation::Isotropic, Dims::Two, &w, Some(10.0));
        let slow = young_slots(Formulation::Isotropic, Dims::Two, &w, Some(10_000.0));
        assert!(slow >= fast, "slow={slow} fast={fast}");
    }
}
