//! Vectorization certification over the twelve paper cases.
//!
//! Runs the `acc-verify` vectorization tier (static certificates plus the
//! dynamic lane replay) over the modeling and RTM programs of every
//! seismic case at table scale, renders the certified-widths table the
//! `accverify --vector` binary (and CI) consumes, and drives the seeded
//! mutation gate: three legality-breaking mutation classes — a distance-1
//! carried dependence, a misaligned store base, and a declared reduction
//! rewritten into a running recurrence — must each flip the verdict in
//! **both** tiers on every case, or the gate fails. A verifier that only
//! ever says "legal" proves nothing; the mutations are the evidence it can
//! say "illegal" for exactly the right reasons.

use crate::cases::table_workload;
use crate::verify::table_context;
use acc_verify::vectorize::{certify_program, lane_crosscheck, lane_crosscheck_program};
use acc_verify::{LaneCrossCheck, VectorCertificate, VectorLegality};
use rtm_core::case::{OptimizationConfig, SeismicCase};
use rtm_core::verify::{
    break_reduction_recurrence, break_vector_distance1, case_programs, misalign_base,
    publish_certificates,
};

/// One program's vectorization evidence: the per-loop certificates of the
/// static tier and the per-loop cross-checks against the lane replay.
#[derive(Debug, Clone)]
pub struct VectorReport {
    /// Program label (`"ISOTROPIC 2D modeling"`, …).
    pub program: String,
    /// One certificate per launch, in op order.
    pub certs: Vec<VectorCertificate>,
    /// One tier cross-check per launch, in the same order.
    pub crosschecks: Vec<LaneCrossCheck>,
}

impl VectorReport {
    /// Loops certified legal at width ≥ 2.
    pub fn certified_loops(&self) -> usize {
        self.certs.iter().filter(|c| c.certified_legal()).count()
    }

    /// The widest width certified anywhere in the program.
    pub fn max_width(&self) -> u32 {
        self.certs
            .iter()
            .filter(|c| c.certified_legal())
            .map(|c| c.width)
            .max()
            .unwrap_or(1)
    }

    /// The worst reduction ULP bound in the program (0 = all bitwise).
    pub fn max_ulp(&self) -> u32 {
        self.certs.iter().map(|c| c.ulp_bound).max().unwrap_or(0)
    }

    /// Every launch's static verdict agrees with its lane replay.
    pub fn tiers_agree(&self) -> bool {
        self.crosschecks.iter().all(LaneCrossCheck::agree)
    }

    /// The acceptance predicate: at least one loop certified legal, and
    /// the two tiers never disagree.
    pub fn passes(&self) -> bool {
        self.certified_loops() > 0 && self.tiers_agree()
    }
}

/// Certify the 12 cases (6 propagators × {modeling, RTM}) at table scale
/// under `config`, publishing every certificate into the host engine's
/// SIMD registry ([`rtm_core::verify::publish_certificates`]) so
/// `exec_host::tiles_for` picks the proven widths up.
pub fn certify_all_cases(config: &OptimizationConfig) -> Vec<VectorReport> {
    let ctx = table_context();
    let mut reports = Vec::with_capacity(12);
    for case in SeismicCase::all() {
        let w = table_workload(&case);
        for prog in case_programs(&case, config, ctx.compiler, &w) {
            let certs = certify_program(&prog, &ctx);
            publish_certificates(&certs);
            let crosschecks = lane_crosscheck_program(&prog);
            reports.push(VectorReport {
                program: prog.name,
                certs,
                crosschecks,
            });
        }
    }
    reports
}

/// One seeded mutation's outcome: did each tier flip its verdict?
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// Program label the mutation was seeded into.
    pub program: String,
    /// Mutation class label.
    pub class: &'static str,
    /// Op index mutated (`None` = no eligible launch — itself a failure:
    /// every program carries eligible loops by construction).
    pub op: Option<usize>,
    /// The static certificate changed in the expected direction.
    pub static_flipped: bool,
    /// The lane replay changed in the expected direction.
    pub dynamic_flipped: bool,
}

impl MutationOutcome {
    /// Both tiers caught the mutation.
    pub fn caught(&self) -> bool {
        self.op.is_some() && self.static_flipped && self.dynamic_flipped
    }
}

/// The three mutation class labels, in gate order.
pub const MUTATION_CLASSES: [&str; 3] = ["distance-1", "misaligned-base", "reduction-recurrence"];

/// Seed every mutation class into every case program and record whether
/// both tiers flip. `verify_all ⇒ 36 outcomes` (12 programs × 3 classes).
pub fn mutation_gate(config: &OptimizationConfig) -> Vec<MutationOutcome> {
    let ctx = table_context();
    let mut outcomes = Vec::with_capacity(36);
    for case in SeismicCase::all() {
        let w = table_workload(&case);
        let clean = case_programs(&case, config, ctx.compiler, &w);
        for class in MUTATION_CLASSES {
            // Fresh copies: each class mutates its own program.
            let mutated = case_programs(&case, config, ctx.compiler, &w);
            for (clean_prog, mut prog) in clean.iter().zip(mutated) {
                let op = match class {
                    "distance-1" => break_vector_distance1(&mut prog, 0),
                    "misaligned-base" => misalign_base(&mut prog, 0),
                    "reduction-recurrence" => break_reduction_recurrence(&mut prog, 0),
                    _ => unreachable!("unknown mutation class"),
                };
                let (static_flipped, dynamic_flipped) = match op {
                    None => (false, false),
                    Some(op) => {
                        let before = launch_at(clean_prog, op);
                        let after = launch_at(&prog, op);
                        let c0 = acc_verify::vectorize::certify_launch(op, before, &ctx);
                        let c1 = acc_verify::vectorize::certify_launch(op, after, &ctx);
                        let l0 = lane_crosscheck(before);
                        let l1 = lane_crosscheck(after);
                        if class == "misaligned-base" {
                            // Alignment does not change legality — the flip
                            // is the residue moving off 0 in both tiers
                            // (the replay must still agree on what it sees).
                            (
                                c0.align_residue == 0 && c1.align_residue == 1,
                                l1.agree() && l0.agree(),
                            )
                        } else {
                            (
                                c0.certified_legal() && !c1.legality.is_legal(),
                                lane_safe(&l0) && !lane_safe(&l1),
                            )
                        }
                    }
                };
                outcomes.push(MutationOutcome {
                    program: clean_prog.name.clone(),
                    class,
                    op,
                    static_flipped,
                    dynamic_flipped,
                });
            }
        }
    }
    outcomes
}

fn launch_at(p: &acc_verify::Program, op: usize) -> &acc_verify::Launch {
    match &p.ops[op] {
        acc_verify::Op::Launch(l) => l,
        other => panic!("op {op} is not a launch: {other:?}"),
    }
}

fn lane_safe(cc: &LaneCrossCheck) -> bool {
    cc.per_width.iter().all(|w| w.dynamic_safe)
}

/// The CI gate: every program certifies at least one legal loop with the
/// tiers agreeing, and every seeded mutation is caught by both tiers.
pub fn vector_gate(reports: &[VectorReport], mutations: &[MutationOutcome]) -> bool {
    reports.len() == 12
        && reports.iter().all(VectorReport::passes)
        && mutations.len() == 36
        && mutations.iter().all(MutationOutcome::caught)
}

/// Render the certified-widths table plus the mutation-gate table.
pub fn vector_table(reports: &[VectorReport], mutations: &[MutationOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>5} {:>9} {:>6} {:>4} {:>6}  verdict\n",
        "program", "loops", "certified", "widest", "ulp", "agree"
    ));
    out.push_str(&"-".repeat(68));
    out.push('\n');
    for r in reports {
        out.push_str(&format!(
            "{:<24} {:>5} {:>9} {:>6} {:>4} {:>6}  {}\n",
            r.program,
            r.certs.len(),
            r.certified_loops(),
            r.max_width(),
            r.max_ulp(),
            if r.tiers_agree() { "yes" } else { "NO" },
            if r.passes() { "pass" } else { "FAIL" }
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<24} {:<22} {:>4} {:>7} {:>8}  verdict\n",
        "program", "mutation", "op", "static", "dynamic"
    ));
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for m in mutations {
        out.push_str(&format!(
            "{:<24} {:<22} {:>4} {:>7} {:>8}  {}\n",
            m.program,
            m.class,
            m.op.map_or_else(|| "-".into(), |o| o.to_string()),
            if m.static_flipped { "flip" } else { "MISS" },
            if m.dynamic_flipped { "flip" } else { "MISS" },
            if m.caught() { "caught" } else { "ESCAPED" }
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The machine-readable report: certificates and mutation outcomes in one
/// JSON object (hand-rolled, like the lint report).
pub fn vector_json(reports: &[VectorReport], mutations: &[MutationOutcome]) -> String {
    let mut progs = Vec::with_capacity(reports.len());
    for r in reports {
        let loops: Vec<String> = r
            .certs
            .iter()
            .zip(r.crosschecks.iter())
            .map(|(c, cc)| {
                let witness = match &c.legality {
                    VectorLegality::Illegal { witness, .. } => {
                        format!(",\"witness\":\"{}\"", json_escape(witness))
                    }
                    _ => String::new(),
                };
                format!(
                    "{{\"kernel\":\"{}\",\"op\":{},\"width\":{},\"legality\":\"{}\",\
                     \"stride\":\"{}\",\"align_residue\":{},\"ulp_bound\":{},\
                     \"min_distance\":{},\"vectorized\":{},\"tiers_agree\":{}{witness}}}",
                    json_escape(&c.kernel),
                    c.op,
                    c.width,
                    c.legality.label(),
                    c.stride_class.label(),
                    c.align_residue,
                    c.ulp_bound,
                    c.min_distance
                        .map_or_else(|| "null".into(), |d| d.to_string()),
                    c.vectorized,
                    cc.agree(),
                )
            })
            .collect();
        progs.push(format!(
            "{{\"program\":\"{}\",\"certified\":{},\"widest\":{},\"passes\":{},\
             \"loops\":[{}]}}",
            json_escape(&r.program),
            r.certified_loops(),
            r.max_width(),
            r.passes(),
            loops.join(",")
        ));
    }
    let muts: Vec<String> = mutations
        .iter()
        .map(|m| {
            format!(
                "{{\"program\":\"{}\",\"class\":\"{}\",\"op\":{},\
                 \"static_flipped\":{},\"dynamic_flipped\":{},\"caught\":{}}}",
                json_escape(&m.program),
                m.class,
                m.op.map_or_else(|| "null".into(), |o| o.to_string()),
                m.static_flipped,
                m.dynamic_flipped,
                m.caught()
            )
        })
        .collect();
    format!(
        "{{\"gate\":{},\"certificates\":[{}],\"mutations\":[{}]}}",
        vector_gate(reports, mutations),
        progs.join(","),
        muts.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_reports_all_pass_and_gate_holds() {
        let cfg = OptimizationConfig::default();
        let reports = certify_all_cases(&cfg);
        assert_eq!(reports.len(), 12);
        for r in &reports {
            assert!(r.passes(), "{}: {:?}", r.program, r.certs);
            assert!(
                r.certs.iter().any(|c| c.ulp_bound > 0),
                "{}: no ULP-bounded reduction certified",
                r.program
            );
        }
        let mutations = mutation_gate(&cfg);
        assert_eq!(mutations.len(), 36);
        for m in &mutations {
            assert!(m.caught(), "mutation escaped: {m:?}");
        }
        assert!(vector_gate(&reports, &mutations));
    }

    #[test]
    fn certificates_reach_the_host_registry() {
        let reports = certify_all_cases(&OptimizationConfig::default());
        let legal = reports
            .iter()
            .flat_map(|r| &r.certs)
            .find(|c| c.certified_legal())
            .expect("a certified loop");
        let width = exec_host::simd::certified_width(&legal.kernel);
        assert!(width >= 2, "{}: width {width}", legal.kernel);
        assert!(exec_host::tiles_for(&legal.kernel, 1 << 16, 3, 9).vector_width >= 2);
    }

    #[test]
    fn table_and_json_render() {
        let cfg = OptimizationConfig::default();
        let reports = certify_all_cases(&cfg);
        let mutations = mutation_gate(&cfg);
        let table = vector_table(&reports, &mutations);
        assert!(table.contains("ISOTROPIC 2D modeling"));
        assert!(table.contains("reduction-recurrence"));
        assert!(table.contains("caught"));
        assert!(!table.contains("ESCAPED"));
        let json = vector_json(&reports, &mutations);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"gate\":true"));
        assert_eq!(json.matches("\"program\"").count(), 12 + 36);
        assert!(json.contains("\"legality\":\"legal-with-ulp\""));
    }
}
