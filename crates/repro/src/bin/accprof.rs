//! `accprof` — the simulated-profiler CLI.
//!
//! Runs one of the twelve seismic cases on one evaluation platform with
//! the full observability stack attached and writes four artifacts into
//! the output directory:
//!
//! * `nvprof_summary.txt` — Figure-14/15-style per-kernel/memcpy table,
//! * `metrics.txt` — `nvprof --metrics`-style per-kernel counters,
//! * `trace.json` — Chrome/Perfetto timeline (open in `ui.perfetto.dev`),
//! * `report.json` — machine-readable roll-up,
//! * `host_profile.json` (with `--host`) — the real wall-clock host-engine
//!   run's derived gang report and raw per-worker event streams; its
//!   `wall worker N` tracks also join `trace.json` next to the
//!   simulated-time tracks.
//!
//! ```text
//! accprof --case iso3d --device k40 [--mode rtm|modeling]
//!         [--steps N] [--serve] [--host] [--out DIR]
//! ```

use repro::accprof::{parse_case, profile, DeviceChoice, ProfileRequest, RunMode};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: accprof --case {iso2d|ac2d|el2d|iso3d|ac3d|el3d} \
--device {m2090|k40} [--mode {modeling|rtm}] [--steps N] [--serve] [--host] [--out DIR]";

struct Args {
    req: ProfileRequest,
    out: PathBuf,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut case = None;
    let mut device = None;
    let mut mode = RunMode::Rtm;
    let mut steps = None;
    let mut serve = false;
    let mut host = false;
    let mut out = PathBuf::from("accprof-out");
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--case" => {
                let v = value("--case")?;
                case = Some(parse_case(&v).ok_or_else(|| format!("unknown case '{v}'\n{USAGE}"))?);
            }
            "--device" => {
                let v = value("--device")?;
                device = Some(
                    DeviceChoice::parse(&v)
                        .ok_or_else(|| format!("unknown device '{v}'\n{USAGE}"))?,
                );
            }
            "--mode" => {
                let v = value("--mode")?;
                mode = RunMode::parse(&v).ok_or_else(|| format!("unknown mode '{v}'\n{USAGE}"))?;
            }
            "--steps" => {
                let v = value("--steps")?;
                steps = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--steps must be a positive integer, got '{v}'"))?,
                );
            }
            "--serve" => serve = true,
            "--host" => host = true,
            "--out" => out = PathBuf::from(value("--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let case = case.ok_or_else(|| format!("--case is required\n{USAGE}"))?;
    let device = device.ok_or_else(|| format!("--device is required\n{USAGE}"))?;
    Ok(Args {
        req: ProfileRequest {
            case,
            mode,
            device,
            steps,
            serve,
            host,
        },
        out,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let out = match profile(&args.req) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("accprof: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("accprof: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    for (name, content) in [
        ("nvprof_summary.txt", &out.nvprof_summary),
        ("metrics.txt", &out.metrics),
        ("trace.json", &out.trace_json),
        ("report.json", &out.report_json),
    ] {
        let path = args.out.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("accprof: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if let Some(hp) = &out.host_profile_json {
        let path = args.out.join("host_profile.json");
        if let Err(e) = std::fs::write(&path, hp) {
            eprintln!("accprof: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    println!();
    println!("{}", out.nvprof_summary);
    println!("{}", out.metrics);
    println!(
        "total {:.3} s (kernels {:.3} s, transfers {:.3} s); {} spans on {} tracks",
        out.run.breakdown.total_s,
        out.run.breakdown.kernel_s,
        out.run.breakdown.transfer_s,
        out.session.tracer.len(),
        out.session.tracer.tracks().len(),
    );
    ExitCode::SUCCESS
}
