//! Figure 10: elastic modeling 3D — performance vs `maxregcount`
//! (occupancy vs register-spill balance; the paper's best is 64).

use repro::figures::fig10;

fn main() {
    println!("Figure 10: Elastic Modeling 3D — total time vs registers per thread");
    println!("  {:>6} {:>12} {:>14}", "regs", "K40 (s)", "M2090 (s)");
    let series = fig10();
    for (m, k40, m2090) in &series {
        println!("  {:>6} {:>12.1} {:>14.1}", m, k40, m2090);
    }
    let best = series.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    println!("\nK40 optimum: maxregcount:{best} — \"The best number of registers per");
    println!("thread was found to be 64 in all implemented cases on both ... cards\".");
}
