//! Verify the directive programs of the twelve paper cases.
//!
//! ```text
//! accverify [--vector] [--all-cases] [--naive] [--deny warnings] [--json PATH]
//! ```
//!
//! Default mode runs the `acc-verify` static tier over every case's
//! modeling and RTM program at table scale, prints the lint report,
//! optionally writes the machine-readable JSON report, and exits nonzero
//! when any program has errors (or warnings, under `--deny warnings`). CI
//! runs `accverify --all-cases --deny warnings` as the acceptance gate.
//!
//! `--vector` switches to the vectorization-legality gate instead: every
//! program must certify at least one innermost loop legal at width ≥ 2
//! with the static certificates agreeing with the dynamic lane replay, and
//! every seeded legality-breaking mutation (distance-1 carried dependence,
//! misaligned store base, reduction rewritten into a running recurrence)
//! must flip the verdict in both tiers. CI runs
//! `accverify --vector --all-cases --deny warnings`; `--deny warnings` is
//! accepted for symmetry (the vector gate is already strict — any
//! disagreement or escaped mutation fails).

use repro::vector::{certify_all_cases, mutation_gate, vector_gate, vector_json, vector_table};
use repro::verify::{report_table, reports_json, verify_all_cases};
use rtm_core::case::OptimizationConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny_warnings = false;
    let mut naive = false;
    let mut vector = false;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // The default already verifies all 12 cases; the flag is the
            // explicit spelling CI uses.
            "--all-cases" => {}
            "--naive" => naive = true,
            "--vector" => vector = true,
            "--deny" if args.get(i + 1).map(String::as_str) == Some("warnings") => {
                deny_warnings = true;
                i += 1;
            }
            "--deny=warnings" => deny_warnings = true,
            "--json" if i + 1 < args.len() => {
                json_path = Some(args[i + 1].clone());
                i += 1;
            }
            other => {
                eprintln!("accverify: unknown argument `{other}`");
                eprintln!(
                    "usage: accverify [--vector] [--all-cases] [--naive] \
                     [--deny warnings] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = if naive {
        OptimizationConfig::naive()
    } else {
        OptimizationConfig::default()
    };

    if vector {
        let reports = certify_all_cases(&config);
        let mutations = mutation_gate(&config);
        print!("{}", vector_table(&reports, &mutations));
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, vector_json(&reports, &mutations)) {
                eprintln!("accverify: cannot write `{path}`: {e}");
                std::process::exit(2);
            }
            println!("JSON report written to {path}");
        }
        if !vector_gate(&reports, &mutations) {
            let uncertified = reports.iter().filter(|r| !r.passes()).count();
            let escaped = mutations.iter().filter(|m| !m.caught()).count();
            eprintln!(
                "accverify: vector gate FAILED ({uncertified} of {} programs \
                 uncertified, {escaped} of {} mutations escaped)",
                reports.len(),
                mutations.len()
            );
            std::process::exit(1);
        }
        println!(
            "accverify: all {} programs certified, all {} seeded mutations \
             caught by both tiers",
            reports.len(),
            mutations.len()
        );
        return;
    }

    let reports = verify_all_cases(&config);
    print!("{}", report_table(&reports));

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, reports_json(&reports)) {
            eprintln!("accverify: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        println!("JSON report written to {path}");
    }

    let failed = reports.iter().filter(|r| r.fails(deny_warnings)).count();
    if failed > 0 {
        eprintln!(
            "accverify: {failed} of {} programs fail{}",
            reports.len(),
            if deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        );
        std::process::exit(1);
    }
    println!(
        "accverify: all {} programs verify clean{}",
        reports.len(),
        if deny_warnings {
            " (warnings denied)"
        } else {
            ""
        }
    );
}
