//! Verify the directive programs of the twelve paper cases.
//!
//! ```text
//! accverify [--all-cases] [--naive] [--deny warnings] [--json PATH]
//! ```
//!
//! Runs the `acc-verify` static tier over every case's modeling and RTM
//! program at table scale, prints the lint report, optionally writes the
//! machine-readable JSON report, and exits nonzero when any program has
//! errors (or warnings, under `--deny warnings`). CI runs
//! `accverify --all-cases --deny warnings` as the acceptance gate.

use repro::verify::{report_table, reports_json, verify_all_cases};
use rtm_core::case::OptimizationConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny_warnings = false;
    let mut naive = false;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // The default already verifies all 12 cases; the flag is the
            // explicit spelling CI uses.
            "--all-cases" => {}
            "--naive" => naive = true,
            "--deny" if args.get(i + 1).map(String::as_str) == Some("warnings") => {
                deny_warnings = true;
                i += 1;
            }
            "--deny=warnings" => deny_warnings = true,
            "--json" if i + 1 < args.len() => {
                json_path = Some(args[i + 1].clone());
                i += 1;
            }
            other => {
                eprintln!("accverify: unknown argument `{other}`");
                eprintln!(
                    "usage: accverify [--all-cases] [--naive] [--deny warnings] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = if naive {
        OptimizationConfig::naive()
    } else {
        OptimizationConfig::default()
    };
    let reports = verify_all_cases(&config);
    print!("{}", report_table(&reports));

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, reports_json(&reports)) {
            eprintln!("accverify: cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        println!("JSON report written to {path}");
    }

    let failed = reports.iter().filter(|r| r.fails(deny_warnings)).count();
    if failed > 0 {
        eprintln!(
            "accverify: {failed} of {} programs fail{}",
            reports.len(),
            if deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        );
        std::process::exit(1);
    }
    println!(
        "accverify: all {} programs verify clean{}",
        reports.len(),
        if deny_warnings {
            " (warnings denied)"
        } else {
            ""
        }
    );
}
