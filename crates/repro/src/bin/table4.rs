//! Regenerate Table 4 (RTM timing and speedup) and check its qualitative
//! shape against the paper.

use repro::table::{render_comparison, table4_shape_checks, TableKind};

fn main() {
    print!("{}", render_comparison(TableKind::Rtm));
    println!("\nShape checks:");
    let mut ok = true;
    for (name, pass) in table4_shape_checks() {
        println!("  [{}] {}", if pass { "PASS" } else { "FAIL" }, name);
        ok &= pass;
    }
    std::process::exit(if ok { 0 } else { 1 });
}
