//! `accserve` — the job-server study CLI.
//!
//! Two modes:
//!
//! * `--smoke` (default): run the deterministic CI smoke scenario — a
//!   2× capacity mixed-tenant burst on a fleet with transient allocation
//!   faults and an early device loss — check the service-level
//!   invariants (admitted jobs terminate with a typed outcome, deadline
//!   completions beat their deadlines, sheds are lowest-priority-first),
//!   and write the machine-readable report. Exit is nonzero on any
//!   violation.
//! * `--sweep`: sweep offered load past fleet capacity and print the
//!   degradation table (goodput, tail latency, shed rate, typed
//!   rejections, deadline cancellations, breaker activity), writing the
//!   rows as JSON alongside.
//!
//! ```text
//! accserve [--smoke | --sweep] [--out DIR]
//! ```

use repro::serve::{
    overload_rows_json, overload_sweep, render_overload_table, smoke_report_json, smoke_run,
    smoke_violations,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: accserve [--smoke | --sweep] [--out DIR]";

fn main() -> ExitCode {
    let mut sweep = false;
    let mut out = PathBuf::from("accserve-out");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => sweep = false,
            "--sweep" => sweep = true,
            "--out" => match it.next() {
                Some(v) => out = PathBuf::from(v),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("accserve: cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }

    if sweep {
        let multipliers = [0.5, 1.0, 1.5, 2.0, 3.0];
        let rows = match overload_sweep(&multipliers, 7, 4) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("accserve: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("Overload sweep (4 devices, offered load over fleet capacity)\n");
        print!("{}", render_overload_table(&rows));
        let path = out.join("overload_sweep.json");
        let doc = serde_json::to_string(&overload_rows_json(&rows));
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("accserve: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("\nwrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let (scenario, report) = match smoke_run(None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("accserve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let violations = smoke_violations(&scenario, &report);
    let doc = smoke_report_json(&scenario, &report, &violations);
    let path = out.join("smoke_report.json");
    if let Err(e) = std::fs::write(&path, serde_json::to_string(&doc)) {
        eprintln!("accserve: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "smoke: {} jobs — {} completed, {} shed, {} rejected, {} cancelled; \
         makespan {:.1}s, goodput {:.0} gp·s of {:.0} offered, {} breaker transitions",
        scenario.jobs.len(),
        report.jobs_completed,
        report.jobs_shed,
        report.jobs_rejected,
        report.jobs_cancelled,
        report.makespan_s,
        report.goodput_cost_s,
        report.offered_cost_s,
        report.breaker_log.len(),
    );
    println!("wrote {}", path.display());
    if violations.is_empty() {
        println!("PASS: service-level invariants hold");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
