//! Resilience overhead vs MTTI, and checkpoint-restart recompute.
//!
//! Sweeps the device mean-time-to-interrupt across a survey schedule
//! (many seeds per point) and prints the overhead the resilient executor
//! pays to keep the stacked image bitwise-identical, together with the
//! Young-rule checkpoint interval each MTTI implies. Then measures
//! checkpoint-restart replay on the real 2D RTM driver.

use repro::resilience::{overhead_vs_mtti, restart_recompute_rows};
use rtm_core::modeling::Medium2;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, Layer};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};

fn main() {
    let n_shots = 48;
    let ranks = 8;
    let shot_cost = 120.0; // simulated seconds per shot
    let ckpt_cost = 3.0; // simulated seconds per stored state
    let seeds: Vec<u64> = (0..64).collect();
    let mttis = [120.0, 300.0, 900.0, 3600.0, 14400.0, 86400.0];

    println!("Survey overhead vs device MTTI");
    println!(
        "({n_shots} shots x {shot_cost} s over {ranks} ranks, {} seeds per point;",
        seeds.len()
    );
    println!("image is bitwise-identical to fault-free in every completed survey)\n");
    println!(
        "  {:>9}  {:>9}  {:>11}  {:>10}  {:>10}  {:>12}",
        "MTTI [s]", "overhead", "resched/run", "dead/run", "completed", "Young T [s]"
    );
    for r in overhead_vs_mtti(n_shots, ranks, shot_cost, ckpt_cost, &mttis, &seeds) {
        println!(
            "  {:>9.0}  {:>8.1}%  {:>11.1}  {:>10.2}  {:>7}/{:<2}  {:>12.1}",
            r.mtti_s,
            100.0 * r.overhead_frac,
            r.rescheduled,
            r.dead_ranks,
            r.completed,
            r.seeds,
            r.young_interval_s,
        );
    }

    // Checkpoint-restart on the real driver: one shot, one interrupt.
    let n = 48;
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.6);
    let layers = [
        Layer {
            z_top: 0,
            vp: 1500.0,
            vs: 0.0,
            rho: 1000.0,
        },
        Layer {
            z_top: n / 2,
            vp: 3000.0,
            vs: 0.0,
            rho: 2400.0,
        },
    ];
    let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    };
    let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 3);
    let w = Wavelet::ricker(20.0);
    let steps = 160;
    let interrupt = 140;

    println!("\nCheckpoint-restart recompute (2D RTM, {steps} steps, crash at step {interrupt})");
    println!(
        "  {:>10}  {:>13}  {:>9}",
        "ckpt every", "forward steps", "replayed"
    );
    for r in restart_recompute_rows(&medium, &acq, &w, steps, interrupt, &[10, 25, 50, steps]) {
        let label = if r.ckpt_every >= steps {
            "from-zero".to_string()
        } else {
            format!("{}", r.ckpt_every)
        };
        println!("  {label:>10}  {:>13}  {:>9}", r.forward_steps, r.recompute);
    }
    println!("\nEvery row migrates to the bitwise-identical image; only replay varies.");
}
