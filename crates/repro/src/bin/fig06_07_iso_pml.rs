//! Figures 6 and 7: ISO modeling 3D under PGI 14.6 (Fig. 6) and PGI 14.3
//! (Fig. 7) for the three PML-kernel restructurings of Section 5.2.

use openacc_sim::PgiVersion;
use repro::figures::{fig6_7, variant_label};

fn main() {
    for (version, fig) in [(PgiVersion::V14_6, 6), (PgiVersion::V14_3, 7)] {
        let series = fig6_7(version);
        println!("Figure {fig}: ISO Modeling 3D ({version:?}) — total GPU time");
        let worst = series.iter().map(|s| s.1).fold(0.0f64, f64::max);
        for (v, t) in &series {
            let bar = "#".repeat(((t / worst) * 48.0) as usize);
            println!("  {:28} {:8.1} s  {}", variant_label(*v), t, bar);
        }
        println!();
    }
    println!("Shape: restructuring pays off under 14.3 (CUDA 5.0 back-end) but");
    println!("not under 14.6 — \"The CUDA version used affects GPU code generation\".");
}
