//! `calibrate` — model-vs-measured calibration of the GPU timing model
//! against real host-engine runs.
//!
//! ```text
//! calibrate [--smoke] [--out DIR]
//! ```
//!
//! Runs all six propagator cases for real on the pooled host engine with
//! the wall-clock profiler on, prices the same workloads on both of the
//! paper's GPUs, and writes `calibration.json` plus a markdown table to
//! stdout. `--smoke` shrinks the grids for CI.

use repro::calibrate::run_calibration;
use std::path::PathBuf;

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("target/calibration");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                });
                out_dir = PathBuf::from(v);
            }
            "--help" | "-h" => {
                eprintln!("usage: calibrate [--smoke] [--out DIR]");
                return;
            }
            other => {
                eprintln!("unknown flag {other:?}; see --help");
                std::process::exit(2);
            }
        }
    }

    let report = run_calibration(smoke);
    print!("{}", report.to_markdown());

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let path = out_dir.join("calibration.json");
    std::fs::write(&path, report.to_json()).expect("write calibration.json");
    eprintln!("wrote {}", path.display());
}
