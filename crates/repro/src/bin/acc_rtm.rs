//! `acc-rtm` — the command-line driver for the library.
//!
//! ```text
//! acc_rtm model    [--formulation iso|acoustic|elastic|vti] [--n 160]
//!                  [--steps 600] [--freq 18] [--gangs N] [--snap 50]
//!                  [--out PREFIX]
//! acc_rtm rtm      [--model layered|wedge] [--n 128] [--steps 1100]
//!                  [--freq 18] [--shots 1] [--gangs N] [--out PREFIX]
//! acc_rtm simulate [--case iso2d|ac2d|el2d|iso3d|ac3d|el3d]
//!                  [--cluster cray|ibm] [--compiler cray|pgi143|pgi146]
//!                  [--rtm] [--trace FILE.json]
//! acc_rtm info
//! ```
//!
//! `model` and `rtm` execute real physics on host gangs; `simulate` prices
//! a production-scale run on the simulated cards; `info` prints the
//! platform tables.

use repro::cases::table_workload;
use repro::render::{ascii_field, write_pgm};
use repro::table::{CRAY_COMPILER, PGI_ON_CRAY, PGI_ON_IBM};
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase};
use rtm_core::modeling::{run_modeling, Medium2};
use rtm_core::rtm::{depth_profile, laplacian_filter, run_rtm};
use seismic_grid::cfl::stable_dt;
use seismic_grid::Field2;
use seismic_model::builder::{
    acoustic2_layered, acoustic2_wedge, elastic2_layered, iso2_layered, standard_layers,
};
use seismic_model::footprint::{Dims, Formulation};
use seismic_model::{extent2, Geometry, VtiModel2};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_source::{Acquisition2, Wavelet};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: acc_rtm <model|rtm|simulate|info> [--key value ...]");
    eprintln!("run with a subcommand and see the module docs for its flags");
    exit(2)
}

/// Minimal `--key value` parser (no external dependencies).
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument: {a}");
            usage();
        };
        match it.next() {
            Some(v) => {
                out.insert(key.to_string(), v.clone());
            }
            None => {
                // Bare flags act as booleans.
                out.insert(key.to_string(), "true".to_string());
            }
        }
    }
    out
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {v}");
            exit(2)
        }),
        None => default,
    }
}

fn build_medium(formulation: &str, n: usize, h: f32) -> (Medium2, f32) {
    let e = extent2(n, n);
    let vmax = 3200.0f32;
    let layers = standard_layers(n);
    match formulation {
        "iso" => {
            let dt = stable_dt(8, 2, vmax, h, 0.7);
            let damp = DampProfile::new(n, e.halo, 16, vmax, h, 1e-4);
            (
                Medium2::Iso {
                    model: iso2_layered(e, &layers, Geometry::uniform(h, dt)),
                    damp_x: damp.clone(),
                    damp_z: damp,
                },
                dt,
            )
        }
        "acoustic" => {
            let dt = stable_dt(8, 2, vmax, h, 0.55);
            let c = CpmlAxis::new(n, e.halo, 16, dt, vmax, h, 1e-4);
            (
                Medium2::Acoustic {
                    model: acoustic2_layered(e, &layers, Geometry::uniform(h, dt)),
                    cpml: [c.clone(), c],
                },
                dt,
            )
        }
        "elastic" => {
            let dt = stable_dt(8, 2, vmax, h, 0.5);
            let c = CpmlAxis::new(n, e.halo, 16, dt, vmax, h, 1e-4);
            (
                Medium2::Elastic {
                    model: elastic2_layered(e, &layers, Geometry::uniform(h, dt)),
                    cpml: [c.clone(), c],
                },
                dt,
            )
        }
        "vti" => {
            let vp = 2000.0f32;
            let eps = 0.2f32;
            let ani_vmax = vp * (1.0 + 2.0 * eps).sqrt();
            let dt = stable_dt(8, 2, ani_vmax, h, 0.6);
            let damp = DampProfile::new(n, e.halo, 16, ani_vmax, h, 1e-4);
            (
                Medium2::Vti {
                    model: VtiModel2::constant(e, vp, eps, 0.08, Geometry::uniform(h, dt)),
                    damp_x: damp.clone(),
                    damp_z: damp,
                },
                dt,
            )
        }
        other => {
            eprintln!("unknown formulation: {other} (iso|acoustic|elastic|vti)");
            exit(2)
        }
    }
}

fn cmd_model(flags: HashMap<String, String>) {
    let n: usize = get(&flags, "n", 160);
    let steps: usize = get(&flags, "steps", 600);
    let freq: f32 = get(&flags, "freq", 18.0);
    let gangs: usize = get(&flags, "gangs", openacc_sim::exec::default_gangs());
    let snap: usize = get(&flags, "snap", (steps / 6).max(1));
    let formulation = flags
        .get("formulation")
        .map(String::as_str)
        .unwrap_or("acoustic");
    let out: Option<String> = flags.get("out").cloned();

    let (medium, dt) = build_medium(formulation, n, 10.0);
    let acq = Acquisition2::surface_line(n, n / 2, 6, 4, 4);
    println!("modeling: {formulation}, {n}x{n}, {steps} steps, dt = {dt:.2e} s, {gangs} gangs");
    let r = run_modeling(
        &medium,
        &acq,
        &Wavelet::ricker(freq),
        &OptimizationConfig::default(),
        steps,
        snap,
        gangs,
    );
    let last = &r.snapshots[r.snapshots.len() / 2];
    print!("{}", ascii_field(last, 76, 6.0));
    println!(
        "\nseismogram: {} receivers x {} samples, rms {:.3e}",
        r.seismogram.n_receivers(),
        r.seismogram.nt(),
        r.seismogram.rms()
    );
    if let Some(prefix) = out {
        std::fs::create_dir_all("out").ok();
        for (i, s) in r.snapshots.iter().enumerate() {
            let p = PathBuf::from(format!("out/{prefix}_snap{i}.pgm"));
            write_pgm(s, &p).expect("write PGM");
        }
        println!(
            "wrote {} snapshots under out/{prefix}_snap*.pgm",
            r.snapshots.len()
        );
    }
}

fn cmd_rtm(flags: HashMap<String, String>) {
    let n: usize = get(&flags, "n", 128);
    let steps: usize = get(&flags, "steps", 1100);
    let freq: f32 = get(&flags, "freq", 18.0);
    let gangs: usize = get(&flags, "gangs", openacc_sim::exec::default_gangs());
    let shots: usize = get(&flags, "shots", 1);
    let model_kind = flags.get("model").map(String::as_str).unwrap_or("layered");
    let out: Option<String> = flags.get("out").cloned();

    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.6);
    let model = match model_kind {
        "layered" => {
            let layers = [
                seismic_model::builder::Layer {
                    z_top: 0,
                    vp: 1500.0,
                    vs: 0.0,
                    rho: 1000.0,
                },
                seismic_model::builder::Layer {
                    z_top: n / 2,
                    vp: 3000.0,
                    vs: 0.0,
                    rho: 2400.0,
                },
            ];
            acoustic2_layered(e, &layers, Geometry::uniform(h, dt))
        }
        "wedge" => acoustic2_wedge(
            e,
            1500.0,
            3000.0,
            7 * n / 16,
            9 * n / 16,
            Geometry::uniform(h, dt),
        ),
        other => {
            eprintln!("unknown model: {other} (layered|wedge)");
            exit(2)
        }
    };
    let c = CpmlAxis::new(n, e.halo, 14, dt, 3000.0, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    };
    println!("RTM: {model_kind} model, {n}x{n}, {shots} shot(s), {steps} steps each");

    let mut stack = Field2::zeros(e);
    for s in 0..shots {
        let src_x = (s + 1) * n / (shots + 1);
        let acq = Acquisition2::surface_line(n, src_x, 6, 6, 2);
        let r = run_rtm(
            &medium,
            &acq,
            &Wavelet::ricker(freq),
            &OptimizationConfig::default(),
            steps,
            3,
            gangs,
        );
        for (d, v) in stack.as_mut_slice().iter_mut().zip(r.image.as_slice()) {
            *d += *v;
        }
        println!("  shot {} at x = {src_x} migrated", s + 1);
    }
    let img = laplacian_filter(&stack, h, h);
    print!("{}", ascii_field(&img, 76, 3.0));
    let prof = depth_profile(&img);
    let (z_peak, _) = prof
        .iter()
        .enumerate()
        .skip(20)
        .take(n - 40)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!(
        "\nimage peak depth: z = {z_peak} (true interface around z = {})",
        n / 2
    );
    if let Some(prefix) = out {
        std::fs::create_dir_all("out").ok();
        let p = PathBuf::from(format!("out/{prefix}_image.pgm"));
        write_pgm(&img, &p).expect("write PGM");
        println!("wrote out/{prefix}_image.pgm");
    }
}

fn cmd_simulate(flags: HashMap<String, String>) {
    let case_key = flags.get("case").map(String::as_str).unwrap_or("ac3d");
    let (formulation, dims) = match case_key {
        "iso2d" => (Formulation::Isotropic, Dims::Two),
        "ac2d" => (Formulation::Acoustic, Dims::Two),
        "el2d" => (Formulation::Elastic, Dims::Two),
        "iso3d" => (Formulation::Isotropic, Dims::Three),
        "ac3d" => (Formulation::Acoustic, Dims::Three),
        "el3d" => (Formulation::Elastic, Dims::Three),
        other => {
            eprintln!("unknown case: {other}");
            exit(2)
        }
    };
    let case = SeismicCase { formulation, dims };
    let cluster = match flags.get("cluster").map(String::as_str).unwrap_or("cray") {
        "cray" => Cluster::CrayXc30,
        "ibm" => Cluster::Ibm,
        other => {
            eprintln!("unknown cluster: {other} (cray|ibm)");
            exit(2)
        }
    };
    let compiler = match flags
        .get("compiler")
        .map(String::as_str)
        .unwrap_or("pgi146")
    {
        "cray" => CRAY_COMPILER,
        "pgi143" => PGI_ON_IBM,
        "pgi146" => PGI_ON_CRAY,
        other => {
            eprintln!("unknown compiler: {other} (cray|pgi143|pgi146)");
            exit(2)
        }
    };
    let rtm = flags.contains_key("rtm");
    let w = table_workload(&case);
    let cfg = OptimizationConfig::default();
    println!(
        "simulating {} {} on {} with {} ({}x{}x{}, {} steps)",
        if rtm { "RTM" } else { "modeling" },
        case.label(),
        cluster.label(),
        compiler.label(),
        w.nx,
        w.ny,
        w.nz,
        w.steps
    );
    let run = if rtm {
        rtm_core::gpu_time::rtm_time(&case, &cfg, compiler, cluster, &w)
    } else {
        rtm_core::gpu_time::modeling_time(&case, &cfg, compiler, cluster, &w)
    };
    match run {
        Ok(r) => {
            println!(
                "total {:.1} s  (kernels {:.1} s, transfers {:.1} s)",
                r.breakdown.total_s, r.breakdown.kernel_s, r.breakdown.transfer_s
            );
            println!(
                "\nprofiler:\n{}",
                r.runtime.profiler().render(cluster.device().name)
            );
            if let Some(path) = flags.get("trace") {
                let json = r
                    .runtime
                    .profiler()
                    .export_chrome_trace(cluster.device().name);
                std::fs::write(path, json).expect("write trace file");
                println!("chrome trace written to {path} (open in chrome://tracing)");
            }
        }
        Err(e) => println!("run unavailable: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "model" => cmd_model(flags),
        "rtm" => cmd_rtm(flags),
        "simulate" => cmd_simulate(flags),
        "info" => {
            for cluster in [Cluster::CrayXc30, Cluster::Ibm] {
                let d = cluster.device();
                println!(
                    "[{}] {} — {:.0} GFLOPS SP, {:.0} GB/s, {} GB, {} baseline ranks",
                    cluster.label(),
                    d.name,
                    d.peak_gflops_sp,
                    d.mem_bandwidth_gbs,
                    d.global_mem_bytes >> 30,
                    cluster.baseline_ranks()
                );
            }
        }
        _ => usage(),
    }
}
