//! Figure 11: elastic 2D under CRAY — async streams vs synchronous issue,
//! with the simulated profiler timeline.

use repro::figures::fig11;

fn main() {
    let (sync_s, async_s, profile) = fig11();
    println!("Figure 11: Elastic Modeling 2D (CRAY compiler), sync vs async streams");
    println!("  synchronous: {sync_s:8.2} s");
    println!("  async:       {async_s:8.2} s");
    println!(
        "  reduction:   {:5.1} %  (paper: ~30 %)",
        (1.0 - async_s / sync_s) * 100.0
    );
    println!("\nSimulated profiler (async run):\n{profile}");
}
