//! `rand_bound` — random-boundary vs Young-interval checkpointing CLI.
//!
//! Prints the memory/time comparison table and writes the rows as a JSON
//! artifact. The exit code is the CI gate: nonzero when any row stores
//! snapshot bytes on the random-boundary path or fails to undercut the
//! checkpointing footprint.
//!
//! ```text
//! rand_bound [--smoke] [--out DIR]
//! ```
//!
//! * `--smoke`: only the two representative CI rows (isotropic 2D on the
//!   CRAY, acoustic 3D on the IBM) instead of all twelve,
//! * `--out DIR`: artifact directory (default `rand-bound-out`).

use repro::rand_bound::{
    rand_bound_rows, rand_bound_rows_json, rand_bound_smoke_rows, rand_bound_violations,
    render_rand_bound_table,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: rand_bound [--smoke] [--out DIR]";

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = PathBuf::from("rand-bound-out");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(v) => out = PathBuf::from(v),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let rows = if smoke {
        rand_bound_smoke_rows()
    } else {
        rand_bound_rows()
    };
    print!("{}", render_rand_bound_table(&rows));

    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("rand_bound: cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let path = out.join("rand_bound.json");
    let doc = serde_json::to_string(&rand_bound_rows_json(&rows));
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("rand_bound: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", path.display());

    let violations = rand_bound_violations(&rows);
    if !violations.is_empty() {
        eprintln!("\nGATE FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    println!("gate passed: zero snapshot bytes, footprint below checkpointing in every row");
    ExitCode::SUCCESS
}
