//! Extension study: GPU speedup vs grid size.
//!
//! The paper attributes its weak 2D results to "the lack of enough
//! computations" and expects multi-GPU overlap to pay "especially when
//! larger grid dimensions are used". This binary sweeps the acoustic 3D
//! case over grid sizes on both clusters and prints the modeled
//! GPU-vs-full-socket speedup curve, showing where the device starts to
//! pay for itself.

use openacc_sim::{Compiler, PgiVersion};
use repro::cases::table_workload;
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase, Workload};
use rtm_core::cpu_time::modeling_cpu_time;
use rtm_core::gpu_time::modeling_time;
use seismic_model::footprint::{Dims, Formulation};

fn main() {
    let case = SeismicCase {
        formulation: Formulation::Acoustic,
        dims: Dims::Three,
    };
    let base = table_workload(&case);
    println!(
        "Acoustic 3D modeling speedup vs grid size ({} steps):\n",
        base.steps / 4
    );
    println!(
        "{:>7} {:>14} {:>14} {:>12} | {:>14} {:>14} {:>12}",
        "grid", "K40 (s)", "CRAY CPU (s)", "speedup", "M2090 (s)", "IBM CPU (s)", "speedup"
    );
    let cfg = OptimizationConfig::default();
    for n in [96usize, 160, 256, 320, 400] {
        let w = Workload {
            nx: n,
            ny: n,
            nz: n,
            steps: base.steps / 4,
            snap_period: base.snap_period,
            n_receivers: base.n_receivers,
        };
        let row = |cluster: Cluster, compiler| {
            let cpu = modeling_cpu_time(&case, cluster, &w).total_s();
            match modeling_time(&case, &cfg, compiler, cluster, &w) {
                Ok(r) => (Some(r.breakdown.total_s), cpu),
                Err(_) => (None, cpu),
            }
        };
        let (k40, cray_cpu) = row(Cluster::CrayXc30, Compiler::Pgi(PgiVersion::V14_6));
        let (m2090, ibm_cpu) = row(Cluster::Ibm, Compiler::Pgi(PgiVersion::V14_3));
        let fmt = |t: Option<f64>| t.map_or("X".into(), |t| format!("{t:11.1}"));
        let sp = |t: Option<f64>, c: f64| t.map_or("-".into(), |t| format!("{:9.2}x", c / t));
        println!(
            "{:>5}^3 {:>14} {:>14} {:>12} | {:>14} {:>14} {:>12}",
            n,
            fmt(k40),
            format!("{cray_cpu:11.1}"),
            sp(k40, cray_cpu),
            fmt(m2090),
            format!("{ibm_cpu:11.1}"),
            sp(m2090, ibm_cpu)
        );
    }
    println!("\nSmall grids are launch/transfer-bound (the paper's 2D story);");
    println!("speedup saturates once the device is fully occupied.");
}
