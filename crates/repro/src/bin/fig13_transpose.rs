//! Figure 13: coalescing the acoustic 2D backward kernel by transposition —
//! ~3x on both cards.

use repro::figures::fig13;

fn main() {
    let ((f_dir, f_tr), (k_dir, k_tr)) = fig13();
    println!("Figure 13: Acoustic 2D backward kernel — direct vs transposed (kernel time)");
    println!(
        "  {:>22} {:>11} {:>13} {:>8}",
        "card", "direct (s)", "transposed (s)", "gain"
    );
    println!(
        "  {:>22} {:>11.1} {:>13.1} {:>7.1}x",
        "M2090 (PGI)",
        f_dir,
        f_tr,
        f_dir / f_tr
    );
    println!(
        "  {:>22} {:>11.1} {:>13.1} {:>7.1}x",
        "K40 (CRAY)",
        k_dir,
        k_tr,
        k_dir / k_tr
    );
    println!("\nShape: \"This technique allows us to gain a 3x speedup compared with");
    println!("the original code on both GPU cards using PGI and CRAY compilers.\"");
}
