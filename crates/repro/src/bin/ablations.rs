//! Ablation studies over the design choices DESIGN.md calls out.

use repro::ablation::{
    cache_clause_ablation, partial_transfer_ablation, pinned_memory_ablation, pml_width_ablation,
};

fn main() {
    println!("Ablation 1: what working tile/cache clauses would have bought");
    println!("(per-run isotropic 3D main-kernel time; the paper: \"the tile and");
    println!("cache features are not working properly in both CRAY and PGI\")\n");
    for (card, without, with) in cache_clause_ablation() {
        println!(
            "  {card:14} without {without:8.4} s   with {with:8.4} s   gain {:.2}x",
            without / with
        );
    }

    let (pageable, pinned) = pinned_memory_ablation();
    println!("\nAblation 2: the `pin` compile option (isotropic 2D RTM, M2090)");
    println!(
        "  pageable {pageable:7.1} s   pinned {pinned:7.1} s   gain {:.2}x",
        pageable / pinned
    );

    let (full, partial) = partial_transfer_ablation();
    println!("\nAblation 3: partial vs full-field consistency transfers (iso 3D RTM)");
    println!(
        "  full-field {full:8.1} s   partial {partial:8.1} s   gain {:.1}x",
        full / partial
    );

    println!("\nAblation 4: C-PML width vs residual boundary energy (real execution)");
    for (width, residual) in pml_width_ablation() {
        println!("  width {width:3} points: residual energy fraction {residual:.2e}");
    }
}
