//! One-page reproduction dashboard: every table/figure shape check, its
//! status, and the headline modeled-vs-paper numbers.

use openacc_sim::PgiVersion;
use repro::figures;
use repro::table::{model_table, table3_shape_checks, table4_shape_checks, TableKind};

fn section(name: &str, checks: Vec<(&'static str, bool)>) -> (usize, usize) {
    println!("{name}");
    let mut pass = 0;
    let total = checks.len();
    for (label, ok) in checks {
        println!("  [{}] {label}", if ok { "PASS" } else { "FAIL" });
        pass += usize::from(ok);
    }
    println!();
    (pass, total)
}

fn main() {
    println!("acc-rtm reproduction dashboard\n==============================\n");
    let mut pass = 0;
    let mut total = 0;

    let (p, t) = section("Table 3 (modeling)", table3_shape_checks());
    pass += p;
    total += t;
    let (p, t) = section("Table 4 (RTM)", table4_shape_checks());
    pass += p;
    total += t;

    // Figure shapes, re-derived from the figure series.
    let f7 = figures::fig6_7(PgiVersion::V14_3);
    let f6 = figures::fig6_7(PgiVersion::V14_6);
    let f89_ok = figures::fig8_9(seismic_model::footprint::Dims::Three)
        .iter()
        .all(|(_, k, p)| p < k);
    let f10 = figures::fig10();
    let best10 = f10.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    let (sync_s, async_s, _) = figures::fig11();
    let ((ff, fi), (kf, ki)) = figures::fig12();
    let ((fd, ft), (kd, kt)) = figures::fig13();
    let (_, cpu_share, gpu_prof, _) = figures::fig14_15();
    let (p, t) = section(
        "Figures",
        vec![
            (
                "Fig 6: restructuring ~neutral under PGI 14.6",
                (f6[0].1 / f6[1].1) < 1.15,
            ),
            (
                "Fig 7: restructuring wins under PGI 14.3",
                f7[1].1 < 0.8 * f7[0].1,
            ),
            ("Fig 8/9: parallel beats kernels under CRAY", f89_ok),
            ("Fig 10: maxregcount 64 optimal on the K40", best10 == 64),
            ("Fig 11: CRAY async saves 10-45 %", {
                let g = 1.0 - async_s / sync_s;
                (0.10..0.45).contains(&g)
            }),
            (
                "Fig 12: fission >2x on Fermi, <1.3x on Kepler",
                ff / fi > 2.0 && kf / ki < 1.3,
            ),
            (
                "Fig 13: transposition 2-6x on both cards",
                (2.0..6.0).contains(&(fd / ft)) && (2.0..6.0).contains(&(kd / kt)),
            ),
            (
                "Fig 14/15: main kernel dominates; imaging kernel on GPU",
                cpu_share > 0.5 && gpu_prof.contains("imaging_condition"),
            ),
        ],
    );
    pass += p;
    total += t;

    // Headline numbers.
    let t3 = model_table(TableKind::Modeling);
    let t4 = model_table(TableKind::Rtm);
    println!("Headlines (modeled / paper)");
    println!(
        "  best modeling speedup (elastic 3D, PGI on CRAY): {:.1}x / 2.7x",
        t3[5].cray_speedup_pgi.unwrap_or(0.0)
    );
    println!(
        "  acoustic 3D RTM speedup on IBM:                  {:.1}x / 10.2x",
        t4[4].ibm_speedup.unwrap_or(0.0)
    );
    println!(
        "  isotropic 3D modeling kernel time (PGI/K40):     {:.0}s / 285s",
        t3[3].cray_kernel_pgi.unwrap_or(0.0)
    );
    println!("\n{pass}/{total} shape checks pass");
    std::process::exit(if pass == total { 0 } else { 1 });
}
