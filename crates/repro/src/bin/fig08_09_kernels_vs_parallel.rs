//! Figures 8 and 9: acoustic modeling 2D/3D under the CRAY compiler —
//! `kernels` construct vs explicit `parallel gang/worker/vector`.

use repro::figures::fig8_9;
use seismic_model::footprint::Dims;

fn main() {
    for (dims, fig) in [(Dims::Two, 8), (Dims::Three, 9)] {
        println!(
            "Figure {fig}: Acoustic Modeling {} (CRAY compiler) — time for 200 steps",
            if dims == Dims::Two { "2D" } else { "3D" }
        );
        println!(
            "  {:>8} {:>14} {:>14} {:>8}",
            "grid", "kernels (s)", "parallel (s)", "ratio"
        );
        for (n, k, p) in fig8_9(dims) {
            println!("  {:>8} {:>14.2} {:>14.2} {:>8.2}", n, k, p, k / p);
        }
        println!();
    }
    println!("Shape: \"Using the gang/worker/vector paradigm associated with the");
    println!("parallel directive gave the best performance\" under CRAY.");
}
