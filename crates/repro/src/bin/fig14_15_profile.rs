//! Figures 14 and 15: simulated NVIDIA-profiler output for isotropic 2D
//! RTM with the imaging condition on the CPU (Fig. 14) vs the GPU (Fig. 15).

use repro::figures::fig14_15;

fn main() {
    let (cpu_prof, cpu_share, gpu_prof, gpu_share) = fig14_15();
    println!(
        "Figure 14: image computed on CPU (main kernel share {:.1} %)",
        cpu_share * 100.0
    );
    println!("{cpu_prof}");
    println!(
        "Figure 15: image computed on GPU (main kernel share {:.1} %)",
        gpu_share * 100.0
    );
    println!("{gpu_prof}");
    println!("Shape: source injection utilization is tiny, receiver injection modest,");
    println!("and the main kernel's share \"was almost the same\" in both placements.");
}
