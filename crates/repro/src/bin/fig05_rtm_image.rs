//! Figure 5: "A 2D seismic image in acoustic media for RTM" — full RTM of
//! a layered model, rendering the migrated image.

use repro::render::{ascii_field, write_pgm};
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::Medium2;
use rtm_core::rtm::{depth_profile, laplacian_filter, run_rtm};
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, Layer};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};

fn main() {
    let n = 128;
    let z_if = 64;
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.6);
    let layers = [
        Layer {
            z_top: 0,
            vp: 1500.0,
            vs: 0.0,
            rho: 1000.0,
        },
        Layer {
            z_top: z_if,
            vp: 3000.0,
            vs: 0.0,
            rho: 2400.0,
        },
    ];
    let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 14, dt, 3000.0, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    };
    let acq = Acquisition2::surface_line(n, n / 2, 6, 6, 2);
    println!("Figure 5: RTM image of a two-layer acoustic model (reflector at z = {z_if})");
    let r = run_rtm(
        &medium,
        &acq,
        &Wavelet::ricker(18.0),
        &OptimizationConfig::default(),
        1100,
        3,
        openacc_sim::exec::default_gangs(),
    );
    let img = laplacian_filter(&r.image, h, h);
    print!("{}", ascii_field(&img, 80, 3.0));
    std::fs::create_dir_all("out").ok();
    write_pgm(&img, std::path::Path::new("out/fig05_rtm_image.pgm")).expect("write PGM");
    let prof = depth_profile(&img);
    let (z_peak, _) = prof
        .iter()
        .enumerate()
        .skip(20)
        .take(n - 40)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!(
        "\nimage peak depth: z = {z_peak} (reflector at {z_if}); {} snapshots used",
        r.snapshots_saved
    );
    println!("(written to out/fig05_rtm_image.pgm)");
}
