//! Figure 12: loop fission of the acoustic 3D pressure kernel — 3x on the
//! register-starved Fermi, neutral on Kepler (255 regs/thread).

use repro::figures::fig12;

fn main() {
    let ((f_fused, f_fiss), (k_fused, k_fiss)) = fig12();
    println!("Figure 12: Acoustic 3D — fused vs fissioned pressure kernel (kernel time)");
    println!(
        "  {:>22} {:>10} {:>12} {:>8}",
        "card", "fused (s)", "fissioned (s)", "gain"
    );
    println!(
        "  {:>22} {:>10.0} {:>12.0} {:>7.1}x",
        "M2090 (Fermi)",
        f_fused,
        f_fiss,
        f_fused / f_fiss
    );
    println!(
        "  {:>22} {:>10.0} {:>12.0} {:>7.1}x",
        "K40 (Kepler)",
        k_fused,
        k_fiss,
        k_fused / k_fiss
    );
    println!("\nShape: \"A 3x speedup was gained after applying loop fission ... on");
    println!("M2090 ... That was not the case though on Kepler card, as the register");
    println!("per thread count is doubled with 255 registers per thread.\"");
}
