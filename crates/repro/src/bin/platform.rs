//! Print the simulated evaluation platform (Tables 1 and 2 of the paper).

use accel_sim::DeviceSpec;
use mpi_sim::{CpuSpec, Interconnect};
use rtm_core::case::Cluster;

fn main() {
    println!("Evaluation platform (simulated; constants from Tables 1/2):\n");
    for cluster in [Cluster::CrayXc30, Cluster::Ibm] {
        let d: DeviceSpec = cluster.device();
        let c: CpuSpec = cluster.cpu();
        let n: Interconnect = cluster.interconnect();
        println!("[{}]", cluster.label());
        println!(
            "  GPU: {} — {} cores, {:.0} GFLOPS SP, {:.0} GB/s, {} GB, regs/thread <= {}",
            d.name,
            d.cuda_cores,
            d.peak_gflops_sp,
            d.mem_bandwidth_gbs,
            d.global_mem_bytes >> 30,
            d.max_regs_per_thread
        );
        println!(
            "  CPU: {} — {} ranks in the full-socket baseline",
            c.name,
            cluster.baseline_ranks()
        );
        println!(
            "  Net: {} — {:.1} us latency, {:.0} GB/s",
            n.name,
            n.latency_s * 1e6,
            n.bandwidth_bs / 1e9
        );
        println!();
    }
}
