//! Figure 3: "A 2D seismic modeling snapshot in acoustic media" — runs real
//! acoustic 2D modeling over a layered model and renders wavefield
//! snapshots (ASCII to stdout, PGM files to ./out).

use repro::render::{ascii_field, write_pgm};
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::{run_modeling, Medium2};
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, standard_layers};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};

fn main() {
    let n = 240;
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3200.0, h, 0.6);
    let model = acoustic2_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 16, dt, 3200.0, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    };
    let acq = Acquisition2::surface_line(n, n / 2, 6, 4, 4);
    let r = run_modeling(
        &medium,
        &acq,
        &Wavelet::ricker(15.0),
        &OptimizationConfig::default(),
        700,
        100,
        openacc_sim::exec::default_gangs(),
    );
    println!("Figure 3: acoustic 2D modeling snapshots (layered model, Ricker 15 Hz)\n");
    std::fs::create_dir_all("out").ok();
    for (i, snap) in r.snapshots.iter().enumerate().skip(2) {
        println!("--- snapshot t = step {} ---", i * 100);
        print!("{}", ascii_field(snap, 80, 6.0));
        let path = std::path::PathBuf::from(format!("out/fig03_snapshot_{i}.pgm"));
        write_pgm(snap, &path).expect("write PGM");
        println!("(written to {})\n", path.display());
    }
    println!("seismogram rms: {:.3e}", r.seismogram.rms());
}
