//! Regenerate Table 3 (seismic modeling timing and speedup) and check its
//! qualitative shape against the paper.

use repro::table::{render_comparison, table3_shape_checks, TableKind};

fn main() {
    print!("{}", render_comparison(TableKind::Modeling));
    println!("\nShape checks:");
    let mut ok = true;
    for (name, pass) in table3_shape_checks() {
        println!("  [{}] {}", if pass { "PASS" } else { "FAIL" }, name);
        ok &= pass;
    }
    std::process::exit(if ok { 0 } else { 1 });
}
