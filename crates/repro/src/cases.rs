//! Calibrated production-scale workloads for the twelve seismic cases.
//!
//! The paper never publishes its grid sizes or step counts, so these are
//! reconstructed to be *consistent with its published constraints*:
//!
//! * memory: 3D isotropic/acoustic fit the 6 GB M2090, elastic 3D exceeds
//!   6 GB but fits the 12 GB K40 (the `X` cells),
//! * staggered-grid cases use coarser grids than the isotropic case —
//!   Section 3.3: the staggered approach "allows a larger grid size"
//!   (i.e. coarser spacing → fewer points for the same target frequency),
//! * step counts scale the modeled times into the tables' ranges,
//! * one shot per run ("a one shot profile", Section 6).

use rtm_core::case::{SeismicCase, Workload};
use seismic_model::footprint::{Dims, Formulation};

/// The table workload of a seismic case.
pub fn table_workload(case: &SeismicCase) -> Workload {
    match (case.formulation, case.dims) {
        (Formulation::Isotropic, Dims::Two) => Workload {
            nx: 2000,
            ny: 1,
            nz: 2000,
            steps: 5000,
            snap_period: 10,
            n_receivers: 500,
        },
        (Formulation::Acoustic, Dims::Two) => Workload {
            nx: 1600,
            ny: 1,
            nz: 1600,
            steps: 4000,
            snap_period: 10,
            n_receivers: 400,
        },
        (Formulation::Elastic, Dims::Two) => Workload {
            nx: 1600,
            ny: 1,
            nz: 1600,
            steps: 4000,
            snap_period: 10,
            n_receivers: 400,
        },
        (Formulation::Isotropic, Dims::Three) => Workload {
            nx: 600,
            ny: 600,
            nz: 600,
            steps: 4500,
            snap_period: 4,
            n_receivers: 2500,
        },
        (Formulation::Acoustic, Dims::Three) => Workload {
            nx: 400,
            ny: 400,
            nz: 400,
            steps: 2200,
            snap_period: 4,
            n_receivers: 2500,
        },
        (Formulation::Elastic, Dims::Three) => Workload {
            nx: 400,
            ny: 400,
            nz: 400,
            steps: 8000,
            snap_period: 4,
            n_receivers: 2500,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::STENCIL_HALF;
    use seismic_model::footprint;

    #[test]
    fn memory_constraints_reproduce_x_cells() {
        const GB: u64 = 1 << 30;
        for case in SeismicCase::all() {
            let w = table_workload(&case);
            let pts = w.alloc_points(STENCIL_HALF) as usize;
            let bytes = footprint::modeling_bytes(case.formulation, case.dims, pts);
            match (case.formulation, case.dims) {
                (Formulation::Elastic, Dims::Three) => {
                    assert!(bytes > 6 * GB, "elastic 3D must exceed Fermi");
                    assert!(bytes < 12 * GB, "elastic 3D must fit Kepler");
                }
                (_, Dims::Three) => {
                    assert!(bytes < 6 * GB, "{:?} must fit Fermi", case);
                }
                (_, Dims::Two) => {
                    assert!(bytes < GB, "2D cases are small");
                }
            }
        }
    }

    #[test]
    fn staggered_cases_use_coarser_grids() {
        let iso = table_workload(&SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Three,
        });
        let ac = table_workload(&SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Three,
        });
        assert!(ac.points() < iso.points());
    }
}
