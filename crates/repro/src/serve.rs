//! acc-serve experiments: the overload sweep and the CI smoke scenario.
//!
//! The paper's production framing — many surveys from many groups
//! contending for one GPU fleet — is exercised here as a service-level
//! study: offered load is swept past fleet capacity and the server's
//! degradation is tabulated (goodput, tail latency, shed rate, typed
//! rejections, deadline cancellations, breaker activity). Everything is
//! simulated-time deterministic: the same multiplier and seed always
//! produce the same row.

use acc_obs::ObsSession;
use acc_serve::{
    JobOutcome, JobSpec, Rejected, Scenario, ServeReport, Server, ServerConfig, Submission, Tenant,
};
use accel_sim::fault::{FaultPlan, FaultRates, FleetFaultPlan};
use rtm_core::error::RtmError;
use rtm_core::RetryPolicy;

/// Horizon over which the submission stream arrives, simulated seconds.
pub const HORIZON_S: f64 = 60.0;

/// Per-shot cost of every synthetic job in the study, gp·s.
pub const SHOT_COST_S: f64 = 2.0;

/// Deterministic per-index variation (splitmix64 finalizer).
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The server configuration every sweep point and the smoke run use.
pub fn study_config(n_devices: usize) -> ServerConfig {
    ServerConfig {
        n_devices,
        // Tight enough that >1× offered load exercises brown-out shedding
        // and QueueFull rejections.
        queue_capacity_cost_s: 80.0,
        tenant_quota_cost_s: 60.0,
        // Few retries: transient allocation faults exhaust quickly and
        // feed the per-device circuit breakers.
        retry: RetryPolicy {
            max_retries: 1,
            base_delay_s: 0.25,
            max_delay_s: 4.0,
        },
        // Trip on two consecutive exhausted shots and recover quickly —
        // the study wants visible open/half-open/closed traffic, not
        // hour-scale production cooldowns.
        breaker: acc_serve::BreakerConfig {
            failure_threshold: 2,
            cooldown_s: 6.0,
            probe_shots: 1,
        },
        ..ServerConfig::default()
    }
}

/// The study fleet: transient allocation faults at a rate that trips
/// breakers now and then, plus whatever device losses the seed draws.
pub fn study_fleet(seed: u64, n_devices: usize) -> FleetFaultPlan {
    let rates = FaultRates {
        transient_oom_prob: 0.35,
        ..FaultRates::none()
    };
    FleetFaultPlan::single(FaultPlan::generate(seed, n_devices, 4.0 * HORIZON_S, rates))
}

/// A mixed-tenant submission stream offering `multiplier ×` the fleet's
/// capacity over [`HORIZON_S`]. Three tenants with weights 3:2:1, four
/// priority classes, a third of the jobs carrying deadlines.
pub fn overload_scenario(multiplier: f64, seed: u64, n_devices: usize) -> Scenario {
    let tenants = vec![
        Tenant::new("alpha", 3),
        Tenant::new("beta", 2),
        Tenant::new("gamma", 1),
    ];
    let capacity = n_devices as f64 * HORIZON_S;
    let target = multiplier * capacity;
    let mut jobs = Vec::new();
    let mut offered = 0.0;
    let mut i = 0u64;
    while offered < target {
        let h = mix(seed, i);
        let n_shots = 3 + (h % 6) as usize; // 3..=8 shots
        let cost = n_shots as f64 * SHOT_COST_S;
        let arrival = (h >> 16) as f64 % 1000.0 / 1000.0 * HORIZON_S;
        let mut spec =
            JobSpec::synthetic((i % 3) as usize, ((h >> 8) % 4) as u8, n_shots, SHOT_COST_S);
        if i.is_multiple_of(3) {
            // Deadline with moderate slack: feasible when admitted
            // promptly, cancelled under heavy contention.
            spec = spec.with_deadline(arrival + 1.5 * cost + 6.0);
        }
        jobs.push(Submission {
            arrival_s: arrival,
            spec,
        });
        offered += cost;
        i += 1;
    }
    Scenario { tenants, jobs }
}

/// One offered-load point of the overload sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadRow {
    /// Offered load over fleet capacity.
    pub multiplier: f64,
    /// Estimated cost of all submissions, gp·s.
    pub offered_cost_s: f64,
    /// Estimated cost of completed jobs, gp·s.
    pub goodput_cost_s: f64,
    /// Mean completion latency, s.
    pub mean_latency_s: f64,
    /// 99th-percentile completion latency, s.
    pub p99_latency_s: f64,
    /// Shed jobs over admitted jobs.
    pub shed_rate: f64,
    /// Completed jobs.
    pub completed: usize,
    /// Brown-out shed jobs.
    pub shed: usize,
    /// Typed admission rejections.
    pub rejected: usize,
    /// Deadline cancellations.
    pub cancelled: usize,
    /// Circuit-breaker transitions over the serve.
    pub breaker_transitions: usize,
}

/// Sweep offered load across `multipliers` of fleet capacity.
/// Deterministic per (multiplier, seed, n_devices).
pub fn overload_sweep(
    multipliers: &[f64],
    seed: u64,
    n_devices: usize,
) -> Result<Vec<OverloadRow>, RtmError> {
    multipliers
        .iter()
        .map(|&m| {
            let scenario = overload_scenario(m, seed, n_devices);
            let server = Server::new(study_config(n_devices), study_fleet(seed, n_devices));
            let r = server.run(&scenario, None)?;
            Ok(OverloadRow {
                multiplier: m,
                offered_cost_s: r.offered_cost_s,
                goodput_cost_s: r.goodput_cost_s,
                mean_latency_s: r.mean_latency_s,
                p99_latency_s: r.p99_latency_s,
                shed_rate: r.shed_rate,
                completed: r.jobs_completed,
                shed: r.jobs_shed,
                rejected: r.jobs_rejected,
                cancelled: r.jobs_cancelled,
                breaker_transitions: r.breaker_log.len(),
            })
        })
        .collect()
}

/// ASCII table of the sweep.
pub fn render_overload_table(rows: &[OverloadRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "  {:>5}  {:>9}  {:>9}  {:>8}  {:>8}  {:>6}  {:>5}  {:>5}  {:>5}  {:>5}  {:>8}\n",
        "load",
        "offered",
        "goodput",
        "mean lat",
        "p99 lat",
        "shed%",
        "done",
        "shed",
        "rej",
        "cancel",
        "breaker"
    ));
    for r in rows {
        s.push_str(&format!(
            "  {:>4.1}x  {:>8.0}s  {:>8.0}s  {:>7.1}s  {:>7.1}s  {:>5.1}%  {:>5}  {:>5}  {:>5}  {:>6}  {:>8}\n",
            r.multiplier,
            r.offered_cost_s,
            r.goodput_cost_s,
            r.mean_latency_s,
            r.p99_latency_s,
            100.0 * r.shed_rate,
            r.completed,
            r.shed,
            r.rejected,
            r.cancelled,
            r.breaker_transitions,
        ));
    }
    s
}

/// JSON document of the sweep (one object per row).
pub fn overload_rows_json(rows: &[OverloadRow]) -> serde_json::Value {
    let out: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            let mut o = serde_json::Map::new();
            o.insert("multiplier", r.multiplier);
            o.insert("offered_cost_s", r.offered_cost_s);
            o.insert("goodput_cost_s", r.goodput_cost_s);
            o.insert("mean_latency_s", r.mean_latency_s);
            o.insert("p99_latency_s", r.p99_latency_s);
            o.insert("shed_rate", r.shed_rate);
            o.insert("completed", r.completed);
            o.insert("shed", r.shed);
            o.insert("rejected", r.rejected);
            o.insert("cancelled", r.cancelled);
            o.insert("breaker_transitions", r.breaker_transitions);
            serde_json::Value::Object(o)
        })
        .collect();
    serde_json::Value::from(out)
}

/// Seed of the smoke scenario. Chosen (and pinned) so the fleet plan
/// loses one device early while at least one device survives the run —
/// the smoke test wants both fault handling and completion.
pub const SMOKE_SEED: u64 = 11;

/// The CI smoke scenario: a 2× capacity mixed-tenant burst on a fleet
/// with transient allocation faults and an early device loss.
pub fn smoke_scenario() -> (ServerConfig, FleetFaultPlan, Scenario) {
    let n_devices = 4;
    let cfg = study_config(n_devices);
    let rates = FaultRates {
        transient_oom_prob: 0.35,
        device_lost_mtti_s: 200.0,
        ..FaultRates::none()
    };
    let fleet = FleetFaultPlan::single(FaultPlan::generate(
        SMOKE_SEED,
        n_devices,
        2.0 * HORIZON_S,
        rates,
    ));
    let scenario = overload_scenario(2.0, SMOKE_SEED, n_devices);
    (cfg, fleet, scenario)
}

/// Run the smoke scenario (optionally observed: queue/shed gauges and
/// service spans land in `obs`).
pub fn smoke_run(obs: Option<&ObsSession>) -> Result<(Scenario, ServeReport), RtmError> {
    let (cfg, fleet, scenario) = smoke_scenario();
    let report = Server::new(cfg, fleet).run(&scenario, obs)?;
    Ok((scenario, report))
}

/// Service-level violations of one smoke run; an empty list is the CI
/// pass condition.
pub fn smoke_violations(scenario: &Scenario, report: &ServeReport) -> Vec<String> {
    let mut v = Vec::new();
    if report.jobs_completed == 0 {
        v.push("no job completed".to_string());
    }
    // Shed-order invariant: the shedder always drops the lowest-priority
    // queued job. A shed job never started, so if job j (strictly lower
    // priority) is shed strictly *later* than job i, then j was sitting
    // in the queue when i was dropped — i's shed was out of order.
    let sheds: Vec<(usize, u8, f64)> = report
        .outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, o)| match o {
            JobOutcome::Shed { at_s } => Some((i, scenario.jobs[i].spec.priority, *at_s)),
            _ => None,
        })
        .collect();
    for &(i, pi, ti) in &sheds {
        for &(j, pj, tj) in &sheds {
            if pj < pi && tj > ti && scenario.jobs[j].arrival_s <= ti {
                v.push(format!(
                    "job {i} (priority {pi}) shed at {ti:.2}s while lower-priority job {j} \
                     (priority {pj}) stayed queued until {tj:.2}s"
                ));
            }
        }
    }
    for (i, o) in report.outcomes.iter().enumerate() {
        let spec = &scenario.jobs[i].spec;
        match o {
            JobOutcome::Completed { finish_s, .. } => {
                if let Some(d) = spec.deadline_s {
                    if *finish_s > d {
                        v.push(format!(
                            "job {i} completed at {finish_s:.2}s past its deadline {d:.2}s"
                        ));
                    }
                }
            }
            JobOutcome::Shed { .. } => {}
            JobOutcome::Rejected(Rejected::Draining) => {
                v.push(format!("job {i} rejected as draining in a non-drain run"));
            }
            JobOutcome::Failed { error } => {
                v.push(format!("job {i} failed: {error}"));
            }
            JobOutcome::Drained => {
                v.push(format!("job {i} reported drained in a non-drain run"));
            }
            JobOutcome::Rejected(_) | JobOutcome::CancelledDeadline { .. } => {}
        }
    }
    v
}

/// Machine-readable smoke report for the CI artifact.
pub fn smoke_report_json(
    scenario: &Scenario,
    report: &ServeReport,
    violations: &[String],
) -> serde_json::Value {
    let mut doc = serde_json::Map::new();
    doc.insert("tool", "accserve");
    doc.insert("scenario_jobs", scenario.jobs.len());
    doc.insert("makespan_s", report.makespan_s);
    doc.insert("offered_cost_s", report.offered_cost_s);
    doc.insert("goodput_cost_s", report.goodput_cost_s);
    doc.insert("mean_latency_s", report.mean_latency_s);
    doc.insert("p99_latency_s", report.p99_latency_s);
    doc.insert("shed_rate", report.shed_rate);
    doc.insert("jobs_completed", report.jobs_completed);
    doc.insert("jobs_shed", report.jobs_shed);
    doc.insert("jobs_rejected", report.jobs_rejected);
    doc.insert("jobs_cancelled", report.jobs_cancelled);
    doc.insert("breaker_transitions", report.breaker_log.len());
    doc.insert(
        "served_cost_by_tenant",
        report
            .served_cost_by_tenant
            .iter()
            .map(|&c| serde_json::Value::from(c))
            .collect::<Vec<serde_json::Value>>(),
    );
    doc.insert(
        "violations",
        violations
            .iter()
            .map(|s| serde_json::Value::from(s.as_str()))
            .collect::<Vec<serde_json::Value>>(),
    );
    doc.insert("pass", violations.is_empty());
    serde_json::Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_degrades_monotonically_in_rejections() {
        let rows = overload_sweep(&[0.5, 1.0, 2.0], 7, 4).unwrap();
        assert_eq!(rows.len(), 3);
        // Offered load grows with the multiplier...
        assert!(rows[0].offered_cost_s < rows[2].offered_cost_s);
        // ...but refused-or-shed work only appears past saturation.
        assert_eq!(rows[0].rejected + rows[0].shed, 0, "{rows:?}");
        assert!(rows[2].rejected + rows[2].shed > 0, "{rows:?}");
        // Everyone admitted still terminates somehow.
        for r in &rows {
            assert!(r.completed > 0);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = overload_sweep(&[1.5], 3, 4).unwrap();
        let b = overload_sweep(&[1.5], 3, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn smoke_run_passes_its_own_gate() {
        let (scenario, report) = smoke_run(None).unwrap();
        let violations = smoke_violations(&scenario, &report);
        assert!(violations.is_empty(), "{violations:?}");
        let doc = smoke_report_json(&scenario, &report, &violations);
        let text = serde_json::to_string(&doc);
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back.get("pass").and_then(|p| p.as_bool()), Some(true));
    }
}
