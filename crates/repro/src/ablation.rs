//! Ablations over the design choices DESIGN.md calls out.
//!
//! Four studies, each isolating one mechanism:
//!
//! 1. **Working `tile`/`cache` clauses** — the paper reports "the tile and
//!    cache features are not working properly in both CRAY and PGI"; this
//!    ablation prices what a functioning shared-memory staging clause
//!    would have bought (stencil reads drop toward compulsory traffic).
//! 2. **Pinned vs pageable host memory** — the PGI `pin` compile option of
//!    the paper's best strategy, measured on the transfer-heavy isotropic
//!    RTM case.
//! 3. **Partial (ghost/consistency) vs full-field host updates** — "only
//!    the ghost nodes need to be exchanged ... significantly reduces the
//!    amount of data exchange".
//! 4. **Absorbing-layer width** — a real-execution study of our C-PML
//!    implementation: residual boundary reflection vs layer width vs the
//!    extra compute it costs.

use crate::cases::table_workload;
use accel_sim::kernel::{time_kernel, KernelProfile};
use accel_sim::pcie::{transfer_time, HostAlloc, TransferKind};
use openacc_sim::{Compiler, PgiVersion};
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase, Workload};
use rtm_core::gpu_time::rtm_time;
use seismic_model::footprint::{Dims, Formulation};

/// Fraction of stencil-kernel DRAM reads that survive when a working
/// `cache`/`tile` clause stages the reused neighbourhood in shared memory
/// (compulsory traffic: each input read once, each output written once).
pub const WORKING_CACHE_CLAUSE_READ_FACTOR: f64 = 0.55;

/// Ablation 1: per-step kernel time of the isotropic 3D main kernel with
/// and without a functioning cache clause, per card. Returns
/// `(card, without_s, with_s)` for one step over the table workload.
pub fn cache_clause_ablation() -> Vec<(&'static str, f64, f64)> {
    let case = SeismicCase {
        formulation: Formulation::Isotropic,
        dims: Dims::Three,
    };
    let w = table_workload(&case);
    let descs = seismic_prop::desc::iso3d(seismic_prop::IsoPmlVariant::RestructuredIndices);
    [Cluster::CrayXc30, Cluster::Ibm]
        .into_iter()
        .map(|cluster| {
            let dev = cluster.device();
            let mut without = 0.0;
            let mut with = 0.0;
            for d in &descs {
                let base =
                    KernelProfile::new(d.name, w.points(), d.flops, d.bytes_per_point(), d.regs);
                without += time_kernel(&dev, &base).exec_s;
                let staged = KernelProfile {
                    bytes_per_point: 4.0 * (d.reads * WORKING_CACHE_CLAUSE_READ_FACTOR + d.writes),
                    // Staging costs a few registers for the tile indices.
                    regs_needed: d.regs + 6,
                    ..base
                };
                with += time_kernel(&dev, &staged).exec_s;
            }
            (dev.name, without, with)
        })
        .collect()
}

/// Ablation 2: isotropic 2D RTM total time with pinned vs pageable host
/// buffers (the `pin` compile option).
pub fn pinned_memory_ablation() -> (f64, f64) {
    let case = SeismicCase {
        formulation: Formulation::Isotropic,
        dims: Dims::Two,
    };
    let w = table_workload(&case);
    let cfg = OptimizationConfig::default();
    // The runtime always uses pinned buffers; reconstruct the pageable
    // variant by re-pricing its transfers at pageable bandwidth.
    let run = rtm_time(
        &case,
        &cfg,
        Compiler::Pgi(PgiVersion::V14_3),
        Cluster::Ibm,
        &w,
    )
    .expect("2D fits");
    let pinned_total = run.breakdown.total_s;
    let dev = Cluster::Ibm.device();
    let ratio = {
        let b = 1u64 << 22; // representative transfer size
        transfer_time(&dev, b, HostAlloc::Pageable, TransferKind::Contiguous)
            / transfer_time(&dev, b, HostAlloc::Pinned, TransferKind::Contiguous)
    };
    let pageable_total = pinned_total + run.breakdown.transfer_s * (ratio - 1.0);
    (pageable_total, pinned_total)
}

/// Ablation 3: the isotropic RTM consistency updates moved as partial
/// (1/8 field) vs full-field transfers each step.
pub fn partial_transfer_ablation() -> (f64, f64) {
    let case = SeismicCase {
        formulation: Formulation::Isotropic,
        dims: Dims::Three,
    };
    let w = table_workload(&case);
    let dev = Cluster::CrayXc30.device();
    let wf_bytes = w.alloc_points(seismic_grid::STENCIL_HALF) * 4;
    let per_step_partial = 2.0
        * transfer_time(
            &dev,
            wf_bytes / 8,
            HostAlloc::Pinned,
            TransferKind::Contiguous,
        );
    let per_step_full =
        2.0 * transfer_time(&dev, wf_bytes, HostAlloc::Pinned, TransferKind::Contiguous);
    (
        per_step_full * 2.0 * w.steps as f64,
        per_step_partial * 2.0 * w.steps as f64,
    )
}

/// Ablation 4 (real execution): residual boundary reflection and wall-time
/// cost vs C-PML width for 2D acoustic propagation. Returns
/// `(width, residual_energy_fraction)`.
pub fn pml_width_ablation() -> Vec<(usize, f64)> {
    use rtm_core::modeling::{run_modeling, Medium2};
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::acoustic2_layered;
    use seismic_model::builder::Layer;
    use seismic_model::{extent2, Geometry};
    use seismic_pml::CpmlAxis;
    use seismic_source::{Acquisition2, Wavelet};

    let n = 120;
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 1500.0, h, 0.6);
    // Homogeneous water: every recorded late arrival is boundary leakage.
    let layers = [Layer {
        z_top: 0,
        vp: 1500.0,
        vs: 0.0,
        rho: 1000.0,
    }];
    let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
    [6usize, 12, 24]
        .into_iter()
        .map(|width| {
            let c = CpmlAxis::new(n, e.halo, width, dt, 1500.0, h, 1e-4);
            let medium = Medium2::Acoustic {
                model: model.clone(),
                cpml: [c.clone(), c],
            };
            let acq = Acquisition2::surface_line(n, n / 2, n / 2, n / 2, 8);
            let steps = 900;
            let r = run_modeling(
                &medium,
                &acq,
                &Wavelet::ricker(20.0),
                &OptimizationConfig::default(),
                steps,
                25,
                4,
            );
            // Energy left in the grid long after the direct wave has left,
            // relative to the peak energy the grid ever held.
            let late = r.snapshots.last().expect("final snapshot").energy();
            let peak = r
                .snapshots
                .iter()
                .map(|s| s.energy())
                .fold(0.0f64, f64::max)
                .max(1e-30);
            (width, late / peak)
        })
        .collect()
}

/// Convenience: table workload with steps scaled down for quick studies.
pub fn quick_workload(case: &SeismicCase, divisor: usize) -> Workload {
    let mut w = table_workload(case);
    w.steps = (w.steps / divisor).max(1);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A working cache clause must help the memory-bound stencil on both
    /// cards, by roughly the read-traffic reduction.
    #[test]
    fn cache_clause_would_have_helped() {
        for (card, without, with) in cache_clause_ablation() {
            let gain = without / with;
            assert!(gain > 1.2 && gain < 2.0, "{card}: gain {gain}");
        }
    }

    /// Pinned buffers beat pageable ones end-to-end on the transfer-heavy
    /// iso RTM case.
    #[test]
    fn pin_option_pays() {
        let (pageable, pinned) = pinned_memory_ablation();
        assert!(pinned < pageable);
        let gain = pageable / pinned;
        assert!(gain > 1.05 && gain < 2.5, "gain {gain}");
    }

    /// Partial transfers cut the consistency traffic several-fold.
    #[test]
    fn partial_transfers_pay() {
        let (full, partial) = partial_transfer_ablation();
        let gain = full / partial;
        assert!(gain > 3.0 && gain < 9.0, "gain {gain}");
    }

    /// Wider C-PML absorbs better (monotone residual decrease), with
    /// diminishing returns.
    #[test]
    fn pml_width_monotone() {
        let res = pml_width_ablation();
        assert_eq!(res.len(), 3);
        assert!(res[0].1 > res[1].1, "{res:?}");
        assert!(res[1].1 >= res[2].1 * 0.5, "{res:?}");
        // Even the narrow layer keeps leakage under 20 %.
        assert!(res[0].1 < 0.2, "{res:?}");
    }
}
