//! # repro
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation from the simulation stack.
//!
//! * [`paper`] — the published numbers of Tables 3 and 4, cell by cell,
//! * [`cases`] — the calibrated production-scale workload for each of the
//!   twelve seismic cases (the paper never states its grid sizes; these are
//!   chosen once, documented, and used for every experiment),
//! * [`table`] — Table 3/4 generation with paper-vs-model comparison,
//! * [`figures`] — data series for Figures 6–15,
//! * [`render`] — ASCII / PGM rendering of wavefields and images
//!   (Figures 3 and 5),
//! * [`resilience`] — overhead-vs-MTTI sweeps of the fault-tolerant
//!   executor and checkpoint-restart recompute measurements,
//! * [`verify`] — the `acc-verify` lint report over the twelve cases (the
//!   `accverify` binary and CI gate),
//! * [`vector`] — the vectorization-legality certificates over the twelve
//!   cases plus the seeded mutation gate (`accverify --vector`),
//! * [`accprof`] — the pseudo-profiler: one observed run of any case
//!   emitting an nvprof-style summary, a `--metrics` counter table, a
//!   Perfetto timeline, and a machine-readable report,
//! * [`calibrate`] — model-vs-measured calibration: real host-engine runs
//!   of the six propagator cases (wall-clock, per-phase profiled) against
//!   the GPU timing model's pricing of the same workloads, with per-device
//!   rank correlations (the `calibrate` binary and CI artifact).
//!
//! * [`serve`] — service-level study of `acc-serve`: offered load swept
//!   past fleet capacity (goodput, tail latency, shed rate, breaker
//!   activity) and the CI smoke scenario,
//! * [`rand_bound`] — random-boundary remodeling vs Young-interval
//!   checkpointing: per-case memory footprint and simulated time across
//!   all twelve table cases (the `rand_bound` binary and CI gate),
//!
//! [`ablation`] adds studies of the design choices DESIGN.md calls out
//! (working tile/cache clauses, pinned memory, partial transfers, C-PML
//! width).
//!
//! Each table/figure has a binary under `src/bin/`; see DESIGN.md for the
//! experiment index.

pub mod ablation;
pub mod accprof;
pub mod calibrate;
pub mod cases;
pub mod figures;
pub mod paper;
pub mod rand_bound;
pub mod render;
pub mod resilience;
pub mod serve;
pub mod table;
pub mod vector;
pub mod verify;
