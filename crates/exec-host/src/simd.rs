//! Process-wide registry of *certified* SIMD widths.
//!
//! The vectorization verifier (`acc-verify::vectorize`) proves, per kernel,
//! the widest lane count `N` for which every carried dependence has
//! distance ≥ N. The host engine consumes those proofs here: sweeps look
//! their kernel name up and annotate their tilings with the certified
//! width, so the loop scheduler never assumes more SIMD parallelism than
//! the verifier could justify.
//!
//! Publication is *monotone downward*: if two certificates disagree for
//! one kernel name (e.g. the same stencil certified under two compiler
//! contexts), the smaller width wins — a width is a promise, and the
//! weakest promise is the only one safe to act on. Unknown kernels
//! default to width 1 (scalar), the always-legal fallback.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

fn registry() -> &'static Mutex<HashMap<String, u32>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, u32>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Record a certified width for `kernel`. Widths only ever shrink: a
/// second publication with a smaller width replaces the first, a larger
/// one is ignored.
pub fn publish_width(kernel: &str, width: u32) {
    let width = width.max(1);
    let mut map = registry().lock().unwrap();
    map.entry(kernel.to_string())
        .and_modify(|w| *w = (*w).min(width))
        .or_insert(width);
}

/// The certified width for `kernel`, or 1 (scalar) when no certificate
/// has been published.
pub fn certified_width(kernel: &str) -> u32 {
    registry().lock().unwrap().get(kernel).copied().unwrap_or(1)
}

/// Drop every published certificate (test isolation).
pub fn clear() {
    registry().lock().unwrap().clear();
}

/// Snapshot of the registry, sorted by kernel name (for reports).
pub fn snapshot() -> Vec<(String, u32)> {
    let map = registry().lock().unwrap();
    let mut v: Vec<_> = map.iter().map(|(k, w)| (k.clone(), *w)).collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kernel_is_scalar() {
        clear();
        assert_eq!(certified_width("nobody_published_me"), 1);
    }

    #[test]
    fn publication_is_monotone_downward() {
        clear();
        publish_width("simd_sweep", 8);
        assert_eq!(certified_width("simd_sweep"), 8);
        publish_width("simd_sweep", 4);
        assert_eq!(certified_width("simd_sweep"), 4);
        publish_width("simd_sweep", 8);
        assert_eq!(certified_width("simd_sweep"), 4, "widths never grow");
        publish_width("simd_sweep", 0);
        assert_eq!(certified_width("simd_sweep"), 1, "clamped to scalar");
        clear();
    }

    #[test]
    fn snapshot_is_sorted() {
        clear();
        publish_width("b_kernel", 2);
        publish_width("a_kernel", 8);
        let snap = snapshot();
        assert_eq!(
            snap,
            vec![("a_kernel".to_string(), 8), ("b_kernel".to_string(), 2)]
        );
        clear();
    }
}
