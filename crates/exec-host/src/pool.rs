//! Persistent gang worker pool with a low-overhead fork-join barrier.
//!
//! A *launch* runs a kernel body over `gangs` contiguous z-slabs of
//! `[0, n)`. The slab map is a pure function of `(n, gangs, g)` — see
//! [`slab_bounds`] — so results are bitwise independent of which worker
//! executes which slab, and a launch over 16 gangs on a 2-core machine
//! produces exactly the bits of a sequential sweep.
//!
//! ## Why not `std::thread::scope` per launch
//!
//! The propagator drivers issue one launch per kernel per time step; a
//! production run is millions of launches. Spawning and joining OS threads
//! for each one costs hundreds of microseconds — comparable to the kernel
//! body itself on small and medium grids. The pool parks its workers on a
//! condvar between launches; a launch bumps a generation counter, wakes
//! them, and they claim slabs from an atomic counter until none remain.
//! The steady-state cost of a launch is one mutex lock, one `notify_all`,
//! and two atomics per slab — and **zero heap allocation**, which is what
//! the counting-allocator test in `rtm-core` pins down.
//!
//! ## Concurrency discipline
//!
//! One launch runs at a time per pool. Concurrent callers (e.g. shots
//! running in parallel on `mpi-sim` ranks, each issuing gang launches) do
//! not queue: a caller that finds the pool busy simply executes its own
//! slabs inline, sequentially, in slab order — the deterministic slab map
//! makes that fall-back bit-identical, and shot-level threads already own
//! the cores. The same inline path serves nested launches and single-gang
//! launches.

use std::cell::UnsafeCell;

/// Synchronization primitives, swappable for `loom`'s model-checked
/// versions: build with `RUSTFLAGS="--cfg loom"` and the pool's barrier
/// protocol runs under bounded schedule exploration (see
/// `tests/loom_pool.rs`) instead of real threads.
#[cfg(not(loom))]
mod sys {
    pub use std::sync::atomic::{AtomicUsize, Ordering};
    pub use std::sync::{Condvar, Mutex};
    pub use std::thread;

    /// Fork-join spin budget before parking on the condvar.
    pub const SPIN_LIMIT: u32 = 1 << 14;
}

#[cfg(loom)]
mod sys {
    pub use loom::sync::atomic::{AtomicUsize, Ordering};
    pub use loom::sync::{Condvar, Mutex};
    pub use loom::thread;

    /// Spinning never makes progress under the serialized model scheduler
    /// (no other thread runs while we spin), so park immediately.
    pub const SPIN_LIMIT: u32 = 0;
}

use sys::{thread, AtomicUsize, Condvar, Mutex, Ordering, SPIN_LIMIT};

#[cfg(not(loom))]
use std::sync::OnceLock;

// Wall-clock profiling hooks. Compiled out of loom model-check builds: the
// profiler uses real `Instant`/`thread_local!` state that loom cannot
// model, and the barrier protocol under test is unchanged by it (recording
// never branches the schedule).
#[cfg(not(loom))]
use crate::prof;
#[cfg(not(loom))]
use std::sync::atomic::AtomicU64;

type JoinHandle = thread::JoinHandle<()>;

/// Bounds `(z0, z1)` of slab `g` when `[0, n)` is split over `gangs`
/// contiguous chunks, remainder spread over the leading gangs — the same
/// partition the sequential reference loop produces.
#[inline]
pub fn slab_bounds(n: usize, gangs: usize, g: usize) -> (usize, usize) {
    debug_assert!(g < gangs);
    let base = n / gangs;
    let rem = n % gangs;
    let z0 = g * base + g.min(rem);
    let z1 = z0 + base + usize::from(g < rem);
    (z0, z1)
}

/// The body of one launch: `(gang index, z0, z1)`.
type Body<'a> = &'a (dyn Fn(usize, usize, usize) + Sync);

/// Type-erased job descriptor published to the workers for one launch.
#[derive(Clone, Copy)]
struct JobDesc {
    /// Fat pointer to the launch body. Valid only between the epoch bump
    /// that publishes it and the in-flight drain that retires it; the
    /// launching caller blocks across that whole window.
    body: *const (dyn Fn(usize, usize, usize) + Sync),
    n: usize,
    gangs: usize,
}

/// State guarded by the control mutex.
struct Ctl {
    /// Launch generation; workers run at most one claim loop per epoch.
    epoch: u64,
    /// True while a launch is published and may still hand out slabs.
    active: bool,
    /// Workers currently holding the job pointer (between copy and retire).
    in_flight: usize,
    /// Tells workers to exit (pool drop — test pools only; the global pool
    /// lives for the process).
    shutdown: bool,
}

struct Shared {
    ctl: Mutex<Ctl>,
    /// Workers park here between launches.
    work_cv: Condvar,
    /// The launching caller parks here waiting for slab completion / drain.
    done_cv: Condvar,
    /// Next slab index to claim (may overshoot `gangs`; harmless).
    claim: AtomicUsize,
    /// Slabs fully executed this epoch.
    done: AtomicUsize,
    /// Current job. Written by the caller before the epoch bump, read by
    /// workers under the control mutex only while `active`.
    job: UnsafeCell<Option<JobDesc>>,
    /// Wall-clock stamp (ns since the profiler epoch) of the most recent
    /// job publish; workers subtract it from their pickup time to measure
    /// wake latency. Written before the epoch bump (the control mutex
    /// orders it for readers); 0 = profiler off at publish time.
    #[cfg(not(loom))]
    publish_ns: AtomicU64,
}

// SAFETY: `job` is only written while no launch is active (enforced by the
// launch mutex + in-flight drain) and only read under the control mutex by
// workers that observed `active` for a fresh epoch.
unsafe impl Sync for Shared {}
unsafe impl Send for Shared {}

/// A persistent pool of gang workers. See the module docs for the launch
/// protocol. Obtain the process-wide instance with [`GangPool::global`];
/// dedicated instances ([`GangPool::new`]) exist for tests and benches.
pub struct GangPool {
    shared: &'static Shared,
    workers: Vec<JoinHandle>,
    /// Serializes launches; contended callers run inline.
    launch: Mutex<()>,
    /// Total launches that went through the parked-worker path.
    pooled_launches: AtomicUsize,
    /// Total launches executed inline (single gang, busy pool, no workers).
    inline_launches: AtomicUsize,
}

impl GangPool {
    /// Pool with exactly `workers` parked worker threads (the launching
    /// caller always participates as one extra executor).
    pub fn new(workers: usize) -> Self {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            ctl: Mutex::new(Ctl {
                epoch: 0,
                active: false,
                in_flight: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            job: UnsafeCell::new(None),
            #[cfg(not(loom))]
            publish_ns: AtomicU64::new(0),
        }));
        let workers = (0..workers)
            .map(|i| {
                thread::Builder::new()
                    .name(format!("gang-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn gang worker")
            })
            .collect();
        Self {
            shared,
            workers,
            launch: Mutex::new(()),
            pooled_launches: AtomicUsize::new(0),
            inline_launches: AtomicUsize::new(0),
        }
    }

    /// The process-wide pool, created on first use with one worker per
    /// available core beyond the caller's (capped at 15 workers — the
    /// OpenACC gang clamp), so a launch of G gangs uses
    /// `min(G, cores)` threads and queues the rest through the claim
    /// counter.
    #[cfg(not(loom))]
    pub fn global() -> &'static GangPool {
        static POOL: OnceLock<GangPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            GangPool::new(cores.saturating_sub(1).min(15))
        })
    }

    /// Number of parked worker threads (excludes the launching caller).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Thread ids of the parked workers — lets tests verify that
    /// back-to-back launches reuse the same OS threads.
    #[cfg(not(loom))]
    pub fn worker_ids(&self) -> Vec<std::thread::ThreadId> {
        self.workers.iter().map(|h| h.thread().id()).collect()
    }

    /// Launches executed through the parked-worker barrier so far.
    pub fn pooled_launches(&self) -> usize {
        self.pooled_launches.load(Ordering::Relaxed)
    }

    /// Launches executed inline (single gang, contended, or worker-less).
    pub fn inline_launches(&self) -> usize {
        self.inline_launches.load(Ordering::Relaxed)
    }

    /// Run `body(g, z0, z1)` for every slab of `[0, n)` split over `gangs`.
    ///
    /// Bit-identical to the sequential loop `for g in 0..gangs { body(g,
    /// slab_bounds(..)) }` for any body that writes only state owned by its
    /// slab (the `SyncSlice` discipline). Allocation-free after the pool
    /// exists.
    pub fn run(&self, n: usize, gangs: usize, body: Body<'_>) {
        assert!(gangs > 0, "need at least one gang");
        if n == 0 {
            return;
        }
        let gangs = gangs.min(n);
        if gangs == 1 || self.workers.is_empty() {
            self.run_inline(n, gangs, body);
            return;
        }
        // One launch at a time: a busy pool means another thread's gangs own
        // the cores right now, so computing our slabs inline is both correct
        // (deterministic slab map) and the right scheduling call.
        let Ok(_guard) = self.launch.try_lock() else {
            self.run_inline(n, gangs, body);
            return;
        };
        self.pooled_launches.fetch_add(1, Ordering::Relaxed);
        let shared = self.shared;
        // SAFETY: the fat pointer is only dereferenced while this call
        // blocks; the drain below guarantees no worker retains it.
        let erased: *const (dyn Fn(usize, usize, usize) + Sync) = unsafe {
            std::mem::transmute::<Body<'_>, *const (dyn Fn(usize, usize, usize) + Sync)>(body)
        };
        shared.claim.store(0, Ordering::Relaxed);
        shared.done.store(0, Ordering::Relaxed);
        // SAFETY: no launch is active (we hold the launch mutex and the
        // previous launch drained in_flight to zero), so no worker can read
        // `job` concurrently with this write.
        unsafe {
            *shared.job.get() = Some(JobDesc {
                body: erased,
                n,
                gangs,
            });
        }
        // Stamp the publish time so workers can report wake latency. The
        // control-mutex handoff below orders this store before any worker
        // reads it for the new epoch; 0 marks "profiler was off".
        #[cfg(not(loom))]
        shared.publish_ns.store(
            if prof::enabled() { prof::now_ns() } else { 0 },
            std::sync::atomic::Ordering::Relaxed,
        );
        {
            let mut ctl = shared.ctl.lock().expect("pool poisoned");
            ctl.epoch += 1;
            ctl.active = true;
            shared.work_cv.notify_all();
        }
        // The caller is an executor too: claim slabs until none remain.
        loop {
            let g = shared.claim.fetch_add(1, Ordering::Relaxed);
            if g >= gangs {
                break;
            }
            let (z0, z1) = slab_bounds(n, gangs, g);
            #[cfg(not(loom))]
            let t_slab = prof::begin();
            body(g, z0, z1);
            #[cfg(not(loom))]
            prof::end(t_slab, prof::EventKind::Slab, g as u32, (z1 - z0) as u32);
            shared.done.fetch_add(1, Ordering::Release);
        }
        // Fork-join barrier: spin briefly (slabs are usually comparable in
        // cost), then park on the condvar.
        #[cfg(not(loom))]
        let t_barrier = prof::begin();
        let mut spins = 0u32;
        while shared.done.load(Ordering::Acquire) < gangs {
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                let mut ctl = shared.ctl.lock().expect("pool poisoned");
                while shared.done.load(Ordering::Acquire) < gangs {
                    ctl = shared.done_cv.wait(ctl).expect("pool poisoned");
                }
                break;
            }
        }
        #[cfg(not(loom))]
        prof::end(t_barrier, prof::EventKind::BarrierWait, gangs as u32, 0);
        // Retire the job: wait until every worker that saw this epoch has
        // dropped the pointer, then clear it. A straggler that claimed
        // nothing exits its (empty) claim loop in nanoseconds.
        {
            let mut ctl = shared.ctl.lock().expect("pool poisoned");
            ctl.active = false;
            while ctl.in_flight > 0 {
                ctl = shared.done_cv.wait(ctl).expect("pool poisoned");
            }
            // SAFETY: in_flight == 0 and active is false — no reader left.
            unsafe {
                *shared.job.get() = None;
            }
        }
    }

    /// Sequential in-caller execution with the same slab map.
    fn run_inline(&self, n: usize, gangs: usize, body: Body<'_>) {
        self.inline_launches.fetch_add(1, Ordering::Relaxed);
        for g in 0..gangs {
            let (z0, z1) = slab_bounds(n, gangs, g);
            #[cfg(not(loom))]
            let t_slab = prof::begin();
            body(g, z0, z1);
            #[cfg(not(loom))]
            prof::end(t_slab, prof::EventKind::Slab, g as u32, (z1 - z0) as u32);
        }
    }
}

impl Drop for GangPool {
    fn drop(&mut self) {
        {
            let mut ctl = self.shared.ctl.lock().expect("pool poisoned");
            ctl.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // The leaked Shared stays alive; pools are few and long-lived.
    }
}

fn worker_loop(shared: &'static Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let desc = {
            let mut ctl = shared.ctl.lock().expect("pool poisoned");
            loop {
                if ctl.shutdown {
                    return;
                }
                if ctl.active && ctl.epoch != seen_epoch {
                    seen_epoch = ctl.epoch;
                    ctl.in_flight += 1;
                    // SAFETY: read under the control mutex while active.
                    break unsafe { (*shared.job.get()).expect("active launch has a job") };
                }
                ctl = shared.work_cv.wait(ctl).expect("pool poisoned");
            }
        };
        // Wake latency: publish stamp (caller clock) → here (worker clock).
        // The stamp was stored before the epoch bump we just observed under
        // the control mutex, so it happens-before this read; `Instant` is
        // monotonic across threads, making the span well-formed.
        #[cfg(not(loom))]
        if prof::enabled() {
            let stamp = shared.publish_ns.load(std::sync::atomic::Ordering::Relaxed);
            let now = prof::now_ns();
            if stamp != 0 && stamp <= now {
                prof::span_ns(prof::EventKind::Wake, seen_epoch as u32, 0, stamp, now);
            }
        }
        // SAFETY: the caller blocks until in_flight drains, so the body
        // outlives this claim loop.
        let body: Body<'_> = unsafe { &*desc.body };
        loop {
            let g = shared.claim.fetch_add(1, Ordering::Relaxed);
            if g >= desc.gangs {
                break;
            }
            let (z0, z1) = slab_bounds(desc.n, desc.gangs, g);
            #[cfg(not(loom))]
            let t_slab = prof::begin();
            body(g, z0, z1);
            #[cfg(not(loom))]
            prof::end(t_slab, prof::EventKind::Slab, g as u32, (z1 - z0) as u32);
            if shared.done.fetch_add(1, Ordering::Release) + 1 == desc.gangs {
                let _ctl = shared.ctl.lock().expect("pool poisoned");
                shared.done_cv.notify_all();
            }
        }
        {
            let mut ctl = shared.ctl.lock().expect("pool poisoned");
            ctl.in_flight -= 1;
            if ctl.in_flight == 0 {
                shared.done_cv.notify_all();
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn slab_bounds_partition_exactly() {
        for n in [0usize, 1, 2, 3, 7, 64, 103, 1000] {
            for gangs in [1usize, 2, 3, 7, 16] {
                if n == 0 {
                    continue;
                }
                let gangs = gangs.min(n);
                let mut z = 0usize;
                for g in 0..gangs {
                    let (z0, z1) = slab_bounds(n, gangs, g);
                    assert_eq!(z0, z, "n={n} gangs={gangs} g={g}");
                    assert!(z1 > z0);
                    z = z1;
                }
                assert_eq!(z, n);
            }
        }
    }

    #[test]
    fn covers_range_exactly_once_through_pool() {
        let pool = GangPool::new(3);
        let n = 103;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(n, 7, &|_, z0, z1| {
            for h in &hits[z0..z1] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn many_back_to_back_launches() {
        let pool = GangPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(32, 4, &|_, z0, z1| {
                total.fetch_add(z1 - z0, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 500 * 32);
    }

    /// Back-to-back launches run on the same parked workers: no worker is
    /// spawned after construction, and every non-caller thread id observed
    /// during either launch belongs to the pool's original worker set.
    #[test]
    fn launches_reuse_the_same_workers() {
        let pool = GangPool::new(2);
        let allowed: HashSet<_> = pool.worker_ids().into_iter().collect();
        assert_eq!(pool.worker_count(), 2);
        let seen = StdMutex::new(Vec::<HashSet<std::thread::ThreadId>>::new());
        for _ in 0..2 {
            let ids = StdMutex::new(HashSet::new());
            pool.run(64, 8, &|_, _, _| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Give parked workers time to wake and claim a slab.
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
            seen.lock().unwrap().push(ids.into_inner().unwrap());
        }
        let caller = std::thread::current().id();
        for ids in seen.lock().unwrap().iter() {
            for id in ids {
                assert!(
                    *id == caller || allowed.contains(id),
                    "launch ran on a thread outside the persistent pool"
                );
            }
        }
        // Still the same two workers — nothing was spawned per launch.
        assert_eq!(pool.worker_count(), 2);
        assert_eq!(
            allowed,
            pool.worker_ids().into_iter().collect::<HashSet<_>>()
        );
        assert_eq!(pool.pooled_launches(), 2);
    }

    /// A caller that finds the pool busy falls back to inline execution and
    /// still covers its range exactly.
    #[test]
    fn contended_launches_fall_back_inline() {
        let pool: &'static GangPool = Box::leak(Box::new(GangPool::new(1)));
        let sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        pool.run(64, 4, &|_, z0, z1| {
                            sum.fetch_add(z1 - z0, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4 * 50 * 64);
    }

    #[test]
    fn zero_rows_is_a_no_op_and_gangs_clamp() {
        let pool = GangPool::new(1);
        pool.run(0, 4, &|_, _, _| panic!("must not run"));
        let count = AtomicUsize::new(0);
        pool.run(3, 16, &|_, z0, z1| {
            assert_eq!(z1 - z0, 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    /// Nested launches (a body that launches again) run inline rather than
    /// deadlocking on the launch mutex.
    #[test]
    fn nested_launch_runs_inline() {
        let pool: &'static GangPool = Box::leak(Box::new(GangPool::new(1)));
        let count = AtomicUsize::new(0);
        pool.run(4, 2, &|_, _, _| {
            pool.run(4, 2, &|_, z0, z1| {
                count.fetch_add(z1 - z0, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }
}
