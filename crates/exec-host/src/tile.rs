//! Cache-blocking tuner for the stencil sweeps.
//!
//! The hot loops sweep a z-slab row-by-row over x. For wide grids a full
//! row of every touched field no longer fits in L1/L2, so each x-position's
//! vertical stencil neighbors are evicted between rows. Splitting the x
//! loop into tiles (the paper's loop-schedule experiments, and the standard
//! host-side FD optimization per Minimod) keeps the working set of
//! `rows_touched × tile_x` points resident across a slab.
//!
//! Tiling is *bitwise-free*: every grid point's update reads only the
//! previous time level and writes only itself, so any iteration order over
//! points produces identical bits. The tuner therefore only affects speed,
//! never results — which is what lets the gang-invariance and parity
//! property tests keep passing unchanged.
//!
//! The heuristic is deliberately small: aim the per-row working set
//! (`fields × rows × tile × 4 bytes`) at half of a 256 KiB L2 slice, clamp
//! to `[64, 4096]`, and never split grids narrower than one tile. An
//! `ACC_TILE_X` env var overrides the heuristic for experiments (unset ⇒
//! auto; `0`, garbage, or out-of-range values are **rejected with a typed
//! error** rather than silently falling back — a typo'd experiment must
//! not quietly measure the auto heuristic).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cache budget the per-slab working set is aimed at: half of a
/// conservative 256 KiB per-core L2.
const CACHE_BUDGET_BYTES: usize = 128 * 1024;
const MIN_TILE: usize = 64;
const MAX_TILE: usize = 4096;

/// A resolved tiling of the x dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// Tile width in grid points (last tile may be shorter).
    pub tile_x: usize,
    /// SIMD width certified for this sweep by the vectorization verifier
    /// (see [`crate::simd`]); 1 when no certificate exists. Annotation
    /// only — the scalar loops stay correct at any width — but it tells
    /// the scheduler (and the experiment reports) how many lanes the
    /// innermost loop is *proven* to support.
    pub vector_width: u32,
}

impl Tiling {
    /// Iterate `(x0, x1)` tile bounds covering `[lo, hi)`.
    ///
    /// When the wall-clock profiler is enabled this also records one
    /// `TileBatch` instant event (tile count + width, computed
    /// arithmetically — the iterator itself is untouched); disabled cost
    /// is a single relaxed load.
    #[inline]
    pub fn ranges(self, lo: usize, hi: usize) -> impl Iterator<Item = (usize, usize)> {
        let tile = self.tile_x.max(1);
        if hi > lo && crate::prof::enabled() {
            let n_tiles = (hi - lo).div_ceil(tile);
            crate::prof::instant(
                crate::prof::EventKind::TileBatch,
                n_tiles.min(u32::MAX as usize) as u32,
                tile.min(u32::MAX as usize) as u32,
            );
        }
        (lo..hi)
            .step_by(tile)
            .map(move |x0| (x0, (x0 + tile).min(hi)))
    }

    /// Builder: attach a certified SIMD width.
    pub fn with_vector_width(mut self, width: u32) -> Self {
        self.vector_width = width.max(1);
        self
    }
}

/// Cached `ACC_TILE_X` override: `usize::MAX` = unread, `0` = auto.
static TILE_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// A malformed `ACC_TILE_X` value. Mirrors `GangEnvError` in
/// `openacc-sim::exec`: a typo must fail loudly, not silently measure the
/// auto heuristic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileEnvError {
    /// The value is not a base-10 unsigned integer.
    NotANumber(String),
    /// The value parsed but is 0 or above [`MAX_TILE`].
    OutOfRange(usize),
}

impl fmt::Display for TileEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileEnvError::NotANumber(raw) => write!(
                f,
                "ACC_TILE_X={raw:?} is not a number; expected 1..={MAX_TILE} (unset it for auto)"
            ),
            TileEnvError::OutOfRange(v) => write!(
                f,
                "ACC_TILE_X={v} is out of range; expected 1..={MAX_TILE} (unset it for auto)"
            ),
        }
    }
}

impl std::error::Error for TileEnvError {}

/// Parse one `ACC_TILE_X` value: `1..=MAX_TILE` or a typed error.
pub fn parse_tile(raw: &str) -> Result<usize, TileEnvError> {
    let trimmed = raw.trim();
    let t = trimmed
        .parse::<usize>()
        .map_err(|_| TileEnvError::NotANumber(trimmed.to_string()))?;
    if t == 0 || t > MAX_TILE {
        return Err(TileEnvError::OutOfRange(t));
    }
    Ok(t)
}

/// Resolve the `ACC_TILE_X` override without caching: `Ok(0)` = unset
/// (auto), `Ok(t)` = forced width, `Err` = present but malformed.
pub fn try_tile_override() -> Result<usize, TileEnvError> {
    match std::env::var("ACC_TILE_X") {
        Ok(raw) => parse_tile(&raw),
        Err(_) => Ok(0),
    }
}

fn tile_override() -> usize {
    let cached = TILE_OVERRIDE.load(Ordering::Relaxed);
    if cached != usize::MAX {
        return cached;
    }
    // Only cache valid outcomes: a malformed value aborts the run with the
    // typed message instead of being remembered as "auto".
    let parsed = try_tile_override().unwrap_or_else(|e| panic!("{e}"));
    TILE_OVERRIDE.store(parsed, Ordering::Relaxed);
    parsed
}

/// Test hook: force the override cache (0 = auto).
pub fn set_tile_override(tile: usize) {
    TILE_OVERRIDE.store(tile.min(MAX_TILE), Ordering::Relaxed);
}

/// Pick an x-tile width for a sweep over `nx` columns that touches
/// `fields` distinct f32 fields across `rows` stencil rows per point.
///
/// Returns a tiling whose working set `fields × rows × tile_x × 4` fits the
/// cache budget, clamped to `[64, 4096]`, and at least `nx` when the grid
/// is narrow enough that tiling would only add loop overhead.
pub fn tiles(nx: usize, fields: usize, rows: usize) -> Tiling {
    let forced = tile_override();
    if forced != 0 {
        return Tiling {
            tile_x: forced,
            vector_width: 1,
        };
    }
    let bytes_per_col = fields.max(1) * rows.max(1) * 4;
    let fit = CACHE_BUDGET_BYTES / bytes_per_col.max(1);
    let tile = fit.clamp(MIN_TILE, MAX_TILE);
    if tile >= nx {
        // Whole row fits: one tile, zero overhead — small grids see the
        // exact pre-tiling loop structure.
        Tiling {
            tile_x: nx.max(1),
            vector_width: 1,
        }
    } else {
        Tiling {
            tile_x: tile,
            vector_width: 1,
        }
    }
}

/// Like [`tiles`], but additionally annotates the tiling with the SIMD
/// width certified for `kernel` by the vectorization verifier (via
/// [`crate::simd::certified_width`]); scalar (1) when nothing has been
/// published for that kernel.
pub fn tiles_for(kernel: &str, nx: usize, fields: usize, rows: usize) -> Tiling {
    tiles(nx, fields, rows).with_vector_width(crate::simd::certified_width(kernel))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_is_single_tile() {
        set_tile_override(0);
        let t = tiles(200, 3, 9);
        assert!(t.tile_x >= 200, "narrow grid must not split: {t:?}");
        assert_eq!(t.ranges(4, 196).collect::<Vec<_>>(), vec![(4, 196)]);
    }

    #[test]
    fn wide_grid_splits_within_budget() {
        set_tile_override(0);
        let t = tiles(100_000, 4, 9);
        assert!(t.tile_x >= MIN_TILE && t.tile_x <= MAX_TILE);
        assert!(4 * 9 * t.tile_x * 4 <= 2 * CACHE_BUDGET_BYTES);
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for tile in [1usize, 3, 64, 1000] {
            let t = Tiling {
                tile_x: tile,
                vector_width: 1,
            };
            let mut expect = 4usize;
            for (x0, x1) in t.ranges(4, 517) {
                assert_eq!(x0, expect);
                assert!(x1 > x0 && x1 - x0 <= tile);
                expect = x1;
            }
            assert_eq!(expect, 517);
        }
    }

    #[test]
    fn override_wins() {
        set_tile_override(128);
        assert_eq!(tiles(1_000_000, 8, 9).tile_x, 128);
        set_tile_override(0);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let t = Tiling {
            tile_x: 64,
            vector_width: 1,
        };
        assert_eq!(t.ranges(10, 10).count(), 0);
    }

    #[test]
    fn parse_tile_accepts_valid_widths() {
        assert_eq!(parse_tile("64"), Ok(64));
        assert_eq!(parse_tile("  4096 "), Ok(4096));
        assert_eq!(parse_tile("1"), Ok(1));
    }

    #[test]
    fn parse_tile_rejects_zero_and_garbage_with_typed_errors() {
        assert_eq!(parse_tile("0"), Err(TileEnvError::OutOfRange(0)));
        assert_eq!(parse_tile("4097"), Err(TileEnvError::OutOfRange(4097)));
        assert_eq!(
            parse_tile("wide"),
            Err(TileEnvError::NotANumber("wide".into()))
        );
        assert_eq!(parse_tile("-8"), Err(TileEnvError::NotANumber("-8".into())));
        assert_eq!(parse_tile(""), Err(TileEnvError::NotANumber("".into())));
        // The messages name the variable, the bad value, and the fix.
        let msg = TileEnvError::OutOfRange(0).to_string();
        assert!(
            msg.contains("ACC_TILE_X") && msg.contains("1..=4096"),
            "{msg}"
        );
        let msg = TileEnvError::NotANumber("wide".into()).to_string();
        assert!(msg.contains("ACC_TILE_X") && msg.contains("wide"), "{msg}");
    }

    #[test]
    fn tiles_for_picks_up_certificates() {
        set_tile_override(0);
        crate::simd::clear();
        assert_eq!(tiles_for("iso_kernel_2d", 5000, 3, 9).vector_width, 1);
        crate::simd::publish_width("iso_kernel_2d", 8);
        let t = tiles_for("iso_kernel_2d", 5000, 3, 9);
        assert_eq!(t.vector_width, 8);
        assert_eq!(
            t.tile_x,
            tiles(5000, 3, 9).tile_x,
            "width does not change tiling"
        );
        crate::simd::clear();
    }
}
