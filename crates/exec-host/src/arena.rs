//! Reusable buffer pools that keep steady-state time loops allocation-free.
//!
//! An [`Arena<T>`] is a free-list of previously-built values. `take_with`
//! pops one if available (counting a *reuse*) or builds a fresh one with
//! the supplied constructor (counting a *creation*); `put` returns a value
//! for the next taker. The caller is responsible for resetting or
//! overwriting the recycled value's contents — an arena recycles
//! *capacity*, not *state* — which is exactly what the wavefield drivers
//! want: a recycled `State2` is immediately `copy_from`-overwritten by the
//! checkpoint being restored, so zeroing it first would be wasted work.
//!
//! The counters make the "no allocations after warm-up" acceptance
//! criterion testable without a counting allocator: after the first
//! iteration of a loop, `created()` must stop moving while `reused()`
//! climbs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A thread-safe free-list pool of `T` values with creation/reuse counters.
pub struct Arena<T> {
    free: Mutex<Vec<T>>,
    created: AtomicUsize,
    reused: AtomicUsize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    pub fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            created: AtomicUsize::new(0),
            reused: AtomicUsize::new(0),
        }
    }

    /// Take a value from the free list, or build one with `make` if the
    /// list is empty. The returned value holds whatever contents its
    /// previous user left in it; overwrite before reading.
    pub fn take_with(&self, make: impl FnOnce() -> T) -> T {
        let recycled = self.free.lock().expect("arena poisoned").pop();
        match recycled {
            Some(v) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                make()
            }
        }
    }

    /// Return a value to the free list for a later `take_with`.
    pub fn put(&self, v: T) {
        self.free.lock().expect("arena poisoned").push(v);
    }

    /// Values constructed because the free list was empty.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Values handed out from the free list without construction.
    pub fn reused(&self) -> usize {
        self.reused.load(Ordering::Relaxed)
    }

    /// Values currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("arena poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_then_reuses() {
        let arena: Arena<Vec<u8>> = Arena::new();
        let a = arena.take_with(|| vec![0u8; 64]);
        let b = arena.take_with(|| vec![0u8; 64]);
        assert_eq!(arena.created(), 2);
        assert_eq!(arena.reused(), 0);
        arena.put(a);
        arena.put(b);
        assert_eq!(arena.idle(), 2);
        let _c = arena.take_with(|| vec![0u8; 64]);
        assert_eq!(arena.created(), 2, "second round must not allocate");
        assert_eq!(arena.reused(), 1);
        assert_eq!(arena.idle(), 1);
    }

    #[test]
    fn recycled_value_keeps_capacity_and_contents() {
        let arena: Arena<Vec<u8>> = Arena::new();
        let mut a = arena.take_with(|| Vec::with_capacity(128));
        a.extend_from_slice(&[1, 2, 3]);
        arena.put(a);
        let b = arena.take_with(Vec::new);
        // State is the previous user's; capacity is preserved.
        assert_eq!(b, vec![1, 2, 3]);
        assert!(b.capacity() >= 128);
    }

    #[test]
    fn steady_state_loop_stops_creating() {
        let arena: Arena<Box<[f32]>> = Arena::new();
        for _ in 0..10 {
            let x = arena.take_with(|| vec![0.0f32; 32].into_boxed_slice());
            let y = arena.take_with(|| vec![0.0f32; 32].into_boxed_slice());
            arena.put(x);
            arena.put(y);
        }
        assert_eq!(arena.created(), 2);
        assert_eq!(arena.reused(), 18);
    }
}
