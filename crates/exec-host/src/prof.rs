//! Wall-clock host-engine profiler: per-thread lock-free ring buffers.
//!
//! The simulated-device stack (`accel-sim`/`acc-obs`) times everything in
//! *modeled* seconds; the real gang engine in this crate ran dark until
//! now. This module records what the pool actually does — sweeps, slab
//! claims, barrier waits, worker wake latency, tile batches, RTM phases —
//! with `Instant` timestamps, at a cost low enough to leave compiled in:
//!
//! * **Disabled** (the default), every record site is one relaxed atomic
//!   load and a predictable branch — the overhead budget test in
//!   `bench_host --overhead` holds this below 1% of a modeling run.
//! * **Enabled**, each span costs two `Instant::now()` calls and one SPSC
//!   ring push (no locks, no allocation after the ring exists); the same
//!   budget test holds the end-to-end cost below 5%.
//! * **Compiled out**: building this crate with
//!   `--no-default-features` (dropping the `measure` feature) turns every
//!   record site into a literal no-op that the optimizer deletes.
//!
//! ## Ring discipline
//!
//! Each recording thread owns one single-producer ring (a slot, assigned
//! on first record, at most [`MAX_SLOTS`]); the drainer is the single
//! consumer. Producers never block: a full ring drops the event and bumps
//! a counter, a thread beyond the slot cap drops everything it records.
//! [`drain`] consumes every completed event and returns a [`HostProfile`];
//! `acc-obs::wallclock` turns that into spans on wall-clock tracks, a
//! metrics registry, and derived gang statistics.
//!
//! Timestamps are nanoseconds since a process-wide epoch pinned when the
//! profiler is first enabled, so events from different threads share one
//! monotonic timebase (`Instant` is monotonic across threads on every
//! platform the pool supports).
//!
//! Recording **never** touches the physics: no field, no RNG, no
//! scheduling decision reads profiler state, so enabled-vs-disabled runs
//! are bitwise identical (pinned by `integration_host_prof`).

use std::time::Instant;

/// What one recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// One gang launch (`par_slabs`) end to end, on the launching thread.
    /// `arg0` = gangs, `arg1` = rows `n`.
    Sweep,
    /// One slab execution. `arg0` = gang index, `arg1` = rows in slab.
    Slab,
    /// The launching caller waiting on the fork-join barrier (claim loop
    /// exhausted → all slabs done + job retired). `arg0` = gangs.
    BarrierWait,
    /// Worker wake latency: epoch publish (caller clock) → job pickup
    /// (worker clock). `arg0` = low 32 bits of the pool epoch.
    Wake,
    /// One x-tile batch over a row interval (instant event).
    /// `arg0` = tiles in the batch, `arg1` = tile width.
    TileBatch,
    /// One RTM driver phase. `arg0` = [`PHASE_FORWARD`] /
    /// [`PHASE_BACKWARD`] / [`PHASE_IMAGING`].
    Phase,
}

/// Phase id for the forward-modeling loop.
pub const PHASE_FORWARD: u32 = 0;
/// Phase id for the backward (receiver back-propagation) loop.
pub const PHASE_BACKWARD: u32 = 1;
/// Phase id for the imaging-condition application (nested inside
/// backward; subtract to get exclusive backward time).
pub const PHASE_IMAGING: u32 = 2;

/// Human label of a phase id.
pub fn phase_name(id: u32) -> &'static str {
    match id {
        PHASE_FORWARD => "forward",
        PHASE_BACKWARD => "backward",
        PHASE_IMAGING => "imaging",
        _ => "phase?",
    }
}

/// One recorded interval, timestamps in ns since the profiler epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Kind-specific argument (gang index, gangs, tiles, phase id).
    pub arg0: u32,
    /// Kind-specific argument (rows, tile width).
    pub arg1: u32,
    /// Start, ns since epoch.
    pub start_ns: u64,
    /// End, ns since epoch (== start for instant events).
    pub end_ns: u64,
}

impl Event {
    /// Duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Maximum concurrently profiled threads; later threads drop their events
/// (counted in [`HostProfile::thread_overflow`]). 16 gangs + the caller +
/// shot-level threads fit comfortably.
pub const MAX_SLOTS: usize = 32;

/// Events one ring holds before dropping (per thread).
pub const RING_CAP: usize = 1 << 15;

/// The events of one thread slot, in record order.
#[derive(Debug, Clone)]
pub struct SlotEvents {
    /// Slot index (stable per thread for the process lifetime).
    pub slot: u32,
    /// Completed events, oldest first.
    pub events: Vec<Event>,
}

/// Everything one [`drain`] call recovered.
#[derive(Debug, Clone, Default)]
pub struct HostProfile {
    /// Per-slot event streams (slots with no events are omitted).
    pub slots: Vec<SlotEvents>,
    /// Events dropped because a ring was full.
    pub dropped: u64,
    /// Events dropped because more than [`MAX_SLOTS`] threads recorded.
    pub thread_overflow: u64,
}

/// Per-slot roll-up derived from a [`HostProfile`] (dependency-free; the
/// JSON/track rendering lives in `acc-obs::wallclock`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Thread slot.
    pub slot: u32,
    /// Slabs executed.
    pub slabs: u64,
    /// Rows executed (sum of slab widths).
    pub rows: u64,
    /// Tiles executed (sum of tile-batch counts).
    pub tiles: u64,
    /// Time inside slab bodies, ns.
    pub busy_ns: u64,
    /// Time the launching caller spent waiting on the join barrier, ns.
    pub barrier_wait_ns: u64,
    /// Wake latency total (publish → pickup), ns.
    pub wake_ns: u64,
    /// Sweeps launched from this thread.
    pub sweeps: u64,
}

impl HostProfile {
    /// Total completed events.
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| s.events.len()).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-slot totals.
    pub fn worker_summaries(&self) -> Vec<WorkerSummary> {
        self.slots
            .iter()
            .map(|s| {
                let mut w = WorkerSummary {
                    slot: s.slot,
                    ..Default::default()
                };
                for e in &s.events {
                    match e.kind {
                        EventKind::Slab => {
                            w.slabs += 1;
                            w.rows += u64::from(e.arg1);
                            w.busy_ns += e.dur_ns();
                        }
                        EventKind::BarrierWait => w.barrier_wait_ns += e.dur_ns(),
                        EventKind::Wake => w.wake_ns += e.dur_ns(),
                        EventKind::TileBatch => w.tiles += u64::from(e.arg0),
                        EventKind::Sweep => w.sweeps += 1,
                        EventKind::Phase => {}
                    }
                }
                w
            })
            .collect()
    }

    /// Total ns per phase id `[forward, backward, imaging]`, summed over
    /// every `Phase` event. Imaging events are nested inside backward, so
    /// exclusive backward time is `backward − imaging`.
    pub fn phase_totals_ns(&self) -> [u64; 3] {
        let mut out = [0u64; 3];
        for s in &self.slots {
            for e in &s.events {
                if e.kind == EventKind::Phase {
                    if let Some(t) = out.get_mut(e.arg0 as usize) {
                        *t += e.dur_ns();
                    }
                }
            }
        }
        out
    }

    /// `[min, max]` event timestamps, ns (0,0 when empty).
    pub fn time_bounds_ns(&self) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for s in &self.slots {
            for e in &s.events {
                lo = lo.min(e.start_ns);
                hi = hi.max(e.end_ns);
            }
        }
        if lo == u64::MAX {
            (0, 0)
        } else {
            (lo, hi)
        }
    }
}

#[cfg(feature = "measure")]
mod imp {
    use super::{Event, EventKind, HostProfile, SlotEvents, MAX_SLOTS, RING_CAP};
    use std::cell::{Cell, UnsafeCell};
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    /// One single-producer/single-consumer ring. The owning thread is the
    /// only pusher; [`super::drain`] is the only popper. `head`/`tail` are
    /// monotonically increasing indices (masked on access), so `head −
    /// tail` is the live count and full/empty are unambiguous.
    struct Ring {
        head: AtomicUsize,
        tail: AtomicUsize,
        dropped: AtomicU64,
        buf: Box<[UnsafeCell<Event>]>,
    }

    // SAFETY: slots in `buf` are only written by the producer between
    // checking `head - tail < RING_CAP` and the Release store of `head`,
    // and only read by the consumer between the Acquire load of `head`
    // and the Release store of `tail` — never both sides on one index.
    unsafe impl Sync for Ring {}

    impl Ring {
        fn new() -> Self {
            let zero = Event {
                kind: EventKind::Sweep,
                arg0: 0,
                arg1: 0,
                start_ns: 0,
                end_ns: 0,
            };
            Self {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
                buf: (0..RING_CAP).map(|_| UnsafeCell::new(zero)).collect(),
            }
        }

        /// Producer side; never blocks, drops when full.
        fn push(&self, ev: Event) {
            let head = self.head.load(Ordering::Relaxed);
            let tail = self.tail.load(Ordering::Acquire);
            if head.wrapping_sub(tail) >= RING_CAP {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // SAFETY: index `head` is unreachable by the consumer until
            // the Release store below publishes it.
            unsafe {
                *self.buf[head & (RING_CAP - 1)].get() = ev;
            }
            self.head.store(head.wrapping_add(1), Ordering::Release);
        }

        /// Consumer side.
        fn drain_into(&self, out: &mut Vec<Event>) {
            let head = self.head.load(Ordering::Acquire);
            let mut tail = self.tail.load(Ordering::Relaxed);
            while tail != head {
                // SAFETY: indices in [tail, head) were published by the
                // producer's Release store of `head`.
                out.push(unsafe { *self.buf[tail & (RING_CAP - 1)].get() });
                tail = tail.wrapping_add(1);
            }
            self.tail.store(tail, Ordering::Release);
        }
    }

    struct ProfState {
        epoch: Instant,
        rings: [OnceLock<Ring>; MAX_SLOTS],
        next_slot: AtomicUsize,
        thread_overflow: AtomicU64,
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static STATE: OnceLock<ProfState> = OnceLock::new();

    thread_local! {
        /// usize::MAX = unassigned; MAX_SLOTS = overflow (drop).
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    fn state() -> &'static ProfState {
        STATE.get_or_init(|| ProfState {
            epoch: Instant::now(),
            rings: [const { OnceLock::new() }; MAX_SLOTS],
            next_slot: AtomicUsize::new(0),
            thread_overflow: AtomicU64::new(0),
        })
    }

    pub fn set_enabled(on: bool) {
        if on {
            // Pin the epoch before any recorder can observe `enabled`.
            let _ = state();
        }
        ENABLED.store(on, Ordering::SeqCst);
    }

    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn begin() -> Option<Instant> {
        if enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    pub fn now_ns() -> u64 {
        to_ns(Instant::now())
    }

    fn to_ns(t: Instant) -> u64 {
        t.checked_duration_since(state().epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }

    fn record(ev: Event) {
        let st = state();
        let slot = SLOT.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = st.next_slot.fetch_add(1, Ordering::Relaxed).min(MAX_SLOTS);
                s.set(v);
            }
            v
        });
        if slot >= MAX_SLOTS {
            st.thread_overflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        st.rings[slot].get_or_init(Ring::new).push(ev);
    }

    #[inline]
    pub fn end(t0: Option<Instant>, kind: EventKind, arg0: u32, arg1: u32) {
        let Some(t0) = t0 else { return };
        let start_ns = to_ns(t0);
        let end_ns = to_ns(Instant::now());
        record(Event {
            kind,
            arg0,
            arg1,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    #[inline]
    pub fn instant(kind: EventKind, arg0: u32, arg1: u32) {
        if !enabled() {
            return;
        }
        let ns = now_ns();
        record(Event {
            kind,
            arg0,
            arg1,
            start_ns: ns,
            end_ns: ns,
        });
    }

    #[inline]
    pub fn span_ns(kind: EventKind, arg0: u32, arg1: u32, start_ns: u64, end_ns: u64) {
        if !enabled() {
            return;
        }
        record(Event {
            kind,
            arg0,
            arg1,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    pub fn drain() -> HostProfile {
        let Some(st) = STATE.get() else {
            return HostProfile::default();
        };
        let mut profile = HostProfile {
            slots: Vec::new(),
            dropped: 0,
            thread_overflow: st.thread_overflow.swap(0, Ordering::Relaxed),
        };
        for (i, cell) in st.rings.iter().enumerate() {
            let Some(ring) = cell.get() else { continue };
            let mut events = Vec::new();
            ring.drain_into(&mut events);
            profile.dropped += ring.dropped.swap(0, Ordering::Relaxed);
            if !events.is_empty() {
                profile.slots.push(SlotEvents {
                    slot: i as u32,
                    events,
                });
            }
        }
        profile
    }
}

#[cfg(not(feature = "measure"))]
mod imp {
    //! Compile-out path: every record site is a literal no-op.
    use super::{EventKind, HostProfile};
    use std::time::Instant;

    pub fn set_enabled(_on: bool) {}

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn begin() -> Option<Instant> {
        None
    }

    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    #[inline(always)]
    pub fn end(_t0: Option<Instant>, _kind: EventKind, _arg0: u32, _arg1: u32) {}

    #[inline(always)]
    pub fn instant(_kind: EventKind, _arg0: u32, _arg1: u32) {}

    #[inline(always)]
    pub fn span_ns(_kind: EventKind, _arg0: u32, _arg1: u32, _start_ns: u64, _end_ns: u64) {}

    pub fn drain() -> HostProfile {
        HostProfile::default()
    }
}

/// Turn recording on or off process-wide. Enabling pins the timestamp
/// epoch (idempotent); disabling leaves buffered events drainable.
pub fn set_enabled(on: bool) {
    imp::set_enabled(on)
}

/// True when recording is on (one relaxed load — the whole disabled-path
/// cost besides a branch).
#[inline]
pub fn enabled() -> bool {
    imp::enabled()
}

/// Start a span: `Some(now)` when recording, `None` otherwise. Pass the
/// result to [`end`] — a `None` start makes `end` free.
#[inline]
pub fn begin() -> Option<Instant> {
    imp::begin()
}

/// Close a span opened by [`begin`] and record it.
#[inline]
pub fn end(t0: Option<Instant>, kind: EventKind, arg0: u32, arg1: u32) {
    imp::end(t0, kind, arg0, arg1)
}

/// Record an instant (zero-duration) event.
#[inline]
pub fn instant(kind: EventKind, arg0: u32, arg1: u32) {
    imp::instant(kind, arg0, arg1)
}

/// Nanoseconds since the profiler epoch, for cross-thread spans whose
/// start is stamped on one thread and recorded on another (worker wake).
#[inline]
pub fn now_ns() -> u64 {
    imp::now_ns()
}

/// Record a span from explicit epoch-relative timestamps.
#[inline]
pub fn span_ns(kind: EventKind, arg0: u32, arg1: u32, start_ns: u64, end_ns: u64) {
    imp::span_ns(kind, arg0, arg1, start_ns, end_ns)
}

/// Consume every completed event from every ring. The single consumer:
/// callers must not drain concurrently with each other (the engine's
/// drivers drain once per run, after the run).
pub fn drain() -> HostProfile {
    imp::drain()
}

#[cfg(all(test, not(loom), feature = "measure"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The profiler is process-global; tests that toggle it serialize here.
    pub(crate) static PROF_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        PROF_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        set_enabled(false);
        drain();
        end(begin(), EventKind::Slab, 0, 8);
        instant(EventKind::TileBatch, 4, 64);
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_round_trip_with_args_and_order() {
        let _g = locked();
        set_enabled(true);
        drain();
        let t0 = begin();
        std::thread::sleep(std::time::Duration::from_millis(1));
        end(t0, EventKind::Slab, 3, 17);
        instant(EventKind::TileBatch, 5, 128);
        set_enabled(false);
        let p = drain();
        assert_eq!(p.len(), 2);
        let evs = &p.slots[0].events;
        assert_eq!(evs[0].kind, EventKind::Slab);
        assert_eq!((evs[0].arg0, evs[0].arg1), (3, 17));
        assert!(evs[0].dur_ns() >= 1_000_000, "slept 1ms: {:?}", evs[0]);
        assert_eq!(evs[1].kind, EventKind::TileBatch);
        assert!(evs[1].start_ns >= evs[0].end_ns);
        assert_eq!(evs[1].dur_ns(), 0);
        assert_eq!(p.dropped, 0);
    }

    #[test]
    fn concurrent_threads_get_distinct_slots() {
        let _g = locked();
        set_enabled(true);
        drain();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100u32 {
                        end(begin(), EventKind::Slab, i, 1);
                    }
                });
            }
        });
        set_enabled(false);
        let p = drain();
        assert_eq!(p.len(), 400);
        assert!(p.slots.len() >= 2, "threads must not share one ring");
        for s in &p.slots {
            // Per-slot streams are in record order.
            for w in s.events.windows(2) {
                assert!(w[0].start_ns <= w[1].start_ns);
            }
        }
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let _g = locked();
        set_enabled(true);
        drain();
        for _ in 0..RING_CAP + 10 {
            instant(EventKind::TileBatch, 1, 64);
        }
        set_enabled(false);
        let p = drain();
        assert_eq!(p.len(), RING_CAP);
        assert_eq!(p.dropped, 10);
        // Drained rings are reusable.
        set_enabled(true);
        instant(EventKind::TileBatch, 1, 64);
        set_enabled(false);
        let p = drain();
        assert_eq!(p.len(), 1);
        assert_eq!(p.dropped, 0);
    }

    #[test]
    fn summaries_and_phase_totals() {
        let _g = locked();
        set_enabled(true);
        drain();
        span_ns(EventKind::Phase, PHASE_FORWARD, 0, 0, 3_000);
        span_ns(EventKind::Phase, PHASE_BACKWARD, 0, 3_000, 9_000);
        span_ns(EventKind::Phase, PHASE_IMAGING, 0, 4_000, 5_000);
        span_ns(EventKind::Slab, 0, 10, 100, 200);
        span_ns(EventKind::Slab, 1, 12, 200, 350);
        span_ns(EventKind::BarrierWait, 2, 0, 350, 400);
        span_ns(EventKind::Wake, 0, 0, 90, 120);
        instant(EventKind::TileBatch, 7, 64);
        set_enabled(false);
        let p = drain();
        let totals = p.phase_totals_ns();
        assert_eq!(totals, [3_000, 6_000, 1_000]);
        let w = &p.worker_summaries()[0];
        assert_eq!(w.slabs, 2);
        assert_eq!(w.rows, 22);
        assert_eq!(w.busy_ns, 100 + 150);
        assert_eq!(w.barrier_wait_ns, 50);
        assert_eq!(w.wake_ns, 30);
        assert_eq!(w.tiles, 7);
        let (lo, hi) = p.time_bounds_ns();
        assert_eq!(lo, 0);
        assert!(hi >= 9_000);
    }
}
