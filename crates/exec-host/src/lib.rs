//! # exec-host
//!
//! The host execution engine: the machinery that makes *real* (wall-clock)
//! execution of the physics as fast as the hardware allows, independent of
//! the simulated-device timing model (`accel-sim`), which it never touches.
//!
//! The paper's optimization study is entirely about kernel scheduling and
//! memory-hierarchy efficiency on the accelerator; this crate applies the
//! same discipline to the host side that actually computes the wavefields:
//!
//! * [`pool`] — a persistent, lazily-initialized gang worker pool with a
//!   low-overhead fork-join barrier. It replaces per-launch
//!   `std::thread::scope` spawns (hundreds of microseconds per kernel
//!   launch) with parked threads that are woken by a generation counter and
//!   claim deterministically-partitioned slabs. Slab partitioning is a pure
//!   function of `(n, gangs, g)`, so parallel output is bit-identical to
//!   sequential regardless of which worker executes which slab.
//! * [`arena`] — reusable buffer pools ([`Arena`]) that eliminate
//!   steady-state allocation from time loops: wavefield states, replay
//!   snapshots, and checkpoint slots are taken from and returned to an
//!   arena instead of being freshly allocated every segment/retry.
//! * [`tile`] — the cache-blocking tuner: picks an x-tile width for the
//!   z-slab × x-tile loop schedule of the stencil sweeps from the stencil
//!   footprint and a cache budget (à la the paper's loop-schedule
//!   experiments), with an `ACC_TILE_X` env override.
//! * [`simd`] — the registry of SIMD widths *certified* by the
//!   vectorization verifier (`acc-verify::vectorize`): sweeps annotate
//!   their tilings via [`tiles_for`] with the widest lane count whose
//!   legality was proven, never assumed.
//! * [`prof`] — the wall-clock host profiler: per-thread lock-free ring
//!   buffers recording sweep/slab/barrier/wake/tile/phase events with
//!   `Instant` timestamps, drained into `acc-obs` wall-clock tracks. Off
//!   by default (one relaxed load per record site), compile-out via the
//!   `measure` feature.
//!
//! Everything here is `std`-only and dependency-free; `openacc-sim`
//! re-exports this crate as its gang execution backend.

pub mod arena;
pub mod pool;
pub mod prof;
pub mod simd;
pub mod tile;

pub use arena::Arena;
pub use pool::{slab_bounds, GangPool};
pub use prof::{HostProfile, WorkerSummary};
pub use tile::{tiles, tiles_for, TileEnvError, Tiling};
