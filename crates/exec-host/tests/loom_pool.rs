//! Bounded model check of the gang pool's epoch fork-join barrier.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p exec-host --release
//! --test loom_pool`. Under `--cfg loom` the pool's `sys` module swaps
//! `std::sync` for the model-checked primitives in the `loom` shim: every
//! launch runs under many explored schedules (cooperative, round-robin,
//! and seeded-random interleavings at every sync op), and the checker
//! turns a lost wakeup — a worker parked on the epoch condvar that no
//! notify reaches, or a caller parked on the done condvar after the last
//! slab retired — into a detected deadlock instead of a CI hang.
//!
//! The scenario is the one the barrier protocol must get right: **two
//! workers × two back-to-back epochs**. The second epoch is the hard
//! part — it reuses the same condvars and the same parked threads, so a
//! worker that misses the `epoch` bump or a caller that misses the final
//! `done_cv` notify would hang here. The body also asserts that no slab
//! is ever claimed twice and every slab is claimed exactly once per
//! epoch.

#![cfg(loom)]

use exec_host::pool::GangPool;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;

const WORKERS: usize = 2;
const EPOCHS: usize = 2;
const SLABS: usize = 3;
const ROWS: usize = 6;

#[test]
fn epoch_barrier_two_workers_two_epochs() {
    loom::model(|| {
        let pool = GangPool::new(WORKERS);
        for epoch in 0..EPOCHS {
            // One claim counter per row: a slab claimed twice would bump a
            // row past 1, a lost slab would leave one at 0.
            let hits: Arc<Vec<AtomicUsize>> =
                Arc::new((0..ROWS).map(|_| AtomicUsize::new(0)).collect());
            let h = Arc::clone(&hits);
            pool.run(ROWS, SLABS, &move |_, z0, z1| {
                for row in &h[z0..z1] {
                    row.fetch_add(1, Ordering::SeqCst);
                }
            });
            // The barrier returned: every slab ran exactly once, on some
            // thread, under every explored schedule.
            for (row, hit) in hits.iter().enumerate() {
                assert_eq!(
                    hit.load(Ordering::SeqCst),
                    1,
                    "epoch {epoch}: row {row} not covered exactly once"
                );
            }
        }
        assert_eq!(
            pool.pooled_launches() + pool.inline_launches(),
            EPOCHS,
            "every launch must retire"
        );
        // Dropping the pool joins the workers: shutdown must not lose the
        // wakeup either.
        drop(pool);
    });
}
