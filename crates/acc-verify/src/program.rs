//! The directive-program IR the checkers run over.
//!
//! A [`Program`] is the device-visible trace of a driver: the ordered data
//! directives, kernel launches (with their declared access patterns), and
//! waits it would issue. `rtm-core` builds one per seismic case by walking
//! the same launch plans its drivers execute, so what the verifier checks
//! is what the runtime runs.

use openacc_sim::access::AccessSet;
use openacc_sim::{Clause, ConstructKind, LoopNest};

/// One kernel launch with everything the checkers need.
#[derive(Debug, Clone)]
pub struct Launch {
    /// Kernel name (spans and reports).
    pub name: String,
    /// Iteration space and per-loop scheduling.
    pub nest: LoopNest,
    /// Compute construct.
    pub kind: ConstructKind,
    /// Clauses on the construct.
    pub clauses: Vec<Clause>,
    /// Declared affine read/write sets.
    pub access: AccessSet,
    /// Registers per thread the kernel needs (the Figure 10/12 input).
    pub regs: u32,
}

impl Launch {
    /// The async queue this launch lands on, if it carries the clause.
    pub fn async_queue(&self) -> Option<u32> {
        self.clauses.iter().find_map(|c| match c {
            Clause::Async(q) => Some(*q),
            _ => None,
        })
    }

    /// Whether the programmer asserted `independent`.
    pub fn claims_independent(&self) -> bool {
        self.clauses
            .iter()
            .any(|c| matches!(c, Clause::Independent))
    }

    /// The `maxregcount` clause value, if present.
    pub fn maxregcount(&self) -> Option<u32> {
        self.clauses.iter().find_map(|c| match c {
            Clause::MaxRegCount(n) => Some(*n),
            _ => None,
        })
    }

    /// The `collapse(n)` clause value (1 when absent).
    pub fn collapse(&self) -> u32 {
        self.clauses
            .iter()
            .find_map(|c| match c {
                Clause::Collapse(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(1)
    }
}

/// One directive-level operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// `!$acc enter data copyin(array)`.
    EnterDataCopyin {
        /// Mapped name.
        array: String,
    },
    /// `!$acc enter data create(array)` — device scratch, no upload.
    EnterDataCreate {
        /// Mapped name.
        array: String,
    },
    /// `!$acc exit data delete(array)`.
    ExitDataDelete {
        /// Unmapped name.
        array: String,
    },
    /// `!$acc update host(array)`.
    UpdateHost {
        /// Refreshed name.
        array: String,
    },
    /// `!$acc update device(array)`.
    UpdateDevice {
        /// Refreshed name.
        array: String,
    },
    /// `!$acc present(array)` assertion (kernels also check implicitly).
    Present {
        /// Asserted name.
        array: String,
    },
    /// A kernel launch.
    Launch(Launch),
    /// `!$acc wait` — all queues.
    Wait,
    /// `!$acc wait(queue)`.
    WaitQueue(u32),
    /// The host consumes its copy of `array` (writes a snapshot to disk,
    /// stacks an image, …).
    HostRead {
        /// Consumed name.
        array: String,
    },
    /// The host mutates its copy of `array` (fills a buffer the device
    /// should see next).
    HostWrite {
        /// Mutated name.
        array: String,
    },
}

impl Op {
    /// Short op label for spans/rendering.
    pub fn label(&self) -> String {
        match self {
            Op::EnterDataCopyin { array } => format!("enter data copyin({array})"),
            Op::EnterDataCreate { array } => format!("enter data create({array})"),
            Op::ExitDataDelete { array } => format!("exit data delete({array})"),
            Op::UpdateHost { array } => format!("update host({array})"),
            Op::UpdateDevice { array } => format!("update device({array})"),
            Op::Present { array } => format!("present({array})"),
            Op::Launch(l) => format!("launch {}", l.name),
            Op::Wait => "wait".to_string(),
            Op::WaitQueue(q) => format!("wait({q})"),
            Op::HostRead { array } => format!("host read of {array}"),
            Op::HostWrite { array } => format!("host write of {array}"),
        }
    }
}

/// A named directive program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Report name (e.g. `"ISOTROPIC 2D modeling"`).
    pub name: String,
    /// The ordered operations.
    pub ops: Vec<Op>,
}

impl Program {
    /// An empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Append an op (builder style).
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// All launches with their op indices.
    pub fn launches(&self) -> impl Iterator<Item = (usize, &Launch)> {
        self.ops.iter().enumerate().filter_map(|(i, op)| match op {
            Op::Launch(l) => Some((i, l)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openacc_sim::Clause;

    #[test]
    fn launch_clause_accessors() {
        let l = Launch {
            name: "k".into(),
            nest: LoopNest::new(&[10, 10]),
            kind: ConstructKind::Kernels,
            clauses: vec![
                Clause::Independent,
                Clause::Async(3),
                Clause::MaxRegCount(64),
                Clause::Collapse(2),
            ],
            access: AccessSet::new(100),
            regs: 50,
        };
        assert!(l.claims_independent());
        assert_eq!(l.async_queue(), Some(3));
        assert_eq!(l.maxregcount(), Some(64));
        assert_eq!(l.collapse(), 2);
    }

    #[test]
    fn program_collects_launches() {
        let mut p = Program::new("t");
        p.push(Op::EnterDataCopyin { array: "u".into() });
        p.push(Op::Launch(Launch {
            name: "k".into(),
            nest: LoopNest::new(&[4]),
            kind: ConstructKind::Parallel,
            clauses: vec![],
            access: AccessSet::new(4),
            regs: 8,
        }));
        p.push(Op::Wait);
        let ls: Vec<_> = p.launches().collect();
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].0, 1);
        assert_eq!(p.ops[2].label(), "wait");
        assert_eq!(p.ops[0].label(), "enter data copyin(u)");
    }
}
