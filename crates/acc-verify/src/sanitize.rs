//! Tier 2: dynamic confirmation of static race verdicts.
//!
//! The static dependence test (Tier 1) decides `independent` claims
//! symbolically. This module *runs* the declared access pattern through the
//! shadow-memory write-set tracker in `openacc_sim::exec` — real threaded
//! host execution over a small grid with per-gang access logging — and
//! checks whether any element is touched by two distinct iterations with at
//! least one write. A static verdict the replay confirms is upgraded from
//! "provable" to "witnessed"; a disagreement on the replayed trip count is
//! a checker bug worth failing loudly over, which is exactly what the
//! property tests assert never happens.

use crate::dependence;
use crate::program::Launch;
use openacc_sim::access::AccessSet;
use openacc_sim::exec::replay_access_set;

/// Trip count the sanitizer clamps replays to: big enough to exercise every
/// stencil tap, small enough that the threaded replay stays instant.
pub const SANITIZE_TRIP: u64 = 512;

/// Gangs the replay distributes iterations over.
pub const SANITIZE_GANGS: usize = 4;

/// What the dynamic replay observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicVerdict {
    /// At least one element was touched by two distinct iterations with a
    /// write involved; carries the number of conflicting elements.
    Confirmed {
        /// Distinct conflicting elements observed.
        conflicts: usize,
    },
    /// Every element was touched by at most one iteration (or only read):
    /// the claim held on this grid.
    Refuted,
}

impl DynamicVerdict {
    /// True when the replay witnessed a race.
    pub fn is_race(&self) -> bool {
        matches!(self, DynamicVerdict::Confirmed { .. })
    }
}

/// Clamp an access set to a sanitizer-sized trip count.
pub fn scaled(access: &AccessSet, max_trip: u64) -> AccessSet {
    AccessSet {
        trip: access.trip.min(max_trip),
        reads: access.reads.clone(),
        writes: access.writes.clone(),
        reductions: access.reductions.clone(),
    }
}

/// Replay an access set on `gangs` host threads and judge the log.
pub fn replay_verdict(access: &AccessSet, gangs: usize) -> DynamicVerdict {
    let log = replay_access_set(access, gangs);
    let conflicts = log.conflicts();
    if conflicts.is_empty() {
        DynamicVerdict::Refuted
    } else {
        let mut elems: Vec<i64> = conflicts.iter().map(|c| c.elem).collect();
        elems.sort_unstable();
        elems.dedup();
        DynamicVerdict::Confirmed {
            conflicts: elems.len(),
        }
    }
}

/// Static verdict and dynamic verdict for the same launch at the same
/// (sanitizer-scaled) trip count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossCheck {
    /// Did the Banerjee/GCD test find a loop-carried conflict?
    pub static_race: bool,
    /// What the shadow-log replay saw.
    pub dynamic: DynamicVerdict,
}

impl CrossCheck {
    /// The two tiers agree.
    pub fn agree(&self) -> bool {
        self.static_race == self.dynamic.is_race()
    }
}

/// Run both tiers over one launch's declared accesses, both evaluated at
/// the sanitizer trip count so the verdicts are directly comparable.
pub fn crosscheck(l: &Launch) -> CrossCheck {
    let access = scaled(&l.access, SANITIZE_TRIP);
    let mut probe = l.clone();
    probe.access = access.clone();
    CrossCheck {
        static_race: dependence::find_race(&probe).is_some(),
        dynamic: replay_verdict(&access, SANITIZE_GANGS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openacc_sim::{Clause, ConstructKind, LoopNest};

    fn launch(access: AccessSet) -> Launch {
        Launch {
            name: "k".into(),
            nest: LoopNest::new(&[access.trip.max(1)]),
            kind: ConstructKind::Kernels,
            clauses: vec![Clause::Independent],
            access,
            regs: 32,
        }
    }

    #[test]
    fn inplace_stencil_confirmed_dynamically() {
        let v = replay_verdict(&AccessSet::stencil_inplace(128, "u", 0, 4, 16), 4);
        assert!(v.is_race());
        if let DynamicVerdict::Confirmed { conflicts } = v {
            assert!(conflicts > 0);
        }
    }

    #[test]
    fn out_of_place_stencil_refuted_dynamically() {
        // Output slot far from the input slot: no element is shared.
        let v = replay_verdict(&AccessSet::stencil(128, "u", 10_000, 0, 4, 16), 4);
        assert_eq!(v, DynamicVerdict::Refuted);
    }

    #[test]
    fn tiers_agree_on_both_verdicts() {
        let broken = crosscheck(&launch(AccessSet::stencil_inplace(4096, "u", 0, 4, 32)));
        assert!(broken.static_race);
        assert!(broken.dynamic.is_race());
        assert!(broken.agree());

        let clean = crosscheck(&launch(AccessSet::stencil(4096, "u", 100_000, 0, 4, 32)));
        assert!(!clean.static_race);
        assert_eq!(clean.dynamic, DynamicVerdict::Refuted);
        assert!(clean.agree());
    }

    #[test]
    fn scaling_clamps_trip_only() {
        let a = AccessSet::stencil(1_000_000, "u", 5_000_000, 0, 4, 100);
        let s = scaled(&a, SANITIZE_TRIP);
        assert_eq!(s.trip, SANITIZE_TRIP);
        assert_eq!(s.reads, a.reads);
        assert_eq!(s.writes, a.writes);
    }
}
