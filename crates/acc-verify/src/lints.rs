//! Performance lints: the Section 5 findings as checkable rules.
//!
//! Each lint reproduces one optimization lesson from the paper as a
//! diagnostic on the launch that exhibits the anti-pattern:
//!
//! * **uncoalesced-access** — the innermost loop sweeps a strided axis (or
//!   runs sequentially under an assumed dependence), so vector lanes hit
//!   non-consecutive addresses: the Figure 13 situation the transposed
//!   acoustic-2D variant fixes.
//! * **collapse-opportunity** — a deep nest that gridifies better with
//!   `collapse`/`independent` under PGI, or an explicit `vector` clause on
//!   the contiguous loop under CRAY (Section 5.2).
//! * **register-pressure** — the launch spills to local memory under the
//!   device/`maxregcount` cap (Figure 12), or occupancy falls below ALU
//!   saturation (Figure 10).
//!
//! Severity scales with the iteration count: a strided sweep over a bulk
//! stencil is a warning, the same pattern on a tiny scatter kernel
//! (receiver injection touches one point per receiver) is informational.

use crate::diag::{Diagnostic, Rule, Severity, Span};
use crate::program::{Launch, Op, Program};
use accel_sim::{occupancy, DeviceSpec};
use openacc_sim::{Compiler, ConstructKind, LoopSched};

/// Iteration count above which a perf lint is a warning rather than info.
pub const BULK_POINTS: u64 = 65_536;

/// Occupancy below which the ALUs cannot be saturated (matches
/// `accel_sim::occupancy::efficiency`'s compute saturation point).
pub const OCCUPANCY_WARN: f64 = 0.25;

/// Compilation context the lints evaluate launches under.
#[derive(Debug, Clone)]
pub struct LintContext {
    /// Compiler whose mapping heuristics apply.
    pub compiler: Compiler,
    /// Device whose register file and occupancy limits apply.
    pub device: DeviceSpec,
}

fn bulk_severity(points: u64) -> Severity {
    if points >= BULK_POINTS {
        Severity::Warning
    } else {
        Severity::Info
    }
}

fn lint_launch(op: usize, l: &Launch, ctx: &LintContext) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let plan = ctx.compiler.map(&l.nest, l.kind, &l.clauses, false);
    let points = l.nest.points();
    let span = || Span::at(op).kernel(l.name.clone());

    if !plan.coalesced {
        let msg = if plan.vectorized {
            format!(
                "innermost loop is strided: vector lanes touch non-consecutive \
                 addresses over {points} iterations; transpose the sweep or \
                 vectorize the contiguous loop"
            )
        } else {
            format!(
                "innermost loop runs sequentially (assumed loop-carried \
                 dependence), so {points} iterations neither vectorize nor \
                 coalesce; refute the dependence or restructure"
            )
        };
        diags.push(Diagnostic::new(
            bulk_severity(points),
            Rule::UncoalescedAccess,
            span(),
            msg,
        ));
    }

    if plan.vectorized && l.nest.depth() >= 3 {
        match ctx.compiler {
            Compiler::Pgi(_) => {
                if !l.claims_independent() && l.collapse() < 2 {
                    diags.push(Diagnostic::new(
                        Severity::Warning,
                        Rule::CollapseOpportunity,
                        span(),
                        "deep nest gridifies 1-D under PGI without help: add \
                         `collapse(2)` or `independent` to get a 2-D grid"
                            .to_string(),
                    ));
                }
            }
            Compiler::Cray => {
                let explicit_vector = matches!(l.nest.sched.last(), Some(LoopSched::Vector(_)));
                if l.kind == ConstructKind::Parallel && !explicit_vector {
                    diags.push(Diagnostic::new(
                        Severity::Warning,
                        Rule::CollapseOpportunity,
                        span(),
                        "CRAY picks its own vector loop on deep nests and can \
                         miss the contiguous one: put an explicit `vector` \
                         clause on the innermost loop"
                            .to_string(),
                    ));
                }
            }
        }
    }

    if l.regs > 0 {
        let alloc = occupancy::allocate(&ctx.device, l.regs, l.maxregcount());
        if alloc.spilled > 0 {
            diags.push(Diagnostic::new(
                Severity::Warning,
                Rule::RegisterPressure,
                span(),
                format!(
                    "kernel needs {} registers but holds {} under the cap: {} \
                     values spill to local memory on {}; fission the kernel or \
                     raise `maxregcount`",
                    l.regs, alloc.regs_per_thread, alloc.spilled, ctx.device.name
                ),
            ));
        } else if alloc.occupancy < OCCUPANCY_WARN {
            diags.push(Diagnostic::new(
                Severity::Warning,
                Rule::RegisterPressure,
                span(),
                format!(
                    "occupancy {:.0}% is below ALU saturation ({:.0}%): the \
                     unconstrained allocation holds {} registers per thread; \
                     cap with `maxregcount` (the paper's best: 64)",
                    alloc.occupancy * 100.0,
                    OCCUPANCY_WARN * 100.0,
                    alloc.regs_per_thread
                ),
            ));
        }
    }
    diags
}

/// Lint every launch in the program.
pub fn check(p: &Program, ctx: &LintContext) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, op) in p.ops.iter().enumerate() {
        if let Op::Launch(l) = op {
            diags.extend(lint_launch(i, l, ctx));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use openacc_sim::access::AccessSet;
    use openacc_sim::{Clause, LoopNest, PgiVersion};

    const PGI: Compiler = Compiler::Pgi(PgiVersion::V14_6);

    fn ctx(compiler: Compiler, device: DeviceSpec) -> LintContext {
        LintContext { compiler, device }
    }

    fn prog_of(l: Launch) -> Program {
        let mut p = Program::new("t");
        p.push(Op::Launch(l));
        p
    }

    fn launch(nest: LoopNest, clauses: Vec<Clause>, regs: u32) -> Launch {
        let trip = nest.points();
        Launch {
            name: "k".into(),
            nest,
            kind: ConstructKind::Kernels,
            clauses,
            access: AccessSet::new(trip),
            regs,
        }
    }

    #[test]
    fn strided_bulk_kernel_warns_small_kernel_informs() {
        let big = prog_of(launch(
            LoopNest::new(&[1000, 1000]).strided(),
            vec![Clause::Independent],
            32,
        ));
        let ds = check(&big, &ctx(PGI, DeviceSpec::k40()));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::UncoalescedAccess);
        assert_eq!(ds[0].severity, Severity::Warning);

        let small = prog_of(launch(
            LoopNest::new(&[1, 2500]).strided(),
            vec![Clause::Independent],
            32,
        ));
        let ds = check(&small, &ctx(PGI, DeviceSpec::k40()));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].severity, Severity::Info);
    }

    #[test]
    fn sequential_inner_loop_is_uncoalesced_too() {
        // The direct acoustic-2D backward kernel: strided and dependent.
        let p = prog_of(launch(
            LoopNest::new(&[1000, 1000]).strided().with_dependence(),
            vec![],
            32,
        ));
        let ds = check(&p, &ctx(PGI, DeviceSpec::k40()));
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("sequentially"));
    }

    #[test]
    fn coalesced_kernel_is_clean() {
        let p = prog_of(launch(
            LoopNest::new(&[512, 512]),
            vec![Clause::Independent, Clause::MaxRegCount(64)],
            48,
        ));
        assert!(check(&p, &ctx(PGI, DeviceSpec::k40())).is_empty());
    }

    #[test]
    fn pgi_deep_nest_wants_collapse() {
        let bare = prog_of(launch(LoopNest::new(&[128, 128, 128]), vec![], 32));
        let ds = check(&bare, &ctx(PGI, DeviceSpec::k40()));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::CollapseOpportunity);
        // With collapse(2) the lint goes away.
        let fixed = prog_of(launch(
            LoopNest::new(&[128, 128, 128]),
            vec![Clause::Collapse(2)],
            32,
        ));
        assert!(check(&fixed, &ctx(PGI, DeviceSpec::k40())).is_empty());
    }

    #[test]
    fn cray_deep_parallel_wants_explicit_vector() {
        let mut l = launch(LoopNest::new(&[128, 128, 128]), vec![], 32);
        l.kind = ConstructKind::Parallel;
        let ds = check(&prog_of(l), &ctx(Compiler::Cray, DeviceSpec::k40()));
        // The missed loop pick makes it uncoalesced as well.
        let rules: Vec<_> = ds.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::CollapseOpportunity));
        let mut fixed = launch(
            LoopNest::new(&[128, 128, 128]).with_sched(&[
                LoopSched::Gang,
                LoopSched::Worker,
                LoopSched::Vector(128),
            ]),
            vec![],
            32,
        );
        fixed.kind = ConstructKind::Parallel;
        assert!(check(&prog_of(fixed), &ctx(Compiler::Cray, DeviceSpec::k40())).is_empty());
    }

    #[test]
    fn fused_kernel_register_pressure_both_ways() {
        // The Figure 12 kernel: 96 live registers.
        let fused = |cap: Option<u32>| {
            let clauses = match cap {
                Some(c) => vec![Clause::Independent, Clause::MaxRegCount(c)],
                None => vec![Clause::Independent],
            };
            prog_of(launch(LoopNest::new(&[512, 512]), clauses, 96))
        };
        // Fermi (63-register HW cap): spills.
        let ds = check(&fused(None), &ctx(PGI, DeviceSpec::m2090()));
        assert!(ds
            .iter()
            .any(|d| d.rule == Rule::RegisterPressure && d.message.contains("spill")));
        // Kepler uncapped: no spill but occupancy starves.
        let ds = check(&fused(None), &ctx(PGI, DeviceSpec::k40()));
        assert!(ds
            .iter()
            .any(|d| d.rule == Rule::RegisterPressure && d.message.contains("occupancy")));
        // The paper's 64-register cap on a kernel that fits is clean.
        let fits = prog_of(launch(
            LoopNest::new(&[512, 512]),
            vec![Clause::Independent, Clause::MaxRegCount(64)],
            62,
        ));
        assert!(check(&fits, &ctx(PGI, DeviceSpec::k40())).is_empty());
    }
}
