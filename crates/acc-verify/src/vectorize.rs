//! Vectorization-legality certification: prove `vector(N)` maps to lanes.
//!
//! ROADMAP item 1 wants the simulated `vector` clause mapped to real SIMD
//! lanes. Before any kernel is hand-vectorized, this tier proves which
//! inner loops may legally become `N`-wide vector instructions:
//!
//! * **Dependence distance** — a loop chunked into in-order `N`-wide
//!   vector instructions is safe iff no carried dependence has distance
//!   `< N`: any shorter dependence puts both iterations into one chunk,
//!   where they execute simultaneously. The minimal distance comes from
//!   the same Banerjee/GCD machinery as the race tier
//!   ([`dependence::carried_distance`]), with a concrete witness pair.
//! * **Stride/alignment lattice** — each loop is classified `Unit` (every
//!   stream advances ≤ 1 element per lane — contiguous vector loads),
//!   `Strided` (constant stride > 1 — hardware gathers or shuffles), or
//!   `Gather` (the innermost sweep is not contiguous at all). The store
//!   stream's base residue modulo the widest probed width decides whether
//!   vector stores are aligned.
//! * **Reassociation** — a declared FP `reduction(+:x)` is not a race
//!   (lanes own private partials) but vectorizing it reassociates the
//!   combine order: an `N`-lane tree sum rounds differently from the
//!   scalar chain. The verdict is `LegalWithUlp` with the documented
//!   bound `ulp_bound = ceil(log2 N)` (the tree's rounding depth);
//!   `min`/`max` reductions stay exactly `Legal`.
//!
//! Every verdict is double-checked dynamically: the declared access set
//! replays through the lane-granularity tracker in `openacc_sim::exec`
//! ([`openacc_sim::exec::replay_lanes`]) at each probe width, and the
//! static legality must agree with the observed intra-chunk conflicts —
//! the same confirm/refute design as the [`crate::sanitize`] tier.

use crate::dependence::{self, subscript, witness_distance, Witness};
use crate::diag::{Diagnostic, Rule, Severity, Span};
use crate::lints::LintContext;
use crate::program::{Launch, Program};
use crate::sanitize;
use openacc_sim::access::ReduceOp;
use openacc_sim::exec::replay_lanes;

/// Lane widths probed, widest first: f64x8 (AVX-512), f64x4 (AVX2/SVE),
/// f64x2 (SSE2/NEON). A loop's certified width is the widest legal one.
pub const PROBE_WIDTHS: [u32; 3] = [8, 4, 2];

/// The widest probed width — store bases are judged aligned against it.
pub const VECTOR_ALIGN: i64 = 8;

/// Trip count dynamic lane replays clamp to (same reasoning as
/// [`sanitize::SANITIZE_TRIP`]: covers every stencil tap, stays instant).
pub const LANE_REPLAY_TRIP: u64 = 512;

/// Where a loop's access streams sit on the stride lattice
/// (`Unit < Strided < Gather` — later classes cost more per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StrideClass {
    /// Every stream advances ≤ 1 element per lane: contiguous vector
    /// loads/stores (stride-0 streams broadcast — also free).
    Unit,
    /// Some stream has a constant |stride| > 1: lanes hit an arithmetic
    /// but non-contiguous progression (strided load / scatter).
    Strided,
    /// The innermost sweep itself is not contiguous: lane addresses are
    /// not an arithmetic progression — a true gather.
    Gather,
}

impl StrideClass {
    /// Lower-case label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            StrideClass::Unit => "unit",
            StrideClass::Strided => "strided",
            StrideClass::Gather => "gather",
        }
    }
}

/// The legality verdict of one loop at its certified width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorLegality {
    /// Lanes are independent and the combine order is untouched:
    /// vectorized execution is bitwise-identical to scalar.
    Legal,
    /// Lanes are independent but a reassociation-sensitive reduction is
    /// combined as a tree: results match the scalar chain only within the
    /// documented ULP bound.
    LegalWithUlp {
        /// The reduction operator that reassociates.
        op: ReduceOp,
        /// Rounding-depth bound: a `w`-lane tree sum differs from the
        /// sequential chain by at most `ceil(log2 w)` extra rounding
        /// steps per element.
        ulp_bound: u32,
    },
    /// A carried dependence shorter than every probed width: the loop is
    /// bitwise-correct only scalar.
    Illegal {
        /// The minimal carried dependence distance.
        distance: u64,
        /// Rendered witness pair (resolved subscripts + iterations).
        witness: String,
    },
}

impl VectorLegality {
    /// True unless the verdict is [`VectorLegality::Illegal`].
    pub fn is_legal(&self) -> bool {
        !matches!(self, VectorLegality::Illegal { .. })
    }

    /// Stable lower-case label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            VectorLegality::Legal => "legal",
            VectorLegality::LegalWithUlp { .. } => "legal-with-ulp",
            VectorLegality::Illegal { .. } => "illegal",
        }
    }

    /// The ULP bound, 0 when bitwise.
    pub fn ulp_bound(&self) -> u32 {
        match self {
            VectorLegality::LegalWithUlp { ulp_bound, .. } => *ulp_bound,
            _ => 0,
        }
    }
}

/// The machine-checked vectorization certificate of one innermost loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorCertificate {
    /// Kernel name.
    pub kernel: String,
    /// Op index of the launch in its program.
    pub op: usize,
    /// Widest legal lane width (1 = scalar only).
    pub width: u32,
    /// The verdict at [`VectorCertificate::width`].
    pub legality: VectorLegality,
    /// Stride-lattice class of the loop's access streams.
    pub stride_class: StrideClass,
    /// Store-stream base residue modulo [`VECTOR_ALIGN`] (worst stream;
    /// 0 = every vector store is aligned, or the loop stores nothing).
    pub align_residue: i64,
    /// ULP bound of the certified mapping (0 = bitwise).
    pub ulp_bound: u32,
    /// Minimal carried dependence distance (`None` = independent at any
    /// distance).
    pub min_distance: Option<u64>,
    /// Did the compiler mapping actually put the innermost loop on vector
    /// lanes? A legal certificate on a sequential loop is headroom.
    pub vectorized: bool,
}

impl VectorCertificate {
    /// Certified and actually usable: legal at width ≥ 2.
    pub fn certified_legal(&self) -> bool {
        self.legality.is_legal() && self.width >= 2
    }
}

/// The ULP bound of a `w`-lane tree combine versus the scalar chain: the
/// tree has `ceil(log2 w)` rounding levels, so per-element error grows by
/// at most that many extra roundings (each ≤ ½ ULP of the partial).
pub fn tree_ulp_bound(width: u32) -> u32 {
    if width <= 1 {
        0
    } else {
        (width - 1).ilog2() + 1
    }
}

/// The worst reassociation-sensitive reduction declared, if any.
fn sensitive_reduction(l: &Launch) -> Option<ReduceOp> {
    l.access
        .reductions
        .iter()
        .map(|r| r.op)
        .find(|op| op.reassociation_sensitive())
}

/// Classify the launch on the stride lattice.
pub fn stride_class(l: &Launch) -> StrideClass {
    if !l.nest.innermost_contiguous {
        return StrideClass::Gather;
    }
    let strided = l
        .access
        .reads
        .iter()
        .chain(l.access.writes.iter())
        .any(|a| a.stride.abs() > 1);
    if strided {
        StrideClass::Strided
    } else {
        StrideClass::Unit
    }
}

/// Worst store-stream alignment residue modulo [`VECTOR_ALIGN`].
pub fn align_residue(l: &Launch) -> i64 {
    l.access
        .writes
        .iter()
        .map(|w| w.offset.rem_euclid(VECTOR_ALIGN))
        .max()
        .unwrap_or(0)
}

/// Certify one launch: compute the minimal carried distance, pick the
/// widest probe width below it, and fold in the reduction verdict.
pub fn certify_launch(op: usize, l: &Launch, ctx: &LintContext) -> VectorCertificate {
    let wit = dependence::min_carried_distance(&l.access);
    let min_distance = wit.as_ref().map(witness_distance);
    let trip = l.access.trip;
    let width = PROBE_WIDTHS
        .iter()
        .copied()
        .find(|&w| min_distance.is_none_or(|d| d >= u64::from(w)) && u64::from(w) <= trip.max(1))
        .unwrap_or(1);
    let legality = if width >= 2 {
        match sensitive_reduction(l) {
            Some(rop) => VectorLegality::LegalWithUlp {
                op: rop,
                ulp_bound: tree_ulp_bound(width),
            },
            None => VectorLegality::Legal,
        }
    } else if let Some(w) = &wit {
        VectorLegality::Illegal {
            distance: min_distance.unwrap_or(0),
            witness: render_witness(w),
        }
    } else {
        // Trip too short to fill even two lanes: scalar, trivially legal.
        VectorLegality::Legal
    };
    let ulp_bound = legality.ulp_bound();
    let plan = ctx.compiler.map(&l.nest, l.kind, &l.clauses, false);
    VectorCertificate {
        kernel: l.name.clone(),
        op,
        width,
        legality,
        stride_class: stride_class(l),
        align_residue: align_residue(l),
        ulp_bound,
        min_distance,
        vectorized: plan.vectorized,
    }
}

fn render_witness(w: &Witness) -> String {
    format!(
        "{} at i={} and {} at i={} share element {} (distance {})",
        subscript(&w.write),
        w.i,
        subscript(&w.other),
        w.j,
        w.elem,
        witness_distance(w)
    )
}

/// Certify every launch of a program, in op order.
pub fn certify_program(p: &Program, ctx: &LintContext) -> Vec<VectorCertificate> {
    p.launches()
        .map(|(op, l)| certify_launch(op, l, ctx))
        .collect()
}

/// Derive diagnostics from the certificates — the vectorization checker
/// family [`crate::verify_program`] runs.
pub fn check(p: &Program, ctx: &LintContext) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (op, l) in p.launches() {
        let cert = certify_launch(op, l, ctx);
        let span = || Span::at(op).kernel(l.name.clone());
        match &cert.legality {
            VectorLegality::Illegal { distance, witness } if cert.vectorized => {
                out.push(Diagnostic::new(
                    Severity::Error,
                    Rule::VectorLaneDependence,
                    span(),
                    format!(
                        "vector mapping is illegal at any probed width: carried dependence \
                         of distance {distance} — {witness}"
                    ),
                ));
            }
            VectorLegality::LegalWithUlp { op: rop, ulp_bound } => {
                out.push(Diagnostic::new(
                    Severity::Info,
                    Rule::VectorReassociation,
                    span(),
                    format!(
                        "reduction({}:…) vectorized at width {} reassociates the combine \
                         tree: results match the scalar chain within {ulp_bound} ULP",
                        rop.symbol(),
                        cert.width
                    ),
                ));
            }
            _ => {}
        }
        if cert.certified_legal() && cert.align_residue != 0 {
            out.push(Diagnostic::new(
                Severity::Info,
                Rule::VectorMisalignment,
                span(),
                format!(
                    "store-stream base has alignment residue {} (mod {VECTOR_ALIGN}): \
                     every width-{} vector store straddles an alignment boundary",
                    cert.align_residue, cert.width
                ),
            ));
        }
        if !cert.vectorized && cert.min_distance.is_none() && l.access.trip >= 2 {
            out.push(Diagnostic::new(
                Severity::Info,
                Rule::VectorizableSequential,
                span(),
                format!(
                    "loop runs sequentially (declared dependence) but its affine accesses \
                     are provably independent: vectorization at width {} would be legal",
                    cert.width
                ),
            ));
        }
    }
    out
}

/// The two tiers' verdicts at one probe width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthCheck {
    /// Probe width.
    pub width: u32,
    /// Static claim: no carried dependence of distance < width.
    pub static_safe: bool,
    /// Dynamic observation: the lane replay saw no intra-chunk conflict.
    pub dynamic_safe: bool,
}

/// Static certificate replayed through the lane tracker: every probe
/// width's legality verdict checked against the observed chunk conflicts,
/// plus stride-class and alignment agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneCrossCheck {
    /// Kernel name.
    pub kernel: String,
    /// Per-width verdict pairs, widest first.
    pub per_width: Vec<WidthCheck>,
    /// Static stride class matches the replayed lane deltas (only
    /// decidable when the class is not [`StrideClass::Gather`], which is
    /// a nest property the replay cannot observe).
    pub stride_agrees: bool,
    /// Static store-base residues match the replayed lane-0 addresses.
    pub residue_agrees: bool,
}

impl LaneCrossCheck {
    /// The tiers agree on every probed width and every measurement.
    pub fn agree(&self) -> bool {
        self.per_width
            .iter()
            .all(|w| w.static_safe == w.dynamic_safe)
            && self.stride_agrees
            && self.residue_agrees
    }
}

/// Run both tiers over one launch at every probe width, on the same
/// replay-clamped trip count so the verdicts are directly comparable.
pub fn lane_crosscheck(l: &Launch) -> LaneCrossCheck {
    let access = sanitize::scaled(&l.access, LANE_REPLAY_TRIP);
    let min_distance = dependence::min_carried_distance(&access)
        .as_ref()
        .map(witness_distance);
    let mut per_width = Vec::with_capacity(PROBE_WIDTHS.len());
    let mut stride_agrees = true;
    let mut residue_agrees = true;
    let class = {
        // Reuse the static classifier on a probe copy of the launch.
        let mut probe = l.clone();
        probe.access = access.clone();
        stride_class(&probe)
    };
    for w in PROBE_WIDTHS {
        let replay = replay_lanes(&access, w);
        per_width.push(WidthCheck {
            width: w,
            static_safe: min_distance.is_none_or(|d| d >= u64::from(w)),
            dynamic_safe: replay.lane_safe(),
        });
        // Stride: the statically claimed class must match the measured
        // lane progression (skip gathers — a nest property — and
        // single-iteration loops, where no adjacent lane pair exists to
        // measure a delta from).
        if class != StrideClass::Gather && replay.trip >= 2 {
            let measured_unit = replay.unit_stride();
            if (class == StrideClass::Unit) != measured_unit {
                stride_agrees = false;
            }
        }
        // Alignment: the declared store base must be the address lane 0
        // actually touched, residue-for-residue.
        for (stream, (_, dyn_residue)) in access.writes.iter().zip(replay.write_residues().iter()) {
            if stream.offset.rem_euclid(i64::from(w)) != *dyn_residue {
                residue_agrees = false;
            }
        }
    }
    LaneCrossCheck {
        kernel: l.name.clone(),
        per_width,
        stride_agrees,
        residue_agrees,
    }
}

/// Cross-check every launch of a program.
pub fn lane_crosscheck_program(p: &Program) -> Vec<LaneCrossCheck> {
    p.launches().map(|(_, l)| lane_crosscheck(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openacc_sim::access::AccessSet;
    use openacc_sim::{Clause, Compiler, ConstructKind, LoopNest, PgiVersion};

    fn ctx() -> LintContext {
        LintContext {
            compiler: Compiler::Pgi(PgiVersion::V14_6),
            device: accel_sim::DeviceSpec::k40(),
        }
    }

    fn launch(access: AccessSet) -> Launch {
        Launch {
            name: "k".into(),
            nest: LoopNest::new(&[access.trip.max(1)]),
            kind: ConstructKind::Kernels,
            clauses: vec![Clause::Independent],
            access,
            regs: 32,
        }
    }

    #[test]
    fn out_of_place_stencil_certifies_widest() {
        let l = launch(AccessSet::stencil(4096, "fields", 100_000, 0, 4, 64));
        let c = certify_launch(0, &l, &ctx());
        assert_eq!(c.width, 8);
        assert_eq!(c.legality, VectorLegality::Legal);
        assert_eq!(c.stride_class, StrideClass::Unit);
        assert_eq!(c.align_residue, 0);
        assert_eq!(c.min_distance, None);
        assert!(c.vectorized);
        assert!(c.certified_legal());
    }

    #[test]
    fn distance_limits_certified_width() {
        // Distance-4 recurrence (write u[i], read u[i−4]): width 4, not 8.
        let l = launch(AccessSet::new(4096).write("u", 0, 1).read("u", -4, 1));
        let c = certify_launch(0, &l, &ctx());
        assert_eq!(c.min_distance, Some(4));
        assert_eq!(c.width, 4);
        assert!(c.legality.is_legal());
        // The full in-place stencil has ±1 taps: distance 1, scalar only.
        let inplace = launch(AccessSet::stencil_inplace(4096, "u", 0, 4, 4096));
        let c2 = certify_launch(0, &inplace, &ctx());
        assert_eq!(c2.min_distance, Some(1));
        assert_eq!(c2.width, 1);
    }

    #[test]
    fn distance_one_recurrence_is_illegal_with_witness() {
        let l = launch(AccessSet::new(4096).write("u", 0, 1).read("u", -1, 1));
        let c = certify_launch(3, &l, &ctx());
        assert_eq!(c.width, 1);
        assert!(!c.certified_legal());
        let VectorLegality::Illegal { distance, witness } = &c.legality else {
            panic!("expected illegal: {c:?}");
        };
        assert_eq!(*distance, 1);
        assert!(witness.contains("u[i]"), "{witness}");
        assert!(witness.contains("u[i − 1]"), "{witness}");
    }

    #[test]
    fn reduction_is_legal_with_ulp() {
        let l = launch(
            AccessSet::new(4096)
                .read("u", 0, 1)
                .reduce("qc", 0, ReduceOp::Sum),
        );
        let c = certify_launch(0, &l, &ctx());
        assert_eq!(c.width, 8);
        assert_eq!(
            c.legality,
            VectorLegality::LegalWithUlp {
                op: ReduceOp::Sum,
                ulp_bound: 3
            }
        );
        assert_eq!(c.ulp_bound, 3);
        assert!(c.certified_legal());
        // Max reductions are exact: no ULP verdict.
        let exact = launch(
            AccessSet::new(4096)
                .read("u", 0, 1)
                .reduce("qc", 0, ReduceOp::Max),
        );
        assert_eq!(
            certify_launch(0, &exact, &ctx()).legality,
            VectorLegality::Legal
        );
    }

    #[test]
    fn tree_bound_is_log2() {
        assert_eq!(tree_ulp_bound(1), 0);
        assert_eq!(tree_ulp_bound(2), 1);
        assert_eq!(tree_ulp_bound(4), 2);
        assert_eq!(tree_ulp_bound(8), 3);
    }

    #[test]
    fn stride_and_alignment_classification() {
        let strided = launch(AccessSet::new(4096).write("r", 1, 7));
        let c = certify_launch(0, &strided, &ctx());
        assert_eq!(c.stride_class, StrideClass::Strided);
        assert_eq!(c.align_residue, 1);
        let mut gather = launch(AccessSet::new(4096).write("u", 0, 1));
        gather.nest.innermost_contiguous = false;
        assert_eq!(
            certify_launch(0, &gather, &ctx()).stride_class,
            StrideClass::Gather
        );
    }

    #[test]
    fn diags_fire_per_verdict() {
        let mut p = Program::new("t");
        // Illegal + vectorized → error.
        p.push(crate::program::Op::Launch(launch(
            AccessSet::new(4096).write("u", 0, 1).read("u", -1, 1),
        )));
        // Reduction → info.
        p.push(crate::program::Op::Launch(launch(
            AccessSet::new(4096)
                .read("u", 0, 1)
                .reduce("qc", 0, ReduceOp::Sum),
        )));
        // Misaligned store → info.
        p.push(crate::program::Op::Launch(launch(
            AccessSet::new(4096).write("u", 3, 1),
        )));
        // Sequential but provably independent → info.
        let mut seq = launch(AccessSet::stencil(4096, "u", 100_000, 0, 4, 64));
        seq.clauses.clear();
        seq.nest = seq.nest.with_dependence();
        p.push(crate::program::Op::Launch(seq));
        let ds = check(&p, &ctx());
        let rules: Vec<Rule> = ds.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::VectorLaneDependence));
        assert!(rules.contains(&Rule::VectorReassociation));
        assert!(rules.contains(&Rule::VectorMisalignment));
        assert!(rules.contains(&Rule::VectorizableSequential));
        assert_eq!(
            ds.iter().filter(|d| d.severity == Severity::Error).count(),
            1
        );
    }

    #[test]
    fn crosscheck_agrees_on_legal_and_illegal() {
        let clean = lane_crosscheck(&launch(AccessSet::stencil(4096, "u", 100_000, 0, 4, 64)));
        assert!(clean.agree(), "{clean:?}");
        assert!(clean
            .per_width
            .iter()
            .all(|w| w.static_safe && w.dynamic_safe));

        let broken = lane_crosscheck(&launch(
            AccessSet::new(4096).write("u", 0, 1).read("u", -1, 1),
        ));
        assert!(broken.agree(), "{broken:?}");
        assert!(broken
            .per_width
            .iter()
            .all(|w| !w.static_safe && !w.dynamic_safe));

        // Distance 4: the tiers must flip together exactly at width 8.
        let edge = lane_crosscheck(&launch(
            AccessSet::new(4096).write("u", 0, 1).read("u", -4, 1),
        ));
        assert!(edge.agree(), "{edge:?}");
        for w in &edge.per_width {
            assert_eq!(w.static_safe, w.width <= 4, "{w:?}");
        }
    }

    #[test]
    fn crosscheck_catches_misaligned_base_dynamically() {
        let cc = lane_crosscheck(&launch(AccessSet::new(4096).write("u", 3, 1)));
        assert!(cc.agree());
        // The replay itself must have observed residue 3 at width 8.
        let replay = replay_lanes(
            &sanitize::scaled(&AccessSet::new(4096).write("u", 3, 1), LANE_REPLAY_TRIP),
            8,
        );
        assert_eq!(replay.write_residues(), vec![("u".to_string(), 3)]);
    }
}
