//! Data-environment checking by abstract interpretation.
//!
//! The checker walks the program once, tracking for every array whether it
//! is mapped on the device, whether its device copy is newer than the host
//! copy (`device_dirty`, set by kernel writes, cleared by `update host`),
//! and whether the host copy is newer (`host_dirty`, set by host writes,
//! cleared by `update device`). The abstract state mirrors exactly what
//! `openacc_sim::data::DataEnv` tracks at runtime, so every error this
//! pass reports is one the runtime would hit.

use crate::diag::{Diagnostic, Rule, Severity, Span};
use crate::program::{Op, Program};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Copy)]
struct MapState {
    entered_at: usize,
    device_dirty: bool,
    host_dirty: bool,
}

/// Walk the program and report every data-environment violation.
pub fn check(p: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut mapped: HashMap<String, MapState> = HashMap::new();
    let mut freed: HashSet<String> = HashSet::new();

    let err = |op: usize, rule: Rule, array: &str, msg: String| {
        Diagnostic::new(Severity::Error, rule, Span::at(op).array(array), msg)
    };

    for (i, op) in p.ops.iter().enumerate() {
        match op {
            Op::EnterDataCopyin { array } | Op::EnterDataCreate { array } => {
                freed.remove(array);
                mapped.insert(
                    array.clone(),
                    MapState {
                        entered_at: i,
                        device_dirty: false,
                        host_dirty: false,
                    },
                );
            }
            Op::ExitDataDelete { array } => {
                if mapped.remove(array).is_some() {
                    freed.insert(array.clone());
                } else if freed.contains(array) {
                    diags.push(err(
                        i,
                        Rule::DoubleDelete,
                        array,
                        format!("`{array}` was already deleted by an earlier `exit data`"),
                    ));
                } else {
                    diags.push(err(
                        i,
                        Rule::DoubleDelete,
                        array,
                        format!("`exit data delete` on `{array}`, which was never mapped"),
                    ));
                }
            }
            Op::UpdateHost { array } => match mapped.get_mut(array) {
                Some(m) => m.device_dirty = false,
                None => diags.push(err(
                    i,
                    Rule::UpdateOnAbsent,
                    array,
                    format!("`update host({array})` but `{array}` is not on the device"),
                )),
            },
            Op::UpdateDevice { array } => match mapped.get_mut(array) {
                Some(m) => m.host_dirty = false,
                None => diags.push(err(
                    i,
                    Rule::UpdateOnAbsent,
                    array,
                    format!("`update device({array})` but `{array}` is not on the device"),
                )),
            },
            Op::Present { array } => {
                if !mapped.contains_key(array) {
                    diags.push(err(
                        i,
                        Rule::PresentOnAbsent,
                        array,
                        format!("`present({array})` asserted but `{array}` is not mapped"),
                    ));
                }
            }
            Op::Launch(l) => {
                // Reads of host-dirty data first, then mark writes dirty —
                // a kernel that reads and writes the same array still reads
                // the pre-launch copy.
                for a in l.access.arrays() {
                    match mapped.get(a) {
                        None => diags.push(Diagnostic::new(
                            Severity::Error,
                            Rule::UseNotMapped,
                            Span::at(i).kernel(l.name.clone()).array(a),
                            format!(
                                "kernel `{}` references `{a}`, which was never \
                                 `enter data`'d onto the device",
                                l.name
                            ),
                        )),
                        Some(m) if m.host_dirty => diags.push(Diagnostic::new(
                            Severity::Error,
                            Rule::StaleDeviceRead,
                            Span::at(i).kernel(l.name.clone()).array(a),
                            format!(
                                "kernel `{}` uses `{a}` after a host write with no \
                                 `update device` in between: the device copy is stale",
                                l.name
                            ),
                        )),
                        Some(_) => {}
                    }
                }
                for a in l.access.written_arrays() {
                    if let Some(m) = mapped.get_mut(a) {
                        m.device_dirty = true;
                    }
                }
            }
            Op::Wait | Op::WaitQueue(_) => {}
            Op::HostRead { array } => {
                if let Some(m) = mapped.get(array) {
                    if m.device_dirty {
                        diags.push(err(
                            i,
                            Rule::StaleHostRead,
                            array,
                            format!(
                                "host reads `{array}` after a device write with no \
                                 `update host` in between: the host copy is stale"
                            ),
                        ));
                    }
                }
            }
            Op::HostWrite { array } => {
                if let Some(m) = mapped.get_mut(array) {
                    m.host_dirty = true;
                }
            }
        }
    }

    // Anything still mapped at program end never saw its `exit data`.
    let mut leaks: Vec<(&String, &MapState)> = mapped.iter().collect();
    leaks.sort_by_key(|(_, m)| m.entered_at);
    for (array, m) in leaks {
        diags.push(Diagnostic::new(
            Severity::Warning,
            Rule::LeakedEnterData,
            Span::at(m.entered_at).array(array.clone()),
            format!("`enter data` for `{array}` is never paired with an `exit data delete`"),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Launch;
    use openacc_sim::access::AccessSet;
    use openacc_sim::{ConstructKind, LoopNest};

    fn launch_on(access: AccessSet) -> Op {
        Op::Launch(Launch {
            name: "k".into(),
            nest: LoopNest::new(&[access.trip.max(1)]),
            kind: ConstructKind::Kernels,
            clauses: vec![],
            access,
            regs: 16,
        })
    }

    fn rules(p: &Program) -> Vec<Rule> {
        check(p).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_lifecycle_has_no_diags() {
        let mut p = Program::new("clean");
        p.push(Op::EnterDataCopyin { array: "u".into() })
            .push(launch_on(AccessSet::stencil(16, "u", 100, 0, 1, 4)))
            .push(Op::UpdateHost { array: "u".into() })
            .push(Op::HostRead { array: "u".into() })
            .push(Op::ExitDataDelete { array: "u".into() });
        assert!(check(&p).is_empty());
    }

    #[test]
    fn use_not_mapped_and_present_on_absent() {
        let mut p = Program::new("t");
        p.push(launch_on(AccessSet::new(4).write("ghost", 0, 1)))
            .push(Op::Present {
                array: "ghost".into(),
            });
        assert_eq!(rules(&p), vec![Rule::UseNotMapped, Rule::PresentOnAbsent]);
    }

    #[test]
    fn stale_host_read_needs_update_host() {
        let mut p = Program::new("t");
        p.push(Op::EnterDataCopyin { array: "u".into() })
            .push(launch_on(AccessSet::new(4).write("u", 0, 1)))
            .push(Op::HostRead { array: "u".into() })
            .push(Op::ExitDataDelete { array: "u".into() });
        assert_eq!(rules(&p), vec![Rule::StaleHostRead]);
        // Inserting the update fixes it.
        let mut q = Program::new("t");
        q.push(Op::EnterDataCopyin { array: "u".into() })
            .push(launch_on(AccessSet::new(4).write("u", 0, 1)))
            .push(Op::UpdateHost { array: "u".into() })
            .push(Op::HostRead { array: "u".into() })
            .push(Op::ExitDataDelete { array: "u".into() });
        assert!(check(&q).is_empty());
    }

    #[test]
    fn stale_device_read_needs_update_device() {
        let mut p = Program::new("t");
        p.push(Op::EnterDataCopyin { array: "u".into() })
            .push(Op::HostWrite { array: "u".into() })
            .push(launch_on(
                AccessSet::new(4).read("u", 0, 1).write("u", 100, 1),
            ))
            .push(Op::ExitDataDelete { array: "u".into() });
        assert_eq!(rules(&p), vec![Rule::StaleDeviceRead]);
        let mut q = Program::new("t");
        q.push(Op::EnterDataCopyin { array: "u".into() })
            .push(Op::HostWrite { array: "u".into() })
            .push(Op::UpdateDevice { array: "u".into() })
            .push(launch_on(
                AccessSet::new(4).read("u", 0, 1).write("u", 100, 1),
            ))
            .push(Op::ExitDataDelete { array: "u".into() });
        assert!(check(&q).is_empty());
    }

    #[test]
    fn double_delete_and_never_mapped_delete() {
        let mut p = Program::new("t");
        p.push(Op::EnterDataCreate { array: "u".into() })
            .push(Op::ExitDataDelete { array: "u".into() })
            .push(Op::ExitDataDelete { array: "u".into() })
            .push(Op::ExitDataDelete { array: "v".into() });
        let ds = check(&p);
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.rule == Rule::DoubleDelete));
        assert!(ds[0].message.contains("already deleted"));
        assert!(ds[1].message.contains("never mapped"));
    }

    #[test]
    fn leak_reported_at_the_enter_site() {
        let mut p = Program::new("t");
        p.push(Op::EnterDataCopyin { array: "u".into() });
        let ds = check(&p);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::LeakedEnterData);
        assert_eq!(ds[0].severity, Severity::Warning);
        assert_eq!(ds[0].span.op, 0);
    }

    #[test]
    fn update_on_absent_is_an_error() {
        let mut p = Program::new("t");
        p.push(Op::UpdateHost { array: "u".into() })
            .push(Op::UpdateDevice { array: "u".into() });
        assert_eq!(rules(&p), vec![Rule::UpdateOnAbsent, Rule::UpdateOnAbsent]);
    }

    #[test]
    fn remap_after_delete_is_legal() {
        let mut p = Program::new("t");
        p.push(Op::EnterDataCopyin { array: "u".into() })
            .push(Op::ExitDataDelete { array: "u".into() })
            .push(Op::EnterDataCopyin { array: "u".into() })
            .push(Op::ExitDataDelete { array: "u".into() });
        assert!(check(&p).is_empty());
    }
}
