//! Async-queue hazard detection.
//!
//! `async(q)` launches return immediately; two launches on *different*
//! queues run concurrently on the device. If their element footprints on a
//! shared array overlap and no `wait` separates them, the result depends
//! on the device scheduler: a RAW/WAR/WAW hazard. The checker keeps the
//! set of in-flight launches per queue and compares every new launch's
//! affine footprint (as conservative per-array extents) against in-flight
//! work on other queues. `wait` retires everything; `wait(q)` retires one
//! queue; a launch with no `async` clause is synchronous and retires
//! itself immediately — but still races against work already in flight.

use crate::diag::{Diagnostic, Rule, Severity, Span};
use crate::program::{Op, Program};
use openacc_sim::access::{AccessSet, AffineAccess};
use std::collections::HashMap;

type Extents = Vec<(String, (i64, i64))>;

fn extents_of(refs: &[AffineAccess], trip: u64) -> Extents {
    let mut by_array: HashMap<&str, (i64, i64)> = HashMap::new();
    for r in refs {
        if let Some((lo, hi)) = r.extent(trip) {
            by_array
                .entry(r.array.as_str())
                .and_modify(|e| *e = (e.0.min(lo), e.1.max(hi)))
                .or_insert((lo, hi));
        }
    }
    let mut v: Extents = by_array
        .into_iter()
        .map(|(k, e)| (k.to_string(), e))
        .collect();
    v.sort();
    v
}

fn overlap(a: (i64, i64), b: (i64, i64)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

fn find_on(ext: &Extents, array: &str) -> Option<(i64, i64)> {
    ext.iter().find(|(a, _)| a == array).map(|(_, e)| *e)
}

#[derive(Debug, Clone)]
struct InFlight {
    op: usize,
    name: String,
    queue: u32,
    reads: Extents,
    writes: Extents,
}

fn footprints(access: &AccessSet) -> (Extents, Extents) {
    (
        extents_of(&access.reads, access.trip),
        extents_of(&access.writes, access.trip),
    )
}

/// The first hazard between an in-flight launch and a new footprint, as
/// `(kind, array)`.
fn hazard_between(
    old: &InFlight,
    reads: &Extents,
    writes: &Extents,
) -> Option<(&'static str, String)> {
    for (array, w) in writes {
        if find_on(&old.writes, array).is_some_and(|e| overlap(e, *w)) {
            return Some(("write-after-write", array.clone()));
        }
        if find_on(&old.reads, array).is_some_and(|e| overlap(e, *w)) {
            return Some(("write-after-read", array.clone()));
        }
    }
    for (array, r) in reads {
        if find_on(&old.writes, array).is_some_and(|e| overlap(e, *r)) {
            return Some(("read-after-write", array.clone()));
        }
    }
    None
}

/// Walk the program and report async hazards and redundant waits.
pub fn check(p: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut in_flight: Vec<InFlight> = Vec::new();

    for (i, op) in p.ops.iter().enumerate() {
        match op {
            Op::Launch(l) => {
                let (reads, writes) = footprints(&l.access);
                let queue = l.async_queue();
                for old in &in_flight {
                    // Same queue serializes; only cross-queue pairs race.
                    if queue == Some(old.queue) {
                        continue;
                    }
                    if let Some((kind, array)) = hazard_between(old, &reads, &writes) {
                        diags.push(Diagnostic::new(
                            Severity::Error,
                            Rule::AsyncHazard,
                            Span::at(i).kernel(l.name.clone()).array(array.clone()),
                            format!(
                                "{kind} hazard on `{array}`: `{}` (op {}, queue {}) is \
                                 still in flight when `{}` launches{} with no \
                                 intervening `wait`",
                                old.name,
                                old.op,
                                old.queue,
                                l.name,
                                match queue {
                                    Some(q) => format!(" on queue {q}"),
                                    None => " synchronously".to_string(),
                                },
                            ),
                        ));
                    }
                }
                if let Some(q) = queue {
                    in_flight.push(InFlight {
                        op: i,
                        name: l.name.clone(),
                        queue: q,
                        reads,
                        writes,
                    });
                }
            }
            Op::Wait => {
                if in_flight.is_empty() {
                    diags.push(Diagnostic::new(
                        Severity::Warning,
                        Rule::RedundantWait,
                        Span::at(i),
                        "`wait` with no async work in flight".to_string(),
                    ));
                }
                in_flight.clear();
            }
            Op::WaitQueue(q) => {
                if !in_flight.iter().any(|f| f.queue == *q) {
                    diags.push(Diagnostic::new(
                        Severity::Warning,
                        Rule::RedundantWait,
                        Span::at(i),
                        format!("`wait({q})` but queue {q} has no work in flight"),
                    ));
                }
                in_flight.retain(|f| f.queue != *q);
            }
            // Data directives and host accesses are the data-environment
            // checker's concern; they do not retire async work.
            _ => {}
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Launch;
    use openacc_sim::access::AccessSet;
    use openacc_sim::{Clause, ConstructKind, LoopNest};

    fn launch(name: &str, access: AccessSet, queue: Option<u32>) -> Op {
        let mut clauses = Vec::new();
        if let Some(q) = queue {
            clauses.push(Clause::Async(q));
        }
        Op::Launch(Launch {
            name: name.into(),
            nest: LoopNest::new(&[access.trip.max(1)]),
            kind: ConstructKind::Parallel,
            clauses,
            access,
            regs: 16,
        })
    }

    fn rules(p: &Program) -> Vec<Rule> {
        check(p).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn cross_queue_raw_without_wait_flagged() {
        // Queue 0 writes u[0..16), queue 1 reads u[0..16).
        let mut p = Program::new("t");
        p.push(launch("w", AccessSet::new(16).write("u", 0, 1), Some(0)))
            .push(launch("r", AccessSet::new(16).read("u", 0, 1), Some(1)));
        let ds = check(&p);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::AsyncHazard);
        assert!(ds[0].message.contains("read-after-write"));
        assert_eq!(ds[0].span.op, 1);
    }

    #[test]
    fn wait_between_queues_clears_hazard() {
        let mut p = Program::new("t");
        p.push(launch("w", AccessSet::new(16).write("u", 0, 1), Some(0)))
            .push(Op::Wait)
            .push(launch("r", AccessSet::new(16).read("u", 0, 1), Some(1)))
            .push(Op::Wait);
        assert!(check(&p).is_empty());
    }

    #[test]
    fn disjoint_slots_do_not_race() {
        let mut p = Program::new("t");
        p.push(launch("a", AccessSet::new(16).write("u", 0, 1), Some(0)))
            .push(launch("b", AccessSet::new(16).write("u", 1000, 1), Some(1)))
            .push(Op::Wait);
        assert!(check(&p).is_empty());
    }

    #[test]
    fn same_queue_serializes() {
        let mut p = Program::new("t");
        p.push(launch("a", AccessSet::new(16).write("u", 0, 1), Some(2)))
            .push(launch("b", AccessSet::new(16).read("u", 0, 1), Some(2)))
            .push(Op::Wait);
        assert!(check(&p).is_empty());
    }

    #[test]
    fn wait_queue_retires_only_that_queue() {
        let mut p = Program::new("t");
        p.push(launch("a", AccessSet::new(16).write("u", 0, 1), Some(0)))
            .push(launch("b", AccessSet::new(16).write("v", 0, 1), Some(1)))
            .push(Op::WaitQueue(1))
            // Queue 0 still in flight: WAR against its write of u.
            .push(launch("c", AccessSet::new(16).write("u", 8, 1), Some(1)))
            .push(Op::Wait);
        let ds = check(&p);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("write-after-write"));
    }

    #[test]
    fn sync_launch_races_with_in_flight_work() {
        let mut p = Program::new("t");
        p.push(launch("a", AccessSet::new(16).write("u", 0, 1), Some(0)))
            .push(launch("b", AccessSet::new(16).read("u", 4, 1), None));
        let ds = check(&p);
        // One hazard (b vs a) plus no redundant-wait; the leak of queue 0
        // is the data checker's concern, not ours.
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("synchronously"));
    }

    #[test]
    fn redundant_waits_warned() {
        let mut p = Program::new("t");
        p.push(Op::Wait).push(Op::WaitQueue(3));
        let ds = check(&p);
        assert_eq!(rules(&p), vec![Rule::RedundantWait, Rule::RedundantWait]);
        assert!(ds.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn double_wait_second_is_redundant() {
        let mut p = Program::new("t");
        p.push(launch("a", AccessSet::new(16).write("u", 0, 1), Some(0)))
            .push(Op::Wait)
            .push(Op::Wait);
        let ds = check(&p);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::RedundantWait);
        assert_eq!(ds[0].span.op, 2);
    }
}
