//! Static dependence testing: the `independent`-claim race detector.
//!
//! `!$acc loop independent` asserts that no iteration of the parallelized
//! loop touches an element another iteration writes. Over affine access
//! descriptors that claim is *decidable*: a conflict between a write
//! `w.offset + w.stride·i` and an access `a.offset + a.stride·j` is an
//! integer solution of the linear Diophantine equation
//!
//! ```text
//! w.stride·i − a.stride·j = a.offset − w.offset,   0 ≤ i, j < trip, i ≠ j
//! ```
//!
//! The GCD test (`gcd(strides) ∤ offset difference` ⇒ no dependence)
//! prunes most pairs; the survivors get an exact bounded solve via the
//! extended Euclid parametrization — Banerjee-style bounds on the solution
//! parameter decide existence and produce a concrete witness pair for the
//! diagnostic (and for the Tier-2 sanitizer to replay).

use crate::diag::{Diagnostic, Rule, Severity, Span};
use crate::program::Launch;
use openacc_sim::access::AffineAccess;

/// A concrete cross-iteration conflict found statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Iteration performing the write.
    pub i: u64,
    /// Distinct iteration touching the same element.
    pub j: u64,
    /// The shared element index.
    pub elem: i64,
    /// True when the second access is also a write.
    pub write_write: bool,
    /// The writing reference.
    pub write: AffineAccess,
    /// The other reference touching the same element.
    pub other: AffineAccess,
}

/// Render an affine reference as the array subscript it resolves to, e.g.
/// `u[100 + 2·i]`, `u[i]`, `u[i − 4]`, `u[7]` — so diagnostics are
/// actionable without reading the plan source.
pub fn subscript(a: &AffineAccess) -> String {
    let idx = match (a.offset, a.stride) {
        (0, 0) => "0".to_string(),
        (o, 0) => format!("{o}"),
        (0, 1) => "i".to_string(),
        (0, -1) => "−i".to_string(),
        (0, s) => format!("{s}·i"),
        (o, 1) if o < 0 => format!("i − {}", -o),
        (o, 1) => format!("i + {o}"),
        (o, s) if o < 0 => format!("{s}·i − {}", -o),
        (o, s) => format!("{s}·i + {o}"),
    };
    format!("{}[{}]", a.array, idx)
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a.rem_euclid(b));
        (g, y, x - (a.div_euclid(b)) * y)
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i128::from(a.rem_euclid(b) != 0)
}

fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// The k-interval where `v0 + k·dv ∈ [0, n)`; `None` when empty, with
/// `dv == 0` handled as all-or-nothing.
fn param_range(v0: i128, dv: i128, n: i128) -> Option<(i128, i128)> {
    if dv == 0 {
        return if (0..n).contains(&v0) {
            Some((i128::MIN / 4, i128::MAX / 4))
        } else {
            None
        };
    }
    let (lo, hi) = if dv > 0 {
        (div_ceil(-v0, dv), div_floor(n - 1 - v0, dv))
    } else {
        (div_ceil(v0 - (n - 1), -dv), div_floor(v0, -dv))
    };
    (lo <= hi).then_some((lo, hi))
}

/// Decide whether a write and another access to the *same array* conflict
/// across distinct iterations of a `trip`-iteration loop, returning a
/// witness pair when they do.
pub fn affine_conflict(w: &AffineAccess, a: &AffineAccess, trip: u64) -> Option<(u64, u64)> {
    if w.array != a.array || trip < 2 {
        return None;
    }
    let n = trip as i128;
    let s1 = w.stride as i128;
    let s2 = a.stride as i128;
    let c = (a.offset - w.offset) as i128;

    if s1 == 0 && s2 == 0 {
        // Every iteration hits one fixed element on each side.
        return (c == 0).then_some((0, 1));
    }
    if s2 == 0 {
        // w hits a's fixed element at exactly one i.
        if c % s1 != 0 {
            return None;
        }
        let i = c / s1;
        if !(0..n).contains(&i) {
            return None;
        }
        let j = if i == 0 { 1 } else { 0 };
        return Some((i as u64, j as u64));
    }
    if s1 == 0 {
        if (-c) % s2 != 0 {
            return None;
        }
        let j = -c / s2;
        if !(0..n).contains(&j) {
            return None;
        }
        let i = if j == 0 { 1 } else { 0 };
        return Some((i as u64, j as u64));
    }

    // General case: s1·i − s2·j = c. Particular solution via extended
    // Euclid on (s1, −s2), normalized so the gcd is positive.
    let (mut g, mut u, mut v) = egcd(s1, -s2);
    if g < 0 {
        g = -g;
        u = -u;
        v = -v;
    }
    if c % g != 0 {
        return None; // the classic GCD refutation
    }
    let scale = c / g;
    let i0 = u * scale;
    let j0 = v * scale;
    // General solution: i = i0 + k·(s2/g), j = j0 + k·(s1/g).
    let di = s2 / g;
    let dj = s1 / g;
    let ri = param_range(i0, di, n)?;
    let rj = param_range(j0, dj, n)?;
    let (klo, khi) = (ri.0.max(rj.0), ri.1.min(rj.1));
    if klo > khi {
        return None; // Banerjee-style bounds refutation
    }
    // Exclude the i == j diagonal (same-iteration reuse is not a loop-
    // carried dependence).
    let pick = |k: i128| -> (u64, u64) { ((i0 + k * di) as u64, (j0 + k * dj) as u64) };
    if di == dj {
        if i0 == j0 {
            return None; // every solution is on the diagonal
        }
        return Some(pick(klo));
    }
    // At most one k lands on the diagonal.
    let diff = i0 - j0;
    let slope = dj - di;
    let k_eq = (slope != 0 && diff % slope == 0).then(|| diff / slope);
    for k in [klo, klo + 1] {
        if k <= khi && Some(k) != k_eq {
            return Some(pick(k));
        }
    }
    None
}

/// The *minimal* cross-iteration conflict distance between a write and
/// another access: the smallest `|i − j| > 0` with `w.at(i) == a.at(j)`,
/// `0 ≤ i, j < trip`, together with a witness pair realizing it. `None`
/// when the pair carries no dependence at all.
///
/// This is the quantity SIMD legality keys off: a loop chunked into
/// `N`-wide in-order vector instructions is safe iff no conflict has
/// distance < `N` (two iterations closer than `N` can share a chunk).
pub fn carried_distance(w: &AffineAccess, a: &AffineAccess, trip: u64) -> Option<(u64, u64, u64)> {
    if w.array != a.array || trip < 2 {
        return None;
    }
    let n = trip as i128;
    let s1 = w.stride as i128;
    let s2 = a.stride as i128;
    let c = (a.offset - w.offset) as i128;

    if s1 == 0 && s2 == 0 {
        // Adjacent iterations already collide on the shared fixed element.
        return (c == 0).then_some((1, 0, 1));
    }
    if s2 == 0 {
        // w hits a's fixed element at exactly one i; every other j
        // collides with it, so the neighbor realizes distance 1.
        if c % s1 != 0 {
            return None;
        }
        let i = c / s1;
        if !(0..n).contains(&i) {
            return None;
        }
        let j = if i + 1 < n { i + 1 } else { i - 1 };
        return Some((1, i as u64, j as u64));
    }
    if s1 == 0 {
        if (-c) % s2 != 0 {
            return None;
        }
        let j = -c / s2;
        if !(0..n).contains(&j) {
            return None;
        }
        let i = if j + 1 < n { j + 1 } else { j - 1 };
        return Some((1, i as u64, j as u64));
    }

    // General case, same parametrization as [`affine_conflict`]:
    // i = i0 + k·di, j = j0 + k·dj over the Banerjee-bounded k-interval.
    let (mut g, mut u, mut v) = egcd(s1, -s2);
    if g < 0 {
        g = -g;
        u = -u;
        v = -v;
    }
    if c % g != 0 {
        return None;
    }
    let scale = c / g;
    let i0 = u * scale;
    let j0 = v * scale;
    let di = s2 / g;
    let dj = s1 / g;
    let ri = param_range(i0, di, n)?;
    let rj = param_range(j0, dj, n)?;
    let (klo, khi) = (ri.0.max(rj.0), ri.1.min(rj.1));
    if klo > khi {
        return None;
    }
    // Distance as a function of k is |Δ + k·s| — V-shaped, so the nonzero
    // minimum over [klo, khi] is realized at an interval endpoint or at an
    // integer neighboring the vertex −Δ/s (stepping one further when the
    // vertex itself is the excluded i == j diagonal).
    let delta = i0 - j0;
    let slope = di - dj;
    if slope == 0 {
        if delta == 0 {
            return None; // every solution is on the diagonal
        }
        let (i, j) = ((i0 + klo * di), (j0 + klo * dj));
        return Some((delta.unsigned_abs() as u64, i as u64, j as u64));
    }
    let vertex = div_floor(-delta, slope.abs()) * slope.signum();
    let mut best: Option<(u64, i128)> = None;
    for cand in [
        klo,
        khi,
        vertex - 1,
        vertex,
        vertex + 1,
        vertex + slope.signum(),
        vertex - slope.signum(),
        vertex + 2 * slope.signum(),
    ] {
        if !(klo..=khi).contains(&cand) {
            continue;
        }
        let d = (delta + cand * slope).unsigned_abs() as u64;
        if d == 0 {
            continue; // the i == j diagonal
        }
        if best.is_none_or(|(bd, bk)| d < bd || (d == bd && cand < bk)) {
            best = Some((d, cand));
        }
    }
    let (dist, k) = best?;
    Some((dist, (i0 + k * di) as u64, (j0 + k * dj) as u64))
}

/// The minimal carried dependence distance over *all* write × access pairs
/// of a declared access set, with the realizing witness. `None` means the
/// loop carries no dependence — legal at any vector width. Declared
/// reduction cells are exempt: they replay lane-private.
pub fn min_carried_distance(access: &openacc_sim::access::AccessSet) -> Option<Witness> {
    let mut best: Option<(u64, Witness)> = None;
    for w in &access.writes {
        for (other, is_write) in access
            .writes
            .iter()
            .map(|a| (a, true))
            .chain(access.reads.iter().map(|a| (a, false)))
        {
            if let Some((dist, i, j)) = carried_distance(w, other, access.trip) {
                if best.as_ref().is_none_or(|(bd, _)| dist < *bd) {
                    best = Some((
                        dist,
                        Witness {
                            i,
                            j,
                            elem: w.at(i),
                            write_write: is_write,
                            write: w.clone(),
                            other: other.clone(),
                        },
                    ));
                }
            }
        }
    }
    best.map(|(_, wit)| wit)
}

/// The distance a [`Witness`] realizes.
pub fn witness_distance(w: &Witness) -> u64 {
    w.i.abs_diff(w.j)
}

/// Run the dependence test over one launch's declared accesses. Returns a
/// witness for the first conflicting pair, if any.
pub fn find_race(l: &Launch) -> Option<Witness> {
    let trip = l.access.trip;
    for w in &l.access.writes {
        for (other, is_write) in l
            .access
            .writes
            .iter()
            .map(|a| (a, true))
            .chain(l.access.reads.iter().map(|a| (a, false)))
        {
            if let Some((i, j)) = affine_conflict(w, other, trip) {
                return Some(Witness {
                    i,
                    j,
                    elem: w.at(i),
                    write_write: is_write,
                    write: w.clone(),
                    other: other.clone(),
                });
            }
        }
    }
    None
}

/// Check one launch's parallelization claim. A launch is checked when its
/// loop would actually run in parallel: the programmer either asserted
/// `independent` or declared the nest dependence-free. Launches that
/// declare their dependence (and don't override it) run sequentially and
/// cannot race.
pub fn check_launch(op: usize, l: &Launch) -> Vec<Diagnostic> {
    let parallelized = l.claims_independent() || !l.nest.innermost_dependence;
    if !parallelized || l.access.writes.is_empty() {
        return Vec::new();
    }
    let Some(wit) = find_race(l) else {
        return Vec::new();
    };
    let claim = if l.claims_independent() {
        "`independent` clause is false"
    } else {
        "loop is declared dependence-free but is not"
    };
    let kind = if wit.write_write {
        "write/write"
    } else {
        "write/read"
    };
    vec![Diagnostic::new(
        Severity::Error,
        Rule::IndependentRace,
        Span::at(op)
            .kernel(l.name.clone())
            .array(wit.write.array.clone()),
        format!(
            "{claim}: {} at i={} and {} at i={} both resolve to element {} ({kind} conflict)",
            subscript(&wit.write),
            wit.i,
            subscript(&wit.other),
            wit.j,
            wit.elem
        ),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use openacc_sim::access::AccessSet;
    use openacc_sim::{Clause, ConstructKind, LoopNest};

    fn acc(array: &str, offset: i64, stride: i64) -> AffineAccess {
        AffineAccess::new(array, offset, stride)
    }

    /// Brute-force oracle for the symbolic solver.
    fn brute(w: &AffineAccess, a: &AffineAccess, trip: u64) -> bool {
        if w.array != a.array {
            return false;
        }
        for i in 0..trip {
            for j in 0..trip {
                if i != j && w.at(i) == a.at(j) {
                    return true;
                }
            }
        }
        false
    }

    #[test]
    fn disjoint_strides_no_conflict() {
        // Even vs odd elements: gcd test refutes.
        assert_eq!(
            affine_conflict(&acc("u", 0, 2), &acc("u", 1, 2), 1000),
            None
        );
        // Different arrays never conflict.
        assert_eq!(
            affine_conflict(&acc("u", 0, 1), &acc("v", 0, 1), 1000),
            None
        );
    }

    #[test]
    fn unit_stride_shifted_conflicts() {
        // w[i], r[j+1]: i = j+1 → conflict at (1, 0).
        let got = affine_conflict(&acc("u", 0, 1), &acc("u", 1, 1), 100).unwrap();
        assert_ne!(got.0, got.1);
        assert_eq!(acc("u", 0, 1).at(got.0), acc("u", 1, 1).at(got.1));
    }

    #[test]
    fn same_pattern_is_diagonal_only() {
        // w[i] vs w[i]: only i == j solutions → no loop-carried dependence.
        assert_eq!(
            affine_conflict(&acc("u", 5, 3), &acc("u", 5, 3), 1000),
            None
        );
    }

    #[test]
    fn out_of_range_offset_refuted() {
        // Ranges [0,99] and [1000,1099] never meet.
        assert_eq!(
            affine_conflict(&acc("u", 0, 1), &acc("u", 1000, 1), 100),
            None
        );
        // But at trip 2000 they overlap.
        assert!(affine_conflict(&acc("u", 0, 1), &acc("u", 1000, 1), 2000).is_some());
    }

    #[test]
    fn stride_zero_cases() {
        // Both fixed, same element.
        assert_eq!(
            affine_conflict(&acc("u", 7, 0), &acc("u", 7, 0), 10),
            Some((0, 1))
        );
        assert_eq!(affine_conflict(&acc("u", 7, 0), &acc("u", 8, 0), 10), None);
        // One fixed: w sweeps, a pinned at 50.
        let (i, j) = affine_conflict(&acc("u", 0, 1), &acc("u", 50, 0), 100).unwrap();
        assert_eq!(i, 50);
        assert_ne!(j, 50);
        // Pinned outside the sweep.
        assert_eq!(
            affine_conflict(&acc("u", 0, 1), &acc("u", 500, 0), 100),
            None
        );
        // Trip 1 loops cannot carry dependences.
        assert_eq!(affine_conflict(&acc("u", 0, 0), &acc("u", 0, 0), 1), None);
    }

    #[test]
    fn negative_and_mixed_strides() {
        // w[2i], r[100-2j]: meet where 2i + 2j = 100.
        let w = acc("u", 0, 2);
        let a = acc("u", 100, -2);
        let (i, j) = affine_conflict(&w, &a, 60).unwrap();
        assert_eq!(w.at(i), a.at(j));
        assert_ne!(i, j);
    }

    #[test]
    fn solver_matches_brute_force() {
        // Deterministic sweep over a parameter lattice.
        let params: Vec<i64> = vec![-7, -3, -2, -1, 0, 1, 2, 3, 5, 8];
        for &s1 in &params {
            for &s2 in &params {
                for &off in &[-9i64, -4, 0, 1, 3, 10] {
                    for trip in [2u64, 3, 7, 16] {
                        let w = acc("u", 0, s1);
                        let a = acc("u", off, s2);
                        let expect = brute(&w, &a, trip);
                        let got = affine_conflict(&w, &a, trip);
                        assert_eq!(
                            got.is_some(),
                            expect,
                            "s1={s1} s2={s2} off={off} trip={trip} got={got:?}"
                        );
                        if let Some((i, j)) = got {
                            assert!(i < trip && j < trip && i != j);
                            assert_eq!(w.at(i), a.at(j));
                        }
                    }
                }
            }
        }
    }

    /// Brute-force minimal conflict distance, for validating the solver.
    fn brute_distance(w: &AffineAccess, a: &AffineAccess, trip: u64) -> Option<u64> {
        let mut best = None;
        for i in 0..trip {
            for j in 0..trip {
                if i != j && w.at(i) == a.at(j) {
                    let d = i.abs_diff(j);
                    if best.is_none_or(|b| d < b) {
                        best = Some(d);
                    }
                }
            }
        }
        best
    }

    #[test]
    fn carried_distance_matches_brute_force() {
        let params: Vec<i64> = vec![-7, -3, -2, -1, 0, 1, 2, 3, 5, 8];
        for &s1 in &params {
            for &s2 in &params {
                for &off in &[-9i64, -4, -1, 0, 1, 3, 10] {
                    for trip in [2u64, 3, 7, 16, 33] {
                        let w = acc("u", 0, s1);
                        let a = acc("u", off, s2);
                        let expect = brute_distance(&w, &a, trip);
                        let got = carried_distance(&w, &a, trip);
                        assert_eq!(
                            got.map(|(d, _, _)| d),
                            expect,
                            "s1={s1} s2={s2} off={off} trip={trip} got={got:?}"
                        );
                        if let Some((d, i, j)) = got {
                            assert!(i < trip && j < trip && i != j);
                            assert_eq!(w.at(i), a.at(j), "witness must resolve");
                            assert_eq!(i.abs_diff(j), d, "witness must realize the distance");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn distance_one_recurrence_and_halo_distances() {
        // w[i] vs r[i−1]: the classic running recurrence, distance 1.
        let (d, i, j) = carried_distance(&acc("u", 0, 1), &acc("u", -1, 1), 64).unwrap();
        assert_eq!(d, 1);
        assert_eq!(i.abs_diff(j), 1);
        // w[i] vs r[i−4]: a halo-4 in-place stencil tap, distance 4 —
        // legal at width ≤ 4, illegal at 8.
        let (d, _, _) = carried_distance(&acc("u", 0, 1), &acc("u", -4, 1), 64).unwrap();
        assert_eq!(d, 4);
        // Out-of-place: no dependence at all.
        assert_eq!(
            carried_distance(&acc("u", 0, 1), &acc("u", 10_000, 1), 64),
            None
        );
    }

    #[test]
    fn min_carried_distance_scans_all_pairs() {
        let s = AccessSet::new(64)
            .write("u", 0, 1)
            .read("u", -8, 1)
            .read("u", -2, 1);
        let wit = min_carried_distance(&s).unwrap();
        assert_eq!(witness_distance(&wit), 2);
        assert_eq!(wit.other.offset, -2);
        // Reduction cells are exempt: not part of reads/writes.
        let r = AccessSet::new(64)
            .read("u", 0, 1)
            .reduce("qc", 0, openacc_sim::ReduceOp::Sum);
        assert!(min_carried_distance(&r).is_none());
    }

    #[test]
    fn subscripts_render_readably() {
        assert_eq!(subscript(&acc("u", 0, 1)), "u[i]");
        assert_eq!(subscript(&acc("u", -4, 1)), "u[i − 4]");
        assert_eq!(subscript(&acc("u", 3, 2)), "u[2·i + 3]");
        assert_eq!(subscript(&acc("u", 7, 0)), "u[7]");
        assert_eq!(subscript(&acc("u", 0, -1)), "u[−i]");
    }

    #[test]
    fn race_diag_carries_resolved_subscripts() {
        let l = launch(
            AccessSet::new(64).write("u", 0, 1).read("u", -1, 1),
            vec![Clause::Independent],
            false,
        );
        let ds = check_launch(2, &l);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("u[i]"), "{}", ds[0].message);
        assert!(ds[0].message.contains("u[i − 1]"), "{}", ds[0].message);
        assert!(
            ds[0].message.contains("resolve to element"),
            "{}",
            ds[0].message
        );
        assert_eq!(ds[0].span.array.as_deref(), Some("u"));
    }

    fn launch(access: AccessSet, clauses: Vec<Clause>, dependence: bool) -> Launch {
        let mut nest = LoopNest::new(&[access.trip.max(1)]);
        if dependence {
            nest = nest.with_dependence();
        }
        Launch {
            name: "k".into(),
            nest,
            kind: ConstructKind::Kernels,
            clauses,
            access,
            regs: 32,
        }
    }

    #[test]
    fn false_independent_claim_flagged() {
        let l = launch(
            AccessSet::stencil_inplace(64, "u", 0, 4, 8),
            vec![Clause::Independent],
            true,
        );
        let ds = check_launch(3, &l);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, Rule::IndependentRace);
        assert_eq!(ds[0].severity, Severity::Error);
        assert_eq!(ds[0].span.op, 3);
        assert!(ds[0].message.contains("`independent` clause is false"));
    }

    #[test]
    fn true_independent_stencil_is_clean() {
        let l = launch(
            AccessSet::stencil(64, "u", 10_000, 0, 4, 8),
            vec![Clause::Independent],
            false,
        );
        assert!(check_launch(0, &l).is_empty());
    }

    #[test]
    fn declared_dependence_suppresses_check() {
        // Sequential loop: the in-place pattern is legal.
        let l = launch(AccessSet::stencil_inplace(64, "u", 0, 4, 8), vec![], true);
        assert!(check_launch(0, &l).is_empty());
        // But an undeclared dependence on a parallel loop is flagged.
        let l2 = launch(AccessSet::stencil_inplace(64, "u", 0, 4, 8), vec![], false);
        let ds = check_launch(0, &l2);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("declared dependence-free"));
    }
}
