//! Structured diagnostics and the machine-readable report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Worth knowing; never fails a build.
    Info,
    /// A performance or hygiene problem; fails under `--deny warnings`.
    Warning,
    /// A correctness violation: the directive claims something false.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The rule a diagnostic was produced by, one per checkable directive
/// claim or lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// `independent` asserted on a loop with a provable cross-iteration
    /// dependence (Banerjee/GCD test on the affine access descriptors).
    IndependentRace,
    /// A kernel referenced an array never `copyin`/`create`'d.
    UseNotMapped,
    /// `present` clause on data that is not on the device.
    PresentOnAbsent,
    /// `update host`/`update device` on an unmapped array.
    UpdateOnAbsent,
    /// Host read of data whose last write was on the device with no
    /// `update host` in between.
    StaleHostRead,
    /// Kernel read of data whose last write was on the host with no
    /// `update device` in between.
    StaleDeviceRead,
    /// `enter data` never paired with `exit data`.
    LeakedEnterData,
    /// `exit data delete` on data already deleted (or never mapped).
    DoubleDelete,
    /// RAW/WAR/WAW between launches on different async queues touching
    /// overlapping elements without an intervening `wait`.
    AsyncHazard,
    /// A `wait` with nothing pending (doubled barrier).
    RedundantWait,
    /// Non-unit innermost stride: vector lanes hit non-consecutive
    /// addresses (the Figure 13 uncoalesced-access situation).
    UncoalescedAccess,
    /// A deep nest that would gridify better with `collapse` or
    /// `independent` (the Section 5.2 PGI finding).
    CollapseOpportunity,
    /// Register demand exceeds the cap: spills to local memory
    /// (Figures 10/12), or occupancy starves the memory pipeline.
    RegisterPressure,
    /// A `vector(N)` mapping with a carried dependence of distance < N:
    /// two iterations of the same SIMD chunk touch one element.
    VectorLaneDependence,
    /// Vectorizing a declared FP reduction reassociates the combine tree;
    /// results differ from the scalar chain within a documented ULP bound.
    VectorReassociation,
    /// A vector loop's store stream starts at a base whose alignment
    /// residue is nonzero: every vector store straddles an alignment
    /// boundary (unaligned-access penalty, or a scalar prologue).
    VectorMisalignment,
    /// A loop declared dependent (hence sequential) whose affine accesses
    /// the solver proves independent: vectorization legal but unused.
    VectorizableSequential,
}

impl Rule {
    /// Kebab-case rule id, stable across releases (what CI greps for).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::IndependentRace => "independent-race",
            Rule::UseNotMapped => "use-not-mapped",
            Rule::PresentOnAbsent => "present-on-absent",
            Rule::UpdateOnAbsent => "update-on-absent",
            Rule::StaleHostRead => "stale-host-read",
            Rule::StaleDeviceRead => "stale-device-read",
            Rule::LeakedEnterData => "leaked-enter-data",
            Rule::DoubleDelete => "double-delete",
            Rule::AsyncHazard => "async-hazard",
            Rule::RedundantWait => "redundant-wait",
            Rule::UncoalescedAccess => "uncoalesced-access",
            Rule::CollapseOpportunity => "collapse-opportunity",
            Rule::RegisterPressure => "register-pressure",
            Rule::VectorLaneDependence => "vector-lane-dependence",
            Rule::VectorReassociation => "vector-reassociation",
            Rule::VectorMisalignment => "vector-misalignment",
            Rule::VectorizableSequential => "vectorizable-sequential",
        }
    }

    /// The five acceptance rule classes: dependence/race, data
    /// environment, async hazard, coalescing/perf lint, vectorization.
    pub fn class(&self) -> &'static str {
        match self {
            Rule::IndependentRace => "dependence",
            Rule::UseNotMapped
            | Rule::PresentOnAbsent
            | Rule::UpdateOnAbsent
            | Rule::StaleHostRead
            | Rule::StaleDeviceRead
            | Rule::LeakedEnterData
            | Rule::DoubleDelete => "data-environment",
            Rule::AsyncHazard | Rule::RedundantWait => "async-hazard",
            Rule::UncoalescedAccess | Rule::CollapseOpportunity | Rule::RegisterPressure => {
                "performance-lint"
            }
            Rule::VectorLaneDependence
            | Rule::VectorReassociation
            | Rule::VectorMisalignment
            | Rule::VectorizableSequential => "vectorization",
        }
    }
}

/// Where in the directive program a diagnostic points.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Index of the offending op in the program's op list.
    pub op: usize,
    /// Kernel name, when the op is a launch.
    pub kernel: Option<String>,
    /// Array involved, when one is.
    pub array: Option<String>,
}

impl Span {
    /// Span pointing at op `op`.
    pub fn at(op: usize) -> Self {
        Span {
            op,
            ..Span::default()
        }
    }

    /// Builder: attach the kernel name.
    pub fn kernel(mut self, name: impl Into<String>) -> Self {
        self.kernel = Some(name.into());
        self
    }

    /// Builder: attach the array name.
    pub fn array(mut self, name: impl Into<String>) -> Self {
        self.array = Some(name.into());
        self
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {}", self.op)?;
        if let Some(k) = &self.kernel {
            write!(f, " kernel `{k}`")?;
        }
        if let Some(a) = &self.array {
            write!(f, " array `{a}`")?;
        }
        Ok(())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Severity level.
    pub severity: Severity,
    /// Rule that fired.
    pub rule: Rule,
    /// Program location.
    pub span: Span,
    /// Human-readable explanation with the concrete evidence.
    pub message: String,
}

impl Diagnostic {
    /// A new diagnostic.
    pub fn new(severity: Severity, rule: Rule, span: Span, message: impl Into<String>) -> Self {
        Self {
            severity,
            rule,
            span,
            message: message.into(),
        }
    }

    /// `error[independent-race] op 3 kernel `x`: message` — the text form.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.rule.id(),
            self.span,
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize one diagnostic as a JSON object (the in-tree serde shim is
/// type-level only, so the report writer is hand-rolled).
pub fn diagnostic_json(d: &Diagnostic) -> String {
    let kernel = match &d.span.kernel {
        Some(k) => format!("\"{}\"", json_escape(k)),
        None => "null".to_string(),
    };
    let array = match &d.span.array {
        Some(a) => format!("\"{}\"", json_escape(a)),
        None => "null".to_string(),
    };
    format!(
        "{{\"severity\":\"{}\",\"rule\":\"{}\",\"class\":\"{}\",\"op\":{},\"kernel\":{},\"array\":{},\"message\":\"{}\"}}",
        d.severity.label(),
        d.rule.id(),
        d.rule.class(),
        d.span.op,
        kernel,
        array,
        json_escape(&d.message)
    )
}

/// Serialize a named diagnostic list as a JSON report object.
pub fn report_json(program: &str, diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(diagnostic_json).collect();
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    format!(
        "{{\"program\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
        json_escape(program),
        errors,
        warnings,
        items.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn rule_ids_unique_and_kebab() {
        let all = [
            Rule::IndependentRace,
            Rule::UseNotMapped,
            Rule::PresentOnAbsent,
            Rule::UpdateOnAbsent,
            Rule::StaleHostRead,
            Rule::StaleDeviceRead,
            Rule::LeakedEnterData,
            Rule::DoubleDelete,
            Rule::AsyncHazard,
            Rule::RedundantWait,
            Rule::UncoalescedAccess,
            Rule::CollapseOpportunity,
            Rule::RegisterPressure,
            Rule::VectorLaneDependence,
            Rule::VectorReassociation,
            Rule::VectorMisalignment,
            Rule::VectorizableSequential,
        ];
        let ids: std::collections::HashSet<_> = all.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), all.len());
        assert!(ids
            .iter()
            .all(|i| i.chars().all(|c| c.is_ascii_lowercase() || c == '-')));
        // All five acceptance classes are populated.
        let classes: std::collections::HashSet<_> = all.iter().map(|r| r.class()).collect();
        assert_eq!(classes.len(), 5);
    }

    #[test]
    fn render_and_json_carry_the_span() {
        let d = Diagnostic::new(
            Severity::Error,
            Rule::IndependentRace,
            Span::at(3).kernel("iso_kernel_2d").array("fields"),
            "iterations 4 and 5 both touch element 9",
        );
        let r = d.render();
        assert!(r.contains("error[independent-race]"));
        assert!(r.contains("op 3"));
        assert!(r.contains("iso_kernel_2d"));
        let j = diagnostic_json(&d);
        assert!(j.contains("\"rule\":\"independent-race\""));
        assert!(j.contains("\"class\":\"dependence\""));
        assert!(j.contains("\"op\":3"));
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new(
            Severity::Info,
            Rule::UncoalescedAccess,
            Span::at(0),
            "quote \" backslash \\ newline \n done",
        );
        let j = diagnostic_json(&d);
        assert!(j.contains("quote \\\" backslash \\\\ newline \\n done"));
        let r = report_json("case", &[d]);
        assert!(r.contains("\"errors\":0"));
        assert!(r.contains("\"warnings\":0"));
    }
}
