//! Two-tier verification of OpenACC directive programs.
//!
//! Directives are promises the compiler takes on faith: `independent`
//! promises no loop-carried dependence, `async` promises no cross-queue
//! conflict, and the data clauses promise host/device coherence. The paper
//! found the hard way what a broken promise costs (wrong images, silent
//! stale reads, scheduler-dependent results); this crate makes the promises
//! checkable against the per-kernel affine access declarations of
//! [`openacc_sim::access`]:
//!
//! * **Tier 1 — static** ([`verify_program`]): walks a [`Program`] once and
//!   runs five checker families — Banerjee/GCD dependence testing on
//!   `independent` claims ([`dependence`]), data-environment abstract
//!   interpretation ([`dataenv`]), async-queue hazard detection
//!   ([`hazard`]), the paper's performance lessons as lints ([`lints`]),
//!   and SIMD-lane legality certification ([`vectorize`]: carried
//!   dependence distance vs lane width, stride/alignment lattice, FP
//!   reduction reassociation with documented ULP bounds).
//! * **Tier 2 — dynamic** ([`sanitize`], [`vectorize::lane_crosscheck`]):
//!   replays declared access patterns through the shadow-memory and
//!   lane-granularity trackers in `openacc_sim::exec` on small grids,
//!   confirming or refuting the static race and lane-legality verdicts
//!   with real execution.
//!
//! Diagnostics are structured ([`Diagnostic`]) with stable rule ids and a
//! hand-rolled JSON report for CI ([`diag::report_json`]).

#![warn(missing_docs)]

pub mod dataenv;
pub mod dependence;
pub mod diag;
pub mod hazard;
pub mod lints;
pub mod program;
pub mod sanitize;
pub mod vectorize;

pub use diag::{Diagnostic, Rule, Severity, Span};
pub use lints::LintContext;
pub use program::{Launch, Op, Program};
pub use sanitize::{CrossCheck, DynamicVerdict};
pub use vectorize::{LaneCrossCheck, StrideClass, VectorCertificate, VectorLegality, PROBE_WIDTHS};

/// Everything the static tier needs besides the program itself.
pub type VerifyContext = LintContext;

/// Run all Tier-1 checkers over a program; diagnostics come back ordered by
/// op index, severity (worst first), then rule id.
pub fn verify_program(p: &Program, ctx: &VerifyContext) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, l) in p.launches() {
        diags.extend(dependence::check_launch(i, l));
    }
    diags.extend(dataenv::check(p));
    diags.extend(hazard::check(p));
    diags.extend(lints::check(p, ctx));
    diags.extend(vectorize::check(p, ctx));
    diags.sort_by(|a, b| {
        a.span
            .op
            .cmp(&b.span.op)
            .then(b.severity.cmp(&a.severity))
            .then(a.rule.id().cmp(b.rule.id()))
    });
    diags
}

/// Count of diagnostics at exactly `severity`.
pub fn count_at(diags: &[Diagnostic], severity: Severity) -> usize {
    diags.iter().filter(|d| d.severity == severity).count()
}

/// Whether the diagnostic list fails a run: errors always do; warnings do
/// under `deny_warnings`.
pub fn fails(diags: &[Diagnostic], deny_warnings: bool) -> bool {
    let floor = if deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    diags.iter().any(|d| d.severity >= floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openacc_sim::access::AccessSet;
    use openacc_sim::{Clause, Compiler, ConstructKind, LoopNest, PgiVersion};

    fn ctx() -> VerifyContext {
        VerifyContext {
            compiler: Compiler::Pgi(PgiVersion::V14_6),
            device: accel_sim::DeviceSpec::k40(),
        }
    }

    fn stencil_launch(access: AccessSet, clauses: Vec<Clause>) -> Op {
        Op::Launch(Launch {
            name: "k".into(),
            nest: LoopNest::new(&[access.trip.max(1)]),
            kind: ConstructKind::Kernels,
            clauses,
            access,
            regs: 32,
        })
    }

    /// A correct program: mapped data, out-of-place stencil, snapshot with
    /// `update host` before the host read, paired delete.
    #[test]
    fn clean_program_verifies_clean() {
        let mut p = Program::new("clean");
        p.push(Op::EnterDataCopyin {
            array: "fields".into(),
        })
        .push(stencil_launch(
            AccessSet::stencil(4096, "fields", 100_000, 0, 4, 64),
            vec![Clause::Independent, Clause::MaxRegCount(64)],
        ))
        .push(Op::UpdateHost {
            array: "fields".into(),
        })
        .push(Op::HostRead {
            array: "fields".into(),
        })
        .push(Op::ExitDataDelete {
            array: "fields".into(),
        });
        let diags = verify_program(&p, &ctx());
        assert!(diags.is_empty(), "{diags:?}");
        assert!(!fails(&diags, true));
    }

    /// One broken program per rule class, all flagged in one pass.
    #[test]
    fn each_rule_class_fires() {
        let mut p = Program::new("broken");
        // dependence: in-place stencil claimed independent.
        p.push(Op::EnterDataCopyin {
            array: "fields".into(),
        })
        .push(stencil_launch(
            AccessSet::stencil_inplace(4096, "fields", 0, 4, 64),
            vec![Clause::Independent],
        ))
        // async-hazard: cross-queue overlap, no wait.
        .push(stencil_launch(
            AccessSet::new(4096).write("fields", 0, 1),
            vec![Clause::Async(0)],
        ))
        .push(stencil_launch(
            AccessSet::new(4096).read("fields", 0, 1),
            vec![Clause::Async(1)],
        ))
        .push(Op::Wait)
        // data-environment: host read of device-dirty data.
        .push(Op::HostRead {
            array: "fields".into(),
        })
        .push(Op::ExitDataDelete {
            array: "fields".into(),
        });
        // performance-lint: strided bulk sweep.
        let mut strided = Launch {
            name: "strided".into(),
            nest: LoopNest::new(&[1000, 1000]).strided(),
            kind: ConstructKind::Kernels,
            clauses: vec![Clause::Independent],
            access: AccessSet::new(1_000_000),
            regs: 32,
        };
        strided.nest.innermost_contiguous = false;
        // Launch before the delete so the data environment stays clean.
        p.ops.insert(5, Op::Launch(strided));

        let diags = verify_program(&p, &ctx());
        let classes: std::collections::HashSet<_> = diags.iter().map(|d| d.rule.class()).collect();
        assert!(classes.contains("dependence"), "{diags:?}");
        assert!(classes.contains("async-hazard"), "{diags:?}");
        assert!(classes.contains("data-environment"), "{diags:?}");
        assert!(classes.contains("performance-lint"), "{diags:?}");
        assert!(fails(&diags, false));
        // The flagged race is also witnessed by the Tier-2 replay.
        let (_, racy) = p.launches().next().unwrap();
        let cc = sanitize::crosscheck(racy);
        assert!(cc.static_race && cc.dynamic.is_race() && cc.agree());
    }

    #[test]
    fn ordering_and_counters() {
        let mut p = Program::new("t");
        p.push(Op::Present {
            array: "ghost".into(),
        })
        .push(Op::Wait);
        let diags = verify_program(&p, &ctx());
        assert_eq!(diags.len(), 2);
        assert!(diags[0].span.op <= diags[1].span.op);
        assert_eq!(count_at(&diags, Severity::Error), 1);
        assert_eq!(count_at(&diags, Severity::Warning), 1);
        assert!(fails(&diags, false));
        assert!(fails(&diags, true));
    }
}
