//! Shot-record processing: the small pre-migration toolbox (tapers, gain,
//! filtering) that production RTM codes apply between recording and
//! back-propagation.

use crate::Seismogram;

/// Cosine (Hann) taper over the first and last `n` samples of every trace
/// — suppresses injection transients at the record's edges.
pub fn taper_ends(seis: &Seismogram, n: usize) -> Seismogram {
    let nt = seis.nt();
    let mut out = Seismogram::zeros(seis.n_receivers(), nt);
    let n = n.min(nt / 2);
    for r in 0..seis.n_receivers() {
        for t in 0..nt {
            let w = if n == 0 {
                1.0
            } else if t < n {
                let x = t as f32 / n as f32;
                0.5 * (1.0 - (std::f32::consts::PI * x).cos())
            } else if t >= nt - n {
                let x = (nt - 1 - t) as f32 / n as f32;
                0.5 * (1.0 - (std::f32::consts::PI * x).cos())
            } else {
                1.0
            };
            out.record(r, t, seis.get(r, t) * w);
        }
    }
    out
}

/// Automatic gain control: normalise each sample by the RMS of a sliding
/// window of `half` samples on each side — equalises weak late arrivals
/// against the strong direct wave for display and QC.
pub fn agc(seis: &Seismogram, half: usize) -> Seismogram {
    assert!(half > 0, "AGC window must be positive");
    let nt = seis.nt();
    let mut out = Seismogram::zeros(seis.n_receivers(), nt);
    for r in 0..seis.n_receivers() {
        let tr = seis.trace(r);
        // Prefix sums of squares for O(1) window energy.
        let mut prefix = vec![0.0f64; nt + 1];
        for (t, &v) in tr.iter().enumerate() {
            prefix[t + 1] = prefix[t] + (v as f64) * (v as f64);
        }
        for (t, &v) in tr.iter().enumerate() {
            let lo = t.saturating_sub(half);
            let hi = (t + half + 1).min(nt);
            let e = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
            let rms = e.sqrt().max(1e-30) as f32;
            out.record(r, t, v / rms);
        }
    }
    out
}

/// Simple zero-phase low-pass: forward+backward exponential smoothing with
/// the 3 dB corner at roughly `fc` for sampling interval `dt` — knocks out
/// grid-dispersion noise above the usable band before migration.
pub fn lowpass(seis: &Seismogram, fc: f32, dt: f32) -> Seismogram {
    assert!(fc > 0.0 && dt > 0.0);
    let alpha = {
        let rc = 1.0 / (2.0 * std::f32::consts::PI * fc);
        dt / (rc + dt)
    };
    let nt = seis.nt();
    let mut out = Seismogram::zeros(seis.n_receivers(), nt);
    for r in 0..seis.n_receivers() {
        let tr = seis.trace(r);
        let mut fwd = vec![0.0f32; nt];
        let mut acc = 0.0f32;
        for (t, &v) in tr.iter().enumerate() {
            acc += alpha * (v - acc);
            fwd[t] = acc;
        }
        // Backward pass zeroes the phase shift.
        let mut acc = 0.0f32;
        for t in (0..nt).rev() {
            acc += alpha * (fwd[t] - acc);
            out.record(r, t, acc);
        }
    }
    out
}

/// Peak signal amplitude across the record (QC metric).
pub fn peak_amplitude(seis: &Seismogram) -> f32 {
    let mut m = 0.0f32;
    for r in 0..seis.n_receivers() {
        for &v in seis.trace(r) {
            m = m.max(v.abs());
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavelet::ricker;

    fn record_with_events() -> Seismogram {
        let nt = 400;
        let dt = 1e-3;
        let mut s = Seismogram::zeros(3, nt);
        for r in 0..3 {
            for t in 0..nt {
                let tt = t as f32 * dt;
                // Strong early event + weak late event.
                let v = 10.0 * ricker(30.0, tt - 0.05) + 0.5 * ricker(30.0, tt - 0.3);
                s.record(r, t, v);
            }
        }
        s
    }

    #[test]
    fn taper_zeroes_edges_keeps_middle() {
        let s = record_with_events();
        let t = taper_ends(&s, 40);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(0, s.nt() - 1), 0.0);
        // Mid-record samples untouched.
        assert_eq!(t.get(1, 200), s.get(1, 200));
        // Ramp is monotone non-decreasing in weight over the first samples.
        let w0 = (t.get(0, 5) / s.get(0, 5).max(1e-20)).abs();
        let w1 = (t.get(0, 20) / s.get(0, 20).max(1e-20)).abs();
        assert!(w1 >= w0 * 0.99 || s.get(0, 5).abs() < 1e-9);
    }

    #[test]
    fn agc_equalises_events() {
        let s = record_with_events();
        let g = agc(&s, 25);
        // Before AGC the early event dwarfs the late one.
        let early_raw = s.get(0, 50).abs();
        let late_raw = s.get(0, 300).abs();
        assert!(early_raw > 10.0 * late_raw);
        // After AGC the two are within a small factor.
        let early = g.get(0, 50).abs();
        let late = g.get(0, 300).abs();
        assert!(early < 4.0 * late, "early {early} vs late {late}");
        assert!(late < 4.0 * early);
    }

    #[test]
    fn lowpass_attenuates_high_frequencies() {
        let nt = 512;
        let dt = 1e-3;
        let mut s = Seismogram::zeros(1, nt);
        for t in 0..nt {
            let tt = t as f32 * dt;
            // 10 Hz signal + 200 Hz noise.
            let v = (2.0 * std::f32::consts::PI * 10.0 * tt).sin()
                + (2.0 * std::f32::consts::PI * 200.0 * tt).sin();
            s.record(0, t, v);
        }
        let f = lowpass(&s, 30.0, dt);
        // Estimate the residual 200 Hz content by differencing neighbours
        // (high frequencies dominate the first difference).
        let hf = |x: &Seismogram| {
            let tr = x.trace(0);
            tr.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>()
        };
        assert!(hf(&f) < 0.35 * hf(&s), "{} vs {}", hf(&f), hf(&s));
        // The 10 Hz amplitude survives (within filter rolloff).
        let mid = f.trace(0)[128..384]
            .iter()
            .fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(mid > 0.5, "signal preserved: {mid}");
    }

    #[test]
    fn peak_amplitude_scans_all() {
        let mut s = Seismogram::zeros(2, 10);
        s.record(1, 7, -9.5);
        assert_eq!(peak_amplitude(&s), 9.5);
    }

    #[test]
    #[should_panic(expected = "AGC window")]
    fn agc_rejects_zero_window() {
        agc(&Seismogram::zeros(1, 10), 0);
    }
}
