//! Shot records: the traces recorded at each receiver over time.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A dense (n_receivers × nt) shot record, receiver-major.
///
/// Recorded by the modeling/forward phase at every time step and re-injected
/// (time-reversed) by the RTM backward phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Seismogram {
    n_receivers: usize,
    nt: usize,
    /// `data[r * nt + t]`
    data: Vec<f32>,
}

impl Seismogram {
    /// Zero-filled record.
    pub fn zeros(n_receivers: usize, nt: usize) -> Self {
        Self {
            n_receivers,
            nt,
            data: vec![0.0; n_receivers * nt],
        }
    }

    /// Number of receivers.
    pub fn n_receivers(&self) -> usize {
        self.n_receivers
    }

    /// Number of time samples per trace.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Record a sample.
    #[inline(always)]
    pub fn record(&mut self, receiver: usize, t: usize, v: f32) {
        debug_assert!(receiver < self.n_receivers && t < self.nt);
        self.data[receiver * self.nt + t] = v;
    }

    /// Read a sample.
    #[inline(always)]
    pub fn get(&self, receiver: usize, t: usize) -> f32 {
        debug_assert!(receiver < self.n_receivers && t < self.nt);
        self.data[receiver * self.nt + t]
    }

    /// One receiver's full trace.
    pub fn trace(&self, receiver: usize) -> &[f32] {
        &self.data[receiver * self.nt..(receiver + 1) * self.nt]
    }

    /// Root-mean-square amplitude of the whole record.
    pub fn rms(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let s: f64 = self.data.iter().map(|&v| (v as f64) * (v as f64)).sum();
        (s / self.data.len() as f64).sqrt()
    }

    /// Index of the absolute-maximum sample of a trace (first-arrival proxy
    /// in the analytic travel-time tests).
    pub fn peak_time(&self, receiver: usize) -> usize {
        let tr = self.trace(receiver);
        let mut best = 0usize;
        let mut amp = 0.0f32;
        for (t, &v) in tr.iter().enumerate() {
            if v.abs() > amp {
                amp = v.abs();
                best = t;
            }
        }
        best
    }

    /// Serialize to a compact binary wire format (header + little-endian
    /// f32 payload) — the format the `mpi-sim` ranks use to ship gathered
    /// shot records to rank 0.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.data.len() * 4);
        buf.put_u64_le(self.n_receivers as u64);
        buf.put_u64_le(self.nt as u64);
        for &v in &self.data {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Deserialize from [`Seismogram::to_bytes`] output.
    pub fn from_bytes(mut b: Bytes) -> Result<Self, String> {
        if b.remaining() < 16 {
            return Err("seismogram header truncated".into());
        }
        let n_receivers = b.get_u64_le() as usize;
        let nt = b.get_u64_le() as usize;
        let need = n_receivers
            .checked_mul(nt)
            .ok_or("seismogram size overflow")?;
        if b.remaining() != need * 4 {
            return Err(format!(
                "seismogram payload mismatch: have {} bytes, need {}",
                b.remaining(),
                need * 4
            ));
        }
        let mut data = Vec::with_capacity(need);
        for _ in 0..need {
            data.push(b.get_f32_le());
        }
        Ok(Self {
            n_receivers,
            nt,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut s = Seismogram::zeros(3, 5);
        s.record(1, 2, 7.0);
        assert_eq!(s.get(1, 2), 7.0);
        assert_eq!(s.get(0, 0), 0.0);
        assert_eq!(s.trace(1), &[0.0, 0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn rms_and_peak() {
        let mut s = Seismogram::zeros(2, 4);
        s.record(0, 1, 3.0);
        s.record(0, 3, -4.0);
        assert_eq!(s.peak_time(0), 3);
        let want = ((9.0 + 16.0) / 8.0f64).sqrt();
        assert!((s.rms() - want).abs() < 1e-12);
        assert_eq!(Seismogram::zeros(0, 0).rms(), 0.0);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut s = Seismogram::zeros(4, 7);
        for r in 0..4 {
            for t in 0..7 {
                s.record(r, t, (r * 10 + t) as f32 - 3.5);
            }
        }
        let b = s.to_bytes();
        let back = Seismogram::from_bytes(b).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn bytes_rejects_truncation() {
        let s = Seismogram::zeros(2, 2);
        let b = s.to_bytes();
        let short = b.slice(0..b.len() - 4);
        assert!(Seismogram::from_bytes(short).is_err());
        assert!(Seismogram::from_bytes(Bytes::from_static(&[1, 2])).is_err());
    }
}
