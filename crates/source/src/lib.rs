//! # seismic-source
//!
//! Source wavelets, acquisition geometry, injection operators, and shot
//! records (seismograms).
//!
//! The paper's Algorithm 1 injects a point source during the forward phase
//! (`source_injection`) and re-injects recorded receiver data during the
//! backward phase (`receiver_injection`). The receiver-injection loop — "the
//! loop iterates over the number of receivers provided in the model" — is the
//! kernel whose inlining behaviour differentiates the CRAY and PGI results in
//! Section 6.2; `rtm-core` reproduces both the per-receiver-launch and the
//! inlined single-kernel variants on top of the primitives here.

pub mod geometry;
pub mod process;
pub mod seismogram;
pub mod wavelet;

pub use geometry::{Acquisition2, Acquisition3, Receiver2, Receiver3};
pub use seismogram::Seismogram;
pub use wavelet::{ricker, ricker_trace, Wavelet};
