//! Acquisition geometry: shot and receiver positions on the interior grid.

use serde::{Deserialize, Serialize};

/// A receiver location in a 2D grid (interior indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receiver2 {
    /// Interior x index.
    pub ix: usize,
    /// Interior z index.
    pub iz: usize,
}

/// A receiver location in a 3D grid (interior indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receiver3 {
    /// Interior x index.
    pub ix: usize,
    /// Interior y index.
    pub iy: usize,
    /// Interior z index.
    pub iz: usize,
}

/// One shot's acquisition layout in 2D: a point source and a line of
/// receivers (typically a surface cable at constant depth).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Acquisition2 {
    /// Source x index.
    pub src_ix: usize,
    /// Source z index.
    pub src_iz: usize,
    /// Receiver positions.
    pub receivers: Vec<Receiver2>,
}

impl Acquisition2 {
    /// Surface acquisition: source at (`src_ix`, `src_iz`), receivers every
    /// `spacing` points along z = `rcv_iz`, spanning the interior width `nx`.
    pub fn surface_line(
        nx: usize,
        src_ix: usize,
        src_iz: usize,
        rcv_iz: usize,
        spacing: usize,
    ) -> Self {
        assert!(spacing >= 1, "receiver spacing must be >= 1");
        assert!(src_ix < nx, "source outside grid");
        let receivers = (0..nx)
            .step_by(spacing)
            .map(|ix| Receiver2 { ix, iz: rcv_iz })
            .collect();
        Self {
            src_ix,
            src_iz,
            receivers,
        }
    }

    /// Number of receivers.
    pub fn n_receivers(&self) -> usize {
        self.receivers.len()
    }
}

/// One shot's acquisition layout in 3D: point source and a rectangular
/// receiver grid at constant depth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Acquisition3 {
    /// Source x index.
    pub src_ix: usize,
    /// Source y index.
    pub src_iy: usize,
    /// Source z index.
    pub src_iz: usize,
    /// Receiver positions.
    pub receivers: Vec<Receiver3>,
}

impl Acquisition3 {
    /// Surface patch: receivers every `spacing` points in x and y at depth
    /// `rcv_iz`.
    pub fn surface_patch(
        nx: usize,
        ny: usize,
        src: (usize, usize, usize),
        rcv_iz: usize,
        spacing: usize,
    ) -> Self {
        assert!(spacing >= 1);
        assert!(src.0 < nx && src.1 < ny);
        let mut receivers = Vec::new();
        for iy in (0..ny).step_by(spacing) {
            for ix in (0..nx).step_by(spacing) {
                receivers.push(Receiver3 { ix, iy, iz: rcv_iz });
            }
        }
        Self {
            src_ix: src.0,
            src_iy: src.1,
            src_iz: src.2,
            receivers,
        }
    }

    /// Number of receivers.
    pub fn n_receivers(&self) -> usize {
        self.receivers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_line_counts_and_positions() {
        let a = Acquisition2::surface_line(100, 50, 2, 1, 4);
        assert_eq!(a.n_receivers(), 25);
        assert_eq!(a.receivers[0], Receiver2 { ix: 0, iz: 1 });
        assert_eq!(a.receivers[24], Receiver2 { ix: 96, iz: 1 });
        assert_eq!(a.src_ix, 50);
    }

    #[test]
    fn spacing_one_covers_every_column() {
        let a = Acquisition2::surface_line(10, 5, 0, 0, 1);
        assert_eq!(a.n_receivers(), 10);
    }

    #[test]
    #[should_panic(expected = "source outside grid")]
    fn source_must_be_inside() {
        Acquisition2::surface_line(10, 10, 0, 0, 1);
    }

    #[test]
    fn surface_patch_is_rectangular() {
        let a = Acquisition3::surface_patch(20, 12, (10, 6, 3), 1, 4);
        assert_eq!(a.n_receivers(), 5 * 3);
        assert!(a.receivers.iter().all(|r| r.iz == 1));
        assert_eq!(a.src_iy, 6);
    }
}
