//! Source time functions.

use serde::{Deserialize, Serialize};

/// Ricker wavelet (second derivative of a Gaussian) with peak frequency
/// `f_peak`, evaluated at time `t` relative to the wavelet center:
/// `(1 − 2π²f²t²)·exp(−π²f²t²)`.
pub fn ricker(f_peak: f32, t: f32) -> f32 {
    let a = std::f32::consts::PI * f_peak * t;
    let a2 = a * a;
    (1.0 - 2.0 * a2) * (-a2).exp()
}

/// Sampled Ricker trace of `nt` steps at interval `dt`, centered at the
/// standard delay `t0 = 1.2 / f_peak` so the wavelet starts near zero.
pub fn ricker_trace(f_peak: f32, dt: f32, nt: usize) -> Vec<f32> {
    let t0 = 1.2 / f_peak;
    (0..nt)
        .map(|n| ricker(f_peak, n as f32 * dt - t0))
        .collect()
}

/// A parameterised source time function, sampled lazily by the drivers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Wavelet {
    /// Ricker wavelet with the given peak frequency (Hz) and delay (s).
    Ricker {
        /// Peak frequency in Hz.
        f_peak: f32,
        /// Time delay in seconds.
        t0: f32,
    },
    /// First derivative of a Gaussian (used for velocity-component sources in
    /// the elastic model).
    GaussianDeriv {
        /// Controlling frequency in Hz.
        f_peak: f32,
        /// Time delay in seconds.
        t0: f32,
    },
    /// Ormsby band-pass wavelet with corner frequencies `f` (Hz).
    Ormsby {
        /// Corner frequencies f1 < f2 < f3 < f4.
        f: [f32; 4],
        /// Time delay in seconds.
        t0: f32,
    },
}

impl Wavelet {
    /// Standard Ricker with the conventional 1.2/f delay.
    pub fn ricker(f_peak: f32) -> Self {
        Wavelet::Ricker {
            f_peak,
            t0: 1.2 / f_peak,
        }
    }

    /// Amplitude at time `t` (s).
    pub fn sample(&self, t: f32) -> f32 {
        match *self {
            Wavelet::Ricker { f_peak, t0 } => ricker(f_peak, t - t0),
            Wavelet::GaussianDeriv { f_peak, t0 } => {
                let a = std::f32::consts::PI * f_peak * (t - t0);
                -2.0 * a * (-a * a).exp()
            }
            Wavelet::Ormsby { f, t0 } => ormsby(f, t - t0),
        }
    }

    /// Peak frequency (Hz), used to derive the snapshot period: the paper
    /// notes "the snap_period value depends on the maximum frequency used in
    /// the attached velocity model".
    pub fn f_peak(&self) -> f32 {
        match *self {
            Wavelet::Ricker { f_peak, .. } | Wavelet::GaussianDeriv { f_peak, .. } => f_peak,
            // The flat band's centre is the closest analogue.
            Wavelet::Ormsby { f, .. } => 0.5 * (f[1] + f[2]),
        }
    }
}

/// Ormsby wavelet: a trapezoidal band-pass pulse defined by four corner
/// frequencies `f1 < f2 < f3 < f4` (Hz) — the standard alternative to the
/// Ricker when the survey's usable band is known. Evaluated at time `t`
/// relative to the wavelet center.
pub fn ormsby(f: [f32; 4], t: f32) -> f32 {
    assert!(
        f[0] < f[1] && f[1] < f[2] && f[2] < f[3],
        "need f1<f2<f3<f4"
    );
    let pi = std::f32::consts::PI;
    // Normalised sinc-squared ramp terms; the t=0 limit is handled by sinc.
    let sinc = |x: f32| {
        if x.abs() < 1e-6 {
            1.0
        } else {
            (pi * x).sin() / (pi * x)
        }
    };
    // Classic Ormsby: the difference of two sinc²-ramp brackets.
    let bracket = |fa: f32, fb: f32| {
        // (π/(fb−fa)) · (fb²·sinc²(fb·t) − fa²·sinc²(fa·t)), fb > fa.
        pi / (fb - fa) * (fb * fb * sinc(fb * t).powi(2) - fa * fa * sinc(fa * t).powi(2))
    };
    let hi = bracket(f[2], f[3]);
    let lo = bracket(f[0], f[1]);
    // Normalise so the peak (t = 0) is 1: A(0) = π(f3+f4) − π(f1+f2).
    let peak = pi * (f[2] + f[3] - f[0] - f[1]);
    (hi - lo) / peak
}

/// Snapshot save period in time steps for a given wavelet and `dt`: sample
/// the wavefield at ≥ 2× the Nyquist rate of ~3·f_peak (the usable maximum
/// frequency of a Ricker).
pub fn snap_period(w: &Wavelet, dt: f32) -> usize {
    let f_max = 3.0 * w.f_peak();
    let period = 1.0 / (2.0 * f_max * dt);
    (period as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ricker_peaks_at_center_with_unit_amplitude() {
        assert_eq!(ricker(25.0, 0.0), 1.0);
        assert!(ricker(25.0, 0.005) < 1.0);
        assert!(ricker(25.0, -0.005) < 1.0);
    }

    #[test]
    fn ricker_is_even_and_decays() {
        for &t in &[0.001f32, 0.01, 0.02] {
            assert!((ricker(25.0, t) - ricker(25.0, -t)).abs() < 1e-6);
        }
        assert!(ricker(25.0, 0.5).abs() < 1e-6);
    }

    /// Zero crossings of a Ricker sit at t = ±1/(π f √2).
    #[test]
    fn ricker_zero_crossing_location() {
        let f = 20.0f32;
        let tz = 1.0 / (std::f32::consts::PI * f * 2.0f32.sqrt());
        assert!(ricker(f, tz).abs() < 1e-5);
    }

    /// A Ricker has (near-)zero mean — required so injected pressure does not
    /// accumulate a DC offset.
    #[test]
    fn ricker_trace_has_small_mean() {
        let dt = 1e-3;
        let tr = ricker_trace(20.0, dt, 400);
        let mean: f32 = tr.iter().sum::<f32>() / tr.len() as f32;
        assert!(mean.abs() < 1e-3, "mean = {mean}");
        // Peak is 1 at t = t0.
        let imax = (1.2 / 20.0 / dt) as usize;
        assert!((tr[imax] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn wavelet_enum_matches_free_function() {
        let w = Wavelet::ricker(30.0);
        let t0 = 1.2 / 30.0;
        for &t in &[0.0f32, 0.01, 0.04, 0.1] {
            assert!((w.sample(t) - ricker(30.0, t - t0)).abs() < 1e-7);
        }
        assert_eq!(w.f_peak(), 30.0);
    }

    #[test]
    fn gaussian_deriv_is_odd_around_delay() {
        let w = Wavelet::GaussianDeriv {
            f_peak: 25.0,
            t0: 0.05,
        };
        assert!(w.sample(0.05).abs() < 1e-7);
        assert!((w.sample(0.06) + w.sample(0.04)).abs() < 1e-6);
    }

    #[test]
    fn ormsby_peaks_at_center_and_decays() {
        let f = [5.0f32, 10.0, 40.0, 60.0];
        let p0 = ormsby(f, 0.0);
        assert!((p0 - 1.0).abs() < 1e-4, "unit peak: {p0}");
        assert!(ormsby(f, 0.012).abs() < p0);
        assert!(ormsby(f, 0.5).abs() < 0.02, "decayed tail");
        // Even symmetry.
        assert!((ormsby(f, 0.01) - ormsby(f, -0.01)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "f1<f2<f3<f4")]
    fn ormsby_rejects_bad_corners() {
        ormsby([10.0, 5.0, 40.0, 60.0], 0.0);
    }

    #[test]
    fn ormsby_wavelet_enum() {
        let w = Wavelet::Ormsby {
            f: [5.0, 10.0, 40.0, 60.0],
            t0: 0.1,
        };
        assert_eq!(w.f_peak(), 25.0);
        assert!((w.sample(0.1) - ormsby([5.0, 10.0, 40.0, 60.0], 0.0)).abs() < 1e-7);
    }

    #[test]
    fn snap_period_scales_inversely_with_frequency() {
        let dt = 1e-3;
        let p_low = snap_period(&Wavelet::ricker(10.0), dt);
        let p_high = snap_period(&Wavelet::ricker(40.0), dt);
        assert!(p_low > p_high);
        assert!(p_high >= 1);
    }
}
