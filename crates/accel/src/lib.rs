//! # accel-sim
//!
//! A GPU architecture and performance simulator — the substrate that stands
//! in for the paper's NVIDIA Fermi M2090 and Kepler K40 cards.
//!
//! Rust has no OpenACC analogue and this reproduction has no GPU, so the
//! paper's *performance* mechanisms are modeled analytically while the
//! *numerics* run on host threads (see `openacc-sim`). The model captures
//! every mechanism the paper's evaluation leans on:
//!
//! * **Roofline kernel timing** ([`kernel`]) — a kernel is compute-bound or
//!   bandwidth-bound against the card's published peak GFLOPS and DRAM
//!   bandwidth (Table 2 of the paper),
//! * **Occupancy & register pressure** ([`occupancy`]) — Fermi's 63-register
//!   cap forces spills for the fused acoustic kernel (Figure 12); the
//!   occupancy/spill balance as `maxregcount` varies produces Figure 10,
//! * **Coalescing & divergence penalties** ([`kernel`]) — strided access in
//!   the acoustic 2D backward kernel (Figure 13) and the isotropic boundary
//!   `if`s (Figures 6/7),
//! * **Device memory capacity** ([`memory`]) — allocation tracking that
//!   reproduces the elastic-3D out-of-memory `X` cells of Tables 3/4,
//! * **PCIe transfers** ([`pcie`]) — pinned vs pageable, contiguous vs
//!   strided ghost-node exchanges,
//! * **Streams** ([`stream`]) — serialized vs async kernel issue, the
//!   mechanism behind the CRAY 30 % async win (Figure 11),
//! * **Profiling** ([`profiler`]) — an `nvprof`-style event ledger that
//!   regenerates the kernel-utilization breakdowns of Figures 11/14/15,
//! * **Fault injection** ([`fault`]) — seeded, fully deterministic
//!   device-loss / ECC-retirement / PCIe-failure / straggler schedules that
//!   the resilience layer (`rtm-core::resilient`) is tested against.

pub mod device;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod pcie;
pub mod profiler;
pub mod stream;

pub use device::DeviceSpec;
pub use fault::{FaultKind, FaultPlan, FaultRates};
pub use kernel::{KernelProfile, KernelTiming, RooflineTerms};
pub use memory::{DeviceMemory, OutOfMemory};
pub use pcie::{HostAlloc, TransferKind};
pub use profiler::{Event, EventKind, Profiler};
pub use stream::{DrainSchedule, IssueMode, ScheduledKernel, StreamSim};

/// Simulated time in seconds.
pub type SimTime = f64;
