//! Roofline kernel-time model.
//!
//! A kernel over N grid points moves `N·bytes_per_point` of DRAM traffic and
//! executes `N·flops_per_point` of arithmetic; its duration is the larger of
//! the bandwidth time and the compute time, degraded by occupancy-limited
//! latency hiding, uncoalesced access, branch divergence, and register-spill
//! traffic, plus the launch overhead. These are precisely the effects the
//! paper's optimization study manipulates.

use crate::occupancy::{allocate, efficiency, spill_bytes_per_point};
use crate::{DeviceSpec, SimTime};
use serde::{Deserialize, Serialize};

/// Penalty divisor applied to DRAM bandwidth when a warp's accesses are not
/// coalesced (each 128-byte transaction delivers ~one useful word; caches
/// recover part of it). The paper's Figure 13 transposition recovered ~3×
/// end-to-end, consistent with this factor net of the added transpose traffic.
pub const UNCOALESCED_BW_DIVISOR: f64 = 6.0;

/// Penalty divisor on compute throughput when the innermost loop is left
/// sequential inside each thread (no vector lanes mapped).
pub const UNVECTORIZED_COMPUTE_DIVISOR: f64 = 4.0;

/// Fraction of peak DRAM bandwidth directive-generated stencil kernels
/// sustain. The paper is explicit that "the performance obtained still does
/// not reach what can be achieved using CUDA or OpenCL"; era OpenACC
/// back-ends delivered well under half of STREAM-class bandwidth on
/// stencil bodies (uncached index arithmetic, no shared-memory staging —
/// the `tile`/`cache` clauses "are not working properly in both CRAY and
/// PGI").
pub const DIRECTIVE_BW_EFFICIENCY: f64 = 0.38;

/// Fraction of peak SP throughput directive-generated kernels sustain
/// (no manual ILP scheduling or FMA shaping).
pub const DIRECTIVE_COMPUTE_EFFICIENCY: f64 = 0.5;

/// Dynamic description of one kernel launch, assembled by `openacc-sim`
/// from the propagator's static `seismic_prop`-style descriptor and the
/// compiler's loop-mapping decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name for the profiler ledger.
    pub name: String,
    /// Grid points the launch covers.
    pub points: u64,
    /// Arithmetic per point.
    pub flops_per_point: f64,
    /// Effective DRAM bytes per point (reads + writes after cache reuse).
    pub bytes_per_point: f64,
    /// Live registers the kernel body needs per thread.
    pub regs_needed: u32,
    /// `maxregcount` compiler cap, if any.
    pub maxregcount: Option<u32>,
    /// Warp-coalesced global accesses?
    pub coalesced: bool,
    /// Fraction of warps with divergent branches (0 = uniform).
    pub divergence: f64,
    /// Innermost loop mapped to vector lanes?
    pub vectorized: bool,
    /// Fraction of `bytes_per_point` that is read traffic (the rest is
    /// writes) — lets the counter model split DRAM throughput the way
    /// `nvprof --metrics dram_read_throughput,dram_write_throughput` does.
    pub read_fraction: f64,
}

impl KernelProfile {
    /// Convenience constructor with sane defaults (coalesced, vectorized,
    /// no cap).
    pub fn new(name: impl Into<String>, points: u64, flops: f64, bytes: f64, regs: u32) -> Self {
        Self {
            name: name.into(),
            points,
            flops_per_point: flops,
            bytes_per_point: bytes,
            regs_needed: regs,
            maxregcount: None,
            coalesced: true,
            divergence: 0.0,
            vectorized: true,
            read_fraction: 0.75,
        }
    }
}

/// Model output for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Total simulated duration including launch overhead, seconds.
    pub total_s: SimTime,
    /// Pure execution time, seconds.
    pub exec_s: SimTime,
    /// Whether the bandwidth term dominated.
    pub memory_bound: bool,
    /// Modeled occupancy.
    pub occupancy: f64,
    /// Spilled registers per thread.
    pub spilled: u32,
}

/// Every intermediate term of the roofline evaluation for one launch.
///
/// [`time_kernel`] is a thin wrapper over this; the observability layer
/// (`acc-obs`) derives its nvprof `--metrics`-style counters from the same
/// struct, so the counters agree with the timing model *by construction*
/// rather than by re-deriving the arithmetic in two places.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineTerms {
    /// Occupancy from the register allocator.
    pub occupancy: f64,
    /// Spilled registers per thread.
    pub spilled: u32,
    /// Latency-hiding efficiency of the ALU pipeline at this occupancy.
    pub eff_compute: f64,
    /// Latency-hiding efficiency of the memory pipeline at this occupancy.
    pub eff_memory: f64,
    /// Extra DRAM bytes per point from register spills.
    pub spill_bytes_per_point: f64,
    /// Total DRAM bytes per point (profile bytes + spill traffic).
    pub bytes_per_point: f64,
    /// Sustained DRAM bandwidth after all penalties, byte/s.
    pub effective_bw: f64,
    /// Sustained arithmetic throughput after all penalties, flop/s.
    pub effective_peak: f64,
    /// Divergence issue-slot multiplier (`1 + divergence`).
    pub div_penalty: f64,
    /// Bandwidth-limited execution time, seconds.
    pub t_mem: SimTime,
    /// Compute-limited execution time, seconds.
    pub t_cmp: SimTime,
    /// Execution time `max(t_mem, t_cmp)`, seconds.
    pub exec_s: SimTime,
    /// Whether the bandwidth term dominated.
    pub memory_bound: bool,
}

/// Evaluate every term of the roofline model for one launch on `dev`.
pub fn roofline_terms(dev: &DeviceSpec, k: &KernelProfile) -> RooflineTerms {
    assert!(k.points > 0, "kernel must cover at least one point");
    let alloc = allocate(dev, k.regs_needed.max(1), k.maxregcount);
    let (eff_c, eff_m) = efficiency(alloc.occupancy);

    let spill_bytes = spill_bytes_per_point(alloc.spilled);
    let bytes = k.bytes_per_point + spill_bytes;
    let mut bw = dev.bandwidth() * eff_m * DIRECTIVE_BW_EFFICIENCY;
    if !k.coalesced {
        bw /= UNCOALESCED_BW_DIVISOR;
    }
    // Divergent warps execute both sides of boundary branches: the paper's
    // isotropic kernel wastes issue slots on the PML `if`s.
    let div_penalty = 1.0 + k.divergence;

    let mut peak = dev.peak_flops() * eff_c * DIRECTIVE_COMPUTE_EFFICIENCY;
    if !k.vectorized {
        peak /= UNVECTORIZED_COMPUTE_DIVISOR;
        // Unvectorized inner loops also serialize memory requests — but an
        // uncoalesced kernel already pays one transaction per word, so the
        // penalties do not stack.
        if k.coalesced {
            bw /= 2.0;
        }
    }

    let n = k.points as f64;
    let t_mem = n * bytes / bw;
    let t_cmp = n * k.flops_per_point * div_penalty / peak;
    RooflineTerms {
        occupancy: alloc.occupancy,
        spilled: alloc.spilled,
        eff_compute: eff_c,
        eff_memory: eff_m,
        spill_bytes_per_point: spill_bytes,
        bytes_per_point: bytes,
        effective_bw: bw,
        effective_peak: peak,
        div_penalty,
        t_mem,
        t_cmp,
        exec_s: t_mem.max(t_cmp),
        memory_bound: t_mem >= t_cmp,
    }
}

/// Evaluate the roofline model for one launch on `dev`.
pub fn time_kernel(dev: &DeviceSpec, k: &KernelProfile) -> KernelTiming {
    let t = roofline_terms(dev, k);
    KernelTiming {
        total_s: t.exec_s + dev.launch_overhead_s,
        exec_s: t.exec_s,
        memory_bound: t.memory_bound,
        occupancy: t.occupancy,
        spilled: t.spilled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stencil(points: u64) -> KernelProfile {
        KernelProfile::new("k", points, 58.0, 22.4, 52)
    }

    #[test]
    fn stencils_are_memory_bound_and_kepler_is_faster() {
        let k = stencil(256 * 256 * 256);
        let f_t = time_kernel(&DeviceSpec::m2090(), &k);
        let k_t = time_kernel(&DeviceSpec::k40(), &k);
        assert!(f_t.memory_bound && k_t.memory_bound);
        assert!(k_t.exec_s < f_t.exec_s);
        // Kepler/Fermi ratio bounded by the bandwidth ratio (288/180 = 1.6).
        let ratio = f_t.exec_s / k_t.exec_s;
        assert!(ratio > 1.1 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn uncoalesced_costs_several_x() {
        let mut k = stencil(1 << 22);
        let good = time_kernel(&DeviceSpec::k40(), &k);
        k.coalesced = false;
        let bad = time_kernel(&DeviceSpec::k40(), &k);
        let ratio = bad.exec_s / good.exec_s;
        assert!(ratio > 3.0 && ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    fn divergence_penalizes_compute_bound_kernels() {
        let mut k = KernelProfile::new("c", 1 << 22, 400.0, 8.0, 40);
        let base = time_kernel(&DeviceSpec::k40(), &k);
        assert!(!base.memory_bound);
        k.divergence = 0.5;
        let div = time_kernel(&DeviceSpec::k40(), &k);
        assert!((div.exec_s / base.exec_s - 1.5).abs() < 0.05);
    }

    /// The Figure 12 shape: a 96-register fused kernel is much slower than
    /// three 32-register fissioned kernels on Fermi, but roughly the same
    /// (launches aside) on Kepler.
    #[test]
    fn fission_wins_on_fermi_only() {
        let points = 1u64 << 24;
        let fused = KernelProfile::new("fused", points, 52.0, 45.6, 96);
        let fiss: Vec<_> = (0..3)
            .map(|i| KernelProfile::new(format!("f{i}"), points, 18.0, 21.6, 32))
            .collect();
        for (dev, expect_gain) in [(DeviceSpec::m2090(), true), (DeviceSpec::k40(), false)] {
            let t_fused = time_kernel(&dev, &fused).total_s;
            let t_fiss: f64 = fiss.iter().map(|k| time_kernel(&dev, k).total_s).sum();
            let speedup = t_fused / t_fiss;
            if expect_gain {
                assert!(speedup > 1.5, "{}: speedup {speedup}", dev.name);
            } else {
                assert!(speedup < 1.3, "{}: speedup {speedup}", dev.name);
            }
        }
    }

    #[test]
    fn launch_overhead_included_once() {
        let dev = DeviceSpec::k40();
        let k = stencil(1);
        let t = time_kernel(&dev, &k);
        assert!(t.total_s >= dev.launch_overhead_s);
        assert!(t.total_s - t.exec_s == dev.launch_overhead_s);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn zero_points_rejected() {
        let k = KernelProfile::new("z", 0, 1.0, 1.0, 1);
        time_kernel(&DeviceSpec::k40(), &k);
    }

    /// The exposed terms must be exactly what the timing wrapper consumed
    /// — the contract the `acc-obs` counter model relies on.
    #[test]
    fn terms_and_timing_agree_exactly() {
        for dev in [DeviceSpec::m2090(), DeviceSpec::k40()] {
            for k in [
                stencil(1 << 20),
                KernelProfile {
                    coalesced: false,
                    vectorized: false,
                    divergence: 0.3,
                    maxregcount: Some(32),
                    ..stencil(1 << 18)
                },
            ] {
                let t = time_kernel(&dev, &k);
                let r = roofline_terms(&dev, &k);
                assert_eq!(t.exec_s, r.exec_s);
                assert_eq!(t.occupancy, r.occupancy);
                assert_eq!(t.spilled, r.spilled);
                assert_eq!(t.memory_bound, r.memory_bound);
                assert_eq!(r.exec_s, r.t_mem.max(r.t_cmp));
                let n = k.points as f64;
                assert!((r.t_mem - n * r.bytes_per_point / r.effective_bw).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unvectorized_slows_both_paths() {
        let mut k = stencil(1 << 22);
        let base = time_kernel(&DeviceSpec::k40(), &k);
        k.vectorized = false;
        let slow = time_kernel(&DeviceSpec::k40(), &k);
        assert!(slow.exec_s > 1.8 * base.exec_s);
    }
}
