//! Deterministic fault injection for the simulated cluster.
//!
//! Production GPU surveys fail in well-catalogued ways: Xid-style device
//! losses, ECC page retirement eating device memory, PCIe replay/transfer
//! errors, transient allocation failures, and stragglers (thermal
//! throttling, a busy PCIe switch). A resilience layer can only be tested
//! against *reproducible* failures, so every fault here derives from a
//! single `u64` seed: the same seed always yields the same [`FaultPlan`],
//! and every query is a pure function of the plan — no wall clock, no
//! global RNG, no query-order dependence.
//!
//! Two mechanisms coexist:
//!
//! * **scheduled events** ([`FaultEvent`]) — device losses, ECC
//!   retirements and straggler windows are drawn once at plan generation
//!   with exponential inter-arrival times (mean = the configured MTTI),
//!   giving each device a failure timeline over the simulated horizon,
//! * **stateless per-operation draws** — transfer failures and transient
//!   OOMs hash `(seed, device, sequence-number)` so the i-th transfer on a
//!   device fails identically no matter when or how often it is asked.

use crate::{DeviceSpec, SimTime};
use serde::{Deserialize, Serialize};

/// What went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device fell off the bus (Xid 79-style): terminal for the device.
    DeviceLost,
    /// ECC retired a page block: device memory shrinks, work continues.
    EccRetired,
    /// A straggler window opened: kernels and transfers slow down.
    Straggler,
}

/// One scheduled fault on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated time the fault strikes.
    pub t_s: SimTime,
    /// Device index within the plan.
    pub device: usize,
    /// Fault class.
    pub kind: FaultKind,
    /// Duration of the effect (straggler windows; 0 for point events).
    pub duration_s: SimTime,
}

/// Fault process intensities. A rate of `f64::INFINITY` for an MTTI (or
/// `0.0` for a probability) disables that fault class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Mean time between device losses, per device, seconds.
    pub device_lost_mtti_s: f64,
    /// Mean time between ECC retirement events, per device, seconds.
    pub ecc_retire_mtti_s: f64,
    /// Bytes retired per ECC event.
    pub ecc_retire_bytes: u64,
    /// Probability any single PCIe transfer fails.
    pub transfer_fail_prob: f64,
    /// Probability any single device allocation transiently fails.
    pub transient_oom_prob: f64,
    /// Mean time between straggler windows, per device, seconds.
    pub straggler_mtti_s: f64,
    /// Length of one straggler window, seconds.
    pub straggler_duration_s: f64,
    /// Multiplicative slowdown inside a straggler window (≥ 1).
    pub straggler_slowdown: f64,
}

impl FaultRates {
    /// No faults at all (the plan becomes a no-op).
    pub fn none() -> Self {
        Self {
            device_lost_mtti_s: f64::INFINITY,
            ecc_retire_mtti_s: f64::INFINITY,
            ecc_retire_bytes: 8 << 20,
            transfer_fail_prob: 0.0,
            transient_oom_prob: 0.0,
            straggler_mtti_s: f64::INFINITY,
            straggler_duration_s: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    /// A harsh burn-in profile: every class active at rates that hit a
    /// multi-hour survey several times.
    pub fn harsh(device_lost_mtti_s: f64) -> Self {
        Self {
            device_lost_mtti_s,
            ecc_retire_mtti_s: device_lost_mtti_s / 2.0,
            ecc_retire_bytes: 8 << 20,
            transfer_fail_prob: 1e-3,
            transient_oom_prob: 1e-3,
            straggler_mtti_s: device_lost_mtti_s / 4.0,
            straggler_duration_s: device_lost_mtti_s / 20.0,
            straggler_slowdown: 2.5,
        }
    }
}

/// `splitmix64` step — the workspace's standard deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless mix of the plan seed with a query coordinate: one splitmix64
/// step from a combined state, so each `(seed, salt, a, b)` cell is an
/// independent draw.
fn mix(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut s = seed
        ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ a.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ b.wrapping_mul(0x1656_67b1_9e37_79f9);
    splitmix64(&mut s)
}

/// Map a `u64` draw to a uniform float in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_DEVICE_LOST: u64 = 1;
const SALT_ECC: u64 = 2;
const SALT_STRAGGLER: u64 = 3;
const SALT_TRANSFER: u64 = 4;
const SALT_ALLOC: u64 = 5;

/// Draw exponential arrival times with mean `mtti_s` over `[0, horizon_s)`.
fn arrivals(seed: u64, salt: u64, device: usize, mtti_s: f64, horizon_s: f64) -> Vec<SimTime> {
    let mut out = Vec::new();
    if !(mtti_s.is_finite() && mtti_s > 0.0) {
        return out;
    }
    let mut state = mix(seed, salt, device as u64, 0);
    let mut t = 0.0f64;
    loop {
        // Inverse-CDF exponential; the draw is in (0, 1] so ln is finite.
        let u = 1.0 - unit(splitmix64(&mut state));
        t += -mtti_s * u.ln();
        if t >= horizon_s {
            return out;
        }
        out.push(t);
    }
}

/// A reproducible fault schedule for `n_devices` devices over a simulated
/// horizon. Cheap to clone and to query; immutable once generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    n_devices: usize,
    horizon_s: SimTime,
    rates: FaultRates,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generate the full schedule. Deterministic: the same arguments always
    /// produce the same plan.
    pub fn generate(seed: u64, n_devices: usize, horizon_s: SimTime, rates: FaultRates) -> Self {
        let mut events = Vec::new();
        for dev in 0..n_devices {
            // A lost device is terminal — only the first arrival matters.
            if let Some(&t) = arrivals(
                seed,
                SALT_DEVICE_LOST,
                dev,
                rates.device_lost_mtti_s,
                horizon_s,
            )
            .first()
            {
                events.push(FaultEvent {
                    t_s: t,
                    device: dev,
                    kind: FaultKind::DeviceLost,
                    duration_s: 0.0,
                });
            }
            for t in arrivals(seed, SALT_ECC, dev, rates.ecc_retire_mtti_s, horizon_s) {
                events.push(FaultEvent {
                    t_s: t,
                    device: dev,
                    kind: FaultKind::EccRetired,
                    duration_s: 0.0,
                });
            }
            for t in arrivals(seed, SALT_STRAGGLER, dev, rates.straggler_mtti_s, horizon_s) {
                events.push(FaultEvent {
                    t_s: t,
                    device: dev,
                    kind: FaultKind::Straggler,
                    duration_s: rates.straggler_duration_s,
                });
            }
        }
        events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s).then(a.device.cmp(&b.device)));
        Self {
            seed,
            n_devices,
            horizon_s,
            rates,
            events,
        }
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Devices covered by the plan.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Simulated horizon the schedule covers.
    pub fn horizon_s(&self) -> SimTime {
        self.horizon_s
    }

    /// The configured fault intensities.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// All scheduled events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// When (if ever) `device` falls off the bus.
    pub fn device_lost_at(&self, device: usize) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.device == device && e.kind == FaultKind::DeviceLost)
            .map(|e| e.t_s)
    }

    /// True when `device` is already lost at time `t_s`.
    pub fn device_lost(&self, device: usize, t_s: SimTime) -> bool {
        self.device_lost_at(device).is_some_and(|lost| lost <= t_s)
    }

    /// Does the `seq`-th PCIe transfer on `device` fail? Stateless: the
    /// answer never changes for a given `(device, seq)`.
    pub fn transfer_fails(&self, device: usize, seq: u64) -> bool {
        self.rates.transfer_fail_prob > 0.0
            && unit(mix(self.seed, SALT_TRANSFER, device as u64, seq))
                < self.rates.transfer_fail_prob
    }

    /// Does the `seq`-th device allocation on `device` transiently fail?
    pub fn alloc_fails(&self, device: usize, seq: u64) -> bool {
        self.rates.transient_oom_prob > 0.0
            && unit(mix(self.seed, SALT_ALLOC, device as u64, seq)) < self.rates.transient_oom_prob
    }

    /// Multiplicative slowdown on `device` at time `t_s` (1.0 = healthy,
    /// larger inside a straggler window).
    pub fn slowdown(&self, device: usize, t_s: SimTime) -> f64 {
        let in_window = self.events.iter().any(|e| {
            e.device == device
                && e.kind == FaultKind::Straggler
                && e.t_s <= t_s
                && t_s < e.t_s + e.duration_s
        });
        if in_window {
            self.rates.straggler_slowdown.max(1.0)
        } else {
            1.0
        }
    }

    /// Device memory still usable at `t_s` after ECC retirements so far.
    pub fn effective_mem_bytes(&self, dev: &DeviceSpec, device: usize, t_s: SimTime) -> u64 {
        let retired = self
            .events
            .iter()
            .filter(|e| e.device == device && e.kind == FaultKind::EccRetired && e.t_s <= t_s)
            .count() as u64
            * self.rates.ecc_retire_bytes;
        dev.global_mem_bytes.saturating_sub(retired)
    }

    /// Devices still alive (never lost within the horizon).
    pub fn surviving_devices(&self) -> Vec<usize> {
        (0..self.n_devices)
            .filter(|&d| self.device_lost_at(d).is_none())
            .collect()
    }

    /// Configured mean time to interrupt for device losses (the input to
    /// Young/Daly checkpoint-interval sizing).
    pub fn mtti_s(&self) -> f64 {
        self.rates.device_lost_mtti_s
    }
}

/// The fault queries a retry/scheduling loop needs, abstracted over the
/// plan shape: a single-node [`FaultPlan`] or a multi-node
/// [`FleetFaultPlan`] answer them identically, so the resilient executor
/// and the job server share one retry loop.
pub trait FaultView {
    /// Devices covered.
    fn n_devices(&self) -> usize;
    /// Seed the plan was generated from (salts deterministic jitter).
    fn seed(&self) -> u64;
    /// When (if ever) `device` becomes permanently unusable.
    fn device_lost_at(&self, device: usize) -> Option<SimTime>;
    /// Does the `seq`-th allocation on `device` transiently fail?
    fn alloc_fails(&self, device: usize, seq: u64) -> bool;
    /// Multiplicative slowdown on `device` at `t_s` (1.0 = healthy).
    fn slowdown(&self, device: usize, t_s: SimTime) -> f64;

    /// True when `device` is already lost at time `t_s`.
    fn device_lost(&self, device: usize, t_s: SimTime) -> bool {
        self.device_lost_at(device).is_some_and(|lost| lost <= t_s)
    }
}

impl FaultView for FaultPlan {
    fn n_devices(&self) -> usize {
        self.n_devices
    }
    fn seed(&self) -> u64 {
        self.seed
    }
    fn device_lost_at(&self, device: usize) -> Option<SimTime> {
        FaultPlan::device_lost_at(self, device)
    }
    fn alloc_fails(&self, device: usize, seq: u64) -> bool {
        FaultPlan::alloc_fails(self, device, seq)
    }
    fn slowdown(&self, device: usize, t_s: SimTime) -> f64 {
        FaultPlan::slowdown(self, device, t_s)
    }
}

const SALT_NODE_LOST: u64 = 6;

/// A fleet of nodes, each holding `devices_per_node` devices with its own
/// per-device [`FaultPlan`], plus *correlated* whole-node losses (a PSU or
/// fabric switch failure takes every device on the node down at once) —
/// the failure mode single-node plans cannot express. Devices are indexed
/// globally: device `d` lives on node `d / devices_per_node`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultPlan {
    nodes: Vec<FaultPlan>,
    devices_per_node: usize,
    node_lost_at: Vec<Option<SimTime>>,
    seed: u64,
}

impl FleetFaultPlan {
    /// Generate a fleet plan: per-node device plans are derived from
    /// `seed` with distinct sub-seeds, and whole-node losses arrive with
    /// mean `node_lost_mtti_s` (infinite disables them). Deterministic.
    pub fn generate(
        seed: u64,
        n_nodes: usize,
        devices_per_node: usize,
        horizon_s: SimTime,
        rates: FaultRates,
        node_lost_mtti_s: f64,
    ) -> Self {
        let nodes: Vec<FaultPlan> = (0..n_nodes)
            .map(|n| {
                let sub = mix(seed, SALT_NODE_LOST, n as u64, 0x5eed);
                FaultPlan::generate(sub, devices_per_node, horizon_s, rates)
            })
            .collect();
        let node_lost_at = (0..n_nodes)
            .map(|n| {
                arrivals(seed, SALT_NODE_LOST, n, node_lost_mtti_s, horizon_s)
                    .first()
                    .copied()
            })
            .collect();
        Self {
            nodes,
            devices_per_node,
            node_lost_at,
            seed,
        }
    }

    /// Wrap a single [`FaultPlan`] as a one-node fleet (no correlated
    /// losses beyond what the plan already schedules).
    pub fn single(plan: FaultPlan) -> Self {
        let seed = plan.seed();
        let devices_per_node = plan.n_devices();
        Self {
            nodes: vec![plan],
            devices_per_node,
            node_lost_at: vec![None],
            seed,
        }
    }

    /// Node hosting global device `d`.
    pub fn node_of(&self, device: usize) -> usize {
        device / self.devices_per_node.max(1)
    }

    /// When (if ever) the whole node `n` is lost.
    pub fn node_lost_at(&self, node: usize) -> Option<SimTime> {
        self.node_lost_at.get(node).copied().flatten()
    }

    /// Devices never lost (individually or via their node).
    pub fn surviving_devices(&self) -> Vec<usize> {
        (0..self.n_devices())
            .filter(|&d| FaultView::device_lost_at(self, d).is_none())
            .collect()
    }
}

impl FaultView for FleetFaultPlan {
    fn n_devices(&self) -> usize {
        self.nodes.len() * self.devices_per_node
    }
    fn seed(&self) -> u64 {
        self.seed
    }
    fn device_lost_at(&self, device: usize) -> Option<SimTime> {
        let node = self.node_of(device);
        let local = device % self.devices_per_node.max(1);
        let own = self.nodes.get(node)?.device_lost_at(local);
        match (own, self.node_lost_at(node)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
    fn alloc_fails(&self, device: usize, seq: u64) -> bool {
        let node = self.node_of(device);
        let local = device % self.devices_per_node.max(1);
        self.nodes[node].alloc_fails(local, seq)
    }
    fn slowdown(&self, device: usize, t_s: SimTime) -> f64 {
        let node = self.node_of(device);
        let local = device % self.devices_per_node.max(1);
        self.nodes[node].slowdown(local, t_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let r = FaultRates::harsh(3600.0);
        let a = FaultPlan::generate(42, 8, 86_400.0, r);
        let b = FaultPlan::generate(42, 8, 86_400.0, r);
        assert_eq!(a, b);
        assert_eq!(a.events(), b.events());
        // Stateless queries agree too, in any order.
        for seq in [0u64, 1, 999] {
            assert_eq!(a.transfer_fails(3, seq), b.transfer_fails(3, seq));
            assert_eq!(a.alloc_fails(3, seq), b.alloc_fails(3, seq));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let r = FaultRates::harsh(3600.0);
        let a = FaultPlan::generate(1, 8, 86_400.0, r);
        let b = FaultPlan::generate(2, 8, 86_400.0, r);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn no_rates_no_events() {
        let p = FaultPlan::generate(7, 16, 1e6, FaultRates::none());
        assert!(p.events().is_empty());
        assert_eq!(p.surviving_devices().len(), 16);
        assert!(!p.transfer_fails(0, 0));
        assert!(!p.alloc_fails(0, 0));
        assert_eq!(p.slowdown(0, 123.0), 1.0);
    }

    #[test]
    fn device_loss_count_tracks_mtti() {
        // 64 devices, horizon = 3 MTTIs ⇒ P(survive) = e^-3 ≈ 5 %; expect
        // most devices lost but determinism keeps the check exact per seed.
        let r = FaultRates {
            device_lost_mtti_s: 1000.0,
            ..FaultRates::none()
        };
        let p = FaultPlan::generate(11, 64, 3000.0, r);
        let lost = 64 - p.surviving_devices().len();
        assert!((45..=64).contains(&lost), "lost {lost}");
        // Events are time-sorted.
        assert!(p.events().windows(2).all(|w| w[0].t_s <= w[1].t_s));
    }

    #[test]
    fn transfer_failure_rate_close_to_prob() {
        let r = FaultRates {
            transfer_fail_prob: 0.05,
            ..FaultRates::none()
        };
        let p = FaultPlan::generate(5, 1, 1.0, r);
        let fails = (0..20_000).filter(|&s| p.transfer_fails(0, s)).count();
        let rate = fails as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn straggler_window_slows_then_recovers() {
        let r = FaultRates {
            straggler_mtti_s: 100.0,
            straggler_duration_s: 10.0,
            straggler_slowdown: 3.0,
            ..FaultRates::none()
        };
        let p = FaultPlan::generate(21, 2, 1000.0, r);
        let w = p
            .events()
            .iter()
            .find(|e| e.kind == FaultKind::Straggler)
            .expect("straggler scheduled");
        assert_eq!(p.slowdown(w.device, w.t_s + 1.0), 3.0);
        assert_eq!(p.slowdown(w.device, w.t_s - 1e-3), 1.0);
    }

    #[test]
    fn fleet_plan_correlates_node_losses() {
        let rates = FaultRates {
            transient_oom_prob: 0.05,
            ..FaultRates::none()
        };
        // Node losses only: every device on a lost node dies at the same
        // instant, devices on surviving nodes never do.
        for seed in 0..200u64 {
            let f = FleetFaultPlan::generate(seed, 3, 4, 1000.0, rates, 800.0);
            assert_eq!(f.n_devices(), 12);
            let lost_nodes: Vec<usize> = (0..3).filter(|&n| f.node_lost_at(n).is_some()).collect();
            if lost_nodes.is_empty() || lost_nodes.len() == 3 {
                continue;
            }
            for n in 0..3 {
                for local in 0..4 {
                    let d = n * 4 + local;
                    assert_eq!(f.node_of(d), n);
                    assert_eq!(FaultView::device_lost_at(&f, d), f.node_lost_at(n));
                }
            }
            // Deterministic and distinct per seed.
            assert_eq!(
                f,
                FleetFaultPlan::generate(seed, 3, 4, 1000.0, rates, 800.0)
            );
            return;
        }
        panic!("no seed with a partial node loss");
    }

    #[test]
    fn fleet_single_matches_plan() {
        let rates = FaultRates::harsh(500.0);
        let p = FaultPlan::generate(9, 3, 2000.0, rates);
        let f = FleetFaultPlan::single(p.clone());
        assert_eq!(f.n_devices(), 3);
        for d in 0..3 {
            assert_eq!(FaultView::device_lost_at(&f, d), p.device_lost_at(d));
            for seq in [0u64, 5, 17] {
                assert_eq!(FaultView::alloc_fails(&f, d, seq), p.alloc_fails(d, seq));
            }
            assert_eq!(FaultView::slowdown(&f, d, 123.0), p.slowdown(d, 123.0));
        }
        assert_eq!(f.surviving_devices(), p.surviving_devices());
    }

    #[test]
    fn ecc_retirement_shrinks_memory_monotonically() {
        let r = FaultRates {
            ecc_retire_mtti_s: 50.0,
            ecc_retire_bytes: 16 << 20,
            ..FaultRates::none()
        };
        let p = FaultPlan::generate(9, 1, 1000.0, r);
        let dev = DeviceSpec::k40();
        let m0 = p.effective_mem_bytes(&dev, 0, 0.0);
        let m1 = p.effective_mem_bytes(&dev, 0, 500.0);
        let m2 = p.effective_mem_bytes(&dev, 0, 1000.0);
        assert_eq!(m0, dev.global_mem_bytes);
        assert!(m1 <= m0 && m2 <= m1);
        assert!(m2 < m0, "some retirement over 20 MTTIs");
    }
}
