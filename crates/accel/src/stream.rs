//! Stream/async execution timeline.
//!
//! Models the paper's Section 5.2 async findings:
//!
//! * synchronously issued kernels pay the CPU→GPU *issue gap* between every
//!   launch ("the async on parallel and kernels directives is useful to let
//!   the CPU queue up the next work unit"),
//! * truly overlapping big kernels is hard — "the available streaming
//!   multiprocessors are occupied by one or few kernels" — so execution
//!   time overlaps only to the extent kernels leave SMs idle,
//! * "using multiple streams can lead to small jobs packing on to the
//!   device all at once and ... reduced lag time between kernel launches" —
//!   the mechanism behind the CRAY 30 % improvement (Figure 11).

use crate::{DeviceSpec, SimTime};
use serde::{Deserialize, Serialize};

/// One unit of queued device work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuedKernel {
    /// Kernel name (profiler correlation).
    pub name: String,
    /// Execution time excluding launch costs.
    pub exec_s: SimTime,
    /// Fraction of the device's SMs the kernel keeps busy (1.0 = saturates).
    pub sm_fraction: f64,
    /// Stream the kernel was issued to.
    pub stream: u32,
}

/// Issue semantics for a batch of kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueMode {
    /// One implicit stream; the host waits for each launch to be consumed
    /// before preparing the next (pays the issue gap every time).
    Synchronous,
    /// Kernels spread across async streams; the host queues ahead so issue
    /// gaps are paid once, and kernels may overlap where SMs are free.
    AsyncStreams,
}

/// One kernel placed on the drain timeline: where it starts (relative to
/// the drain origin) and how long it runs. The layout is an *attribution*
/// of the batch makespan to per-stream tracks — spans on one stream are
/// serial and non-overlapping, and every span ends at or before the
/// makespan — so traces built from it agree with the aggregate model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledKernel {
    /// Kernel name (profiler correlation).
    pub name: String,
    /// Start offset from the drain origin, seconds.
    pub start_s: SimTime,
    /// Execution time, seconds.
    pub exec_s: SimTime,
    /// Stream the kernel ran on.
    pub stream: u32,
}

/// Result of draining a batch: the makespan (identical to what
/// [`StreamSim::drain_makespan`] returns) plus the per-kernel timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainSchedule {
    /// Total wall time of the batch, seconds.
    pub makespan_s: SimTime,
    /// Per-kernel placements, in issue order.
    pub kernels: Vec<ScheduledKernel>,
}

/// Simulated device work queue.
#[derive(Debug, Default)]
pub struct StreamSim {
    queue: Vec<QueuedKernel>,
}

impl StreamSim {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue one kernel.
    pub fn push(&mut self, k: QueuedKernel) {
        self.queue.push(k);
    }

    /// Number of queued kernels.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when at least one kernel is queued on `stream`.
    pub fn has_queue(&self, stream: u32) -> bool {
        self.queue.iter().any(|k| k.stream == stream)
    }

    /// Drain only the kernels issued to `stream` (OpenACC `wait(queue)`).
    /// Within one queue kernels execute in order with no overlap; the
    /// makespan is their summed execution plus launch overheads.
    pub fn drain_queue_makespan(&mut self, dev: &DeviceSpec, stream: u32) -> SimTime {
        self.drain_queue_schedule(dev, stream).makespan_s
    }

    /// [`Self::drain_queue_makespan`] plus the per-kernel timeline: kernel
    /// `i` starts after the single issue gap, `i+1` launch overheads, and
    /// every earlier kernel on the queue.
    pub fn drain_queue_schedule(&mut self, dev: &DeviceSpec, stream: u32) -> DrainSchedule {
        let mut kept = Vec::with_capacity(self.queue.len());
        let mut drained = Vec::new();
        for k in std::mem::take(&mut self.queue) {
            if k.stream == stream {
                drained.push(k);
            } else {
                kept.push(k);
            }
        }
        self.queue = kept;
        if drained.is_empty() {
            return DrainSchedule {
                makespan_s: 0.0,
                kernels: Vec::new(),
            };
        }
        let mut cursor = dev.issue_gap_s;
        let mut kernels = Vec::with_capacity(drained.len());
        for k in drained {
            let start = cursor + dev.launch_overhead_s;
            cursor = start + k.exec_s;
            kernels.push(ScheduledKernel {
                name: k.name,
                start_s: start,
                exec_s: k.exec_s,
                stream: k.stream,
            });
        }
        DrainSchedule {
            makespan_s: cursor,
            kernels,
        }
    }

    /// Fault-aware variant of [`Self::drain_makespan`]: a straggler window
    /// open at `at_s` on `device` stretches the whole batch by the plan's
    /// slowdown factor. With `plan = None` this is exactly
    /// [`Self::drain_makespan`].
    pub fn drain_makespan_faulty(
        &mut self,
        dev: &DeviceSpec,
        mode: IssueMode,
        plan: Option<&crate::fault::FaultPlan>,
        device: usize,
        at_s: SimTime,
    ) -> SimTime {
        let base = self.drain_makespan(dev, mode);
        match plan {
            None => base,
            Some(p) => base * p.slowdown(device, at_s),
        }
    }

    /// Compute the makespan of the queued batch under the given issue mode,
    /// then clear the queue.
    pub fn drain_makespan(&mut self, dev: &DeviceSpec, mode: IssueMode) -> SimTime {
        self.drain_schedule(dev, mode).makespan_s
    }

    /// [`Self::drain_makespan`] plus the per-kernel timeline. The makespan
    /// is byte-identical to the aggregate formula; the spans attribute it:
    ///
    /// * `Synchronous` — strictly serial: each kernel starts one issue gap
    ///   plus one launch overhead after its predecessor finished.
    /// * `AsyncStreams` — kernel `i` becomes *launchable* once the host has
    ///   issued it (`issue_gap + (i+1)·launch_overhead`) and starts at the
    ///   later of that and its stream's cursor, so spans on one stream
    ///   never overlap while different streams run concurrently.
    pub fn drain_schedule(&mut self, dev: &DeviceSpec, mode: IssueMode) -> DrainSchedule {
        let kernels = std::mem::take(&mut self.queue);
        if kernels.is_empty() {
            return DrainSchedule {
                makespan_s: 0.0,
                kernels: Vec::new(),
            };
        }
        match mode {
            IssueMode::Synchronous => {
                let mut cursor = 0.0;
                let mut spans = Vec::with_capacity(kernels.len());
                for k in kernels {
                    let start = cursor + dev.issue_gap_s + dev.launch_overhead_s;
                    cursor = start + k.exec_s;
                    spans.push(ScheduledKernel {
                        name: k.name,
                        start_s: start,
                        exec_s: k.exec_s,
                        stream: k.stream,
                    });
                }
                DrainSchedule {
                    makespan_s: cursor,
                    kernels: spans,
                }
            }
            IssueMode::AsyncStreams => {
                let n_streams = kernels
                    .iter()
                    .map(|k| k.stream)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
                    .clamp(1, dev.async_streams as usize);
                // Queued-ahead launches: the first kernel pays the gap, the
                // rest are already resident in the queues.
                let setup = dev.issue_gap_s + kernels.len() as f64 * dev.launch_overhead_s;
                // Execution overlap: total SM-seconds cannot shrink, and a
                // kernel occupying the full device serializes regardless of
                // streams. Makespan ≥ both bounds.
                let sm_seconds: f64 = kernels.iter().map(|k| k.exec_s * k.sm_fraction).sum();
                let longest = kernels.iter().map(|k| k.exec_s).fold(0.0f64, f64::max);
                let _ = n_streams;
                let makespan = setup + sm_seconds.max(longest);
                // Timeline attribution: kernel i is launchable once the
                // host has pushed it into its queue; within a stream work
                // stays serial.
                let mut cursors: std::collections::HashMap<u32, SimTime> =
                    std::collections::HashMap::new();
                let mut spans = Vec::with_capacity(kernels.len());
                for (i, k) in kernels.into_iter().enumerate() {
                    let issued = dev.issue_gap_s + (i as f64 + 1.0) * dev.launch_overhead_s;
                    let cursor = cursors.entry(k.stream).or_insert(0.0);
                    let start = cursor.max(issued);
                    *cursor = start + k.exec_s;
                    spans.push(ScheduledKernel {
                        name: k.name,
                        start_s: start,
                        exec_s: k.exec_s,
                        stream: k.stream,
                    });
                }
                DrainSchedule {
                    makespan_s: makespan,
                    kernels: spans,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str, exec_ms: f64, frac: f64, stream: u32) -> QueuedKernel {
        QueuedKernel {
            name: name.into(),
            exec_s: exec_ms * 1e-3,
            sm_fraction: frac,
            stream,
        }
    }

    #[test]
    fn empty_queue_is_zero() {
        let mut s = StreamSim::new();
        assert!(s.is_empty());
        assert_eq!(
            s.drain_makespan(&DeviceSpec::k40(), IssueMode::Synchronous),
            0.0
        );
    }

    /// Saturating kernels gain only the hidden issue gaps from async —
    /// the paper's "overlapping GPU kernels is very hard ... as the
    /// available streaming multiprocessors are occupied by one or few
    /// kernels", with the observed gain coming from reduced launch lag.
    #[test]
    fn async_gain_on_saturating_kernels_is_launch_lag_only() {
        let dev = DeviceSpec::k40();
        let mut s = StreamSim::new();
        let mut a = StreamSim::new();
        for i in 0..6 {
            s.push(k(&format!("k{i}"), 0.05, 1.0, 0));
            a.push(k(&format!("k{i}"), 0.05, 1.0, i));
        }
        let sync = s.drain_makespan(&dev, IssueMode::Synchronous);
        let asy = a.drain_makespan(&dev, IssueMode::AsyncStreams);
        assert!(asy < sync);
        // Exactly the per-kernel issue gaps were saved (minus the one paid).
        let saved = sync - asy;
        let expect = 5.0 * dev.issue_gap_s;
        assert!((saved - expect).abs() < 1e-9, "saved {saved} vs {expect}");
    }

    /// Many *small* kernels (short exec, issue-gap dominated) see large
    /// async gains — this is where the CRAY 30 % comes from on the elastic
    /// 2D model whose per-step kernels are tiny.
    #[test]
    fn async_gain_large_for_small_kernels() {
        let dev = DeviceSpec::k40();
        let mut s = StreamSim::new();
        let mut a = StreamSim::new();
        for i in 0..4 {
            s.push(k(&format!("k{i}"), 0.012, 0.9, 0));
            a.push(k(&format!("k{i}"), 0.012, 0.9, i));
        }
        let sync = s.drain_makespan(&dev, IssueMode::Synchronous);
        let asy = a.drain_makespan(&dev, IssueMode::AsyncStreams);
        let gain = 1.0 - asy / sync;
        assert!(gain > 0.3 && gain < 0.75, "gain {gain}");
    }

    /// Kernels that each use a sliver of the device genuinely overlap.
    #[test]
    fn partial_kernels_overlap() {
        let dev = DeviceSpec::k40();
        let mut a = StreamSim::new();
        for i in 0..4 {
            a.push(k(&format!("k{i}"), 1.0, 0.25, i));
        }
        let asy = a.drain_makespan(&dev, IssueMode::AsyncStreams);
        // 4 kernels × 1 ms × 0.25 = 1 ms of SM-time; makespan ≈ 1 ms.
        assert!(asy < 1.2e-3, "asy {asy}");
    }

    /// `wait(queue)` drains exactly one queue and leaves the rest.
    #[test]
    fn selective_queue_drain() {
        let dev = DeviceSpec::k40();
        let mut q = StreamSim::new();
        q.push(k("a0", 0.1, 1.0, 0));
        q.push(k("b0", 0.2, 1.0, 1));
        q.push(k("a1", 0.1, 1.0, 0));
        let t0 = q.drain_queue_makespan(&dev, 0);
        let expect = dev.issue_gap_s + 2.0 * (dev.launch_overhead_s + 0.1e-3);
        assert!((t0 - expect).abs() < 1e-12, "{t0} vs {expect}");
        assert_eq!(q.len(), 1, "queue 1 untouched");
        assert_eq!(q.drain_queue_makespan(&dev, 7), 0.0, "empty queue is free");
        let t1 = q.drain_queue_makespan(&dev, 1);
        assert!(t1 > 0.0);
        assert!(q.is_empty());
    }

    #[test]
    fn longest_kernel_lower_bounds_async() {
        let dev = DeviceSpec::k40();
        let mut a = StreamSim::new();
        a.push(k("big", 5.0, 0.1, 0));
        a.push(k("small", 0.1, 0.1, 1));
        let asy = a.drain_makespan(&dev, IssueMode::AsyncStreams);
        assert!(asy >= 5.0e-3);
    }

    /// The schedule's makespan is the aggregate formula, and its spans are
    /// serial/non-overlapping per stream with every span inside the batch.
    #[test]
    fn schedule_matches_makespan_and_is_per_stream_serial() {
        let dev = DeviceSpec::k40();
        for mode in [IssueMode::Synchronous, IssueMode::AsyncStreams] {
            let mut a = StreamSim::new();
            let mut b = StreamSim::new();
            for i in 0..6 {
                let kk = k(&format!("k{i}"), 0.03 + 0.01 * i as f64, 0.4, i % 3);
                a.push(kk.clone());
                b.push(kk);
            }
            let plain = a.drain_makespan(&dev, mode);
            let sched = b.drain_schedule(&dev, mode);
            assert_eq!(sched.makespan_s, plain, "{mode:?}");
            assert_eq!(sched.kernels.len(), 6);
            let mut last_end: std::collections::HashMap<u32, f64> = Default::default();
            for s in &sched.kernels {
                let prev = last_end.entry(s.stream).or_insert(0.0);
                assert!(
                    s.start_s >= *prev,
                    "{mode:?}: overlap on stream {}",
                    s.stream
                );
                *prev = s.start_s + s.exec_s;
                assert!(s.start_s + s.exec_s <= sched.makespan_s + 1e-12);
            }
        }
    }

    /// Single-queue drain: serial layout whose last span ends exactly at
    /// the makespan, untouched streams stay queued.
    #[test]
    fn queue_schedule_layout() {
        let dev = DeviceSpec::k40();
        let mut q = StreamSim::new();
        q.push(k("a0", 0.1, 1.0, 0));
        q.push(k("b0", 0.2, 1.0, 1));
        q.push(k("a1", 0.1, 1.0, 0));
        let sched = q.drain_queue_schedule(&dev, 0);
        assert_eq!(sched.kernels.len(), 2);
        assert_eq!(q.len(), 1);
        let first = &sched.kernels[0];
        assert!((first.start_s - (dev.issue_gap_s + dev.launch_overhead_s)).abs() < 1e-15);
        let last = &sched.kernels[1];
        assert!((last.start_s + last.exec_s - sched.makespan_s).abs() < 1e-15);
        assert!(last.start_s >= first.start_s + first.exec_s);
    }

    #[test]
    fn straggler_stretches_drain() {
        use crate::fault::{FaultKind, FaultPlan, FaultRates};
        let dev = DeviceSpec::k40();
        let rates = FaultRates {
            straggler_mtti_s: 10.0,
            straggler_duration_s: 4.0,
            straggler_slowdown: 3.0,
            ..FaultRates::none()
        };
        let plan = FaultPlan::generate(17, 1, 100.0, rates);
        let win = plan
            .events()
            .iter()
            .find(|e| e.kind == FaultKind::Straggler)
            .copied()
            .expect("window");
        let batch = || {
            let mut s = StreamSim::new();
            s.push(k("a", 0.5, 1.0, 0));
            s.push(k("b", 0.5, 1.0, 0));
            s
        };
        let healthy = batch().drain_makespan_faulty(
            &dev,
            IssueMode::Synchronous,
            Some(&plan),
            0,
            win.t_s - 1.0,
        );
        let slowed = batch().drain_makespan_faulty(
            &dev,
            IssueMode::Synchronous,
            Some(&plan),
            0,
            win.t_s + 0.5,
        );
        let plain = batch().drain_makespan(&dev, IssueMode::Synchronous);
        assert_eq!(healthy, plain);
        assert!((slowed / healthy - 3.0).abs() < 1e-9);
        // No plan → identical to the plain path.
        let none = batch().drain_makespan_faulty(&dev, IssueMode::Synchronous, None, 0, 0.0);
        assert_eq!(none, plain);
    }
}
