//! `nvprof`-style event ledger.
//!
//! "Nvidia profiler was the main tool used to analyze our performance
//! measurements" (Section 6). The drivers record every simulated kernel
//! launch and memcpy here; [`Profiler::summary`] regenerates the
//! kernel-percentage breakdowns of Figures 11, 14, and 15.

use crate::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Kind of a timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// Device kernel execution.
    Kernel,
    /// Host→device copy.
    MemcpyH2D,
    /// Device→host copy.
    MemcpyD2H,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Kernel name, or a transfer label.
    pub name: String,
    /// Duration, seconds.
    pub duration_s: SimTime,
    /// Stream id.
    pub stream: u32,
}

/// Aggregated statistics for one kernel/transfer name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameStats {
    /// Event kind.
    pub kind: EventKind,
    /// Number of invocations (nvprof's bracketed count).
    pub invocations: u64,
    /// Total time, seconds.
    pub total_s: SimTime,
    /// Share of all *compute* time (kernels only), 0–1.
    pub compute_share: f64,
}

/// Thread-safe simulated profiler.
#[derive(Debug, Default)]
pub struct Profiler {
    events: Mutex<Vec<Event>>,
}

impl Profiler {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(
        &self,
        kind: EventKind,
        name: impl Into<String>,
        duration_s: SimTime,
        stream: u32,
    ) {
        self.events.lock().push(Event {
            kind,
            name: name.into(),
            duration_s,
            stream,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Total simulated kernel (compute) time.
    pub fn compute_time(&self) -> SimTime {
        self.events
            .lock()
            .iter()
            .filter(|e| e.kind == EventKind::Kernel)
            .map(|e| e.duration_s)
            .sum()
    }

    /// Total simulated transfer time.
    pub fn transfer_time(&self) -> SimTime {
        self.events
            .lock()
            .iter()
            .filter(|e| e.kind != EventKind::Kernel)
            .map(|e| e.duration_s)
            .sum()
    }

    /// Per-name aggregation, sorted by descending total time.
    pub fn summary(&self) -> Vec<(String, NameStats)> {
        let events = self.events.lock();
        let compute: f64 = events
            .iter()
            .filter(|e| e.kind == EventKind::Kernel)
            .map(|e| e.duration_s)
            .sum();
        let mut map: BTreeMap<String, NameStats> = BTreeMap::new();
        for e in events.iter() {
            let s = map.entry(e.name.clone()).or_insert(NameStats {
                kind: e.kind,
                invocations: 0,
                total_s: 0.0,
                compute_share: 0.0,
            });
            s.invocations += 1;
            s.total_s += e.duration_s;
        }
        for s in map.values_mut() {
            if s.kind == EventKind::Kernel && compute > 0.0 {
                s.compute_share = s.total_s / compute;
            }
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_by(|a, b| b.1.total_s.total_cmp(&a.1.total_s));
        out
    }

    /// Render an `nvprof`-like text block (the Figure 14/15 layout):
    /// `percent% [invocations] name` for each kernel, plus memcpy rows.
    pub fn render(&self, device_name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[0] {device_name}");
        let _ = writeln!(out, "  Context 1 (SIM)");
        let h2d: f64 = self
            .events
            .lock()
            .iter()
            .filter(|e| e.kind == EventKind::MemcpyH2D)
            .map(|e| e.duration_s)
            .sum();
        let d2h: f64 = self
            .events
            .lock()
            .iter()
            .filter(|e| e.kind == EventKind::MemcpyD2H)
            .map(|e| e.duration_s)
            .sum();
        let _ = writeln!(out, "    MemCpy (HtoD)  {:.3} s", h2d);
        let _ = writeln!(out, "    MemCpy (DtoH)  {:.3} s", d2h);
        let _ = writeln!(out, "    Compute");
        for (name, s) in self.summary() {
            if s.kind == EventKind::Kernel {
                let _ = writeln!(
                    out,
                    "      {:5.1}% [{}] {}",
                    s.compute_share * 100.0,
                    s.invocations,
                    name
                );
            }
        }
        out
    }

    /// Forget all events (reused between experiment phases).
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Export the ledger as a Chrome trace-event JSON string
    /// (`chrome://tracing` / Perfetto compatible).
    ///
    /// The ledger stores durations, not wall-clock starts, so events are
    /// laid out serially *per stream* in recording order — exact for the
    /// synchronous queue, an in-order approximation for async queues.
    pub fn export_chrome_trace(&self, process_name: &str) -> String {
        let events = self.events.lock();
        let mut out = String::from("[");
        let mut stream_clock: std::collections::HashMap<u32, f64> =
            std::collections::HashMap::new();
        let mut first = true;
        for e in events.iter() {
            let t0 = stream_clock.entry(e.stream).or_insert(0.0);
            let start_us = *t0 * 1e6;
            let dur_us = e.duration_s * 1e6;
            *t0 += e.duration_s;
            if !first {
                out.push(',');
            }
            first = false;
            let cat = match e.kind {
                EventKind::Kernel => "kernel",
                EventKind::MemcpyH2D => "memcpy_h2d",
                EventKind::MemcpyD2H => "memcpy_d2h",
            };
            // Names never contain quotes/backslashes (kernel identifiers),
            // so plain formatting is JSON-safe here.
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":\"{}\",\"tid\":\"stream {}\"}}",
                e.name, cat, start_us, dur_us, process_name, e.stream
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let p = Profiler::new();
        p.record(EventKind::Kernel, "main", 3.0, 0);
        p.record(EventKind::Kernel, "main", 1.0, 0);
        p.record(EventKind::Kernel, "inject", 1.0, 0);
        p.record(EventKind::MemcpyH2D, "model", 0.5, 0);
        assert_eq!(p.len(), 4);
        assert_eq!(p.compute_time(), 5.0);
        assert_eq!(p.transfer_time(), 0.5);
        let s = p.summary();
        // Sorted descending by time: main first.
        assert_eq!(s[0].0, "main");
        assert_eq!(s[0].1.invocations, 2);
        assert!((s[0].1.compute_share - 0.8).abs() < 1e-12);
    }

    #[test]
    fn render_contains_percentages() {
        let p = Profiler::new();
        p.record(EventKind::Kernel, "kernel_2d_139_gpu", 7.34, 0);
        p.record(EventKind::Kernel, "sample_put_real_118_gpu", 2.62, 0);
        p.record(EventKind::Kernel, "sample_put_real_98_gpu", 0.04, 0);
        let r = p.render("Tesla M2090");
        assert!(r.contains("Tesla M2090"));
        assert!(r.contains("73.4%"));
        assert!(r.contains("26.2%"));
        assert!(r.contains("kernel_2d_139_gpu"));
    }

    #[test]
    fn clear_resets() {
        let p = Profiler::new();
        p.record(EventKind::Kernel, "a", 1.0, 0);
        assert!(!p.is_empty());
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.compute_time(), 0.0);
    }

    #[test]
    fn chrome_trace_layout() {
        let p = Profiler::new();
        p.record(EventKind::Kernel, "a", 1.0e-3, 0);
        p.record(EventKind::Kernel, "b", 2.0e-3, 0);
        p.record(EventKind::MemcpyH2D, "up", 0.5e-3, 1);
        let j = p.export_chrome_trace("K40");
        assert!(j.starts_with('[') && j.ends_with(']'));
        // b starts after a on the same stream (serial layout).
        let a_pos = j.find("\"name\":\"a\"").unwrap();
        let b_start = j[j.find("\"name\":\"b\"").unwrap()..]
            .split("\"ts\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap();
        assert_eq!(b_start, "1000.000");
        assert!(a_pos < j.len());
        assert!(j.contains("\"tid\":\"stream 1\""));
        assert!(j.contains("memcpy_h2d"));
        // Valid bracketed comma-separated objects: 3 of them.
        assert_eq!(j.matches("{\"name\"").count(), 3);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let p = std::sync::Arc::new(Profiler::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        p.record(EventKind::Kernel, "k", 0.001, 0);
                    }
                });
            }
        });
        assert_eq!(p.len(), 400);
        assert!((p.compute_time() - 0.4).abs() < 1e-9);
    }
}
