//! `nvprof`-style event ledger.
//!
//! "Nvidia profiler was the main tool used to analyze our performance
//! measurements" (Section 6). The drivers record every simulated kernel
//! launch and memcpy here; [`Profiler::summary`] regenerates the
//! kernel-percentage breakdowns of Figures 11, 14, and 15, and
//! [`Profiler::export_chrome_trace`] emits the ledger as a Perfetto /
//! `chrome://tracing` timeline with the *true* simulated start timestamps
//! the schedulers computed (sync launches at issue time, async launches at
//! their drain-schedule slots).

use crate::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Kind of a timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// Device kernel execution.
    Kernel,
    /// Host→device copy.
    MemcpyH2D,
    /// Device→host copy.
    MemcpyD2H,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Kernel name, or a transfer label.
    pub name: String,
    /// Simulated start timestamp, seconds — fed by the scheduler that
    /// placed the event (the runtime clock for sync work, the stream
    /// drain schedule for async work).
    pub start_s: SimTime,
    /// Duration, seconds.
    pub duration_s: SimTime,
    /// Stream id.
    pub stream: u32,
    /// Bytes moved (transfers; 0 for kernels).
    pub bytes: u64,
}

/// Aggregated statistics for one kernel/transfer name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameStats {
    /// Event kind.
    pub kind: EventKind,
    /// Number of invocations (nvprof's bracketed count).
    pub invocations: u64,
    /// Total time, seconds.
    pub total_s: SimTime,
    /// Total bytes moved (transfers).
    pub bytes: u64,
    /// Share of all *compute* time (kernels only), 0–1.
    pub compute_share: f64,
}

/// Thread-safe simulated profiler.
#[derive(Debug, Default)]
pub struct Profiler {
    events: Mutex<Vec<Event>>,
}

/// Render a byte count the way `nvprof` does (`1.234 GB`, `56.7 MB`, …).
pub fn human_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.3} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

impl Profiler {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event with no byte payload (kernels).
    pub fn record(
        &self,
        kind: EventKind,
        name: impl Into<String>,
        start_s: SimTime,
        duration_s: SimTime,
        stream: u32,
    ) {
        self.record_bytes(kind, name, start_s, duration_s, stream, 0);
    }

    /// Record one event carrying a byte count (transfers).
    pub fn record_bytes(
        &self,
        kind: EventKind,
        name: impl Into<String>,
        start_s: SimTime,
        duration_s: SimTime,
        stream: u32,
        bytes: u64,
    ) {
        self.events.lock().push(Event {
            kind,
            name: name.into(),
            start_s,
            duration_s,
            stream,
            bytes,
        });
    }

    /// Snapshot of the ledger, sorted by (start, name) — the deterministic
    /// order every aggregation below consumes, independent of the
    /// interleaving concurrent recorders produced.
    pub fn events(&self) -> Vec<Event> {
        let mut evs = self.events.lock().clone();
        evs.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.stream.cmp(&b.stream))
        });
        evs
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Total simulated kernel (compute) time.
    pub fn compute_time(&self) -> SimTime {
        self.events
            .lock()
            .iter()
            .filter(|e| e.kind == EventKind::Kernel)
            .map(|e| e.duration_s)
            .sum()
    }

    /// Total simulated transfer time.
    pub fn transfer_time(&self) -> SimTime {
        self.events
            .lock()
            .iter()
            .filter(|e| e.kind != EventKind::Kernel)
            .map(|e| e.duration_s)
            .sum()
    }

    /// Per-name aggregation, sorted by descending total time (name breaks
    /// ties, so the order is deterministic under concurrent recording).
    pub fn summary(&self) -> Vec<(String, NameStats)> {
        let events = self.events();
        let compute: f64 = events
            .iter()
            .filter(|e| e.kind == EventKind::Kernel)
            .map(|e| e.duration_s)
            .sum();
        let mut map: BTreeMap<String, NameStats> = BTreeMap::new();
        for e in events.iter() {
            let s = map.entry(e.name.clone()).or_insert(NameStats {
                kind: e.kind,
                invocations: 0,
                total_s: 0.0,
                bytes: 0,
                compute_share: 0.0,
            });
            s.invocations += 1;
            s.total_s += e.duration_s;
            s.bytes += e.bytes;
        }
        for s in map.values_mut() {
            if s.kind == EventKind::Kernel && compute > 0.0 {
                s.compute_share = s.total_s / compute;
            }
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_by(|a, b| b.1.total_s.total_cmp(&a.1.total_s).then(a.0.cmp(&b.0)));
        out
    }

    fn memcpy_row(&self, kind: EventKind) -> (u64, SimTime, u64) {
        let events = self.events.lock();
        let mut n = 0u64;
        let mut t = 0.0;
        let mut b = 0u64;
        for e in events.iter().filter(|e| e.kind == kind) {
            n += 1;
            t += e.duration_s;
            b += e.bytes;
        }
        (n, t, b)
    }

    /// Render an `nvprof`-like text block (the Figure 14/15 layout):
    /// `[invocations]` counts, seconds, and bytes for the memcpy rows, then
    /// `percent% [invocations] name` for each kernel.
    pub fn render(&self, device_name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[0] {device_name}");
        let _ = writeln!(out, "  Context 1 (SIM)");
        let (h2d_n, h2d_t, h2d_b) = self.memcpy_row(EventKind::MemcpyH2D);
        let (d2h_n, d2h_t, d2h_b) = self.memcpy_row(EventKind::MemcpyD2H);
        let _ = writeln!(
            out,
            "    MemCpy (HtoD)  [{h2d_n}]  {h2d_t:.3} s  {}",
            human_bytes(h2d_b)
        );
        let _ = writeln!(
            out,
            "    MemCpy (DtoH)  [{d2h_n}]  {d2h_t:.3} s  {}",
            human_bytes(d2h_b)
        );
        let _ = writeln!(out, "    Compute");
        for (name, s) in self.summary() {
            if s.kind == EventKind::Kernel {
                let _ = writeln!(
                    out,
                    "      {:5.1}% [{}] {}",
                    s.compute_share * 100.0,
                    s.invocations,
                    name
                );
            }
        }
        out
    }

    /// Forget all events (reused between experiment phases).
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Export the ledger as a Chrome trace-event JSON string
    /// (`chrome://tracing` / Perfetto compatible), one complete-event
    /// (`ph: "X"`) per entry with the recorded simulated start timestamps
    /// and one track (`tid`) per device stream. Serialization goes through
    /// `serde_json`, so names containing quotes, backslashes, or control
    /// characters stay valid JSON.
    pub fn export_chrome_trace(&self, process_name: &str) -> String {
        serde_json::to_string(&self.chrome_trace_value(process_name))
    }

    /// The trace as a `serde_json` value (callers embedding the events in a
    /// larger document).
    pub fn chrome_trace_value(&self, process_name: &str) -> serde_json::Value {
        let events = self.events();
        let mut out = Vec::with_capacity(events.len());
        for e in events.iter() {
            let cat = match e.kind {
                EventKind::Kernel => "kernel",
                EventKind::MemcpyH2D => "memcpy_h2d",
                EventKind::MemcpyD2H => "memcpy_d2h",
            };
            let mut obj = serde_json::Map::new();
            obj.insert("name", e.name.as_str());
            obj.insert("cat", cat);
            obj.insert("ph", "X");
            obj.insert("ts", e.start_s * 1e6);
            obj.insert("dur", e.duration_s * 1e6);
            obj.insert("pid", process_name);
            obj.insert("tid", format!("stream {}", e.stream));
            if e.bytes > 0 {
                let mut args = serde_json::Map::new();
                args.insert("bytes", e.bytes);
                obj.insert("args", args);
            }
            out.push(serde_json::Value::Object(obj));
        }
        serde_json::Value::Array(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let p = Profiler::new();
        p.record(EventKind::Kernel, "main", 0.0, 3.0, 0);
        p.record(EventKind::Kernel, "main", 3.0, 1.0, 0);
        p.record(EventKind::Kernel, "inject", 4.0, 1.0, 0);
        p.record_bytes(EventKind::MemcpyH2D, "model", 5.0, 0.5, 0, 1 << 20);
        assert_eq!(p.len(), 4);
        assert_eq!(p.compute_time(), 5.0);
        assert_eq!(p.transfer_time(), 0.5);
        let s = p.summary();
        // Sorted descending by time: main first.
        assert_eq!(s[0].0, "main");
        assert_eq!(s[0].1.invocations, 2);
        assert!((s[0].1.compute_share - 0.8).abs() < 1e-12);
        let model = s.iter().find(|(n, _)| n == "model").unwrap();
        assert_eq!(model.1.bytes, 1 << 20);
    }

    #[test]
    fn render_contains_percentages() {
        let p = Profiler::new();
        p.record(EventKind::Kernel, "kernel_2d_139_gpu", 0.0, 7.34, 0);
        p.record(EventKind::Kernel, "sample_put_real_118_gpu", 7.34, 2.62, 0);
        p.record(EventKind::Kernel, "sample_put_real_98_gpu", 9.96, 0.04, 0);
        let r = p.render("Tesla M2090");
        assert!(r.contains("Tesla M2090"));
        assert!(r.contains("73.4%"));
        assert!(r.contains("26.2%"));
        assert!(r.contains("kernel_2d_139_gpu"));
    }

    /// MemCpy rows show counts and bytes like real nvprof output.
    #[test]
    fn render_memcpy_counts_and_bytes() {
        let p = Profiler::new();
        p.record_bytes(EventKind::MemcpyH2D, "copyin:u", 0.0, 0.1, 0, 500 << 20);
        p.record_bytes(EventKind::MemcpyH2D, "copyin:v", 0.1, 0.1, 0, 524 << 20);
        p.record_bytes(EventKind::MemcpyD2H, "update_host:u", 0.2, 0.05, 0, 3 << 20);
        let r = p.render("K40");
        assert!(r.contains("MemCpy (HtoD)  [2]"), "{r}");
        assert!(r.contains("GB"), "HtoD total crosses 1 GB: {r}");
        assert!(r.contains("MemCpy (DtoH)  [1]"), "{r}");
        assert!(r.contains("MB"), "{r}");
    }

    #[test]
    fn clear_resets() {
        let p = Profiler::new();
        p.record(EventKind::Kernel, "a", 0.0, 1.0, 0);
        assert!(!p.is_empty());
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.compute_time(), 0.0);
    }

    #[test]
    fn chrome_trace_uses_recorded_starts() {
        let p = Profiler::new();
        p.record(EventKind::Kernel, "a", 1.0e-3, 1.0e-3, 0);
        p.record(EventKind::Kernel, "b", 2.5e-3, 2.0e-3, 0);
        p.record_bytes(EventKind::MemcpyH2D, "up", 0.0, 0.5e-3, 1, 4096);
        let j = p.export_chrome_trace("K40");
        let v = serde_json::from_str(&j).expect("valid JSON");
        let evs = v.as_array().unwrap();
        assert_eq!(evs.len(), 3);
        // Sorted by start: the memcpy (t=0) leads, then a, then b at its
        // recorded (not serially approximated) timestamp.
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("up"));
        assert_eq!(
            evs[0].get("args").unwrap().get("bytes").unwrap().as_u64(),
            Some(4096)
        );
        assert_eq!(evs[1].get("name").unwrap().as_str(), Some("a"));
        assert!((evs[2].get("ts").unwrap().as_f64().unwrap() - 2500.0).abs() < 1e-9);
        assert_eq!(evs[2].get("cat").unwrap().as_str(), Some("kernel"));
        assert_eq!(evs[0].get("tid").unwrap().as_str(), Some("stream 1"));
    }

    /// The JSON-injection hazard of the hand-formatted exporter: names with
    /// quotes and backslashes must round-trip through a real parser.
    #[test]
    fn chrome_trace_escapes_hostile_names() {
        let p = Profiler::new();
        let hostile = "kernel\"with\\quotes\nand newline";
        p.record(EventKind::Kernel, hostile, 0.0, 1.0e-3, 0);
        let j = p.export_chrome_trace("dev\"ice");
        let v = serde_json::from_str(&j).expect("hostile names stay valid JSON");
        let evs = v.as_array().unwrap();
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some(hostile));
        assert_eq!(evs[0].get("pid").unwrap().as_str(), Some("dev\"ice"));
    }

    /// summary()/events() order is a pure function of (start, name), not
    /// of recording order.
    #[test]
    fn aggregation_order_is_start_sorted() {
        let build = |order: &[usize]| {
            let p = Profiler::new();
            let evs = [
                (EventKind::Kernel, "b", 1.0, 1.0),
                (EventKind::Kernel, "a", 0.0, 1.0),
                (EventKind::Kernel, "c", 2.0, 1.0),
            ];
            for &i in order {
                let (k, n, s, d) = evs[i];
                p.record(k, n, s, d, 0);
            }
            p
        };
        let x = build(&[0, 1, 2]);
        let y = build(&[2, 0, 1]);
        assert_eq!(x.events(), y.events());
        assert_eq!(x.summary(), y.summary());
        assert_eq!(x.events()[0].name, "a");
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let p = std::sync::Arc::new(Profiler::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        p.record(EventKind::Kernel, "k", i as f64, 0.001, 0);
                    }
                });
            }
        });
        assert_eq!(p.len(), 400);
        assert!((p.compute_time() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(17), "17 B");
        assert_eq!(human_bytes(2_500), "2.50 KB");
        assert_eq!(human_bytes(3_400_000), "3.40 MB");
        assert_eq!(human_bytes(1_234_000_000), "1.234 GB");
    }
}
