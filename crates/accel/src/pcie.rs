//! PCIe transfer model.
//!
//! The paper's data-movement findings this model reproduces:
//!
//! * the `pin` compiler option "avoids the cost of transfers between
//!   pageable and pinned host arrays" — pinned host buffers see full PCIe
//!   bandwidth, pageable ones a fraction of it,
//! * "exchanging only ghost nodes (partial transfers) instead of the whole
//!   domain ... significantly reduces the amount of data exchange", but
//!   "exchanging non-contiguous data remains a non-optimal solution" — a
//!   strided transfer is billed per contiguous chunk.

use crate::fault::FaultPlan;
use crate::{DeviceSpec, SimTime};
use serde::{Deserialize, Serialize};

/// Host-side allocation kind (the PGI `pin` option of Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostAlloc {
    /// Page-locked host memory: full DMA bandwidth.
    Pinned,
    /// Ordinary pageable memory: staged through a driver bounce buffer.
    Pageable,
}

/// Shape of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransferKind {
    /// One contiguous range.
    Contiguous,
    /// `chunks` separate ranges of `chunk_bytes` each (ghost-node planes of
    /// a non-contiguous axis).
    Strided {
        /// Number of contiguous pieces.
        chunks: u64,
        /// Bytes per piece.
        chunk_bytes: u64,
    },
}

/// Per-chunk fixed cost of a strided DMA descriptor, seconds.
const STRIDED_CHUNK_COST_S: f64 = 1.2e-6;

/// Model the duration of one host↔device copy of `bytes` bytes.
pub fn transfer_time(
    dev: &DeviceSpec,
    bytes: u64,
    alloc: HostAlloc,
    kind: TransferKind,
) -> SimTime {
    let bw = match alloc {
        HostAlloc::Pinned => dev.pcie_pinned_gbs,
        HostAlloc::Pageable => dev.pcie_pageable_gbs,
    } * 1e9;
    let base = dev.pcie_latency_s + bytes as f64 / bw;
    match kind {
        TransferKind::Contiguous => base,
        TransferKind::Strided { chunks, .. } => {
            // Descriptor overhead per chunk; small chunks also waste bus
            // efficiency (modeled inside the per-chunk cost).
            base + chunks as f64 * STRIDED_CHUNK_COST_S
        }
    }
}

/// The `seq`-th transfer on a device failed (simulated PCIe replay
/// exhaustion). Retry with a bumped sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferFailed {
    /// Device index within the fault plan.
    pub device: usize,
    /// Sequence number of the failed transfer.
    pub seq: u64,
}

impl std::fmt::Display for TransferFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transfer {} on device {} failed", self.seq, self.device)
    }
}

impl std::error::Error for TransferFailed {}

/// Fault-aware variant of [`transfer_time`]: under a [`FaultPlan`], the
/// `seq`-th transfer on `device` may fail outright (deterministically per
/// `(device, seq)`), and a straggler window at `at_s` stretches the copy.
/// With `plan = None` this is exactly [`transfer_time`].
#[allow(clippy::too_many_arguments)]
pub fn try_transfer_time(
    dev: &DeviceSpec,
    bytes: u64,
    alloc: HostAlloc,
    kind: TransferKind,
    plan: Option<&FaultPlan>,
    device: usize,
    seq: u64,
    at_s: SimTime,
) -> Result<SimTime, TransferFailed> {
    let base = transfer_time(dev, bytes, alloc, kind);
    match plan {
        None => Ok(base),
        Some(p) => {
            if p.transfer_fails(device, seq) {
                Err(TransferFailed { device, seq })
            } else {
                Ok(base * p.slowdown(device, at_s))
            }
        }
    }
}

/// Convenience: duration of a ghost-plane exchange of `planes` planes of
/// `plane_bytes` each, where `contiguous` says whether a plane is one chunk
/// (slowest-axis ghost) or `rows` chunks (other axes).
pub fn ghost_exchange_time(
    dev: &DeviceSpec,
    planes: u64,
    plane_bytes: u64,
    rows_per_plane: u64,
    contiguous: bool,
) -> SimTime {
    let kind = if contiguous {
        TransferKind::Contiguous
    } else {
        TransferKind::Strided {
            chunks: rows_per_plane,
            chunk_bytes: plane_bytes / rows_per_plane.max(1),
        }
    };
    (0..planes)
        .map(|_| transfer_time(dev, plane_bytes, HostAlloc::Pinned, kind))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_beats_pageable() {
        let dev = DeviceSpec::m2090();
        let n = 64 << 20;
        let p = transfer_time(&dev, n, HostAlloc::Pinned, TransferKind::Contiguous);
        let g = transfer_time(&dev, n, HostAlloc::Pageable, TransferKind::Contiguous);
        assert!(g / p > 1.8, "ratio {}", g / p);
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let dev = DeviceSpec::k40();
        let t = transfer_time(&dev, 4, HostAlloc::Pinned, TransferKind::Contiguous);
        assert!(t >= dev.pcie_latency_s);
        assert!(t < dev.pcie_latency_s * 1.01);
    }

    #[test]
    fn strided_costs_more_than_contiguous() {
        let dev = DeviceSpec::k40();
        let bytes = 4 << 20;
        let c = transfer_time(&dev, bytes, HostAlloc::Pinned, TransferKind::Contiguous);
        let s = transfer_time(
            &dev,
            bytes,
            HostAlloc::Pinned,
            TransferKind::Strided {
                chunks: 1024,
                chunk_bytes: 4096,
            },
        );
        assert!(s > c * 2.0, "{s} vs {c}");
    }

    /// Partial (ghost-only) transfers must beat whole-domain transfers even
    /// when strided — the paper's justification for the extra programming
    /// effort.
    #[test]
    fn ghost_exchange_beats_full_domain() {
        let dev = DeviceSpec::m2090();
        let n = 512u64;
        let full = transfer_time(
            &dev,
            n * n * n * 4,
            HostAlloc::Pinned,
            TransferKind::Contiguous,
        );
        let ghosts = ghost_exchange_time(&dev, 8, n * n * 4, n, false);
        assert!(ghosts < full / 4.0, "ghosts {ghosts} vs full {full}");
    }

    #[test]
    fn contiguous_ghost_cheaper_than_strided_ghost() {
        let dev = DeviceSpec::m2090();
        let n = 512u64;
        let contig = ghost_exchange_time(&dev, 8, n * n * 4, n, true);
        let strided = ghost_exchange_time(&dev, 8, n * n * 4, n, false);
        assert!(contig < strided);
    }

    #[test]
    fn faultless_try_matches_plain() {
        let dev = DeviceSpec::k40();
        let t = try_transfer_time(
            &dev,
            1 << 20,
            HostAlloc::Pinned,
            TransferKind::Contiguous,
            None,
            0,
            0,
            0.0,
        )
        .unwrap();
        assert_eq!(
            t,
            transfer_time(&dev, 1 << 20, HostAlloc::Pinned, TransferKind::Contiguous)
        );
    }

    #[test]
    fn faulty_transfers_fail_deterministically_and_slow_in_windows() {
        use crate::fault::{FaultPlan, FaultRates};
        let rates = FaultRates {
            transfer_fail_prob: 0.2,
            straggler_mtti_s: 10.0,
            straggler_duration_s: 5.0,
            straggler_slowdown: 2.0,
            ..FaultRates::none()
        };
        let plan = FaultPlan::generate(3, 1, 100.0, rates);
        let dev = DeviceSpec::k40();
        let go = |seq: u64, at: f64| {
            try_transfer_time(
                &dev,
                1 << 20,
                HostAlloc::Pinned,
                TransferKind::Contiguous,
                Some(&plan),
                0,
                seq,
                at,
            )
        };
        // Some sequence in the first few hundred fails at prob 0.2, and the
        // outcome for each seq is stable across calls.
        let failing = (0..400).find(|&s| go(s, 0.0).is_err()).expect("a failure");
        assert_eq!(go(failing, 0.0), go(failing, 0.0));
        // A straggler window stretches successful transfers.
        let win = plan
            .events()
            .iter()
            .find(|e| e.kind == crate::fault::FaultKind::Straggler)
            .expect("window");
        let ok_seq = (0..400).find(|&s| go(s, 0.0).is_ok()).expect("a success");
        let slow = go(ok_seq, win.t_s + 0.1).unwrap();
        let fast = go(ok_seq, win.t_s - 0.1).unwrap();
        assert!((slow / fast - 2.0).abs() < 1e-9, "{slow} vs {fast}");
    }
}
