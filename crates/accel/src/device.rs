//! Device descriptors built from the paper's Table 2.

use serde::{Deserialize, Serialize};

/// Static description of a simulated accelerator card.
///
/// The two constructors mirror Table 2 ("GPU cards specs and attached CPU
/// platforms") plus the microarchitectural constants the optimization
/// study depends on (register files, SM counts, PCIe generation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Microarchitecture generation.
    pub arch: Arch,
    /// Single-precision peak, GFLOP/s (Table 2).
    pub peak_gflops_sp: f64,
    /// DRAM bandwidth, GB/s (Table 2).
    pub mem_bandwidth_gbs: f64,
    /// Global memory capacity in bytes (Table 2: 6 GB / 12 GB).
    pub global_mem_bytes: u64,
    /// CUDA cores (Table 2).
    pub cuda_cores: u32,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Hardware cap on registers per thread (Fermi 63, Kepler 255 — the
    /// difference that decides the Figure 12 loop-fission outcome).
    pub max_regs_per_thread: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Kernel launch overhead, seconds.
    pub launch_overhead_s: f64,
    /// Host-side cost per synchronous launch: driver call, OpenACC
    /// present-table lookups, argument marshalling (what async queuing
    /// hides). Tens of microseconds on era directive runtimes.
    pub issue_gap_s: f64,
    /// PCIe bandwidth for pinned host memory, GB/s.
    pub pcie_pinned_gbs: f64,
    /// PCIe bandwidth for pageable host memory, GB/s.
    pub pcie_pageable_gbs: f64,
    /// Per-transfer PCIe latency, seconds.
    pub pcie_latency_s: f64,
    /// Number of hardware async queues usable by applications (one more is
    /// reserved by the implementation, as the paper notes).
    pub async_streams: u32,
}

/// GPU microarchitecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arch {
    /// Fermi (GF110-class): M2090.
    Fermi,
    /// Kepler (GK110-class): K40.
    Kepler,
}

impl DeviceSpec {
    /// NVIDIA Tesla M2090 (Fermi) — the IBM-cluster card of the paper.
    pub fn m2090() -> Self {
        Self {
            name: "Tesla M2090",
            arch: Arch::Fermi,
            peak_gflops_sp: 1331.2,
            mem_bandwidth_gbs: 180.0,
            global_mem_bytes: 6 * (1 << 30),
            cuda_cores: 512,
            sm_count: 16,
            regs_per_sm: 32 * 1024,
            max_regs_per_thread: 63,
            max_threads_per_sm: 1536,
            warp_size: 32,
            launch_overhead_s: 8e-6,
            issue_gap_s: 45e-6,
            pcie_pinned_gbs: 6.0, // PCIe 2.0 x16 dedicated (Table 1)
            pcie_pageable_gbs: 2.8,
            pcie_latency_s: 12e-6,
            async_streams: 16,
        }
    }

    /// NVIDIA Tesla K40 (Kepler) — the CRAY XC30 card of the paper.
    pub fn k40() -> Self {
        Self {
            name: "Tesla K40",
            arch: Arch::Kepler,
            peak_gflops_sp: 4291.0,
            mem_bandwidth_gbs: 288.0,
            global_mem_bytes: 12 * (1 << 30),
            cuda_cores: 2880,
            sm_count: 15,
            regs_per_sm: 64 * 1024,
            max_regs_per_thread: 255,
            max_threads_per_sm: 2048,
            warp_size: 32,
            launch_overhead_s: 6e-6,
            issue_gap_s: 40e-6,
            pcie_pinned_gbs: 10.0, // PCIe 3.0 x16
            pcie_pageable_gbs: 4.0,
            pcie_latency_s: 10e-6,
            async_streams: 32,
        }
    }

    /// Peak flops in flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_gflops_sp * 1e9
    }

    /// DRAM bandwidth in byte/s.
    pub fn bandwidth(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_headline_numbers() {
        let f = DeviceSpec::m2090();
        let k = DeviceSpec::k40();
        assert_eq!(f.cuda_cores, 512);
        assert_eq!(k.cuda_cores, 2880);
        assert_eq!(f.global_mem_bytes, 6 * (1 << 30));
        assert_eq!(k.global_mem_bytes, 12 * (1 << 30));
        // "Kepler cards arithmetically outpace Fermi cards in terms of
        // memory bandwidth, number of cores, and throughput."
        assert!(k.peak_gflops_sp > f.peak_gflops_sp);
        assert!(k.mem_bandwidth_gbs > f.mem_bandwidth_gbs);
    }

    #[test]
    fn register_caps_differ_by_arch() {
        assert_eq!(DeviceSpec::m2090().max_regs_per_thread, 63);
        assert_eq!(DeviceSpec::k40().max_regs_per_thread, 255);
    }

    #[test]
    fn unit_conversions() {
        let k = DeviceSpec::k40();
        assert_eq!(k.peak_flops(), 4.291e12);
        assert_eq!(k.bandwidth(), 2.88e11);
    }
}
