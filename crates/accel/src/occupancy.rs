//! Occupancy and register-spill model.
//!
//! Occupancy — "number of concurrently running threads" (Section 5.2) — is
//! limited by how many registers each thread holds: an SM's register file is
//! shared by all resident threads. Capping registers per thread (the PGI
//! `maxregcount` flag) raises occupancy but, once the kernel's live values
//! exceed the cap, forces *spills* to local (DRAM-backed) memory, adding
//! traffic. The paper found 64 registers/thread to be the sweet spot on both
//! cards for the elastic model (Figure 10); this module reproduces exactly
//! that occupancy-vs-spill trade-off.

use crate::DeviceSpec;

/// Result of allocating a kernel's registers under a cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegAllocation {
    /// Registers each thread actually holds (≤ cap).
    pub regs_per_thread: u32,
    /// Live values that did not fit and spill to local memory.
    pub spilled: u32,
    /// Occupancy: resident threads / max resident threads, in (0, 1].
    pub occupancy: f64,
}

/// Allocate `regs_needed` live values per thread under an optional
/// `maxregcount` cap on the given device.
pub fn allocate(dev: &DeviceSpec, regs_needed: u32, maxregcount: Option<u32>) -> RegAllocation {
    assert!(regs_needed > 0, "kernel needs at least one register");
    let hw_cap = dev.max_regs_per_thread;
    let cap = maxregcount.map_or(hw_cap, |m| m.clamp(16, hw_cap));
    // Given headroom, compilers allocate beyond the minimum live set —
    // caching reused values and unrolling — up to ~2× the kernel's needs.
    // (modeled as 1.75×). This is why the paper's sweet spot is an explicit
    // `maxregcount:64` rather than the Kepler hardware default of 255
    // (Figure 10): the unconstrained allocation cuts occupancy for no
    // matching win.
    let regs = (regs_needed.saturating_mul(7) / 4)
        .min(cap)
        .max(regs_needed.min(cap));
    let spilled = regs_needed.saturating_sub(cap);
    // Threads resident per SM limited by the register file.
    let by_regs = dev.regs_per_sm / regs.max(1);
    let resident = by_regs.min(dev.max_threads_per_sm);
    // Round down to whole warps — partially filled warps don't help.
    let resident = (resident / dev.warp_size) * dev.warp_size;
    let occupancy = f64::from(resident.max(dev.warp_size)) / f64::from(dev.max_threads_per_sm);
    RegAllocation {
        regs_per_thread: regs,
        spilled,
        occupancy: occupancy.min(1.0),
    }
}

/// Extra DRAM bytes per grid point caused by spills: each spilled value is
/// stored and reloaded roughly once per point, 4 bytes each way, with a
/// factor for L1/L2 catching part of the traffic.
pub fn spill_bytes_per_point(spilled: u32) -> f64 {
    const SPILL_CACHE_FACTOR: f64 = 0.8; // L1/L2 catch only a sliver (era cards)
    f64::from(spilled) * 8.0 * SPILL_CACHE_FACTOR
}

/// How much of the device's peak a kernel can sustain at a given occupancy.
///
/// Latency hiding needs enough resident warps; beyond a saturation point
/// extra occupancy stops helping. The memory pipeline saturates later than
/// the ALUs (more in-flight loads are needed to cover DRAM latency).
pub fn efficiency(occupancy: f64) -> (f64, f64) {
    const COMPUTE_SAT: f64 = 0.25;
    const MEMORY_SAT: f64 = 0.30;
    let compute = (occupancy / COMPUTE_SAT).min(1.0);
    let memory = (occupancy / MEMORY_SAT).min(1.0);
    (compute, memory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_spill_under_cap() {
        let dev = DeviceSpec::k40();
        let a = allocate(&dev, 60, None);
        assert_eq!(a.spilled, 0);
        // Aggressive allocation: 1.75× the live set when headroom allows.
        assert_eq!(a.regs_per_thread, 105);
        assert!(a.occupancy > 0.0 && a.occupancy <= 1.0);
    }

    /// The Figure 12 mechanism: a 96-register kernel spills on Fermi
    /// (cap 63) but not on Kepler (cap 255).
    #[test]
    fn fermi_spills_kepler_does_not() {
        let fermi = allocate(&DeviceSpec::m2090(), 96, None);
        let kepler = allocate(&DeviceSpec::k40(), 96, None);
        assert!(fermi.spilled > 0, "Fermi must spill");
        assert_eq!(kepler.spilled, 0, "Kepler must not spill");
    }

    /// Figure 10 mechanism: lowering maxregcount raises occupancy but
    /// introduces spills; raising it does the reverse.
    #[test]
    fn maxregcount_tradeoff() {
        let dev = DeviceSpec::k40();
        let tight = allocate(&dev, 80, Some(32));
        let loose = allocate(&dev, 80, Some(128));
        assert!(tight.occupancy > loose.occupancy);
        assert!(tight.spilled > 0);
        assert_eq!(loose.spilled, 0);
    }

    #[test]
    fn maxregcount_clamped_to_hw() {
        let dev = DeviceSpec::m2090();
        let a = allocate(&dev, 200, Some(255)); // above the Fermi HW cap
        assert_eq!(a.regs_per_thread, 63);
        assert_eq!(a.spilled, 200 - 63);
    }

    #[test]
    fn occupancy_rounds_to_warps_and_is_positive() {
        let dev = DeviceSpec::m2090();
        // Huge register demand → tiny occupancy, but at least one warp.
        let a = allocate(&dev, 63, Some(63));
        let resident = (dev.regs_per_sm / 63 / dev.warp_size) * dev.warp_size;
        let expect = f64::from(resident) / f64::from(dev.max_threads_per_sm);
        assert!((a.occupancy - expect).abs() < 1e-12);
    }

    #[test]
    fn efficiency_saturates() {
        let (c_low, m_low) = efficiency(0.1);
        let (c_hi, m_hi) = efficiency(0.9);
        assert!(c_low < 1.0 && m_low < 1.0);
        assert_eq!(c_hi, 1.0);
        assert_eq!(m_hi, 1.0);
        // Memory pipeline needs more occupancy than ALUs.
        assert!(m_low < c_low);
    }

    #[test]
    fn spill_bytes_monotone() {
        assert_eq!(spill_bytes_per_point(0), 0.0);
        assert!(spill_bytes_per_point(20) > spill_bytes_per_point(5));
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_registers_rejected() {
        allocate(&DeviceSpec::k40(), 0, None);
    }
}
