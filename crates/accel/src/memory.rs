//! Device global-memory capacity tracking.
//!
//! Section 5.1 step 1: "the forward and backward wave-field variables of RTM
//! cannot be allocated at the same time on GPU" and Table 3: "the elastic
//! variables could not fit in GPU memory when Fermi card was used". This
//! allocator enforces the card capacity so the drivers hit the same walls
//! (and the same `X` table cells) the authors did.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error returned when an allocation exceeds the card's global memory —
/// the simulated analogue of `cudaErrorMemoryAllocation`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes already allocated.
    pub in_use: u64,
    /// Card capacity.
    pub capacity: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} MB with {} MB of {} MB in use",
            self.requested >> 20,
            self.in_use >> 20,
            self.capacity >> 20
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Handle to one device allocation; dropping it frees the bytes.
#[derive(Debug)]
pub struct DeviceBuffer {
    id: u64,
    bytes: u64,
    mem: Arc<MemInner>,
}

impl DeviceBuffer {
    /// Size of the allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Opaque allocation id (profiler correlation).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for DeviceBuffer {
    fn drop(&mut self) {
        let mut live = self.mem.live.lock();
        if live.remove(&self.id).is_some() {
            self.mem.in_use.fetch_sub(self.bytes, Ordering::Relaxed);
        }
    }
}

#[derive(Debug)]
struct MemInner {
    capacity: u64,
    in_use: AtomicU64,
    next_id: AtomicU64,
    live: Mutex<HashMap<u64, u64>>,
}

/// Global-memory arena of one simulated device.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    inner: Arc<MemInner>,
}

impl DeviceMemory {
    /// New arena with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            inner: Arc::new(MemInner {
                capacity,
                in_use: AtomicU64::new(0),
                next_id: AtomicU64::new(1),
                live: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Allocate `bytes`; fails with [`OutOfMemory`] when the card is full.
    pub fn alloc(&self, bytes: u64) -> Result<DeviceBuffer, OutOfMemory> {
        let mut live = self.inner.live.lock();
        let in_use = self.inner.in_use.load(Ordering::Relaxed);
        if in_use + bytes > self.inner.capacity {
            return Err(OutOfMemory {
                requested: bytes,
                in_use,
                capacity: self.inner.capacity,
            });
        }
        self.inner.in_use.fetch_add(bytes, Ordering::Relaxed);
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        live.insert(id, bytes);
        Ok(DeviceBuffer {
            id,
            bytes,
            mem: Arc::clone(&self.inner),
        })
    }

    /// Bytes currently allocated (what `nvidia-smi` showed the authors).
    pub fn in_use(&self) -> u64 {
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// Card capacity.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Free bytes remaining.
    pub fn free(&self) -> u64 {
        self.capacity() - self.in_use()
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.inner.live.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_drop_frees() {
        let mem = DeviceMemory::new(1000);
        let a = mem.alloc(400).unwrap();
        assert_eq!(mem.in_use(), 400);
        assert_eq!(mem.live_allocations(), 1);
        drop(a);
        assert_eq!(mem.in_use(), 0);
        assert_eq!(mem.free(), 1000);
        assert_eq!(mem.live_allocations(), 0);
    }

    #[test]
    fn oom_when_full() {
        let mem = DeviceMemory::new(1000);
        let _a = mem.alloc(800).unwrap();
        let err = mem.alloc(300).unwrap_err();
        assert_eq!(err.requested, 300);
        assert_eq!(err.in_use, 800);
        assert_eq!(err.capacity, 1000);
        let msg = err.to_string();
        assert!(msg.contains("out of memory"));
        // Failing alloc must not leak accounting.
        assert_eq!(mem.in_use(), 800);
    }

    #[test]
    fn exact_fit_allowed() {
        let mem = DeviceMemory::new(1000);
        let _a = mem.alloc(1000).unwrap();
        assert_eq!(mem.free(), 0);
        assert!(mem.alloc(1).is_err());
    }

    #[test]
    fn buffer_ids_are_unique() {
        let mem = DeviceMemory::new(1000);
        let a = mem.alloc(100).unwrap();
        let b = mem.alloc(100).unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.bytes(), 100);
    }

    #[test]
    fn concurrent_allocs_never_oversubscribe() {
        let mem = DeviceMemory::new(10_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let mem = mem.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..100 {
                        if let Ok(b) = mem.alloc(100) {
                            assert!(mem.in_use() <= mem.capacity());
                            held.push(b);
                        }
                        held.pop();
                    }
                });
            }
        });
        assert!(mem.in_use() <= mem.capacity());
    }
}
