//! Benchmark-only crate: see `benches/` for the Criterion harnesses that
//! accompany every table and figure of the paper (DESIGN.md maps each
//! bench group to its experiment).
