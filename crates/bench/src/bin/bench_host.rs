//! Wall-clock host-engine benchmark: grid-points/sec for representative
//! 2D/3D cases across gang counts, pooled vs per-launch `thread::scope`
//! execution, emitted as `BENCH_host.json`.
//!
//! Every (case, gangs) pair runs under BOTH engines and the seismograms
//! are asserted bit-identical before any number is reported — a speedup
//! that changes the physics is a bug, not a result.
//!
//! After the gated samples, each case also runs once as full RTM (pooled,
//! max gangs) with the wall-clock profiler on: the per-phase
//! forward/backward/imaging breakdown and the derived gang metrics land
//! in a `phases` section of the JSON. The regression gate reads only
//! `results[]` — the phase columns are informational and never gate.
//!
//! ```text
//! bench_host [--quick] [--out PATH] [--check BASELINE.json] [--overhead]
//! ```
//!
//! * `--quick`    — smaller grids / fewer repetitions (the CI smoke mode)
//! * `--out`      — where to write the JSON (default `BENCH_host.json`)
//! * `--check`    — compare pooled grid-points/sec against a baseline JSON
//!   and exit non-zero if any case regressed by more than 20%
//! * `--overhead` — profiler overhead budget check instead of the
//!   benchmark: interleaved profiler-off/profiler-on runs, exit non-zero
//!   if the enabled path costs more than 5% or the disabled path's
//!   per-call cost projects to more than 1% of the run

use openacc_sim::exec::{set_engine, Engine};
use rtm_core::modeling::{run_modeling, Medium2};
use rtm_core::modeling3::{run_modeling3, Medium3};
use rtm_core::rtm::run_rtm;
use rtm_core::rtm3::run_rtm3;
use rtm_core::OptimizationConfig;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, iso2_constant, iso3_layered, standard_layers};
use seismic_model::{extent2, extent3, Geometry};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_source::{Acquisition2, Acquisition3, Seismogram, Wavelet};
use std::time::Instant;

/// Tolerated fractional drop of pooled grid-points/sec vs the baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

struct Sample {
    case: &'static str,
    gangs: usize,
    engine: &'static str,
    median_secs: f64,
    gp_per_s: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Time `reps` runs of `f` (which must do a full modeling run) and return
/// the median wall-clock seconds plus the last run's seismogram.
fn time_runs(reps: usize, mut f: impl FnMut() -> Seismogram) -> (f64, Seismogram) {
    let mut secs = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = f();
        secs.push(t0.elapsed().as_secs_f64());
        last = Some(s);
    }
    (median(secs), last.expect("reps >= 1"))
}

fn iso2d_medium(n: usize) -> Medium2 {
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 2000.0, h, 0.8);
    let d = DampProfile::new(n, e.halo, 10, 2000.0, h, 1e-4);
    Medium2::Iso {
        model: iso2_constant(e, 2000.0, Geometry::uniform(h, dt)),
        damp_x: d.clone(),
        damp_z: d,
    }
}

fn ac2d_medium(n: usize) -> Medium2 {
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3200.0, h, 0.6);
    let c = CpmlAxis::new(n, e.halo, 10, dt, 3200.0, h, 1e-4);
    Medium2::Acoustic {
        model: acoustic2_layered(e, &standard_layers(n), Geometry::uniform(h, dt)),
        cpml: [c.clone(), c],
    }
}

fn iso3d_medium(n: usize) -> Medium3 {
    let e = extent3(n, n, n);
    let h = 10.0;
    let dt = stable_dt(8, 3, 3200.0, h, 0.7);
    let d = DampProfile::new(n, e.halo, 6, 3200.0, h, 1e-4);
    Medium3::Iso {
        model: iso3_layered(e, &standard_layers(n), Geometry::uniform(h, dt)),
        damp: [d.clone(), d.clone(), d],
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_case(
    results: &mut Vec<Sample>,
    case: &'static str,
    points_per_step: usize,
    steps: usize,
    gangs_list: &[usize],
    reps: usize,
    mut run: impl FnMut(usize) -> Seismogram,
) {
    for &gangs in gangs_list {
        let mut per_engine: Vec<(&'static str, Engine)> =
            vec![("scoped", Engine::Scoped), ("pooled", Engine::Pooled)];
        let mut seismos: Vec<Seismogram> = Vec::new();
        for (name, engine) in per_engine.drain(..) {
            set_engine(engine);
            let (secs, seis) = time_runs(reps, || run(gangs));
            let gp = (points_per_step * steps) as f64 / secs;
            eprintln!("{case:>12}  gangs={gangs}  {name:>6}  {secs:>9.4}s  {gp:>12.0} gp/s");
            results.push(Sample {
                case,
                gangs,
                engine: name,
                median_secs: secs,
                gp_per_s: gp,
            });
            seismos.push(seis);
        }
        set_engine(Engine::Pooled);
        assert_eq!(
            seismos[0], seismos[1],
            "{case} gangs={gangs}: engines must be bit-identical"
        );
    }
}

/// One profiled RTM run of a case (pooled engine), returning the
/// wall-clock phase/gang report as a JSON object for the `phases`
/// section.
fn profiled_phases(case: &'static str, gangs: usize, run: impl FnOnce(usize)) -> serde_json::Value {
    set_engine(Engine::Pooled);
    exec_host::prof::set_enabled(true);
    let _ = exec_host::prof::drain();
    let t0 = Instant::now();
    run(gangs);
    let wall = t0.elapsed().as_secs_f64();
    let profile = exec_host::prof::drain();
    exec_host::prof::set_enabled(false);
    let rep = acc_obs::wallclock::report(&profile);
    eprintln!(
        "{case:>12}  gangs={gangs}  phases fwd={:.4}s bwd={:.4}s img={:.4}s  util={:.2}",
        rep.phases_s[0],
        rep.phases_s[1] - rep.phases_s[2],
        rep.phases_s[2],
        rep.utilization
    );
    let mut m = serde_json::Map::new();
    m.insert("case", case);
    m.insert("gangs", gangs);
    m.insert("engine", "pooled");
    m.insert("clock", "wall");
    m.insert("wall_s", wall);
    m.insert("forward_s", rep.phases_s[0]);
    // Imaging nests inside backward; report backward exclusive.
    m.insert("backward_s", (rep.phases_s[1] - rep.phases_s[2]).max(0.0));
    m.insert("imaging_s", rep.phases_s[2]);
    m.insert("utilization", rep.utilization);
    m.insert("barrier_wait_frac", rep.barrier_wait_frac);
    m.insert("imbalance", rep.imbalance);
    serde_json::Value::Object(m)
}

/// `--overhead`: enforce the profiler's runtime budget.
///
/// Two bounds, both on the same pooled iso2d modeling run:
///
/// * **enabled ≤ 5%** — interleaved profiler-off / profiler-on reps
///   (min-of-N each, interleaving cancels thermal/scheduler drift); the
///   enabled minimum must stay within 5% of the disabled minimum plus a
///   small absolute slack for timer noise on sub-100ms runs.
/// * **disabled ≤ 1%** — the disabled fast path is one relaxed atomic
///   load per call site; its per-call cost is measured directly with a
///   hot microloop, projected onto the call count the enabled run
///   actually recorded, and that projection must be under 1% of the
///   disabled runtime.
fn overhead_check(quick: bool) -> ! {
    let n = if quick { 64 } else { 96 };
    let steps = if quick { 40 } else { 80 };
    let reps = if quick { 5 } else { 9 };
    let gangs = 4;
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(22.0);
    let medium = iso2d_medium(n);
    let acq = Acquisition2::surface_line(n, n / 2, n / 2, 2, 6);
    set_engine(Engine::Pooled);
    let run = || {
        let s = run_modeling(&medium, &acq, &w, &cfg, steps, steps, gangs).seismogram;
        assert!(s.nt() > 0);
    };

    // Warm-up: pool spin-up and first-touch of the model fields.
    run();

    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut events: u64 = 0;
    for _ in 0..reps {
        exec_host::prof::set_enabled(false);
        let t0 = Instant::now();
        run();
        off = off.min(t0.elapsed().as_secs_f64());

        exec_host::prof::set_enabled(true);
        let _ = exec_host::prof::drain();
        let t0 = Instant::now();
        run();
        on = on.min(t0.elapsed().as_secs_f64());
        let p = exec_host::prof::drain();
        let recorded: u64 = p.slots.iter().map(|s| s.events.len() as u64).sum();
        events = events.max(recorded + p.dropped);
    }
    exec_host::prof::set_enabled(false);

    // Disabled fast path: per-call cost of begin() when the profiler is
    // off, measured hot.
    let calls = 2_000_000u64;
    let t0 = Instant::now();
    let mut none_count = 0u64;
    for _ in 0..calls {
        if exec_host::prof::begin().is_none() {
            none_count += 1;
        }
    }
    let per_call_s = t0.elapsed().as_secs_f64() / calls as f64;
    assert_eq!(none_count, calls, "profiler must be off");

    // Each recorded event is one begin/end pair at a call site.
    let disabled_projection_s = 2.0 * events as f64 * per_call_s;
    let disabled_frac = disabled_projection_s / off;
    let enabled_frac = on / off - 1.0;
    // 5 ms absolute slack: quick-mode runs are tens of ms and a single
    // scheduler preemption would otherwise fail a healthy build.
    let enabled_ok = on <= off * 1.05 + 0.005;
    let disabled_ok = disabled_frac <= 0.01;

    eprintln!("profiler overhead budget (iso2d, {gangs} gangs, {steps} steps, min of {reps}):");
    eprintln!(
        "  disabled run: {off:.4}s   enabled run: {on:.4}s   ({:+.2}% vs budget +5%)",
        enabled_frac * 100.0
    );
    eprintln!(
        "  disabled fast path: {:.1} ns/call x {events} events x 2 = {:.6}s ({:.3}% of run, budget 1%)",
        per_call_s * 1e9,
        disabled_projection_s,
        disabled_frac * 100.0
    );
    if !enabled_ok || !disabled_ok {
        eprintln!("PROFILER OVERHEAD BUDGET EXCEEDED");
        std::process::exit(1);
    }
    eprintln!("overhead budget: ok");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--overhead") {
        overhead_check(quick);
    }
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_host.json".into());
    let baseline = arg_value("--check");

    let reps = if quick { 3 } else { 7 };
    let (n2, steps2) = if quick { (64, 30) } else { (96, 60) };
    let (n3, steps3) = if quick { (16, 24) } else { (20, 40) };
    let gangs_list = [1usize, 2, 4, 8];
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(22.0);

    let mut results: Vec<Sample> = Vec::new();

    {
        let medium = iso2d_medium(n2);
        let acq = Acquisition2::surface_line(n2, n2 / 2, n2 / 2, 2, 6);
        bench_case(
            &mut results,
            "iso2d",
            n2 * n2,
            steps2,
            &gangs_list,
            reps,
            |gangs| run_modeling(&medium, &acq, &w, &cfg, steps2, steps2, gangs).seismogram,
        );
    }
    {
        let medium = ac2d_medium(n2);
        let acq = Acquisition2::surface_line(n2, n2 / 2, n2 / 2, 2, 6);
        bench_case(
            &mut results,
            "acoustic2d",
            n2 * n2,
            steps2,
            &gangs_list,
            reps,
            |gangs| run_modeling(&medium, &acq, &w, &cfg, steps2, steps2, gangs).seismogram,
        );
    }
    {
        let medium = iso3d_medium(n3);
        let acq = Acquisition3::surface_patch(n3, n3, (n3 / 2, n3 / 2, n3 / 2), 3, 8);
        bench_case(
            &mut results,
            "iso3d",
            n3 * n3 * n3,
            steps3,
            &gangs_list,
            reps,
            |gangs| run_modeling3(&medium, &acq, &w, &cfg, steps3, steps3, gangs).seismogram,
        );
    }

    // Headline: the acceptance-criterion ratio — 3D isotropic modeling at
    // 8 gangs, pooled vs per-launch thread::scope.
    let find = |case: &str, gangs: usize, engine: &str| {
        results
            .iter()
            .find(|s| s.case == case && s.gangs == gangs && s.engine == engine)
            .expect("sample present")
    };
    let headline_scoped = find("iso3d", 8, "scoped").median_secs;
    let headline_pooled = find("iso3d", 8, "pooled").median_secs;
    let speedup = headline_scoped / headline_pooled;
    eprintln!("\niso3d @ 8 gangs: pooled is {speedup:.2}x the scoped engine");

    // Per-phase wall-time breakdown: one profiled full-RTM run per case
    // on the pooled engine at the largest gang count. Informational only
    // — the `--check` gate never reads this section.
    let top_gangs = *gangs_list.last().expect("gangs list non-empty");
    let snap = 5usize;
    let mut phases: Vec<serde_json::Value> = Vec::new();
    {
        let medium = iso2d_medium(n2);
        let acq = Acquisition2::surface_line(n2, n2 / 2, n2 / 2, 2, 6);
        phases.push(profiled_phases("iso2d", top_gangs, |g| {
            let r = run_rtm(&medium, &acq, &w, &cfg, steps2, snap, g);
            assert!(r.snapshots_saved > 0);
        }));
    }
    {
        let medium = ac2d_medium(n2);
        let acq = Acquisition2::surface_line(n2, n2 / 2, n2 / 2, 2, 6);
        phases.push(profiled_phases("acoustic2d", top_gangs, |g| {
            let r = run_rtm(&medium, &acq, &w, &cfg, steps2, snap, g);
            assert!(r.snapshots_saved > 0);
        }));
    }
    {
        let medium = iso3d_medium(n3);
        let acq = Acquisition3::surface_patch(n3, n3, (n3 / 2, n3 / 2, n3 / 2), 3, 8);
        phases.push(profiled_phases("iso3d", top_gangs, |g| {
            let r = run_rtm3(&medium, &acq, &w, &cfg, steps3, snap, g);
            assert!(r.snapshots_saved > 0);
        }));
    }

    // Emit BENCH_host.json.
    let mut root = serde_json::Map::new();
    root.insert("quick", quick);
    root.insert(
        "cores",
        std::thread::available_parallelism().map_or(1, |c| c.get()),
    );
    let samples: Vec<serde_json::Value> = results
        .iter()
        .map(|s| {
            let mut m = serde_json::Map::new();
            m.insert("case", s.case);
            m.insert("gangs", s.gangs);
            m.insert("engine", s.engine);
            m.insert("median_secs", s.median_secs);
            m.insert("gp_per_s", s.gp_per_s);
            serde_json::Value::Object(m)
        })
        .collect();
    root.insert("results", samples);
    root.insert("phases", phases);
    let mut headline = serde_json::Map::new();
    headline.insert("case", "iso3d");
    headline.insert("gangs", 8u64);
    headline.insert("speedup_pooled_vs_scoped", speedup);
    headline.insert("bit_identical", true);
    root.insert("headline", headline);
    let json = serde_json::to_string_pretty(&serde_json::Value::Object(root));
    std::fs::write(&out_path, &json).expect("write BENCH_host.json");
    eprintln!("wrote {out_path}");

    // Regression gate: pooled gp/s per (case, gangs) vs the baseline.
    if let Some(path) = baseline {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base = serde_json::from_str(&text).expect("parse baseline");
        let mut failures = Vec::new();
        for entry in base
            .get("results")
            .and_then(|r| r.as_array())
            .expect("baseline results[]")
        {
            let engine = entry.get("engine").and_then(|v| v.as_str()).unwrap_or("");
            if engine != "pooled" {
                continue;
            }
            let case = entry.get("case").and_then(|v| v.as_str()).expect("case");
            let gangs = entry.get("gangs").and_then(|v| v.as_u64()).expect("gangs") as usize;
            let base_gp = entry
                .get("gp_per_s")
                .and_then(|v| v.as_f64())
                .expect("gp_per_s");
            let Some(cur) = results
                .iter()
                .find(|s| s.case == case && s.gangs == gangs && s.engine == "pooled")
            else {
                continue; // baseline covers a case this mode didn't run
            };
            let floor = base_gp * (1.0 - REGRESSION_TOLERANCE);
            if cur.gp_per_s < floor {
                failures.push(format!(
                    "{case} gangs={gangs}: {:.0} gp/s < {floor:.0} (baseline {base_gp:.0})",
                    cur.gp_per_s
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("PERF REGRESSION:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("regression check vs {path}: ok");
    }
}
