//! Parallel-infrastructure benchmarks: gang scaling of the host execution
//! engine, halo-exchange throughput of the message-passing substrate, and
//! serialization of shot records.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpi_sim::comm::Communicator;
use mpi_sim::decomp::SlabDecomp;
use mpi_sim::halo::exchange_halo2;
use openacc_sim::exec::par_slabs;
use seismic_grid::cfl::stable_dt;
use seismic_grid::{Extent2, Field2, SyncSlice};
use seismic_model::builder::{acoustic2_layered, standard_layers};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_prop::acoustic2d;
use seismic_source::Seismogram;

/// Gang scaling: the same acoustic velocity kernel over 1..8 gangs.
fn gang_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("gang_scaling");
    let n = 480;
    let e = extent2(n, n);
    let dt = stable_dt(8, 2, 3200.0, 10.0, 0.55);
    let m = acoustic2_layered(e, &standard_layers(n), Geometry::uniform(10.0, dt));
    let cp = CpmlAxis::new(n, e.halo, 16, dt, 3200.0, 10.0, 1e-4);
    let cpml = [cp.clone(), cp];
    let mut s = acoustic2d::Ac2State::new(e);
    for gangs in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements(e.interior_len() as u64));
        g.bench_function(format!("gangs_{gangs}"), |b| {
            b.iter(|| {
                let qx = SyncSlice::new(s.qx.as_mut_slice());
                let qz = SyncSlice::new(s.qz.as_mut_slice());
                let px = SyncSlice::new(s.psi_px.as_mut_slice());
                let pz = SyncSlice::new(s.psi_pz.as_mut_slice());
                let p = s.p.as_slice();
                par_slabs(n, gangs, |z0, z1| {
                    acoustic2d::velocity_slab(
                        qx,
                        qz,
                        px,
                        pz,
                        p,
                        m.rho.as_slice(),
                        e,
                        10.0,
                        10.0,
                        dt,
                        &cpml,
                        z0,
                        z1,
                    );
                });
            })
        });
    }
    g.finish();
}

/// Real ghost-row exchange between two ranks over the channel fabric.
fn halo_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_exchange");
    for nx in [256usize, 1024] {
        let decomp = SlabDecomp::new(64, 2, 4);
        g.throughput(Throughput::Bytes((4 * nx * 4 * 2) as u64));
        g.bench_function(format!("two_ranks_nx{nx}"), |b| {
            b.iter(|| {
                Communicator::run(2, |ctx| {
                    let slab = decomp.slab(ctx.rank());
                    let e = Extent2::new(nx, slab.nz(), 4);
                    let mut f = Field2::filled(e, ctx.rank() as f32 + 1.0);
                    exchange_halo2(ctx, &mut f, &slab, 7);
                    f.as_slice()[0]
                })
            })
        });
    }
    g.finish();
}

/// Shot-record wire serialization round-trip.
fn seismogram_bytes(c: &mut Criterion) {
    let mut g = c.benchmark_group("seismogram_bytes");
    let mut s = Seismogram::zeros(256, 2000);
    for r in 0..256 {
        for t in 0..2000 {
            s.record(r, t, (r * t) as f32);
        }
    }
    g.throughput(Throughput::Bytes((256 * 2000 * 4) as u64));
    g.bench_function("roundtrip_256x2000", |b| {
        b.iter(|| {
            let bytes: Bytes = s.to_bytes();
            Seismogram::from_bytes(bytes).unwrap()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = gang_scaling, halo_exchange, seismogram_bytes
}
criterion_main!(benches);
