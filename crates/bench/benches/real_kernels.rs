//! Real measured kernel performance (host execution) — the executable
//! counterparts of Table 3 and Figures 6/7, 12, 13.
//!
//! Groups:
//! * `modeling_cases` — one step of each propagator (Table 3 rows),
//! * `iso_pml_variants` — the three isotropic kernel restructurings
//!   (Figures 6/7),
//! * `loop_fission` — fused vs fissioned acoustic 3D pressure update
//!   (Figure 12),
//! * `transpose_coalescing` — the transposition the Figure 13 optimization
//!   pays for, on real memory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seismic_grid::cfl::stable_dt;
use seismic_grid::SyncSlice;
use seismic_model::builder::{
    acoustic2_layered, acoustic3_layered, elastic2_layered, elastic3_layered, iso2_layered,
    iso3_layered, standard_layers,
};
use seismic_model::{extent2, extent3, Geometry};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_prop::{
    acoustic2d, acoustic3d, elastic2d, elastic3d, iso2d, iso3d, FissionVariant, IsoPmlVariant,
};

const N2: usize = 240;
const N3: usize = 48;

fn geom(safety: f32, dims: usize) -> Geometry {
    Geometry::uniform(10.0, stable_dt(8, dims, 3200.0, 10.0, safety))
}

fn modeling_cases(c: &mut Criterion) {
    let mut g = c.benchmark_group("modeling_cases");
    let layers = standard_layers(N2);

    // Isotropic 2D.
    {
        let e = extent2(N2, N2);
        let m = iso2_layered(e, &layers, geom(0.7, 2));
        let d = DampProfile::new(N2, e.halo, 16, 3200.0, 10.0, 1e-4);
        let mut s = iso2d::Iso2State::new(e);
        g.throughput(Throughput::Elements(e.interior_len() as u64));
        g.bench_function("iso_2d_step", |b| {
            b.iter(|| s.step(&m, &d, &d, IsoPmlVariant::OriginalIfs))
        });
    }
    // Acoustic 2D.
    {
        let e = extent2(N2, N2);
        let m = acoustic2_layered(e, &layers, geom(0.55, 2));
        let cp = CpmlAxis::new(N2, e.halo, 16, m.geom.dt, 3200.0, 10.0, 1e-4);
        let cpml = [cp.clone(), cp];
        let mut s = acoustic2d::Ac2State::new(e);
        g.throughput(Throughput::Elements(e.interior_len() as u64));
        g.bench_function("acoustic_2d_step", |b| b.iter(|| s.step(&m, &cpml)));
    }
    // Elastic 2D.
    {
        let e = extent2(N2, N2);
        let m = elastic2_layered(e, &layers, geom(0.5, 2));
        let cp = CpmlAxis::new(N2, e.halo, 16, m.geom.dt, 3200.0, 10.0, 1e-4);
        let cpml = [cp.clone(), cp];
        let mut s = elastic2d::El2State::new(e);
        g.throughput(Throughput::Elements(e.interior_len() as u64));
        g.bench_function("elastic_2d_step", |b| b.iter(|| s.step(&m, &cpml)));
    }
    let layers3 = standard_layers(N3);
    // Isotropic 3D.
    {
        let e = extent3(N3, N3, N3);
        let m = iso3_layered(e, &layers3, geom(0.7, 3));
        let d = DampProfile::new(N3, e.halo, 8, 3200.0, 10.0, 1e-4);
        let damp = [d.clone(), d.clone(), d];
        let mut s = iso3d::Iso3State::new(e);
        g.throughput(Throughput::Elements(e.interior_len() as u64));
        g.bench_function("iso_3d_step", |b| {
            b.iter(|| s.step(&m, &damp, IsoPmlVariant::OriginalIfs))
        });
    }
    // Acoustic 3D.
    {
        let e = extent3(N3, N3, N3);
        let m = acoustic3_layered(e, &layers3, geom(0.55, 3));
        let cp = CpmlAxis::new(N3, e.halo, 8, m.geom.dt, 3200.0, 10.0, 1e-4);
        let cpml = [cp.clone(), cp.clone(), cp];
        let mut s = acoustic3d::Ac3State::new(e);
        g.throughput(Throughput::Elements(e.interior_len() as u64));
        g.bench_function("acoustic_3d_step", |b| {
            b.iter(|| s.step(&m, &cpml, FissionVariant::Fissioned))
        });
    }
    // Elastic 3D.
    {
        let e = extent3(N3, N3, N3);
        let m = elastic3_layered(e, &layers3, geom(0.5, 3));
        let cp = CpmlAxis::new(N3, e.halo, 8, m.geom.dt, 3200.0, 10.0, 1e-4);
        let cpml = [cp.clone(), cp.clone(), cp];
        let mut s = elastic3d::El3State::new(e);
        g.throughput(Throughput::Elements(e.interior_len() as u64));
        g.bench_function("elastic_3d_step", |b| b.iter(|| s.step(&m, &cpml)));
    }
    g.finish();
}

fn iso_pml_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("iso_pml_variants");
    let e = extent2(N2, N2);
    let m = iso2_layered(e, &standard_layers(N2), geom(0.7, 2));
    let d = DampProfile::new(N2, e.halo, 20, 3200.0, 10.0, 1e-4);
    for v in [
        IsoPmlVariant::OriginalIfs,
        IsoPmlVariant::RestructuredIndices,
        IsoPmlVariant::PmlEverywhere,
    ] {
        let mut s = iso2d::Iso2State::new(e);
        g.bench_function(format!("{v:?}"), |b| b.iter(|| s.step(&m, &d, &d, v)));
    }
    g.finish();
}

fn loop_fission(c: &mut Criterion) {
    let mut g = c.benchmark_group("loop_fission");
    let e = extent3(N3, N3, N3);
    let m = acoustic3_layered(e, &standard_layers(N3), geom(0.55, 3));
    let cp = CpmlAxis::new(N3, e.halo, 8, m.geom.dt, 3200.0, 10.0, 1e-4);
    let cpml = [cp.clone(), cp.clone(), cp];
    for v in [FissionVariant::Fused, FissionVariant::Fissioned] {
        let mut s = acoustic3d::Ac3State::new(e);
        g.bench_function(format!("{v:?}"), |b| b.iter(|| s.step(&m, &cpml, v)));
    }
    g.finish();
}

fn transpose_coalescing(c: &mut Criterion) {
    let mut g = c.benchmark_group("transpose_coalescing");
    let e = extent2(1024, 1024);
    let f = seismic_grid::Field2::from_fn(e, |ix, iz| (ix * 31 + iz) as f32);
    g.throughput(Throughput::Bytes((e.len() * 4) as u64));
    g.bench_function("field_transpose_1024", |b| b.iter(|| f.transposed()));

    // The strided vs contiguous sweep the transposition trades between.
    let mut out = seismic_grid::Field2::zeros(e);
    g.bench_function("sweep_x_inner(contiguous)", |b| {
        b.iter(|| {
            let o = SyncSlice::new(out.as_mut_slice());
            for iz in 0..e.nz {
                for ix in 0..e.nx {
                    let i = e.idx(ix, iz);
                    unsafe { o.set(i, f.as_slice()[i] * 2.0) };
                }
            }
        })
    });
    g.bench_function("sweep_z_inner(strided)", |b| {
        b.iter(|| {
            let o = SyncSlice::new(out.as_mut_slice());
            for ix in 0..e.nx {
                for iz in 0..e.nz {
                    let i = e.idx(ix, iz);
                    unsafe { o.set(i, f.as_slice()[i] * 2.0) };
                }
            }
        })
    });
    g.finish();
}

/// The VTI extension kernel measured alongside the paper's six.
fn vti_kernel(c: &mut Criterion) {
    use seismic_model::VtiModel2;
    use seismic_prop::vti2d;
    let mut g = c.benchmark_group("vti_kernel");
    let e = extent2(N2, N2);
    let vmax = 2000.0 * (1.0f32 + 0.4).sqrt();
    let m = VtiModel2::constant(
        e,
        2000.0,
        0.2,
        0.08,
        Geometry::uniform(10.0, stable_dt(8, 2, vmax, 10.0, 0.6)),
    );
    let d = DampProfile::new(N2, e.halo, 16, vmax, 10.0, 1e-4);
    let mut s = vti2d::Vti2State::new(e);
    g.throughput(Throughput::Elements(e.interior_len() as u64));
    g.bench_function("vti_2d_step", |b| b.iter(|| s.step(&m, &d, &d)));
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = modeling_cases, iso_pml_variants, loop_fission, transpose_coalescing, vti_kernel
}
criterion_main!(benches);
