//! Simulated-device benchmarks: how fast the performance model itself
//! evaluates, plus the model-derived sweeps behind Tables 3/4 and
//! Figures 8/9, 10, 11.
//!
//! Groups:
//! * `rtm_cases` — full Table 4 row evaluation (forward+backward pricing),
//! * `register_sweep` — Figure 10's occupancy/spill evaluation,
//! * `cray_constructs` — Figure 8/9's kernels-vs-parallel lowering,
//! * `async_streams` — Figure 11's stream-queue makespans.

use accel_sim::kernel::{time_kernel, KernelProfile};
use accel_sim::stream::{IssueMode, QueuedKernel, StreamSim};
use accel_sim::DeviceSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use openacc_sim::{Compiler, ConstructKind, LoopNest, LoopSched, PgiVersion};
use repro::cases::table_workload;
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase};
use rtm_core::gpu_time::rtm_time;
use seismic_model::footprint::{Dims, Formulation};

fn rtm_cases(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtm_cases");
    for case in SeismicCase::all() {
        // Keep the bench quick: scale the step counts down 20x.
        let mut w = table_workload(&case);
        w.steps /= 20;
        let cfg = OptimizationConfig::default();
        g.bench_function(case.label(), |b| {
            b.iter(|| {
                rtm_time(
                    &case,
                    &cfg,
                    Compiler::Pgi(PgiVersion::V14_6),
                    Cluster::CrayXc30,
                    &w,
                )
                .map(|r| r.breakdown.total_s)
                .ok()
            })
        });
    }
    g.finish();
}

fn register_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("register_sweep");
    for regs in [16u32, 32, 64, 128, 255] {
        let mut k = KernelProfile::new("elastic_sdiag", 1 << 24, 210.0, 100.0, 62);
        k.maxregcount = Some(regs);
        let dev = DeviceSpec::k40();
        g.bench_function(format!("maxregcount_{regs}"), |b| {
            b.iter(|| time_kernel(&dev, &k))
        });
    }
    g.finish();
}

fn cray_constructs(c: &mut Criterion) {
    let mut g = c.benchmark_group("cray_constructs");
    let nest_par = LoopNest::new(&[400, 400, 400]).with_sched(&[
        LoopSched::Gang,
        LoopSched::Worker,
        LoopSched::Vector(128),
    ]);
    let nest_ker = LoopNest::new(&[400, 400, 400]);
    for (name, nest, kind) in [
        ("parallel_gwv", &nest_par, ConstructKind::Parallel),
        ("kernels_auto", &nest_ker, ConstructKind::Kernels),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| Compiler::Cray.map(nest, kind, &[], false))
        });
    }
    g.finish();
}

fn async_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("async_streams");
    let dev = DeviceSpec::k40();
    for (name, mode) in [
        ("sync", IssueMode::Synchronous),
        ("async", IssueMode::AsyncStreams),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut q = StreamSim::new();
                for i in 0..6u32 {
                    q.push(QueuedKernel {
                        name: format!("k{i}"),
                        exec_s: 40e-6,
                        sm_fraction: 0.8,
                        stream: i,
                    });
                }
                q.drain_makespan(&dev, mode)
            })
        });
    }
    g.finish();
}

/// Multi-GPU scaling evaluation (the paper's path-forward extension).
fn multi_gpu(c: &mut Criterion) {
    use rtm_core::multi_gpu::{modeling_time_multi, CommMode, GhostPacking};
    let mut g = c.benchmark_group("multi_gpu");
    let case = SeismicCase {
        formulation: Formulation::Acoustic,
        dims: Dims::Three,
    };
    let mut w = table_workload(&case);
    w.steps = 100;
    let cfg = OptimizationConfig::default();
    for n in [1usize, 4, 8] {
        g.bench_function(format!("k40_x{n}_overlapped"), |b| {
            b.iter(|| {
                modeling_time_multi(
                    &case,
                    &cfg,
                    Compiler::Pgi(PgiVersion::V14_6),
                    Cluster::CrayXc30,
                    &w,
                    n,
                    GhostPacking::DevicePacked,
                    CommMode::Overlapped,
                )
                .map(|t| t.total_s)
                .ok()
            })
        });
    }
    g.finish();
}

/// Ablation pricing (cache clause, pinned memory) — see `repro::ablation`.
fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.bench_function("cache_clause", |b| {
        b.iter(repro::ablation::cache_clause_ablation)
    });
    g.bench_function("partial_transfers", |b| {
        b.iter(repro::ablation::partial_transfer_ablation)
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = rtm_cases, register_sweep, cray_constructs, async_streams, multi_gpu, ablations
}
criterion_main!(benches);
