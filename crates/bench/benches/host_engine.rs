//! Host-execution-engine benchmarks: persistent-pool launch overhead vs
//! per-launch `thread::scope`, cache-blocked stencil sweeps, and the full
//! 3D isotropic step both ways. The wall-clock companion
//! (`src/bin/bench_host.rs`) produces `BENCH_host.json`; these Criterion
//! groups are for interactive before/after comparison of the same paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use openacc_sim::exec::{par_slabs, par_slabs_scoped, set_engine, Engine};
use rtm_core::modeling3::{Medium3, State3};
use rtm_core::OptimizationConfig;
use seismic_grid::cfl::stable_dt;
use seismic_grid::{deriv, Field2};
use seismic_model::builder::{iso3_layered, standard_layers};
use seismic_model::{extent2, extent3, Geometry};
use seismic_pml::DampProfile;

/// Pure launch overhead: an empty body over 8 gangs, pooled vs scoped.
/// The gap here is exactly what every kernel of every timestep used to pay.
fn launch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("launch_overhead");
    let gangs = 8;
    g.bench_function("pooled_8g", |b| {
        b.iter(|| {
            par_slabs(64, gangs, |z0, z1| {
                std::hint::black_box((z0, z1));
            })
        });
    });
    g.bench_function("scoped_8g", |b| {
        b.iter(|| {
            par_slabs_scoped(64, gangs, |z0, z1| {
                std::hint::black_box((z0, z1));
            })
        });
    });
    g.finish();
}

/// Cache-blocked Laplacian sweep on a wide grid (the x-tile loop in
/// `seismic_grid::deriv`).
fn blocked_laplacian(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocked_laplacian");
    let n = 512;
    let e = extent2(n, n);
    let f = Field2::from_fn(e, |ix, iz| ((ix * 7 + iz * 13) % 101) as f32);
    let mut out = Field2::zeros(e);
    g.throughput(Throughput::Elements((n * n) as u64));
    g.bench_function(format!("laplacian2_n{n}"), |b| {
        b.iter(|| deriv::laplacian2(&f, &mut out, 10.0, 10.0));
    });
    g.finish();
}

/// One full 3D isotropic timestep through the driver, pooled vs scoped.
fn iso3d_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("iso3d_step");
    let n = 32;
    let e = extent3(n, n, n);
    let h = 10.0;
    let dt = stable_dt(8, 3, 3200.0, h, 0.7);
    let d = DampProfile::new(n, e.halo, 6, 3200.0, h, 1e-4);
    let medium = Medium3::Iso {
        model: iso3_layered(e, &standard_layers(n), Geometry::uniform(h, dt)),
        damp: [d.clone(), d.clone(), d],
    };
    let cfg = OptimizationConfig::default();
    let mut state = State3::new(&medium);
    g.throughput(Throughput::Elements((n * n * n) as u64));
    for (name, engine) in [("pooled", Engine::Pooled), ("scoped", Engine::Scoped)] {
        set_engine(engine);
        g.bench_function(format!("{name}_8g_n{n}"), |b| {
            b.iter(|| state.step(&medium, &cfg, 8));
        });
    }
    set_engine(Engine::Pooled);
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = launch_overhead, blocked_laplacian, iso3d_step
}
criterion_main!(benches);
