//! Acoustic VTI (anisotropic) propagator, 2D — the paper's future work.
//!
//! Section 3.3: "There are three basic formulations ... purely isotropic or
//! acoustic, isotropic elastic, and anisotropic. In our experiments, we
//! focused on the first two ... However, we will consider the anisotropic
//! case in the future." This module implements that case for vertical
//! transverse isotropy, using the Alkhalifah–Zhou coupled pseudo-acoustic
//! system:
//!
//! ```text
//! ∂²p/∂t² = v²·[ (1+2ε)·∂²p/∂x² + ∂²q/∂z² ]
//! ∂²q/∂t² = v²·[ (1+2δ)·∂²p/∂x² + ∂²q/∂z² ]
//! ```
//!
//! With ε = δ = 0 the two equations coincide and the system degenerates to
//! the isotropic wave equation (tested). The P wavefront is elliptical:
//! horizontal speed `v·√(1+2ε)`, vertical speed `v` (tested). The same
//! damping-layer boundary as the isotropic kernel applies.

use seismic_grid::fd::f32c;
use seismic_grid::{Extent2, Field2, SyncSlice, STENCIL_HALF};
use seismic_model::VtiModel2;
use seismic_pml::DampProfile;

/// VTI wavefield state: two coupled fields, two time levels each.
#[derive(Debug, Clone)]
pub struct Vti2State {
    /// Main wavefield, previous level (overwritten with next).
    pub p_prev: Field2,
    /// Main wavefield, current level.
    pub p_cur: Field2,
    /// Auxiliary wavefield, previous level.
    pub q_prev: Field2,
    /// Auxiliary wavefield, current level.
    pub q_cur: Field2,
}

impl Vti2State {
    /// Quiescent state.
    pub fn new(extent: Extent2) -> Self {
        Self {
            p_prev: Field2::zeros(extent),
            p_cur: Field2::zeros(extent),
            q_prev: Field2::zeros(extent),
            q_cur: Field2::zeros(extent),
        }
    }

    /// Overwrite every field from `other` without allocating (extents must
    /// match) — the arena-reuse path for checkpoints and retries.
    pub fn copy_from(&mut self, other: &Self) {
        self.p_prev.copy_from(&other.p_prev);
        self.p_cur.copy_from(&other.p_cur);
        self.q_prev.copy_from(&other.q_prev);
        self.q_cur.copy_from(&other.q_cur);
    }

    /// Advance one time step and swap both field pairs.
    pub fn step(&mut self, model: &VtiModel2, damp_x: &DampProfile, damp_z: &DampProfile) {
        let e = self.p_cur.extent();
        let nz = e.nz;
        {
            let p = SyncSlice::new(self.p_prev.as_mut_slice());
            let q = SyncSlice::new(self.q_prev.as_mut_slice());
            step_slab(
                p,
                q,
                self.p_cur.as_slice(),
                self.q_cur.as_slice(),
                model.vp.as_slice(),
                model.epsilon.as_slice(),
                model.delta.as_slice(),
                e,
                model.geom.dx,
                model.geom.dz,
                model.geom.dt,
                damp_x,
                damp_z,
                0,
                nz,
            );
        }
        self.p_prev.swap(&mut self.p_cur);
        self.q_prev.swap(&mut self.q_cur);
    }

    /// Inject a source sample into both coupled fields (the standard
    /// pseudo-acoustic source).
    pub fn inject(&mut self, model: &VtiModel2, ix: usize, iz: usize, f: f32) {
        let dt = model.geom.dt;
        let vp = model.vp.get(ix, iz);
        let a = dt * dt * vp * vp * f;
        let v = self.p_cur.get(ix, iz) + a;
        self.p_cur.set(ix, iz, v);
        let v = self.q_cur.get(ix, iz) + a;
        self.q_cur.set(ix, iz, v);
    }
}

/// 8th-order second derivative along stride `s`.
#[inline(always)]
fn d2(u: &[f32], c: usize, s: usize, rh2: f32) -> f32 {
    let mut acc = f32c::C2[0] * u[c];
    for k in 1..=STENCIL_HALF {
        acc += f32c::C2[k] * (u[c + k * s] + u[c - k * s]);
    }
    acc * rh2
}

/// One VTI time step over interior rows `[z0, z1)`.
///
/// `p`/`q` alias the previous time levels and receive the next ones.
#[allow(clippy::too_many_arguments)]
pub fn step_slab(
    p: SyncSlice,
    q: SyncSlice,
    p_cur: &[f32],
    q_cur: &[f32],
    vp: &[f32],
    epsilon: &[f32],
    delta: &[f32],
    e: Extent2,
    dx: f32,
    dz: f32,
    dt: f32,
    damp_x: &DampProfile,
    damp_z: &DampProfile,
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let dt2 = dt * dt;
    let rdx2 = 1.0 / (dx * dx);
    let rdz2 = 1.0 / (dz * dz);
    for iz in z0..z1 {
        let sz = damp_z.sigma(iz);
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let sigma = damp_x.sigma(ix) + sz;
            let v2 = vp[c] * vp[c];
            let pxx = d2(p_cur, c, 1, rdx2);
            let qzz = d2(q_cur, c, fnx, rdz2);
            let rp = v2 * ((1.0 + 2.0 * epsilon[c]) * pxx + qzz);
            let rq = v2 * ((1.0 + 2.0 * delta[c]) * pxx + qzz);
            // Damped leapfrog (identical structure to the isotropic kernel;
            // exact when σ = 0).
            let denom = 1.0 + sigma * dt;
            let keep = 1.0 - sigma * dt;
            let pn = (2.0 * p_cur[c] - keep * p.get(c) + dt2 * rp) / denom;
            let qn = (2.0 * q_cur[c] - keep * q.get(c) + dt2 * rq) / denom;
            // Safety: each slab writes only its own rows.
            unsafe {
                p.set(c, pn);
                q.set(c, qn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso2d::Iso2State;
    use crate::IsoPmlVariant;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::{extent2, Geometry, IsoModel2, VtiModel2};
    use seismic_source::ricker;

    fn setup(n: usize, eps: f32, delta: f32) -> (VtiModel2, DampProfile) {
        let e = extent2(n, n);
        let h = 10.0;
        let vp = 2000.0;
        let vmax = vp * (1.0 + 2.0 * eps).sqrt();
        let dt = stable_dt(8, 2, vmax, h, 0.7);
        let m = VtiModel2::constant(e, vp, eps, delta, Geometry::uniform(h, dt));
        let d = DampProfile::new(n, e.halo, 12, vmax, h, 1e-4);
        (m, d)
    }

    fn run(n: usize, eps: f32, delta: f32, steps: usize) -> Vti2State {
        let (m, d) = setup(n, eps, delta);
        let mut s = Vti2State::new(m.vp.extent());
        for t in 0..steps {
            s.step(&m, &d, &d);
            s.inject(&m, n / 2, n / 2, ricker(25.0, t as f32 * m.geom.dt - 0.048));
        }
        s
    }

    /// ε = δ = 0 degenerates to the isotropic equation: p, q, and the
    /// isotropic propagator's u must coincide (same arithmetic, so exact).
    #[test]
    fn isotropic_limit_matches_iso_kernel() {
        let n = 64;
        let (m, d) = setup(n, 0.0, 0.0);
        let iso = IsoModel2 {
            vp: m.vp.clone(),
            geom: m.geom,
        };
        let mut vti = Vti2State::new(m.vp.extent());
        let mut ref_ = Iso2State::new(m.vp.extent());
        for t in 0..60 {
            vti.step(&m, &d, &d);
            ref_.step(&iso, &d, &d, IsoPmlVariant::PmlEverywhere);
            let amp = ricker(25.0, t as f32 * m.geom.dt - 0.048);
            vti.inject(&m, 32, 32, amp);
            ref_.inject(&iso, 32, 32, amp);
        }
        assert_eq!(vti.p_cur, vti.q_cur, "p = q in the isotropic limit");
        // VTI and iso differ in Laplacian summation order; compare tightly.
        let scale = ref_.u_cur.max_abs().max(1e-12);
        for (a, b) in vti.p_cur.as_slice().iter().zip(ref_.u_cur.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * scale, "{a} vs {b}");
        }
    }

    /// The wavefront is elliptical: the horizontal arrival sits √(1+2ε)
    /// further out than the vertical one.
    #[test]
    fn elliptical_wavefront() {
        let n = 180;
        let eps = 0.24;
        let s = run(n, eps, 0.1, 130);
        let c = n / 2;
        let peak_along = |dx: usize, dz: usize| {
            let mut best = (0usize, 0.0f32);
            for r in 6..c - 4 {
                let v = s.p_cur.get(c + r * dx, c + r * dz).abs();
                if v > best.1 {
                    best = (r, v);
                }
            }
            best.0 as f32
        };
        let rx = peak_along(1, 0);
        let rz = peak_along(0, 1);
        let want = (1.0 + 2.0 * eps).sqrt();
        let got = rx / rz;
        assert!(
            (got - want).abs() < 0.12,
            "anisotropy ratio {got} vs √(1+2ε) = {want} (rx {rx}, rz {rz})"
        );
    }

    /// Stability at the elliptic CFL bound and absorption at boundaries.
    #[test]
    fn stable_and_absorbing() {
        let n = 96;
        let (m, d) = setup(n, 0.2, 0.08);
        let mut s = Vti2State::new(m.vp.extent());
        let mut peak = 0.0f64;
        for t in 0..500 {
            s.step(&m, &d, &d);
            if t < 60 {
                s.inject(&m, n / 2, n / 2, ricker(25.0, t as f32 * m.geom.dt - 0.048));
            }
            peak = peak.max(s.p_cur.energy());
        }
        let fin = s.p_cur.energy();
        assert!(fin.is_finite());
        assert!(fin < 0.1 * peak, "energy absorbed: {fin} vs {peak}");
    }

    #[test]
    #[should_panic(expected = "instability")]
    fn epsilon_below_delta_rejected() {
        let e = extent2(8, 8);
        VtiModel2::constant(e, 2000.0, 0.05, 0.2, Geometry::uniform(10.0, 1e-3));
    }

    /// Slab-parallel equality for the coupled system.
    #[test]
    fn slab_split_matches_sequential() {
        let n = 48;
        let (m, d) = setup(n, 0.15, 0.05);
        let e = m.vp.extent();
        let mut seq = Vti2State::new(e);
        let mut par = Vti2State::new(e);
        for t in 0..30 {
            seq.step(&m, &d, &d);
            {
                let p = SyncSlice::new(par.p_prev.as_mut_slice());
                let q = SyncSlice::new(par.q_prev.as_mut_slice());
                for (z0, z1) in [(0usize, 17usize), (17, 32), (32, 48)] {
                    step_slab(
                        p,
                        q,
                        par.p_cur.as_slice(),
                        par.q_cur.as_slice(),
                        m.vp.as_slice(),
                        m.epsilon.as_slice(),
                        m.delta.as_slice(),
                        e,
                        m.geom.dx,
                        m.geom.dz,
                        m.geom.dt,
                        &d,
                        &d,
                        z0,
                        z1,
                    );
                }
                par.p_prev.swap(&mut par.p_cur);
                par.q_prev.swap(&mut par.q_cur);
            }
            let amp = ricker(25.0, t as f32 * m.geom.dt - 0.048);
            seq.inject(&m, 24, 24, amp);
            par.inject(&m, 24, 24, amp);
        }
        assert_eq!(seq.p_cur, par.p_cur);
        assert_eq!(seq.q_cur, par.q_cur);
    }
}
