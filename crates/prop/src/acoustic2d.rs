//! Acoustic variable-density propagator, 2D (Equation 2 of the paper).
//!
//! First-order pressure–velocity system on a staggered grid:
//!
//! ```text
//! ∂t p  = ρ·vp²·(∂x qx + ∂z qz) + source
//! ∂t qx = (1/ρ)·∂x p
//! ∂t qz = (1/ρ)·∂z p
//! ```
//!
//! 8th-order staggered operators, C-PML absorption via per-derivative memory
//! fields ψ. Each time step is two kernel phases: the *velocity* kernel
//! (writes `qx`, `qz` and their ψ fields, reads `p`) and the *pressure*
//! kernel (writes `p` and its ψ fields, reads `qx`, `qz`) — within a phase
//! every point is independent, which is what lets `openacc-sim` gangs and
//! `mpi-sim` ranks split the z-range.

use seismic_grid::fd::f32c;
use seismic_grid::{Extent2, Field2, SyncSlice};
use seismic_model::AcousticModel2;
use seismic_pml::CpmlAxis;

/// Acoustic 2D wavefield state: pressure, two velocity components, and four
/// C-PML memory fields (one per directional derivative).
#[derive(Debug, Clone)]
pub struct Ac2State {
    /// Pressure.
    pub p: Field2,
    /// Horizontal velocity flow (staggered +x/2).
    pub qx: Field2,
    /// Vertical velocity flow (staggered +z/2).
    pub qz: Field2,
    /// ψ for ∂x p (velocity kernel).
    pub psi_px: Field2,
    /// ψ for ∂z p (velocity kernel).
    pub psi_pz: Field2,
    /// ψ for ∂x qx (pressure kernel).
    pub psi_qx: Field2,
    /// ψ for ∂z qz (pressure kernel).
    pub psi_qz: Field2,
}

impl Ac2State {
    /// Quiescent state.
    pub fn new(extent: Extent2) -> Self {
        Self {
            p: Field2::zeros(extent),
            qx: Field2::zeros(extent),
            qz: Field2::zeros(extent),
            psi_px: Field2::zeros(extent),
            psi_pz: Field2::zeros(extent),
            psi_qx: Field2::zeros(extent),
            psi_qz: Field2::zeros(extent),
        }
    }

    /// Overwrite every field from `other` without allocating (extents must
    /// match) — the arena-reuse path for checkpoints and retries.
    pub fn copy_from(&mut self, other: &Self) {
        self.p.copy_from(&other.p);
        self.qx.copy_from(&other.qx);
        self.qz.copy_from(&other.qz);
        self.psi_px.copy_from(&other.psi_px);
        self.psi_pz.copy_from(&other.psi_pz);
        self.psi_qx.copy_from(&other.psi_qx);
        self.psi_qz.copy_from(&other.psi_qz);
    }

    /// Advance one full time step (velocity phase then pressure phase)
    /// sequentially over the whole interior.
    pub fn step(&mut self, model: &AcousticModel2, cpml: &[CpmlAxis; 2]) {
        let e = self.p.extent();
        let nz = e.nz;
        {
            let qx = SyncSlice::new(self.qx.as_mut_slice());
            let qz = SyncSlice::new(self.qz.as_mut_slice());
            let psi_px = SyncSlice::new(self.psi_px.as_mut_slice());
            let psi_pz = SyncSlice::new(self.psi_pz.as_mut_slice());
            velocity_slab(
                qx,
                qz,
                psi_px,
                psi_pz,
                self.p.as_slice(),
                model.rho.as_slice(),
                e,
                model.geom.dx,
                model.geom.dz,
                model.geom.dt,
                cpml,
                0,
                nz,
            );
        }
        {
            let p = SyncSlice::new(self.p.as_mut_slice());
            let psi_qx = SyncSlice::new(self.psi_qx.as_mut_slice());
            let psi_qz = SyncSlice::new(self.psi_qz.as_mut_slice());
            pressure_slab(
                p,
                psi_qx,
                psi_qz,
                self.qx.as_slice(),
                self.qz.as_slice(),
                model.vp.as_slice(),
                model.rho.as_slice(),
                e,
                model.geom.dx,
                model.geom.dz,
                model.geom.dt,
                cpml,
                0,
                nz,
            );
        }
    }

    /// Add a pressure source sample: `p += Δt·ρ·vp²·f` (the `ρ·vp²·∂t⁻¹f`
    /// injection of Equation 2, integrated one step).
    pub fn inject(&mut self, model: &AcousticModel2, ix: usize, iz: usize, f: f32) {
        let dt = model.geom.dt;
        let vp = model.vp.get(ix, iz);
        let rho = model.rho.get(ix, iz);
        let v = self.p.get(ix, iz) + dt * rho * vp * vp * f;
        self.p.set(ix, iz, v);
    }
}

/// 8th-order staggered forward difference along stride `s`.
#[inline(always)]
fn df(u: &[f32], c: usize, s: usize) -> f32 {
    let mut d = 0.0f32;
    for (k, &ck) in f32c::S1.iter().enumerate() {
        d += ck * (u[c + (k + 1) * s] - u[c - k * s]);
    }
    d
}

/// 8th-order staggered backward difference along stride `s`.
#[inline(always)]
fn db(u: &[f32], c: usize, s: usize) -> f32 {
    let mut d = 0.0f32;
    for (k, &ck) in f32c::S1.iter().enumerate() {
        d += ck * (u[c + k * s] - u[c - (k + 1) * s]);
    }
    d
}

/// Velocity kernel over interior rows `[z0, z1)`:
/// `q_i += Δt/ρ · CPML(∂i p)`.
#[allow(clippy::too_many_arguments)]
pub fn velocity_slab(
    qx: SyncSlice,
    qz: SyncSlice,
    psi_px: SyncSlice,
    psi_pz: SyncSlice,
    p: &[f32],
    rho: &[f32],
    e: Extent2,
    dx: f32,
    dz: f32,
    dt: f32,
    cpml: &[CpmlAxis; 2],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let rdx = 1.0 / dx;
    let rdz = 1.0 / dz;
    let [cx, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let r = dt / rho[c];
            // ∂x p at (i+1/2): ψ recursion inline so a single pass updates
            // both the memory field and the velocity.
            let (axc, bxc, ikx) = cx.coeffs(ix);
            let dpx = df(p, c, 1) * rdx;
            let px = bxc * psi_px.get(c) + axc * dpx;
            unsafe { psi_px.set(c, px) };
            unsafe { qx.add(c, r * (dpx * ikx + px)) };

            let dpz = df(p, c, fnx) * rdz;
            let pz = bz * psi_pz.get(c) + az * dpz;
            unsafe { psi_pz.set(c, pz) };
            unsafe { qz.add(c, r * (dpz * ikz + pz)) };
        }
    }
}

/// Pressure kernel over interior rows `[z0, z1)`:
/// `p += Δt·ρ·vp²·(CPML(∂x qx) + CPML(∂z qz))`.
#[allow(clippy::too_many_arguments)]
pub fn pressure_slab(
    p: SyncSlice,
    psi_qx: SyncSlice,
    psi_qz: SyncSlice,
    qx: &[f32],
    qz: &[f32],
    vp: &[f32],
    rho: &[f32],
    e: Extent2,
    dx: f32,
    dz: f32,
    dt: f32,
    cpml: &[CpmlAxis; 2],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let rdx = 1.0 / dx;
    let rdz = 1.0 / dz;
    let [cx, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let (axc, bxc, ikx) = cx.coeffs(ix);
            let dqx = db(qx, c, 1) * rdx;
            let sx = bxc * psi_qx.get(c) + axc * dqx;
            unsafe { psi_qx.set(c, sx) };

            let dqz = db(qz, c, fnx) * rdz;
            let sz = bz * psi_qz.get(c) + az * dqz;
            unsafe { psi_qz.set(c, sz) };

            let v = vp[c];
            let k = rho[c] * v * v;
            unsafe { p.add(c, dt * k * ((dqx * ikx + sx) + (dqz * ikz + sz))) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic2_layered, standard_layers};
    use seismic_model::{extent2, AcousticModel2, Geometry};
    use seismic_pml::CpmlAxis;
    use seismic_source::ricker;

    fn setup(n: usize) -> (AcousticModel2, [CpmlAxis; 2]) {
        let e = extent2(n, n);
        let h = 10.0;
        let vmax = 3200.0;
        let dt = stable_dt(8, 2, vmax, h, 0.6);
        let m = acoustic2_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
        let cx = CpmlAxis::new(n, e.halo, 12, dt, vmax, h, 1e-4);
        let cz = CpmlAxis::new(n, e.halo, 12, dt, vmax, h, 1e-4);
        (m, [cx, cz])
    }

    #[test]
    fn stable_and_propagates() {
        let n = 96;
        let (m, cpml) = setup(n);
        let mut s = Ac2State::new(m.vp.extent());
        for t in 0..200 {
            s.step(&m, &cpml);
            s.inject(&m, n / 2, 10, ricker(20.0, t as f32 * m.geom.dt - 0.06));
        }
        let mx = s.p.max_abs();
        assert!(mx.is_finite() && mx > 0.0);
        // Reflection from the first interface must have reached the surface
        // region; the direct wave must exist at depth.
        assert!(s.p.get(n / 2, n / 2).abs() + s.p.get(n / 2 + 10, 12).abs() > 0.0);
    }

    /// In a homogeneous fluid with a centered source, qx must be
    /// antisymmetric about the source column and qz about the source row.
    #[test]
    fn velocity_fields_have_dipole_symmetry() {
        let n = 64;
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 1500.0, h, 0.6);
        let m = AcousticModel2 {
            vp: Field2::filled(e, 1500.0),
            rho: Field2::filled(e, 1000.0),
            geom: Geometry::uniform(h, dt),
        };
        let cx = CpmlAxis::new(n, e.halo, 10, dt, 1500.0, h, 1e-4);
        let cz = CpmlAxis::new(n, e.halo, 10, dt, 1500.0, h, 1e-4);
        let cpml = [cx, cz];
        let mut s = Ac2State::new(e);
        let c = n / 2;
        for t in 0..80 {
            s.step(&m, &cpml);
            s.inject(&m, c, c, ricker(25.0, t as f32 * dt - 0.048));
        }
        // qx staggered +x/2: antisymmetry maps ix ↔ (2c−1−ix).
        let tol = 2e-3 * s.qx.max_abs().max(1e-12);
        for d in 1..10 {
            let a = s.qx.get(c + d, c);
            let b = s.qx.get(c - 1 - d, c);
            assert!((a + b).abs() < tol, "d={d}: {a} vs {b}");
        }
        for d in 1..10 {
            let a = s.qz.get(c, c + d);
            let b = s.qz.get(c, c - 1 - d);
            assert!((a + b).abs() < tol, "d={d}: {a} vs {b}");
        }
    }

    #[test]
    fn cpml_absorbs_outgoing_waves() {
        let n = 80;
        let (m, cpml) = setup(n);
        let mut s = Ac2State::new(m.vp.extent());
        let mut peak = 0.0f64;
        for t in 0..700 {
            s.step(&m, &cpml);
            if t < 60 {
                s.inject(&m, n / 2, n / 2, ricker(20.0, t as f32 * m.geom.dt - 0.06));
            }
            peak = peak.max(s.p.energy());
        }
        let fin = s.p.energy();
        assert!(fin < peak * 0.08, "final {fin} vs peak {peak}");
    }

    #[test]
    fn slab_split_matches_sequential() {
        let n = 48;
        let (m, cpml) = setup(n);
        let e = m.vp.extent();
        let mut seq = Ac2State::new(e);
        let mut par = Ac2State::new(e);
        for t in 0..30 {
            seq.step(&m, &cpml);
            // Parallel-equivalent: same kernels over three slabs.
            {
                let qx = SyncSlice::new(par.qx.as_mut_slice());
                let qz = SyncSlice::new(par.qz.as_mut_slice());
                let px = SyncSlice::new(par.psi_px.as_mut_slice());
                let pz = SyncSlice::new(par.psi_pz.as_mut_slice());
                for (z0, z1) in [(0usize, 15usize), (15, 31), (31, 48)] {
                    velocity_slab(
                        qx,
                        qz,
                        px,
                        pz,
                        par.p.as_slice(),
                        m.rho.as_slice(),
                        e,
                        m.geom.dx,
                        m.geom.dz,
                        m.geom.dt,
                        &cpml,
                        z0,
                        z1,
                    );
                }
            }
            {
                let p = SyncSlice::new(par.p.as_mut_slice());
                let sx = SyncSlice::new(par.psi_qx.as_mut_slice());
                let sz = SyncSlice::new(par.psi_qz.as_mut_slice());
                for (z0, z1) in [(0usize, 7usize), (7, 30), (30, 48)] {
                    pressure_slab(
                        p,
                        sx,
                        sz,
                        par.qx.as_slice(),
                        par.qz.as_slice(),
                        m.vp.as_slice(),
                        m.rho.as_slice(),
                        e,
                        m.geom.dx,
                        m.geom.dz,
                        m.geom.dt,
                        &cpml,
                        z0,
                        z1,
                    );
                }
            }
            let amp = ricker(20.0, t as f32 * m.geom.dt - 0.06);
            seq.inject(&m, 24, 10, amp);
            par.inject(&m, 24, 10, amp);
        }
        assert_eq!(seq.p, par.p);
        assert_eq!(seq.qx, par.qx);
        assert_eq!(seq.psi_qz, par.psi_qz);
    }

    use seismic_grid::Field2;
}
