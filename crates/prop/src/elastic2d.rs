//! Elastic isotropic propagator, 2D P-SV (Equation 3, reduced to the plane).
//!
//! Virieux-style velocity–stress staggered grid:
//!
//! * `vx` at (i+½, j), `vz` at (i, j+½),
//! * normal stresses `σxx`, `σzz` at (i, j), shear `σxz` at (i+½, j+½).
//!
//! Each step runs four kernels — `vx`, `vz`, diagonal stresses, shear
//! stress — which are mutually independent inside each (velocity/stress)
//! phase. That independence is exactly what the paper exploits with the
//! `async` clause on the elastic model (Figure 11).

use seismic_grid::fd::f32c;
use seismic_grid::{Extent2, Field2, SyncSlice};
use seismic_model::ElasticModel2;
use seismic_pml::CpmlAxis;

/// Elastic 2D state: 2 velocities + 3 stresses + 8 C-PML memory fields.
#[derive(Debug, Clone)]
pub struct El2State {
    /// Horizontal particle velocity (staggered +x/2).
    pub vx: Field2,
    /// Vertical particle velocity (staggered +z/2).
    pub vz: Field2,
    /// Normal stress σxx.
    pub sxx: Field2,
    /// Normal stress σzz.
    pub szz: Field2,
    /// Shear stress σxz (staggered +x/2, +z/2).
    pub sxz: Field2,
    /// ψ for ∂x σxx (vx kernel).
    pub psi_sxx_x: Field2,
    /// ψ for ∂z σxz (vx kernel).
    pub psi_sxz_z: Field2,
    /// ψ for ∂x σxz (vz kernel).
    pub psi_sxz_x: Field2,
    /// ψ for ∂z σzz (vz kernel).
    pub psi_szz_z: Field2,
    /// ψ for ∂x vx (diagonal stress kernel).
    pub psi_vx_x: Field2,
    /// ψ for ∂z vz (diagonal stress kernel).
    pub psi_vz_z: Field2,
    /// ψ for ∂z vx (shear kernel).
    pub psi_vx_z: Field2,
    /// ψ for ∂x vz (shear kernel).
    pub psi_vz_x: Field2,
}

impl El2State {
    /// Quiescent state.
    pub fn new(extent: Extent2) -> Self {
        let z = || Field2::zeros(extent);
        Self {
            vx: z(),
            vz: z(),
            sxx: z(),
            szz: z(),
            sxz: z(),
            psi_sxx_x: z(),
            psi_sxz_z: z(),
            psi_sxz_x: z(),
            psi_szz_z: z(),
            psi_vx_x: z(),
            psi_vz_z: z(),
            psi_vx_z: z(),
            psi_vz_x: z(),
        }
    }

    /// Overwrite every field from `other` without allocating (extents must
    /// match) — the arena-reuse path for checkpoints and retries.
    pub fn copy_from(&mut self, other: &Self) {
        self.vx.copy_from(&other.vx);
        self.vz.copy_from(&other.vz);
        self.sxx.copy_from(&other.sxx);
        self.szz.copy_from(&other.szz);
        self.sxz.copy_from(&other.sxz);
        self.psi_sxx_x.copy_from(&other.psi_sxx_x);
        self.psi_sxz_z.copy_from(&other.psi_sxz_z);
        self.psi_sxz_x.copy_from(&other.psi_sxz_x);
        self.psi_szz_z.copy_from(&other.psi_szz_z);
        self.psi_vx_x.copy_from(&other.psi_vx_x);
        self.psi_vz_z.copy_from(&other.psi_vz_z);
        self.psi_vx_z.copy_from(&other.psi_vx_z);
        self.psi_vz_x.copy_from(&other.psi_vz_x);
    }

    /// Advance one time step: velocity kernels then stress kernels.
    pub fn step(&mut self, model: &ElasticModel2, cpml: &[CpmlAxis; 2]) {
        let e = self.vx.extent();
        let nz = e.nz;
        let g = &model.geom;
        {
            let vx = SyncSlice::new(self.vx.as_mut_slice());
            let p1 = SyncSlice::new(self.psi_sxx_x.as_mut_slice());
            let p2 = SyncSlice::new(self.psi_sxz_z.as_mut_slice());
            vx_slab(
                vx,
                p1,
                p2,
                self.sxx.as_slice(),
                self.sxz.as_slice(),
                model.rho.as_slice(),
                e,
                g.dx,
                g.dz,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
        {
            let vz = SyncSlice::new(self.vz.as_mut_slice());
            let p1 = SyncSlice::new(self.psi_sxz_x.as_mut_slice());
            let p2 = SyncSlice::new(self.psi_szz_z.as_mut_slice());
            vz_slab(
                vz,
                p1,
                p2,
                self.sxz.as_slice(),
                self.szz.as_slice(),
                model.rho.as_slice(),
                e,
                g.dx,
                g.dz,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
        {
            let sxx = SyncSlice::new(self.sxx.as_mut_slice());
            let szz = SyncSlice::new(self.szz.as_mut_slice());
            let p1 = SyncSlice::new(self.psi_vx_x.as_mut_slice());
            let p2 = SyncSlice::new(self.psi_vz_z.as_mut_slice());
            stress_diag_slab(
                sxx,
                szz,
                p1,
                p2,
                self.vx.as_slice(),
                self.vz.as_slice(),
                model.lam.as_slice(),
                model.mu.as_slice(),
                e,
                g.dx,
                g.dz,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
        {
            let sxz = SyncSlice::new(self.sxz.as_mut_slice());
            let p1 = SyncSlice::new(self.psi_vx_z.as_mut_slice());
            let p2 = SyncSlice::new(self.psi_vz_x.as_mut_slice());
            stress_shear_slab(
                sxz,
                p1,
                p2,
                self.vx.as_slice(),
                self.vz.as_slice(),
                model.mu.as_slice(),
                e,
                g.dx,
                g.dz,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
    }

    /// Explosive source: equal increments on both normal stresses.
    pub fn inject(&mut self, model: &ElasticModel2, ix: usize, iz: usize, f: f32) {
        let a = model.geom.dt * f;
        let v = self.sxx.get(ix, iz) + a;
        self.sxx.set(ix, iz, v);
        let v = self.szz.get(ix, iz) + a;
        self.szz.set(ix, iz, v);
    }
}

#[inline(always)]
fn df(u: &[f32], c: usize, s: usize) -> f32 {
    let mut d = 0.0f32;
    for (k, &ck) in f32c::S1.iter().enumerate() {
        d += ck * (u[c + (k + 1) * s] - u[c - k * s]);
    }
    d
}

#[inline(always)]
fn db(u: &[f32], c: usize, s: usize) -> f32 {
    let mut d = 0.0f32;
    for (k, &ck) in f32c::S1.iter().enumerate() {
        d += ck * (u[c + k * s] - u[c - (k + 1) * s]);
    }
    d
}

/// `vx += Δt/ρ·(CPML(∂x σxx) + CPML(∂z σxz))`.
#[allow(clippy::too_many_arguments)]
pub fn vx_slab(
    vx: SyncSlice,
    psi_sxx_x: SyncSlice,
    psi_sxz_z: SyncSlice,
    sxx: &[f32],
    sxz: &[f32],
    rho: &[f32],
    e: Extent2,
    dx: f32,
    dz: f32,
    dt: f32,
    cpml: &[CpmlAxis; 2],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let (rdx, rdz) = (1.0 / dx, 1.0 / dz);
    let [cx, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let (ax, bx, ikx) = cx.coeffs(ix);
            let d1 = df(sxx, c, 1) * rdx;
            let p1 = bx * psi_sxx_x.get(c) + ax * d1;
            unsafe { psi_sxx_x.set(c, p1) };
            let d2 = db(sxz, c, fnx) * rdz;
            let p2 = bz * psi_sxz_z.get(c) + az * d2;
            unsafe { psi_sxz_z.set(c, p2) };
            unsafe { vx.add(c, dt / rho[c] * ((d1 * ikx + p1) + (d2 * ikz + p2))) };
        }
    }
}

/// `vz += Δt/ρ·(CPML(∂x σxz) + CPML(∂z σzz))`.
#[allow(clippy::too_many_arguments)]
pub fn vz_slab(
    vz: SyncSlice,
    psi_sxz_x: SyncSlice,
    psi_szz_z: SyncSlice,
    sxz: &[f32],
    szz: &[f32],
    rho: &[f32],
    e: Extent2,
    dx: f32,
    dz: f32,
    dt: f32,
    cpml: &[CpmlAxis; 2],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let (rdx, rdz) = (1.0 / dx, 1.0 / dz);
    let [cx, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let (ax, bx, ikx) = cx.coeffs(ix);
            let d1 = db(sxz, c, 1) * rdx;
            let p1 = bx * psi_sxz_x.get(c) + ax * d1;
            unsafe { psi_sxz_x.set(c, p1) };
            let d2 = df(szz, c, fnx) * rdz;
            let p2 = bz * psi_szz_z.get(c) + az * d2;
            unsafe { psi_szz_z.set(c, p2) };
            unsafe { vz.add(c, dt / rho[c] * ((d1 * ikx + p1) + (d2 * ikz + p2))) };
        }
    }
}

/// Diagonal stresses:
/// `σxx += Δt·((λ+2μ)·∂x vx + λ·∂z vz)`, `σzz += Δt·(λ·∂x vx + (λ+2μ)·∂z vz)`.
#[allow(clippy::too_many_arguments)]
pub fn stress_diag_slab(
    sxx: SyncSlice,
    szz: SyncSlice,
    psi_vx_x: SyncSlice,
    psi_vz_z: SyncSlice,
    vx: &[f32],
    vz: &[f32],
    lam: &[f32],
    mu: &[f32],
    e: Extent2,
    dx: f32,
    dz: f32,
    dt: f32,
    cpml: &[CpmlAxis; 2],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let (rdx, rdz) = (1.0 / dx, 1.0 / dz);
    let [cx, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let (ax, bx, ikx) = cx.coeffs(ix);
            let d1 = db(vx, c, 1) * rdx;
            let p1 = bx * psi_vx_x.get(c) + ax * d1;
            unsafe { psi_vx_x.set(c, p1) };
            let exx = d1 * ikx + p1;

            let d2 = db(vz, c, fnx) * rdz;
            let p2 = bz * psi_vz_z.get(c) + az * d2;
            unsafe { psi_vz_z.set(c, p2) };
            let ezz = d2 * ikz + p2;

            let l = lam[c];
            let l2m = l + 2.0 * mu[c];
            unsafe { sxx.add(c, dt * (l2m * exx + l * ezz)) };
            unsafe { szz.add(c, dt * (l * exx + l2m * ezz)) };
        }
    }
}

/// Shear stress: `σxz += Δt·μ·(∂z vx + ∂x vz)`.
#[allow(clippy::too_many_arguments)]
pub fn stress_shear_slab(
    sxz: SyncSlice,
    psi_vx_z: SyncSlice,
    psi_vz_x: SyncSlice,
    vx: &[f32],
    vz: &[f32],
    mu: &[f32],
    e: Extent2,
    dx: f32,
    dz: f32,
    dt: f32,
    cpml: &[CpmlAxis; 2],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let (rdx, rdz) = (1.0 / dx, 1.0 / dz);
    let [cx, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let (ax, bx, ikx) = cx.coeffs(ix);
            let d1 = df(vx, c, fnx) * rdz;
            let p1 = bz * psi_vx_z.get(c) + az * d1;
            unsafe { psi_vx_z.set(c, p1) };
            let d2 = df(vz, c, 1) * rdx;
            let p2 = bx * psi_vz_x.get(c) + ax * d2;
            unsafe { psi_vz_x.set(c, p2) };
            unsafe { sxz.add(c, dt * mu[c] * ((d1 * ikz + p1) + (d2 * ikx + p2))) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{elastic2_layered, standard_layers, Layer};
    use seismic_model::{extent2, ElasticModel2, Geometry};
    use seismic_source::ricker;

    fn setup_uniform(n: usize, vp: f32, vs: f32) -> (ElasticModel2, [CpmlAxis; 2]) {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, vp, h, 0.5);
        let layers = [Layer {
            z_top: 0,
            vp,
            vs,
            rho: 2200.0,
        }];
        let m = elastic2_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 10, dt, vp, h, 1e-4);
        (m, [c.clone(), c])
    }

    #[test]
    fn stable_and_propagates() {
        let n = 80;
        let (m, cpml) = setup_uniform(n, 3000.0, 1600.0);
        let mut s = El2State::new(m.rho.extent());
        for t in 0..150 {
            s.step(&m, &cpml);
            s.inject(
                &m,
                n / 2,
                n / 2,
                ricker(20.0, t as f32 * m.geom.dt - 0.06) * 1e6,
            );
        }
        let mx = s.vx.max_abs().max(s.vz.max_abs());
        assert!(mx.is_finite() && mx > 0.0 && mx < 1e9, "max = {mx}");
    }

    /// An explosive source in a homogeneous solid is a pure P source:
    /// the P front along +x must arrive at vp·t.
    #[test]
    fn p_wave_speed_matches_vp() {
        let n = 180;
        let vp = 3000.0f32;
        let (m, cpml) = setup_uniform(n, vp, 1600.0);
        let mut s = El2State::new(m.rho.extent());
        let f = 22.0;
        let t0 = 1.2 / f;
        let steps = 150;
        for t in 0..steps {
            s.step(&m, &cpml);
            s.inject(&m, n / 2, n / 2, ricker(f, t as f32 * m.geom.dt - t0) * 1e6);
        }
        let elapsed = steps as f32 * m.geom.dt - t0;
        let expect_r = vp * elapsed / m.geom.dx;
        // Peak |sxx| along the +x ray.
        let mut best = (0usize, 0.0f32);
        for r in 5..n / 2 - 2 {
            let v = s.sxx.get(n / 2 + r, n / 2).abs();
            if v > best.1 {
                best = (r, v);
            }
        }
        assert!(
            (best.0 as f32 - expect_r).abs() <= 5.0,
            "P front at {} points, expected ~{expect_r}",
            best.0
        );
    }

    /// In a fluid (μ = 0) the shear stress must remain identically zero.
    #[test]
    fn fluid_generates_no_shear() {
        let n = 48;
        let (m, cpml) = setup_uniform(n, 1500.0, 0.0);
        let mut s = El2State::new(m.rho.extent());
        for t in 0..80 {
            s.step(&m, &cpml);
            s.inject(
                &m,
                n / 2,
                n / 2,
                ricker(25.0, t as f32 * m.geom.dt - 0.048) * 1e6,
            );
        }
        assert_eq!(s.sxz.max_abs(), 0.0);
        assert!(s.sxx.max_abs() > 0.0);
    }

    #[test]
    fn energy_decays_with_cpml() {
        let n = 72;
        let (m, cpml) = setup_uniform(n, 2500.0, 1200.0);
        let mut s = El2State::new(m.rho.extent());
        let mut peak = 0.0f64;
        for t in 0..900 {
            s.step(&m, &cpml);
            if t < 60 {
                s.inject(
                    &m,
                    n / 2,
                    n / 2,
                    ricker(20.0, t as f32 * m.geom.dt - 0.06) * 1e6,
                );
            }
            let e = s.vx.energy() + s.vz.energy();
            peak = peak.max(e);
        }
        let fin = s.vx.energy() + s.vz.energy();
        assert!(fin < peak * 0.1, "final {fin} vs peak {peak}");
    }

    /// Layered model: run a few steps to make sure heterogeneous λ/μ paths
    /// (including the fluid→solid interface) stay finite.
    #[test]
    fn layered_model_stable() {
        let n = 60;
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3200.0, h, 0.5);
        let m = elastic2_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 10, dt, 3200.0, h, 1e-4);
        let cpml = [c.clone(), c];
        let mut s = El2State::new(e);
        for t in 0..120 {
            s.step(&m, &cpml);
            s.inject(&m, n / 2, 5, ricker(20.0, t as f32 * dt - 0.06) * 1e6);
        }
        assert!(s.vz.max_abs().is_finite());
        // Converted/transmitted energy exists below the first interface.
        let mut deep = 0.0f32;
        for ix in 0..n {
            deep = deep.max(s.vz.get(ix, n / 2).abs());
        }
        assert!(deep > 0.0);
    }
}
