//! Acoustic variable-density propagator, 3D.
//!
//! 3D extension of [`crate::acoustic2d`] with the loop-fission variants of
//! the paper's Figure 12: "the most intensive 3D acoustic kernel ... consists
//! of computations that handle wave-fields derivations over three dimensions
//! for all grid points. We simply break this kernel into three kernels where
//! each is responsible for one dimension." The fused form needs many live
//! address/offset temporaries (register pressure, spilled on Fermi); the
//! fissioned form trades extra pressure-field traffic for low pressure.
//!
//! Both variants compute the same update; the accumulation order differs
//! (`p += Δt·K·(dx+dy+dz)` vs three separate `+=`), so equality tests use a
//! tight relative tolerance rather than bitwise comparison.

use crate::FissionVariant;
use seismic_grid::fd::f32c;
use seismic_grid::{Extent3, Field3, SyncSlice};
use seismic_model::AcousticModel3;
use seismic_pml::CpmlAxis;

/// Acoustic 3D state: pressure, three velocity components, six ψ fields.
#[derive(Debug, Clone)]
pub struct Ac3State {
    /// Pressure.
    pub p: Field3,
    /// Velocity flow along x (staggered +x/2).
    pub qx: Field3,
    /// Velocity flow along y (staggered +y/2).
    pub qy: Field3,
    /// Velocity flow along z (staggered +z/2).
    pub qz: Field3,
    /// ψ for ∂x p.
    pub psi_px: Field3,
    /// ψ for ∂y p.
    pub psi_py: Field3,
    /// ψ for ∂z p.
    pub psi_pz: Field3,
    /// ψ for ∂x qx.
    pub psi_qx: Field3,
    /// ψ for ∂y qy.
    pub psi_qy: Field3,
    /// ψ for ∂z qz.
    pub psi_qz: Field3,
}

impl Ac3State {
    /// Quiescent state.
    pub fn new(extent: Extent3) -> Self {
        let z = || Field3::zeros(extent);
        Self {
            p: z(),
            qx: z(),
            qy: z(),
            qz: z(),
            psi_px: z(),
            psi_py: z(),
            psi_pz: z(),
            psi_qx: z(),
            psi_qy: z(),
            psi_qz: z(),
        }
    }

    /// Overwrite every field from `other` without allocating (extents must
    /// match) — the arena-reuse path for checkpoints and retries.
    pub fn copy_from(&mut self, other: &Self) {
        self.p.copy_from(&other.p);
        self.qx.copy_from(&other.qx);
        self.qy.copy_from(&other.qy);
        self.qz.copy_from(&other.qz);
        self.psi_px.copy_from(&other.psi_px);
        self.psi_py.copy_from(&other.psi_py);
        self.psi_pz.copy_from(&other.psi_pz);
        self.psi_qx.copy_from(&other.psi_qx);
        self.psi_qy.copy_from(&other.psi_qy);
        self.psi_qz.copy_from(&other.psi_qz);
    }

    /// Advance one time step sequentially (velocity phase, then the fused or
    /// fissioned pressure phase).
    pub fn step(&mut self, model: &AcousticModel3, cpml: &[CpmlAxis; 3], variant: FissionVariant) {
        let e = self.p.extent();
        let nz = e.nz;
        {
            let qx = SyncSlice::new(self.qx.as_mut_slice());
            let qy = SyncSlice::new(self.qy.as_mut_slice());
            let qz = SyncSlice::new(self.qz.as_mut_slice());
            let px = SyncSlice::new(self.psi_px.as_mut_slice());
            let py = SyncSlice::new(self.psi_py.as_mut_slice());
            let pz = SyncSlice::new(self.psi_pz.as_mut_slice());
            velocity_slab(
                qx,
                qy,
                qz,
                px,
                py,
                pz,
                self.p.as_slice(),
                model.rho.as_slice(),
                e,
                [model.geom.dx, model.geom.dy, model.geom.dz],
                model.geom.dt,
                cpml,
                0,
                nz,
            );
        }
        match variant {
            FissionVariant::Fused => {
                let p = SyncSlice::new(self.p.as_mut_slice());
                let sx = SyncSlice::new(self.psi_qx.as_mut_slice());
                let sy = SyncSlice::new(self.psi_qy.as_mut_slice());
                let sz = SyncSlice::new(self.psi_qz.as_mut_slice());
                pressure_fused_slab(
                    p,
                    sx,
                    sy,
                    sz,
                    self.qx.as_slice(),
                    self.qy.as_slice(),
                    self.qz.as_slice(),
                    model.vp.as_slice(),
                    model.rho.as_slice(),
                    e,
                    [model.geom.dx, model.geom.dy, model.geom.dz],
                    model.geom.dt,
                    cpml,
                    0,
                    nz,
                );
            }
            FissionVariant::Fissioned => {
                let h = [model.geom.dx, model.geom.dy, model.geom.dz];
                for axis in 0..3 {
                    let p = SyncSlice::new(self.p.as_mut_slice());
                    let (psi, q) = match axis {
                        0 => (
                            SyncSlice::new(self.psi_qx.as_mut_slice()),
                            self.qx.as_slice(),
                        ),
                        1 => (
                            SyncSlice::new(self.psi_qy.as_mut_slice()),
                            self.qy.as_slice(),
                        ),
                        _ => (
                            SyncSlice::new(self.psi_qz.as_mut_slice()),
                            self.qz.as_slice(),
                        ),
                    };
                    pressure_axis_slab(
                        p,
                        psi,
                        q,
                        model.vp.as_slice(),
                        model.rho.as_slice(),
                        e,
                        axis,
                        h[axis],
                        model.geom.dt,
                        &cpml[axis],
                        0,
                        nz,
                    );
                }
            }
        }
    }

    /// Add a pressure source sample.
    pub fn inject(&mut self, model: &AcousticModel3, ix: usize, iy: usize, iz: usize, f: f32) {
        let dt = model.geom.dt;
        let vp = model.vp.get(ix, iy, iz);
        let rho = model.rho.get(ix, iy, iz);
        let v = self.p.get(ix, iy, iz) + dt * rho * vp * vp * f;
        self.p.set(ix, iy, iz, v);
    }
}

#[inline(always)]
fn df(u: &[f32], c: usize, s: usize) -> f32 {
    let mut d = 0.0f32;
    for (k, &ck) in f32c::S1.iter().enumerate() {
        d += ck * (u[c + (k + 1) * s] - u[c - k * s]);
    }
    d
}

#[inline(always)]
fn db(u: &[f32], c: usize, s: usize) -> f32 {
    let mut d = 0.0f32;
    for (k, &ck) in f32c::S1.iter().enumerate() {
        d += ck * (u[c + k * s] - u[c - (k + 1) * s]);
    }
    d
}

/// Velocity kernel: `q_i += Δt/ρ · CPML(∂i p)` for i ∈ {x, y, z}.
#[allow(clippy::too_many_arguments)]
pub fn velocity_slab(
    qx: SyncSlice,
    qy: SyncSlice,
    qz: SyncSlice,
    psi_px: SyncSlice,
    psi_py: SyncSlice,
    psi_pz: SyncSlice,
    p: &[f32],
    rho: &[f32],
    e: Extent3,
    h: [f32; 3],
    dt: f32,
    cpml: &[CpmlAxis; 3],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let fnxy = fnx * e.full_ny();
    let rh = [1.0 / h[0], 1.0 / h[1], 1.0 / h[2]];
    let [cx, cy, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for iy in 0..e.ny {
            let (ay, by, iky) = cy.coeffs(iy);
            for ix in 0..e.nx {
                let c = e.idx(ix, iy, iz);
                let r = dt / rho[c];
                let (ax, bx, ikx) = cx.coeffs(ix);

                let dpx = df(p, c, 1) * rh[0];
                let px = bx * psi_px.get(c) + ax * dpx;
                unsafe { psi_px.set(c, px) };
                unsafe { qx.add(c, r * (dpx * ikx + px)) };

                let dpy = df(p, c, fnx) * rh[1];
                let py = by * psi_py.get(c) + ay * dpy;
                unsafe { psi_py.set(c, py) };
                unsafe { qy.add(c, r * (dpy * iky + py)) };

                let dpz = df(p, c, fnxy) * rh[2];
                let pz = bz * psi_pz.get(c) + az * dpz;
                unsafe { psi_pz.set(c, pz) };
                unsafe { qz.add(c, r * (dpz * ikz + pz)) };
            }
        }
    }
}

/// Fused pressure kernel: all three derivative contributions in one pass.
#[allow(clippy::too_many_arguments)]
pub fn pressure_fused_slab(
    p: SyncSlice,
    psi_qx: SyncSlice,
    psi_qy: SyncSlice,
    psi_qz: SyncSlice,
    qx: &[f32],
    qy: &[f32],
    qz: &[f32],
    vp: &[f32],
    rho: &[f32],
    e: Extent3,
    h: [f32; 3],
    dt: f32,
    cpml: &[CpmlAxis; 3],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let fnxy = fnx * e.full_ny();
    let rh = [1.0 / h[0], 1.0 / h[1], 1.0 / h[2]];
    let [cx, cy, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for iy in 0..e.ny {
            let (ay, by, iky) = cy.coeffs(iy);
            for ix in 0..e.nx {
                let c = e.idx(ix, iy, iz);
                let (ax, bx, ikx) = cx.coeffs(ix);

                let dqx = db(qx, c, 1) * rh[0];
                let sx = bx * psi_qx.get(c) + ax * dqx;
                unsafe { psi_qx.set(c, sx) };

                let dqy = db(qy, c, fnx) * rh[1];
                let sy = by * psi_qy.get(c) + ay * dqy;
                unsafe { psi_qy.set(c, sy) };

                let dqz = db(qz, c, fnxy) * rh[2];
                let sz = bz * psi_qz.get(c) + az * dqz;
                unsafe { psi_qz.set(c, sz) };

                let v = vp[c];
                let k = rho[c] * v * v;
                let div = (dqx * ikx + sx) + (dqy * iky + sy) + (dqz * ikz + sz);
                unsafe { p.add(c, dt * k * div) };
            }
        }
    }
}

/// One fissioned pressure kernel: the contribution of a single axis
/// (`axis` ∈ {0 = x, 1 = y, 2 = z}).
#[allow(clippy::too_many_arguments)]
pub fn pressure_axis_slab(
    p: SyncSlice,
    psi: SyncSlice,
    q: &[f32],
    vp: &[f32],
    rho: &[f32],
    e: Extent3,
    axis: usize,
    h: f32,
    dt: f32,
    cpml: &CpmlAxis,
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let fnxy = fnx * e.full_ny();
    let stride = match axis {
        0 => 1,
        1 => fnx,
        2 => fnxy,
        _ => panic!("axis must be 0..3"),
    };
    let rh = 1.0 / h;
    for iz in z0..z1 {
        for iy in 0..e.ny {
            for ix in 0..e.nx {
                let c = e.idx(ix, iy, iz);
                let i_axis = [ix, iy, iz][axis];
                let (a, b, ik) = cpml.coeffs(i_axis);
                let dq = db(q, c, stride) * rh;
                let s = b * psi.get(c) + a * dq;
                unsafe { psi.set(c, s) };
                let v = vp[c];
                let k = rho[c] * v * v;
                unsafe { p.add(c, dt * k * (dq * ik + s)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic3_layered, standard_layers};
    use seismic_model::{extent3, AcousticModel3, Geometry};
    use seismic_source::ricker;

    fn setup(n: usize) -> (AcousticModel3, [CpmlAxis; 3]) {
        let e = extent3(n, n, n);
        let h = 10.0;
        let vmax = 3200.0;
        let dt = stable_dt(8, 3, vmax, h, 0.6);
        let m = acoustic3_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 8, dt, vmax, h, 1e-4);
        (m, [c.clone(), c.clone(), c])
    }

    fn run(variant: FissionVariant, n: usize, steps: usize) -> Ac3State {
        let (m, cpml) = setup(n);
        let mut s = Ac3State::new(m.vp.extent());
        for t in 0..steps {
            s.step(&m, &cpml, variant);
            s.inject(
                &m,
                n / 2,
                n / 2,
                6,
                ricker(25.0, t as f32 * m.geom.dt - 0.048),
            );
        }
        s
    }

    /// Figure 12's premise: fission changes performance, not results.
    #[test]
    fn fused_and_fissioned_agree() {
        let a = run(FissionVariant::Fused, 32, 40);
        let b = run(FissionVariant::Fissioned, 32, 40);
        let scale = a.p.max_abs().max(1e-12);
        let e = a.p.extent();
        for iz in 0..e.nz {
            for iy in 0..e.ny {
                for ix in 0..e.nx {
                    let d = (a.p.get(ix, iy, iz) - b.p.get(ix, iy, iz)).abs();
                    assert!(
                        d <= 1e-3 * scale,
                        "({ix},{iy},{iz}): {} vs {}",
                        a.p.get(ix, iy, iz),
                        b.p.get(ix, iy, iz)
                    );
                }
            }
        }
        // Velocity fields agree to the same tolerance (they read the
        // slightly-different pressure of the other variant's prior step).
        let qscale = a.qx.max_abs().max(1e-12);
        for (x, y) in a.qx.as_slice().iter().zip(b.qx.as_slice()) {
            assert!((x - y).abs() <= 1e-3 * qscale, "{x} vs {y}");
        }
    }

    #[test]
    fn stable_and_finite() {
        let s = run(FissionVariant::Fused, 28, 60);
        let m = s.p.max_abs();
        assert!(m.is_finite() && m > 0.0 && m < 1e8);
    }

    #[test]
    fn energy_decays_with_cpml() {
        let (m, cpml) = setup(28);
        let mut s = Ac3State::new(m.vp.extent());
        let mut peak = 0.0f64;
        for t in 0..300 {
            s.step(&m, &cpml, FissionVariant::Fissioned);
            if t < 40 {
                s.inject(&m, 14, 14, 14, ricker(25.0, t as f32 * m.geom.dt - 0.048));
            }
            peak = peak.max(s.p.energy());
        }
        assert!(s.p.energy() < peak * 0.15);
    }

    #[test]
    #[should_panic(expected = "axis must be 0..3")]
    fn pressure_axis_rejects_bad_axis() {
        let (m, cpml) = setup(16);
        let e = m.vp.extent();
        let mut s = Ac3State::new(e);
        let p = SyncSlice::new(s.p.as_mut_slice());
        let psi = SyncSlice::new(s.psi_qx.as_mut_slice());
        pressure_axis_slab(
            p,
            psi,
            s.qx.as_slice(),
            m.vp.as_slice(),
            m.rho.as_slice(),
            e,
            7,
            10.0,
            1e-3,
            &cpml[0],
            0,
            e.nz,
        );
    }
}
