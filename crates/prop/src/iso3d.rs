//! Isotropic constant-density propagator, 3D (25-point Laplacian).
//!
//! Same scheme as [`crate::iso2d`] extended to three dimensions. The kernel
//! variants mirror Figures 6/7, which the paper ran on the 3D isotropic
//! modeling case specifically.

use crate::IsoPmlVariant;
use exec_host::tiles_for;
use seismic_grid::fd::f32c;
use seismic_grid::{Extent3, Field3, SyncSlice, STENCIL_HALF};
use seismic_model::IsoModel3;
use seismic_pml::DampProfile;

/// Wavefield state: two time levels, swapped every step.
#[derive(Debug, Clone)]
pub struct Iso3State {
    /// Previous time level; overwritten with the next level each step.
    pub u_prev: Field3,
    /// Current time level.
    pub u_cur: Field3,
}

impl Iso3State {
    /// Quiescent initial state.
    pub fn new(extent: Extent3) -> Self {
        Self {
            u_prev: Field3::zeros(extent),
            u_cur: Field3::zeros(extent),
        }
    }

    /// Advance one time step over the full interior and swap time levels.
    pub fn step(&mut self, model: &IsoModel3, damp: &[DampProfile; 3], variant: IsoPmlVariant) {
        let e = self.u_cur.extent();
        let nz = e.nz;
        let u = SyncSlice::new(self.u_prev.as_mut_slice());
        step_slab(
            u,
            self.u_cur.as_slice(),
            model.vp.as_slice(),
            e,
            [model.geom.dx, model.geom.dy, model.geom.dz],
            model.geom.dt,
            damp,
            variant,
            0,
            nz,
        );
        self.u_prev.swap(&mut self.u_cur);
    }

    /// Inject a source sample scaled by `Δt²·vp²`.
    pub fn inject(&mut self, model: &IsoModel3, ix: usize, iy: usize, iz: usize, f: f32) {
        let dt = model.geom.dt;
        let vp = model.vp.get(ix, iy, iz);
        let v = self.u_cur.get(ix, iy, iz) + dt * dt * vp * vp * f;
        self.u_cur.set(ix, iy, iz, v);
    }

    /// Overwrite this state from `other` without allocating (both time
    /// levels; extents must match).
    pub fn copy_from(&mut self, other: &Self) {
        self.u_prev.copy_from(&other.u_prev);
        self.u_cur.copy_from(&other.u_cur);
    }
}

#[inline(always)]
fn lap3(u: &[f32], c: usize, fnx: usize, fnxy: usize, r2: [f32; 3]) -> f32 {
    let mut acc = f32c::C2[0] * u[c] * (r2[0] + r2[1] + r2[2]);
    for k in 1..=STENCIL_HALF {
        acc += f32c::C2[k] * ((u[c + k] + u[c - k]) * r2[0]);
        acc += f32c::C2[k] * ((u[c + k * fnx] + u[c - k * fnx]) * r2[1]);
        acc += f32c::C2[k] * ((u[c + k * fnxy] + u[c - k * fnxy]) * r2[2]);
    }
    acc
}

/// One time step over interior z rows `[z0, z1)`.
#[allow(clippy::too_many_arguments)]
pub fn step_slab(
    u: SyncSlice,
    u_cur: &[f32],
    vp: &[f32],
    e: Extent3,
    h: [f32; 3],
    dt: f32,
    damp: &[DampProfile; 3],
    variant: IsoPmlVariant,
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    assert_eq!(u.len(), e.len());
    let fnx = e.full_nx();
    let fnxy = fnx * e.full_ny();
    let dt2 = dt * dt;
    let r2 = [
        1.0 / (h[0] * h[0]),
        1.0 / (h[1] * h[1]),
        1.0 / (h[2] * h[2]),
    ];
    let [dpx, dpy, dpz] = damp;
    let w = dpx.width();
    // x-tile blocking over the y/z row sweeps (bitwise-free; single tile
    // on small grids — see the 2D kernel). Carries the certified SIMD
    // width for the 3D sweep when the verifier has published one.
    let tiling = tiles_for(
        "iso_kernel_3d",
        e.nx,
        3,
        (2 * STENCIL_HALF + 1) * (2 * STENCIL_HALF + 1),
    );

    // Shared per-point bodies; branch structure differs per variant.
    let plain = |c: usize| {
        let v = vp[c];
        let next = 2.0 * u_cur[c] - u.get(c) + dt2 * v * v * lap3(u_cur, c, fnx, fnxy, r2);
        unsafe { u.set(c, next) };
    };
    let damped = |c: usize, sigma: f32| {
        let v = vp[c];
        let next = (2.0 * u_cur[c] - (1.0 - sigma * dt) * u.get(c)
            + dt2 * v * v * lap3(u_cur, c, fnx, fnxy, r2))
            / (1.0 + sigma * dt);
        unsafe { u.set(c, next) };
    };

    match variant {
        IsoPmlVariant::OriginalIfs => {
            for (x0, x1) in tiling.ranges(0, e.nx) {
                for iz in z0..z1 {
                    for iy in 0..e.ny {
                        for ix in x0..x1 {
                            let c = e.idx(ix, iy, iz);
                            if dpx.in_layer(ix) || dpy.in_layer(iy) || dpz.in_layer(iz) {
                                damped(c, dpx.sigma(ix) + dpy.sigma(iy) + dpz.sigma(iz));
                            } else {
                                plain(c);
                            }
                        }
                    }
                }
            }
        }
        IsoPmlVariant::RestructuredIndices => {
            for iz in z0..z1 {
                let z_in = dpz.in_layer(iz);
                let sz = dpz.sigma(iz);
                for iy in 0..e.ny {
                    let y_in = dpy.in_layer(iy);
                    let sy = dpy.sigma(iy);
                    if z_in || y_in {
                        for ix in 0..e.nx {
                            let c = e.idx(ix, iy, iz);
                            damped(c, dpx.sigma(ix) + sy + sz);
                        }
                    } else {
                        for ix in 0..w {
                            let c = e.idx(ix, iy, iz);
                            damped(c, dpx.sigma(ix));
                        }
                        for ix in w..e.nx - w {
                            plain(e.idx(ix, iy, iz));
                        }
                        for ix in e.nx - w..e.nx {
                            let c = e.idx(ix, iy, iz);
                            damped(c, dpx.sigma(ix));
                        }
                    }
                }
            }
        }
        IsoPmlVariant::PmlEverywhere => {
            for (x0, x1) in tiling.ranges(0, e.nx) {
                for iz in z0..z1 {
                    let sz = dpz.sigma(iz);
                    for iy in 0..e.ny {
                        let sy = dpy.sigma(iy);
                        for ix in x0..x1 {
                            let c = e.idx(ix, iy, iz);
                            damped(c, dpx.sigma(ix) + sy + sz);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::iso3_constant;
    use seismic_model::{extent3, Geometry};
    use seismic_source::ricker;

    fn setup(n: usize, width: usize) -> (IsoModel3, [DampProfile; 3]) {
        let e = extent3(n, n, n);
        let h = 10.0;
        let vmax = 2000.0;
        let dt = stable_dt(8, 3, vmax, h, 0.8);
        let m = iso3_constant(e, vmax, Geometry::uniform(h, dt));
        let dp = DampProfile::new(n, e.halo, width, vmax, h, 1e-4);
        (m, [dp.clone(), dp.clone(), dp])
    }

    fn run(variant: IsoPmlVariant, n: usize, steps: usize) -> Iso3State {
        let (m, damp) = setup(n, 6);
        let mut s = Iso3State::new(m.vp.extent());
        for t in 0..steps {
            s.step(&m, &damp, variant);
            s.inject(
                &m,
                n / 2,
                n / 2,
                n / 2,
                ricker(30.0, t as f32 * m.geom.dt - 0.04),
            );
        }
        s
    }

    #[test]
    fn variants_are_bitwise_identical() {
        let a = run(IsoPmlVariant::OriginalIfs, 36, 30);
        let b = run(IsoPmlVariant::RestructuredIndices, 36, 30);
        let c = run(IsoPmlVariant::PmlEverywhere, 36, 30);
        assert_eq!(a.u_cur, b.u_cur);
        assert_eq!(a.u_cur, c.u_cur);
    }

    #[test]
    fn propagates_spherically_symmetric() {
        let s = run(IsoPmlVariant::OriginalIfs, 40, 40);
        let c = 20;
        let m = s.u_cur.max_abs();
        assert!(m.is_finite() && m > 0.0);
        // Constant model + center source ⇒ axis symmetry.
        let a = s.u_cur.get(c + 8, c, c);
        let b = s.u_cur.get(c, c + 8, c);
        let d = s.u_cur.get(c, c, c + 8);
        assert!((a - b).abs() < 1e-4 * m.max(1.0), "{a} vs {b}");
        assert!((a - d).abs() < 1e-4 * m.max(1.0), "{a} vs {d}");
    }

    #[test]
    fn energy_decays_after_source_stops() {
        let (m, damp) = setup(36, 8);
        let mut s = Iso3State::new(m.vp.extent());
        let mut peak = 0.0f64;
        for t in 0..300 {
            s.step(&m, &damp, IsoPmlVariant::PmlEverywhere);
            if t < 40 {
                s.inject(&m, 18, 18, 18, ricker(30.0, t as f32 * m.geom.dt - 0.04));
            }
            peak = peak.max(s.u_cur.energy());
        }
        let fin = s.u_cur.energy();
        assert!(fin < peak * 0.1, "final {fin} vs peak {peak}");
    }

    #[test]
    fn slab_split_matches_sequential() {
        let (m, damp) = setup(28, 6);
        let e = m.vp.extent();
        let mut seq = Iso3State::new(e);
        let mut par = Iso3State::new(e);
        for t in 0..20 {
            seq.step(&m, &damp, IsoPmlVariant::OriginalIfs);
            {
                let u = SyncSlice::new(par.u_prev.as_mut_slice());
                for (z0, z1) in [(0usize, 9usize), (9, 20), (20, 28)] {
                    step_slab(
                        u,
                        par.u_cur.as_slice(),
                        m.vp.as_slice(),
                        e,
                        [m.geom.dx, m.geom.dy, m.geom.dz],
                        m.geom.dt,
                        &damp,
                        IsoPmlVariant::OriginalIfs,
                        z0,
                        z1,
                    );
                }
                par.u_prev.swap(&mut par.u_cur);
            }
            let amp = ricker(30.0, t as f32 * m.geom.dt - 0.04);
            seq.inject(&m, 14, 14, 14, amp);
            par.inject(&m, 14, 14, 14, amp);
        }
        assert_eq!(seq.u_cur, par.u_cur);
    }
}
