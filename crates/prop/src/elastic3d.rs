//! Elastic isotropic propagator, 3D (Equation 3 of the paper).
//!
//! Velocity–stress staggered grid (Madariaga–Virieux layout): three particle
//! velocities and six stresses, 18 C-PML memory fields. Six kernels per
//! step — `vx`, `vy`, `vz`, diagonal stresses, (σxy, σxz), σyz — matching
//! the independent-kernel structure the paper overlaps with async streams
//! and the most memory-hungry case of the evaluation (the one that OOMs the
//! 6 GB Fermi card at production grid sizes).

use seismic_grid::fd::f32c;
use seismic_grid::{Extent3, Field3, SyncSlice};
use seismic_model::ElasticModel3;
use seismic_pml::CpmlAxis;

/// Elastic 3D state: 9 wavefields + 18 ψ fields.
#[derive(Debug, Clone)]
pub struct El3State {
    /// Particle velocities (staggered +x/2, +y/2, +z/2 respectively).
    pub vx: Field3,
    /// Particle velocity along y.
    pub vy: Field3,
    /// Particle velocity along z.
    pub vz: Field3,
    /// Normal stresses at integer points.
    pub sxx: Field3,
    /// Normal stress σyy.
    pub syy: Field3,
    /// Normal stress σzz.
    pub szz: Field3,
    /// Shear stress σxy.
    pub sxy: Field3,
    /// Shear stress σxz.
    pub sxz: Field3,
    /// Shear stress σyz.
    pub syz: Field3,
    /// ψ memory fields, indexed by [`PsiIdx`].
    pub psi: Vec<Field3>,
}

/// Indices into [`El3State::psi`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum PsiIdx {
    SxxX = 0,
    SxyY = 1,
    SxzZ = 2,
    SxyX = 3,
    SyyY = 4,
    SyzZ = 5,
    SxzX = 6,
    SyzY = 7,
    SzzZ = 8,
    VxX = 9,
    VyY = 10,
    VzZ = 11,
    VxY = 12,
    VyX = 13,
    VxZ = 14,
    VzX = 15,
    VyZ = 16,
    VzY = 17,
}

impl El3State {
    /// Quiescent state.
    pub fn new(extent: Extent3) -> Self {
        let z = || Field3::zeros(extent);
        Self {
            vx: z(),
            vy: z(),
            vz: z(),
            sxx: z(),
            syy: z(),
            szz: z(),
            sxy: z(),
            sxz: z(),
            syz: z(),
            psi: (0..18).map(|_| Field3::zeros(extent)).collect(),
        }
    }

    /// Overwrite every field from `other` without allocating (extents must
    /// match) — the arena-reuse path for checkpoints and retries.
    pub fn copy_from(&mut self, other: &Self) {
        self.vx.copy_from(&other.vx);
        self.vy.copy_from(&other.vy);
        self.vz.copy_from(&other.vz);
        self.sxx.copy_from(&other.sxx);
        self.syy.copy_from(&other.syy);
        self.szz.copy_from(&other.szz);
        self.sxy.copy_from(&other.sxy);
        self.sxz.copy_from(&other.sxz);
        self.syz.copy_from(&other.syz);
        assert_eq!(self.psi.len(), other.psi.len());
        for (d, s) in self.psi.iter_mut().zip(other.psi.iter()) {
            d.copy_from(s);
        }
    }

    /// Advance one time step: three velocity kernels, then three stress
    /// kernels.
    pub fn step(&mut self, model: &ElasticModel3, cpml: &[CpmlAxis; 3]) {
        let e = self.vx.extent();
        let nz = e.nz;
        let g = &model.geom;
        let h = [g.dx, g.dy, g.dz];

        // Velocity kernels read stresses only; each writes its own field and
        // its own two/three ψ fields — fully independent of one another.
        {
            let (a, rest) = self.psi.split_at_mut(1);
            let (b, rest2) = rest.split_at_mut(1);
            let vxs = SyncSlice::new(self.vx.as_mut_slice());
            let p0 = SyncSlice::new(a[0].as_mut_slice());
            let p1 = SyncSlice::new(b[0].as_mut_slice());
            let p2 = SyncSlice::new(rest2[0].as_mut_slice());
            vx_slab(
                vxs,
                p0,
                p1,
                p2,
                self.sxx.as_slice(),
                self.sxy.as_slice(),
                self.sxz.as_slice(),
                model.rho.as_slice(),
                e,
                h,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
        {
            let (_, rest) = self.psi.split_at_mut(3);
            let (a, rest2) = rest.split_at_mut(1);
            let (b, rest3) = rest2.split_at_mut(1);
            let vys = SyncSlice::new(self.vy.as_mut_slice());
            let p0 = SyncSlice::new(a[0].as_mut_slice());
            let p1 = SyncSlice::new(b[0].as_mut_slice());
            let p2 = SyncSlice::new(rest3[0].as_mut_slice());
            vy_slab(
                vys,
                p0,
                p1,
                p2,
                self.sxy.as_slice(),
                self.syy.as_slice(),
                self.syz.as_slice(),
                model.rho.as_slice(),
                e,
                h,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
        {
            let (_, rest) = self.psi.split_at_mut(6);
            let (a, rest2) = rest.split_at_mut(1);
            let (b, rest3) = rest2.split_at_mut(1);
            let vzs = SyncSlice::new(self.vz.as_mut_slice());
            let p0 = SyncSlice::new(a[0].as_mut_slice());
            let p1 = SyncSlice::new(b[0].as_mut_slice());
            let p2 = SyncSlice::new(rest3[0].as_mut_slice());
            vz_slab(
                vzs,
                p0,
                p1,
                p2,
                self.sxz.as_slice(),
                self.syz.as_slice(),
                self.szz.as_slice(),
                model.rho.as_slice(),
                e,
                h,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
        // Stress kernels read velocities only.
        {
            let (_, rest) = self.psi.split_at_mut(9);
            let (a, rest2) = rest.split_at_mut(1);
            let (b, rest3) = rest2.split_at_mut(1);
            let sxx = SyncSlice::new(self.sxx.as_mut_slice());
            let syy = SyncSlice::new(self.syy.as_mut_slice());
            let szz = SyncSlice::new(self.szz.as_mut_slice());
            let p0 = SyncSlice::new(a[0].as_mut_slice());
            let p1 = SyncSlice::new(b[0].as_mut_slice());
            let p2 = SyncSlice::new(rest3[0].as_mut_slice());
            stress_diag_slab(
                sxx,
                syy,
                szz,
                p0,
                p1,
                p2,
                self.vx.as_slice(),
                self.vy.as_slice(),
                self.vz.as_slice(),
                model.lam.as_slice(),
                model.mu.as_slice(),
                e,
                h,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
        {
            let (_, rest) = self.psi.split_at_mut(12);
            let (a, rest2) = rest.split_at_mut(1);
            let (b, rest3) = rest2.split_at_mut(1);
            let (c, rest4) = rest3.split_at_mut(1);
            let sxy = SyncSlice::new(self.sxy.as_mut_slice());
            let sxz = SyncSlice::new(self.sxz.as_mut_slice());
            let p0 = SyncSlice::new(a[0].as_mut_slice());
            let p1 = SyncSlice::new(b[0].as_mut_slice());
            let p2 = SyncSlice::new(c[0].as_mut_slice());
            let p3 = SyncSlice::new(rest4[0].as_mut_slice());
            stress_sxy_sxz_slab(
                sxy,
                sxz,
                p0,
                p1,
                p2,
                p3,
                self.vx.as_slice(),
                self.vy.as_slice(),
                self.vz.as_slice(),
                model.mu.as_slice(),
                e,
                h,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
        {
            let (_, rest) = self.psi.split_at_mut(16);
            let (a, rest2) = rest.split_at_mut(1);
            let syz = SyncSlice::new(self.syz.as_mut_slice());
            let p0 = SyncSlice::new(a[0].as_mut_slice());
            let p1 = SyncSlice::new(rest2[0].as_mut_slice());
            stress_syz_slab(
                syz,
                p0,
                p1,
                self.vy.as_slice(),
                self.vz.as_slice(),
                model.mu.as_slice(),
                e,
                h,
                g.dt,
                cpml,
                0,
                nz,
            );
        }
    }

    /// Explosive source on the three normal stresses.
    pub fn inject(&mut self, model: &ElasticModel3, ix: usize, iy: usize, iz: usize, f: f32) {
        let a = model.geom.dt * f;
        for s in [&mut self.sxx, &mut self.syy, &mut self.szz] {
            let v = s.get(ix, iy, iz) + a;
            s.set(ix, iy, iz, v);
        }
    }
}

#[inline(always)]
fn df(u: &[f32], c: usize, s: usize) -> f32 {
    let mut d = 0.0f32;
    for (k, &ck) in f32c::S1.iter().enumerate() {
        d += ck * (u[c + (k + 1) * s] - u[c - k * s]);
    }
    d
}

#[inline(always)]
fn db(u: &[f32], c: usize, s: usize) -> f32 {
    let mut d = 0.0f32;
    for (k, &ck) in f32c::S1.iter().enumerate() {
        d += ck * (u[c + k * s] - u[c - (k + 1) * s]);
    }
    d
}

macro_rules! vel_kernel {
    ($name:ident, $doc:literal, $d0:ident, $d1:ident, $d2:ident) => {
        #[doc = $doc]
        #[allow(clippy::too_many_arguments)]
        pub fn $name(
            v: SyncSlice,
            psi0: SyncSlice,
            psi1: SyncSlice,
            psi2: SyncSlice,
            s0: &[f32],
            s1: &[f32],
            s2: &[f32],
            rho: &[f32],
            e: Extent3,
            h: [f32; 3],
            dt: f32,
            cpml: &[CpmlAxis; 3],
            z0: usize,
            z1: usize,
        ) {
            assert!(z1 <= e.nz && z0 <= z1);
            let fnx = e.full_nx();
            let fnxy = fnx * e.full_ny();
            let strides = [1usize, fnx, fnxy];
            let rh = [1.0 / h[0], 1.0 / h[1], 1.0 / h[2]];
            let [cx, cy, cz] = cpml;
            for iz in z0..z1 {
                let cc2 = cz.coeffs(iz);
                for iy in 0..e.ny {
                    let cc1 = cy.coeffs(iy);
                    for ix in 0..e.nx {
                        let c = e.idx(ix, iy, iz);
                        let cc0 = cx.coeffs(ix);
                        let d0v = $d0(s0, c, strides[0]) * rh[0];
                        let p0 = cc0.1 * psi0.get(c) + cc0.0 * d0v;
                        unsafe { psi0.set(c, p0) };
                        let d1v = $d1(s1, c, strides[1]) * rh[1];
                        let p1 = cc1.1 * psi1.get(c) + cc1.0 * d1v;
                        unsafe { psi1.set(c, p1) };
                        let d2v = $d2(s2, c, strides[2]) * rh[2];
                        let p2 = cc2.1 * psi2.get(c) + cc2.0 * d2v;
                        unsafe { psi2.set(c, p2) };
                        let acc = (d0v * cc0.2 + p0) + (d1v * cc1.2 + p1) + (d2v * cc2.2 + p2);
                        unsafe { v.add(c, dt / rho[c] * acc) };
                    }
                }
            }
        }
    };
}

vel_kernel!(
    vx_slab,
    "`vx += Δt/ρ·(∂x σxx + ∂y σxy + ∂z σxz)` with C-PML on each derivative.",
    df,
    db,
    db
);
vel_kernel!(
    vy_slab,
    "`vy += Δt/ρ·(∂x σxy + ∂y σyy + ∂z σyz)` with C-PML on each derivative.",
    db,
    df,
    db
);
vel_kernel!(
    vz_slab,
    "`vz += Δt/ρ·(∂x σxz + ∂y σyz + ∂z σzz)` with C-PML on each derivative.",
    db,
    db,
    df
);

/// Diagonal stress kernel:
/// `σii += Δt·((λ+2μ)·e_ii + λ·(e_jj + e_kk))` for i ∈ {x, y, z}.
#[allow(clippy::too_many_arguments)]
pub fn stress_diag_slab(
    sxx: SyncSlice,
    syy: SyncSlice,
    szz: SyncSlice,
    psi_vx_x: SyncSlice,
    psi_vy_y: SyncSlice,
    psi_vz_z: SyncSlice,
    vx: &[f32],
    vy: &[f32],
    vz: &[f32],
    lam: &[f32],
    mu: &[f32],
    e: Extent3,
    h: [f32; 3],
    dt: f32,
    cpml: &[CpmlAxis; 3],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let fnxy = fnx * e.full_ny();
    let rh = [1.0 / h[0], 1.0 / h[1], 1.0 / h[2]];
    let [cx, cy, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for iy in 0..e.ny {
            let (ay, by, iky) = cy.coeffs(iy);
            for ix in 0..e.nx {
                let c = e.idx(ix, iy, iz);
                let (ax, bx, ikx) = cx.coeffs(ix);
                let d0 = db(vx, c, 1) * rh[0];
                let p0 = bx * psi_vx_x.get(c) + ax * d0;
                unsafe { psi_vx_x.set(c, p0) };
                let exx = d0 * ikx + p0;

                let d1 = db(vy, c, fnx) * rh[1];
                let p1 = by * psi_vy_y.get(c) + ay * d1;
                unsafe { psi_vy_y.set(c, p1) };
                let eyy = d1 * iky + p1;

                let d2 = db(vz, c, fnxy) * rh[2];
                let p2 = bz * psi_vz_z.get(c) + az * d2;
                unsafe { psi_vz_z.set(c, p2) };
                let ezz = d2 * ikz + p2;

                let l = lam[c];
                let m2 = 2.0 * mu[c];
                let tr = exx + eyy + ezz;
                unsafe { sxx.add(c, dt * (l * tr + m2 * exx)) };
                unsafe { syy.add(c, dt * (l * tr + m2 * eyy)) };
                unsafe { szz.add(c, dt * (l * tr + m2 * ezz)) };
            }
        }
    }
}

/// Shear kernels σxy and σxz (share reads of `vx`):
/// `σxy += Δt·μ·(∂y vx + ∂x vy)`, `σxz += Δt·μ·(∂z vx + ∂x vz)`.
#[allow(clippy::too_many_arguments)]
pub fn stress_sxy_sxz_slab(
    sxy: SyncSlice,
    sxz: SyncSlice,
    psi_vx_y: SyncSlice,
    psi_vy_x: SyncSlice,
    psi_vx_z: SyncSlice,
    psi_vz_x: SyncSlice,
    vx: &[f32],
    vy: &[f32],
    vz: &[f32],
    mu: &[f32],
    e: Extent3,
    h: [f32; 3],
    dt: f32,
    cpml: &[CpmlAxis; 3],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let fnxy = fnx * e.full_ny();
    let rh = [1.0 / h[0], 1.0 / h[1], 1.0 / h[2]];
    let [cx, cy, cz] = cpml;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for iy in 0..e.ny {
            let (ay, by, iky) = cy.coeffs(iy);
            for ix in 0..e.nx {
                let c = e.idx(ix, iy, iz);
                let (ax, bx, ikx) = cx.coeffs(ix);
                // σxy at (i+½, j+½, k).
                let d0 = df(vx, c, fnx) * rh[1];
                let p0 = by * psi_vx_y.get(c) + ay * d0;
                unsafe { psi_vx_y.set(c, p0) };
                let d1 = df(vy, c, 1) * rh[0];
                let p1 = bx * psi_vy_x.get(c) + ax * d1;
                unsafe { psi_vy_x.set(c, p1) };
                unsafe { sxy.add(c, dt * mu[c] * ((d0 * iky + p0) + (d1 * ikx + p1))) };

                // σxz at (i+½, j, k+½).
                let d2 = df(vx, c, fnxy) * rh[2];
                let p2 = bz * psi_vx_z.get(c) + az * d2;
                unsafe { psi_vx_z.set(c, p2) };
                let d3 = df(vz, c, 1) * rh[0];
                let p3 = bx * psi_vz_x.get(c) + ax * d3;
                unsafe { psi_vz_x.set(c, p3) };
                unsafe { sxz.add(c, dt * mu[c] * ((d2 * ikz + p2) + (d3 * ikx + p3))) };
            }
        }
    }
}

/// Shear kernel σyz: `σyz += Δt·μ·(∂z vy + ∂y vz)`.
#[allow(clippy::too_many_arguments)]
pub fn stress_syz_slab(
    syz: SyncSlice,
    psi_vy_z: SyncSlice,
    psi_vz_y: SyncSlice,
    vy: &[f32],
    vz: &[f32],
    mu: &[f32],
    e: Extent3,
    h: [f32; 3],
    dt: f32,
    cpml: &[CpmlAxis; 3],
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    let fnx = e.full_nx();
    let fnxy = fnx * e.full_ny();
    let rh = [1.0 / h[0], 1.0 / h[1], 1.0 / h[2]];
    let [cx, cy, cz] = cpml;
    let _ = cx;
    for iz in z0..z1 {
        let (az, bz, ikz) = cz.coeffs(iz);
        for iy in 0..e.ny {
            let (ay, by, iky) = cy.coeffs(iy);
            for ix in 0..e.nx {
                let c = e.idx(ix, iy, iz);
                let d0 = df(vy, c, fnxy) * rh[2];
                let p0 = bz * psi_vy_z.get(c) + az * d0;
                unsafe { psi_vy_z.set(c, p0) };
                let d1 = df(vz, c, fnx) * rh[1];
                let p1 = by * psi_vz_y.get(c) + ay * d1;
                unsafe { psi_vz_y.set(c, p1) };
                unsafe { syz.add(c, dt * mu[c] * ((d0 * ikz + p0) + (d1 * iky + p1))) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{elastic3_layered, Layer};
    use seismic_model::{extent3, ElasticModel3, Geometry};
    use seismic_source::ricker;

    fn setup_uniform(n: usize, vp: f32, vs: f32) -> (ElasticModel3, [CpmlAxis; 3]) {
        let e = extent3(n, n, n);
        let h = 10.0;
        let dt = stable_dt(8, 3, vp, h, 0.5);
        let layers = [Layer {
            z_top: 0,
            vp,
            vs,
            rho: 2200.0,
        }];
        let m = elastic3_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 6, dt, vp, h, 1e-4);
        (m, [c.clone(), c.clone(), c])
    }

    #[test]
    fn stable_and_propagates() {
        let n = 32;
        let (m, cpml) = setup_uniform(n, 3000.0, 1600.0);
        let mut s = El3State::new(m.rho.extent());
        for t in 0..60 {
            s.step(&m, &cpml);
            s.inject(
                &m,
                n / 2,
                n / 2,
                n / 2,
                ricker(25.0, t as f32 * m.geom.dt - 0.048) * 1e6,
            );
        }
        let mx = s.vx.max_abs().max(s.vy.max_abs()).max(s.vz.max_abs());
        assert!(mx.is_finite() && mx > 0.0 && mx < 1e9, "max = {mx}");
    }

    /// Explosive source in a homogeneous medium ⇒ full axis symmetry:
    /// σxx along +x equals σyy along +y equals σzz along +z.
    #[test]
    fn axis_symmetry_of_explosive_source() {
        let n = 36;
        let (m, cpml) = setup_uniform(n, 3000.0, 1600.0);
        let mut s = El3State::new(m.rho.extent());
        let c = n / 2;
        for t in 0..50 {
            s.step(&m, &cpml);
            s.inject(
                &m,
                c,
                c,
                c,
                ricker(25.0, t as f32 * m.geom.dt - 0.048) * 1e6,
            );
        }
        let mx = s.sxx.max_abs().max(1e-12);
        for d in 1..8 {
            let a = s.sxx.get(c + d, c, c);
            let b = s.syy.get(c, c + d, c);
            let cc = s.szz.get(c, c, c + d);
            assert!((a - b).abs() < 1e-3 * mx, "d={d}: {a} vs {b}");
            assert!((a - cc).abs() < 1e-3 * mx, "d={d}: {a} vs {cc}");
        }
    }

    #[test]
    fn fluid_generates_no_shear_3d() {
        let n = 24;
        let (m, cpml) = setup_uniform(n, 1500.0, 0.0);
        let mut s = El3State::new(m.rho.extent());
        for t in 0..40 {
            s.step(&m, &cpml);
            s.inject(
                &m,
                12,
                12,
                12,
                ricker(25.0, t as f32 * m.geom.dt - 0.048) * 1e6,
            );
        }
        assert_eq!(s.sxy.max_abs(), 0.0);
        assert_eq!(s.sxz.max_abs(), 0.0);
        assert_eq!(s.syz.max_abs(), 0.0);
        assert!(s.sxx.max_abs() > 0.0);
    }

    #[test]
    fn energy_decays_with_cpml() {
        let n = 28;
        let (m, cpml) = setup_uniform(n, 2500.0, 1200.0);
        let mut s = El3State::new(m.rho.extent());
        let mut peak = 0.0f64;
        for t in 0..260 {
            s.step(&m, &cpml);
            if t < 30 {
                s.inject(
                    &m,
                    14,
                    14,
                    14,
                    ricker(25.0, t as f32 * m.geom.dt - 0.048) * 1e6,
                );
            }
            let e = s.vx.energy() + s.vy.energy() + s.vz.energy();
            peak = peak.max(e);
        }
        let fin = s.vx.energy() + s.vy.energy() + s.vz.energy();
        assert!(fin < peak * 0.2, "final {fin} vs peak {peak}");
    }

    #[test]
    fn layered_3d_stable() {
        let n = 24;
        let e = extent3(n, n, n);
        let h = 10.0;
        let dt = stable_dt(8, 3, 3200.0, h, 0.5);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: n / 2,
                vp: 3200.0,
                vs: 1800.0,
                rho: 2400.0,
            },
        ];
        let m = elastic3_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 6, dt, 3200.0, h, 1e-4);
        let cpml = [c.clone(), c.clone(), c];
        let mut s = El3State::new(e);
        for t in 0..60 {
            s.step(&m, &cpml);
            s.inject(
                &m,
                n / 2,
                n / 2,
                4,
                ricker(25.0, t as f32 * dt - 0.048) * 1e6,
            );
        }
        assert!(s.vz.max_abs().is_finite());
        assert!(s.vz.max_abs() > 0.0);
    }
}
