//! Isotropic constant-density propagator, 2D.
//!
//! Solves Equation 1 of the paper — the 2nd-order scalar wave equation
//! `u⁺ = 2u − u⁻ + Δt²·vp²·∇²u` with an 8th-order (17-point in 2D)
//! Laplacian and a damping-layer PML:
//! `u⁺ = (2u − (1−σΔt)u⁻ + Δt²vp²∇²u)/(1+σΔt)`, `σ = σx + σz`.
//!
//! Three kernel variants reproduce the paper's Figure 6/7 restructurings.
//! They are *numerically identical* (σ ≡ 0 in the interior, and IEEE
//! multiplication/division by exactly 1.0 is exact); what differs is control
//! flow — per-point branches vs separate perfectly-nested loops vs uniform
//! "PML everywhere" — which is what the GPU mapping model prices.

use crate::IsoPmlVariant;
use exec_host::tiles_for;
use seismic_grid::fd::f32c;
use seismic_grid::{Extent2, Field2, SyncSlice, STENCIL_HALF};
use seismic_model::IsoModel2;
use seismic_pml::DampProfile;

/// Wavefield state: two time levels, updated leapfrog-style in place.
#[derive(Debug, Clone)]
pub struct Iso2State {
    /// Previous time level; overwritten with the next level each step.
    pub u_prev: Field2,
    /// Current time level.
    pub u_cur: Field2,
}

impl Iso2State {
    /// Quiescent state (`u⁻¹ = u⁰ = 0`, as in Equation 1).
    pub fn new(extent: Extent2) -> Self {
        Self {
            u_prev: Field2::zeros(extent),
            u_cur: Field2::zeros(extent),
        }
    }

    /// Advance one time step sequentially over the full interior, then swap
    /// time levels so `u_cur` is the newest field.
    pub fn step(
        &mut self,
        model: &IsoModel2,
        damp_x: &DampProfile,
        damp_z: &DampProfile,
        variant: IsoPmlVariant,
    ) {
        let e = self.u_cur.extent();
        let nz = e.nz;
        let u = SyncSlice::new(self.u_prev.as_mut_slice());
        step_slab(
            u,
            self.u_cur.as_slice(),
            model.vp.as_slice(),
            e,
            model.geom.dx,
            model.geom.dz,
            model.geom.dt,
            damp_x,
            damp_z,
            variant,
            0,
            nz,
        );
        self.u_prev.swap(&mut self.u_cur);
    }

    /// Add a source sample at an interior point, scaled the way Equation 1
    /// injects the point term: `Δt²·vp²·f`.
    pub fn inject(&mut self, model: &IsoModel2, ix: usize, iz: usize, f: f32) {
        let dt = model.geom.dt;
        let vp = model.vp.get(ix, iz);
        let v = self.u_cur.get(ix, iz) + dt * dt * vp * vp * f;
        self.u_cur.set(ix, iz, v);
    }

    /// Overwrite this state from `other` without allocating (both time
    /// levels; extents must match). Checkpoint/restart and arena reuse go
    /// through this instead of `clone()`.
    pub fn copy_from(&mut self, other: &Self) {
        self.u_prev.copy_from(&other.u_prev);
        self.u_cur.copy_from(&other.u_cur);
    }
}

/// The 17-point Laplacian at flat index `c`.
#[inline(always)]
fn lap2(u: &[f32], c: usize, fnx: usize, rdx2: f32, rdz2: f32) -> f32 {
    let mut acc = f32c::C2[0] * u[c] * (rdx2 + rdz2);
    // Manually indexed like the Fortran original; k = 1..=4.
    for k in 1..=STENCIL_HALF {
        acc += f32c::C2[k] * ((u[c + k] + u[c - k]) * rdx2);
        acc += f32c::C2[k] * ((u[c + k * fnx] + u[c - k * fnx]) * rdz2);
    }
    acc
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn plain_update(
    u: &SyncSlice,
    u_cur: &[f32],
    vp: &[f32],
    c: usize,
    fnx: usize,
    dt2: f32,
    rdx2: f32,
    rdz2: f32,
) {
    let v = vp[c];
    let lap = lap2(u_cur, c, fnx, rdx2, rdz2);
    let next = 2.0 * u_cur[c] - u.get(c) + dt2 * v * v * lap;
    // Safety: each slab writes only its own rows (disjoint c).
    unsafe { u.set(c, next) };
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn damped_update(
    u: &SyncSlice,
    u_cur: &[f32],
    vp: &[f32],
    c: usize,
    fnx: usize,
    dt: f32,
    dt2: f32,
    rdx2: f32,
    rdz2: f32,
    sigma: f32,
) {
    let v = vp[c];
    let lap = lap2(u_cur, c, fnx, rdx2, rdz2);
    let next =
        (2.0 * u_cur[c] - (1.0 - sigma * dt) * u.get(c) + dt2 * v * v * lap) / (1.0 + sigma * dt);
    // Safety: each slab writes only its own rows.
    unsafe { u.set(c, next) };
}

/// One time step over interior rows `[z0, z1)`.
///
/// `u` aliases the *previous* time level and receives the next one (the
/// per-point read of `u.get(c)` happens before the write — no cross-point
/// dependency exists, which is also why the paper's OpenACC `independent`
/// clause is legal on this loop nest).
#[allow(clippy::too_many_arguments)]
pub fn step_slab(
    u: SyncSlice,
    u_cur: &[f32],
    vp: &[f32],
    e: Extent2,
    dx: f32,
    dz: f32,
    dt: f32,
    damp_x: &DampProfile,
    damp_z: &DampProfile,
    variant: IsoPmlVariant,
    z0: usize,
    z1: usize,
) {
    assert!(z1 <= e.nz && z0 <= z1);
    assert_eq!(u.len(), e.len());
    assert_eq!(u_cur.len(), e.len());
    let fnx = e.full_nx();
    let dt2 = dt * dt;
    let rdx2 = 1.0 / (dx * dx);
    let rdz2 = 1.0 / (dz * dz);
    let w = damp_x.width();
    // x-tile × z-row blocking: keeps the vertical stencil neighbors of a
    // tile resident across rows on wide grids. Point updates are
    // independent, so the schedule is bitwise-free (single tile on small
    // grids — the exact original loop). The tiling carries the SIMD width
    // certified for this kernel by the vectorization verifier, if any.
    let tiling = tiles_for("iso_kernel_2d", e.nx, 3, 2 * STENCIL_HALF + 1);

    match variant {
        IsoPmlVariant::OriginalIfs => {
            // The paper's original kernel: one loop nest, per-point branch.
            for (x0, x1) in tiling.ranges(0, e.nx) {
                for iz in z0..z1 {
                    for ix in x0..x1 {
                        let c = e.idx(ix, iz);
                        if damp_x.in_layer(ix) || damp_z.in_layer(iz) {
                            let sigma = damp_x.sigma(ix) + damp_z.sigma(iz);
                            damped_update(&u, u_cur, vp, c, fnx, dt, dt2, rdx2, rdz2, sigma);
                        } else {
                            plain_update(&u, u_cur, vp, c, fnx, dt2, rdx2, rdz2);
                        }
                    }
                }
            }
        }
        IsoPmlVariant::RestructuredIndices => {
            // First approach of Section 5.2: change loop indices so every
            // loop body is branch-free and perfectly nested.
            for iz in z0..z1 {
                if damp_z.in_layer(iz) {
                    // Whole row lies in the z strip: damped everywhere.
                    for ix in 0..e.nx {
                        let sigma = damp_x.sigma(ix) + damp_z.sigma(iz);
                        let c = e.idx(ix, iz);
                        damped_update(&u, u_cur, vp, c, fnx, dt, dt2, rdx2, rdz2, sigma);
                    }
                } else {
                    for ix in 0..w {
                        let sigma = damp_x.sigma(ix);
                        let c = e.idx(ix, iz);
                        damped_update(&u, u_cur, vp, c, fnx, dt, dt2, rdx2, rdz2, sigma);
                    }
                    for ix in w..e.nx - w {
                        let c = e.idx(ix, iz);
                        plain_update(&u, u_cur, vp, c, fnx, dt2, rdx2, rdz2);
                    }
                    for ix in e.nx - w..e.nx {
                        let sigma = damp_x.sigma(ix);
                        let c = e.idx(ix, iz);
                        damped_update(&u, u_cur, vp, c, fnx, dt, dt2, rdx2, rdz2, sigma);
                    }
                }
            }
        }
        IsoPmlVariant::PmlEverywhere => {
            // Second approach: evaluate the damped form at every point.
            // σ = 0 in the interior makes this exact (1±0·dt = 1.0).
            for (x0, x1) in tiling.ranges(0, e.nx) {
                for iz in z0..z1 {
                    let sz = damp_z.sigma(iz);
                    for ix in x0..x1 {
                        let sigma = damp_x.sigma(ix) + sz;
                        let c = e.idx(ix, iz);
                        damped_update(&u, u_cur, vp, c, fnx, dt, dt2, rdx2, rdz2, sigma);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::iso2_constant;
    use seismic_model::{extent2, Geometry};
    use seismic_pml::DampProfile;
    use seismic_source::ricker;

    fn setup(n: usize, width: usize) -> (IsoModel2, DampProfile, DampProfile) {
        let e = extent2(n, n);
        let h = 10.0;
        let vmax = 2000.0;
        let dt = stable_dt(8, 2, vmax, h, 0.8);
        let m = iso2_constant(e, vmax, Geometry::uniform(h, dt));
        let dx = DampProfile::new(n, e.halo, width, vmax, h, 1e-4);
        let dz = DampProfile::new(n, e.halo, width, vmax, h, 1e-4);
        (m, dx, dz)
    }

    fn run(variant: IsoPmlVariant, n: usize, steps: usize) -> Iso2State {
        let (m, dpx, dpz) = setup(n, 12);
        let mut s = Iso2State::new(m.vp.extent());
        for t in 0..steps {
            s.step(&m, &dpx, &dpz, variant);
            let amp = ricker(25.0, t as f32 * m.geom.dt - 0.048);
            s.inject(&m, n / 2, n / 2, amp);
        }
        s
    }

    /// The three PML variants must be bitwise identical — that is the whole
    /// premise of the paper's "compute PML everywhere" restructuring.
    #[test]
    fn variants_are_bitwise_identical() {
        let a = run(IsoPmlVariant::OriginalIfs, 64, 60);
        let b = run(IsoPmlVariant::RestructuredIndices, 64, 60);
        let c = run(IsoPmlVariant::PmlEverywhere, 64, 60);
        assert_eq!(a.u_cur, b.u_cur);
        assert_eq!(a.u_cur, c.u_cur);
    }

    /// A stable run must not blow up and must actually propagate energy.
    #[test]
    fn stable_run_propagates() {
        let s = run(IsoPmlVariant::OriginalIfs, 96, 120);
        let m = s.u_cur.max_abs();
        assert!(m.is_finite() && m > 0.0, "max = {m}");
        assert!(m < 100.0, "unexpected growth: {m}");
        // Wave must have reached away from the source.
        assert!(s.u_cur.get(48 + 20, 48).abs() > 0.0);
    }

    /// Violating the CFL bound must blow up (sanity of the stability limit).
    #[test]
    fn cfl_violation_blows_up() {
        let e = extent2(48, 48);
        let h = 10.0;
        let vmax = 2000.0;
        let dt = stable_dt(8, 2, vmax, h, 0.8) * 3.0; // ~3x over the limit
        let m = iso2_constant(e, vmax, Geometry::uniform(h, dt));
        let dpx = DampProfile::new(48, e.halo, 8, vmax, h, 1e-4);
        let dpz = DampProfile::new(48, e.halo, 8, vmax, h, 1e-4);
        let mut s = Iso2State::new(e);
        for t in 0..200 {
            s.step(&m, &dpx, &dpz, IsoPmlVariant::OriginalIfs);
            s.inject(&m, 24, 24, ricker(25.0, t as f32 * dt - 0.048));
            if !s.u_cur.max_abs().is_finite() || s.u_cur.max_abs() > 1e6 {
                return; // blew up as expected
            }
        }
        panic!("unstable dt did not blow up");
    }

    /// The wavefront must travel at the model velocity: after time T the
    /// peak along a ray from the source sits near radius vp·T.
    #[test]
    fn wavefront_speed_matches_velocity() {
        let n = 160;
        let (m, dpx, dpz) = setup(n, 16);
        let mut s = Iso2State::new(m.vp.extent());
        let steps = 140;
        let f = 25.0;
        let t0 = 1.2 / f;
        for t in 0..steps {
            s.step(&m, &dpx, &dpz, IsoPmlVariant::PmlEverywhere);
            s.inject(&m, n / 2, n / 2, ricker(f, t as f32 * m.geom.dt - t0));
        }
        let elapsed = steps as f32 * m.geom.dt - t0; // since wavelet peak
        let expect_r = 2000.0 * elapsed / m.geom.dx; // in grid points
                                                     // Scan along +x from the source for the absolute peak.
        let mut best = (0usize, 0.0f32);
        for r in 5..n / 2 - 2 {
            let v = s.u_cur.get(n / 2 + r, n / 2).abs();
            if v > best.1 {
                best = (r, v);
            }
        }
        let err = (best.0 as f32 - expect_r).abs();
        assert!(
            err <= 4.0,
            "wavefront at r = {} points, expected ~{expect_r}",
            best.0
        );
    }

    /// With absorbing boundaries, total field energy must decay after the
    /// source stops — spurious reflections would keep it high.
    #[test]
    fn damping_layer_absorbs_energy() {
        let n = 96;
        let (m, dpx, dpz) = setup(n, 16);
        let mut s = Iso2State::new(m.vp.extent());
        let mut peak = 0.0f64;
        // Source active for 80 steps, then free propagation.
        for t in 0..600 {
            s.step(&m, &dpx, &dpz, IsoPmlVariant::OriginalIfs);
            if t < 80 {
                s.inject(&m, n / 2, n / 2, ricker(25.0, t as f32 * m.geom.dt - 0.048));
            }
            peak = peak.max(s.u_cur.energy());
        }
        let final_e = s.u_cur.energy();
        assert!(
            final_e < peak * 0.05,
            "energy not absorbed: final {final_e} vs peak {peak}"
        );
    }

    /// Slab-parallel decomposition must agree with the sequential sweep.
    #[test]
    fn slab_split_matches_sequential() {
        let (m, dpx, dpz) = setup(64, 12);
        let e = m.vp.extent();
        let mut seq = Iso2State::new(e);
        let mut par = Iso2State::new(e);
        for t in 0..40 {
            seq.step(&m, &dpx, &dpz, IsoPmlVariant::OriginalIfs);
            // Manual 3-slab split of the same kernel.
            {
                let u = SyncSlice::new(par.u_prev.as_mut_slice());
                for (z0, z1) in [(0usize, 20usize), (20, 43), (43, 64)] {
                    step_slab(
                        u,
                        par.u_cur.as_slice(),
                        m.vp.as_slice(),
                        e,
                        m.geom.dx,
                        m.geom.dz,
                        m.geom.dt,
                        &dpx,
                        &dpz,
                        IsoPmlVariant::OriginalIfs,
                        z0,
                        z1,
                    );
                }
                par.u_prev.swap(&mut par.u_cur);
            }
            let amp = ricker(25.0, t as f32 * m.geom.dt - 0.048);
            seq.inject(&m, 32, 32, amp);
            par.inject(&m, 32, 32, amp);
        }
        assert_eq!(seq.u_cur, par.u_cur);
    }
}
