//! Arithmetic descriptors of the propagator kernels.
//!
//! Pure data consumed by the `accel-sim` roofline model via `rtm-core`:
//! per-grid-point floating-point work, effective DRAM traffic (assuming
//! ideal stencil reuse in cache/shared memory), and a register-pressure
//! estimate. Register counts matter because the paper's Figure 10/12
//! results hinge on them: Fermi caps at 63 registers per thread (spills
//! beyond), Kepler at 255.

use serde::{Deserialize, Serialize};

/// Static description of one device kernel of a propagator step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name as it appears in profiler output (e.g. `kernel_2d_139_gpu`).
    pub name: &'static str,
    /// Floating-point operations per interior grid point.
    pub flops: f64,
    /// Effective `f32` loads per point after ideal neighbour reuse.
    pub reads: f64,
    /// `f32` stores per point.
    pub writes: f64,
    /// Registers per thread the straightforward translation needs.
    pub regs: u32,
    /// Whether consecutive threads touch consecutive addresses in the
    /// generated innermost loop (true unless the loop nest sweeps a strided
    /// axis innermost, as in the acoustic 2D backward kernel of Figure 13).
    pub coalesced: bool,
    /// Fraction of threads doing divergent extra work (boundary `if`s of the
    /// original isotropic kernel). 0 = uniform control flow.
    pub divergence: f64,
}

impl KernelDesc {
    /// Effective bytes moved per point (reads + writes, 4-byte words).
    pub fn bytes_per_point(&self) -> f64 {
        4.0 * (self.reads + self.writes)
    }

    /// Arithmetic intensity in flops/byte.
    pub fn intensity(&self) -> f64 {
        self.flops / self.bytes_per_point()
    }
}

const fn k(name: &'static str, flops: f64, reads: f64, writes: f64, regs: u32) -> KernelDesc {
    KernelDesc {
        name,
        flops,
        reads,
        writes,
        regs,
        coalesced: true,
        divergence: 0.0,
    }
}

/// Isotropic 2D main kernel (17-point stencil + leapfrog update).
pub fn iso2d(variant: crate::IsoPmlVariant) -> Vec<KernelDesc> {
    let base = k("iso_kernel_2d", 40.0, 3.6, 1.0, 40);
    match variant {
        crate::IsoPmlVariant::OriginalIfs => vec![KernelDesc {
            divergence: 0.35,
            ..base
        }],
        crate::IsoPmlVariant::RestructuredIndices => vec![
            k("iso_kernel_2d_interior", 38.0, 3.4, 1.0, 38),
            KernelDesc {
                // Boundary strips: small fraction of points, modeled as a
                // second kernel over ~width/n of the domain by the caller.
                ..k("iso_kernel_2d_pml", 46.0, 4.2, 1.0, 44)
            },
        ],
        crate::IsoPmlVariant::PmlEverywhere => vec![k("iso_kernel_2d_pml_all", 46.0, 4.2, 1.0, 44)],
    }
}

/// Isotropic 3D main kernel (25-point stencil). Effective reads are high:
/// the 8th-order star touches nine z-planes, far beyond what the cards'
/// L2 retains at production grid sizes, so most z-taps miss to DRAM —
/// the paper's "memory-bound application, which exhibits inefficient GPU
/// utilization".
pub fn iso3d(variant: crate::IsoPmlVariant) -> Vec<KernelDesc> {
    let base = k("iso_kernel_3d", 58.0, 7.0, 1.0, 52);
    match variant {
        crate::IsoPmlVariant::OriginalIfs => vec![KernelDesc {
            divergence: 0.35,
            ..base
        }],
        crate::IsoPmlVariant::RestructuredIndices => vec![
            k("iso_kernel_3d_interior", 55.0, 6.8, 1.0, 50),
            k("iso_kernel_3d_pml", 66.0, 7.8, 1.0, 58),
        ],
        crate::IsoPmlVariant::PmlEverywhere => vec![k("iso_kernel_3d_pml_all", 66.0, 7.8, 1.0, 58)],
    }
}

/// Acoustic 2D: velocity-update kernel then pressure-update kernel.
pub fn acoustic2d(variant: crate::TransposeVariant) -> Vec<KernelDesc> {
    let vel = k("ac2d_velocity", 42.0, 4.4, 4.0, 46);
    let prs = k("ac2d_pressure", 34.0, 5.2, 3.0, 44);
    match variant {
        crate::TransposeVariant::Direct => vec![
            KernelDesc {
                coalesced: false,
                ..vel
            },
            KernelDesc {
                coalesced: false,
                ..prs
            },
        ],
        crate::TransposeVariant::Transposed => vec![
            // Transposes add traffic but restore coalescing.
            k("ac2d_transpose_in", 0.0, 1.0, 1.0, 16),
            vel,
            prs,
            k("ac2d_transpose_out", 0.0, 1.0, 1.0, 16),
        ],
    }
}

/// Acoustic 3D: velocity kernel plus fused or fissioned pressure kernel(s).
pub fn acoustic3d(variant: crate::FissionVariant) -> Vec<KernelDesc> {
    let vel = k("ac3d_velocity", 66.0, 6.0, 6.0, 58);
    match variant {
        crate::FissionVariant::Fused => vec![
            vel,
            // All three dimension derivatives in one body: address arithmetic
            // for many multi-dimensional arrays → heavy register pressure,
            // beyond the Fermi 63-register cap.
            k("ac3d_pressure_fused", 52.0, 7.4, 4.0, 96),
        ],
        crate::FissionVariant::Fissioned => vec![
            vel,
            k("ac3d_pressure_dx", 18.0, 3.2, 2.0, 30),
            k("ac3d_pressure_dy", 18.0, 3.4, 2.0, 30),
            k("ac3d_pressure_dz", 20.0, 3.6, 2.0, 32),
        ],
    }
}

/// Elastic 2D: two velocity kernels + three stress kernels (independent of
/// each other within a group — the async-stream candidates of Figure 11).
pub fn elastic2d() -> Vec<KernelDesc> {
    vec![
        k("el2d_vx", 38.0, 4.2, 2.0, 44),
        k("el2d_vz", 38.0, 4.2, 2.0, 44),
        k("el2d_sxx_szz", 52.0, 5.6, 4.0, 54),
        k("el2d_sxz", 34.0, 4.0, 2.0, 42),
    ]
}

/// Elastic 3D: three velocity kernels + three stress-kernel groups.
///
/// Per-point costs are far above the naive operation count: each kernel
/// streams staggered fields at mutually misaligned offsets plus its share
/// of the 18 C-PML ψ arrays, and the z-direction staggered taps miss L2 at
/// production grids (same effect as the isotropic 3D kernel, multiplied by
/// the field count). This is what makes the paper's elastic 3D runs two
/// orders of magnitude longer than acoustic ones.
pub fn elastic3d() -> Vec<KernelDesc> {
    vec![
        k("el3d_vx", 140.0, 14.0, 2.0, 58),
        k("el3d_vy", 140.0, 14.0, 2.0, 58),
        k("el3d_vz", 140.0, 14.0, 2.0, 58),
        k("el3d_sdiag", 210.0, 19.0, 6.0, 62),
        k("el3d_sxy_sxz", 155.0, 15.5, 4.0, 56),
        k("el3d_syz", 100.0, 11.0, 2.0, 48),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FissionVariant, IsoPmlVariant, TransposeVariant};

    #[test]
    fn work_ordering_matches_paper() {
        // The paper: the elastic model "is more complicated and
        // computationally intensive"; isotropic is the lightest. Total
        // per-point flops per time step must rise iso → acoustic → elastic.
        let total = |ds: Vec<KernelDesc>| ds.iter().map(|d| d.flops).sum::<f64>();
        let iso = total(iso3d(IsoPmlVariant::OriginalIfs));
        let ac = total(acoustic3d(FissionVariant::Fused));
        let el = total(elastic3d());
        assert!(
            iso < ac && ac < el,
            "iso {iso}, acoustic {ac}, elastic {el}"
        );
    }

    #[test]
    fn fused_kernel_exceeds_fermi_register_cap() {
        let fused = &acoustic3d(FissionVariant::Fused)[1];
        assert!(fused.regs > 63, "fused kernel must spill on Fermi");
        for d in &acoustic3d(FissionVariant::Fissioned)[1..] {
            assert!(d.regs <= 63, "fissioned kernels must fit Fermi registers");
        }
    }

    #[test]
    fn direct_2d_backward_is_uncoalesced() {
        assert!(acoustic2d(TransposeVariant::Direct)
            .iter()
            .all(|d| !d.coalesced));
        let t = acoustic2d(TransposeVariant::Transposed);
        assert!(t.iter().all(|d| d.coalesced));
        // Transposed variant pays two extra copy kernels.
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn original_iso_diverges_restructured_does_not() {
        assert!(iso2d(IsoPmlVariant::OriginalIfs)[0].divergence > 0.0);
        for d in iso2d(IsoPmlVariant::RestructuredIndices) {
            assert_eq!(d.divergence, 0.0);
        }
        for d in iso3d(IsoPmlVariant::PmlEverywhere) {
            assert_eq!(d.divergence, 0.0);
        }
    }

    #[test]
    fn bytes_and_intensity_consistent() {
        let d = k("t", 40.0, 4.0, 1.0, 32);
        assert_eq!(d.bytes_per_point(), 20.0);
        assert_eq!(d.intensity(), 2.0);
    }

    #[test]
    fn elastic_has_independent_kernel_groups() {
        // The async experiment needs multiple kernels per step.
        assert!(elastic2d().len() >= 4);
        assert!(elastic3d().len() >= 6);
    }
}
