//! # seismic-prop
//!
//! The six finite-difference propagators of the paper — {isotropic
//! constant-density, acoustic variable-density, elastic velocity–stress} ×
//! {2D, 3D} — plus the kernel variants its GPU optimization study compares:
//!
//! * **isotropic** ([`iso2d`], [`iso3d`]): 2nd-order-in-time leapfrog on the
//!   scalar wave equation with a damping-layer PML; three kernel variants
//!   reproduce the Figure 6/7 restructurings (boundary `if`s, restructured
//!   loop indices, PML-everywhere),
//! * **acoustic** ([`acoustic2d`], [`acoustic3d`]): 1st-order staggered
//!   pressure–velocity system with C-PML; the 3D pressure kernel exists in
//!   *fused* and *fissioned* forms (Figure 12) and the 2D system in *direct*
//!   and *transposed* forms (Figure 13),
//! * **elastic** ([`elastic2d`], [`elastic3d`]): velocity–stress staggered
//!   grid (2D: 2 velocities + 3 stresses, 3D: 3 velocities + 6 stresses)
//!   with C-PML; its many independent kernels are what the paper overlaps
//!   with `async` streams (Figure 11).
//!
//! As an extension beyond the paper's evaluation, [`vti2d`] implements the
//! anisotropic (VTI pseudo-acoustic) formulation the authors defer to
//! future work.
//!
//! Every step function is a plain sequential loop nest over a z-slab range
//! `[z0, z1)`. Single-threaded callers pass the full range; `openacc-sim`
//! and `mpi-sim` partition the range across threads/ranks. The [`desc`]
//! module publishes per-kernel arithmetic descriptors (flops, bytes,
//! registers) consumed by the `accel-sim` performance model.

pub mod acoustic2d;
pub mod acoustic3d;
pub mod desc;
pub mod elastic2d;
pub mod elastic3d;
pub mod iso2d;
pub mod iso3d;
pub mod vti2d;

use serde::{Deserialize, Serialize};

/// Which variant of the isotropic PML kernel to run (Figures 6/7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IsoPmlVariant {
    /// Boundary `if`-statements inside the main loop (the original code).
    OriginalIfs,
    /// Loop region restructured so interior and boundary strips are separate
    /// perfectly-nested loops (no branches inside any kernel).
    RestructuredIndices,
    /// Damping terms evaluated at every grid point; σ = 0 in the interior
    /// makes this numerically identical while removing all branches.
    PmlEverywhere,
}

/// Which form of the acoustic 3D pressure-update kernel to run (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FissionVariant {
    /// One kernel computes the x, y, and z derivative contributions —
    /// maximum register pressure.
    Fused,
    /// Three kernels, one per dimension — the paper's loop-fission rewrite
    /// that gained 3× on Fermi.
    Fissioned,
}

/// Memory-access strategy of the acoustic 2D backward kernel (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransposeVariant {
    /// Update sweeps the strided (z) axis innermost — uncoalesced.
    Direct,
    /// Transpose to scratch, sweep the contiguous axis, transpose back.
    Transposed,
}
