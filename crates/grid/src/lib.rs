//! # seismic-grid
//!
//! Dense regular-grid containers and finite-difference machinery shared by
//! every propagator in the `acc-rtm` workspace.
//!
//! The paper ("GPU Technology Applied to Reverse Time Migration and Seismic
//! Modeling via OpenACC", PMAM'15) discretizes the isotropic, acoustic, and
//! elastic wave equations with an 8th-order spatial stencil ("operators with a
//! 3D stencil width of 8", a 25-point star in 3D) and 2nd-order leapfrog time
//! stepping. This crate provides:
//!
//! * [`Field2`] / [`Field3`] — flat, cache-friendly `f32` field storage with
//!   the *x* axis contiguous (matching the Fortran column-major innermost loop
//!   of the original code, which is what the coalescing experiments of the
//!   paper hinge on),
//! * [`fd`] — centered and staggered finite-difference coefficient tables for
//!   orders 2–8 with their Taylor-series derivations tested,
//! * [`deriv`] — reference derivative operators built from those tables,
//! * [`cfl`] — Courant–Friedrichs–Lewy stability helpers,
//! * [`dispersion`] — von Neumann phase-velocity analysis of the stencils,
//! * [`Extent2`] / [`Extent3`] — index-space bookkeeping (interior vs halo),
//! * [`rng`] — dependency-free SplitMix64 and coordinate hashes for the
//!   seeded random-boundary construction (bitwise reproducible by design).
//!
//! Everything here is deliberately scalar and allocation-free in the hot path;
//! parallel execution lives in `openacc-sim` / `mpi-sim`, which iterate over
//! these containers.

pub mod cfl;
pub mod deriv;
pub mod dispersion;
pub mod extent;
pub mod fd;
pub mod field2;
pub mod field3;
pub mod rng;
pub mod sync_slice;

pub use extent::{Extent2, Extent3};
pub use fd::UnsupportedOrder;
pub use field2::Field2;
pub use field3::Field3;
pub use sync_slice::SyncSlice;

/// Half-width of the spatial stencil used throughout the workspace.
///
/// The paper uses operators with a stencil *width* of 8 (8th-order accuracy),
/// i.e. 4 points on each side of the center, which also fixes the ghost-node
/// thickness exchanged between MPI sub-domains.
pub const STENCIL_HALF: usize = 4;

/// Full spatial accuracy order of the default operators.
pub const STENCIL_ORDER: usize = 2 * STENCIL_HALF;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_constants_consistent() {
        assert_eq!(STENCIL_ORDER, 8);
        assert_eq!(STENCIL_HALF * 2, STENCIL_ORDER);
    }
}
