//! Finite-difference coefficient tables.
//!
//! Taylor-series coefficients for the centered and staggered operators used by
//! the three propagators. The paper's operators are 8th-order ("stencil width
//! of 8"); lower orders are kept for the convergence-order tests, which verify
//! that each table really achieves its nominal accuracy.

/// A request for a coefficient table at an order no table exists for.
///
/// The supported orders are the even orders 2, 4, 6, 8 — 8 being the
/// paper's operator. Anything else (odd, zero, or higher than tabulated)
/// is this error rather than a panic, so config-driven callers (CLI order
/// flags, CFL helpers) can surface it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedOrder {
    /// The rejected order.
    pub order: usize,
    /// Which operator family the table was requested from.
    pub operator: &'static str,
}

impl std::fmt::Display for UnsupportedOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unsupported {} order {} (supported: 2, 4, 6, 8)",
            self.operator, self.order
        )
    }
}

impl std::error::Error for UnsupportedOrder {}

/// Centered second-derivative coefficients (c\[0\] is the center weight).
///
/// d²u/dx² ≈ (1/h²) · ( c₀·u\[i\] + Σₖ cₖ·(u\[i+k\] + u\[i−k\]) )
pub fn try_centered_second(order: usize) -> Result<&'static [f64], UnsupportedOrder> {
    match order {
        2 => Ok(&[-2.0, 1.0]),
        4 => Ok(&[-5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0]),
        6 => Ok(&[-49.0 / 18.0, 3.0 / 2.0, -3.0 / 20.0, 1.0 / 90.0]),
        8 => Ok(&[
            -205.0 / 72.0,
            8.0 / 5.0,
            -1.0 / 5.0,
            8.0 / 315.0,
            -1.0 / 560.0,
        ]),
        _ => Err(UnsupportedOrder {
            order,
            operator: "centered second-derivative",
        }),
    }
}

/// [`try_centered_second`] for the fixed-order call sites (the workspace
/// default is the literal 8). Panics on unsupported orders.
pub fn centered_second(order: usize) -> &'static [f64] {
    try_centered_second(order).unwrap_or_else(|e| panic!("{e}"))
}

/// Centered first-derivative coefficients (antisymmetric; c\[0\] pairs with k=1).
///
/// du/dx ≈ (1/h) · Σₖ cₖ·(u\[i+k\] − u\[i−k\])
pub fn try_centered_first(order: usize) -> Result<&'static [f64], UnsupportedOrder> {
    match order {
        2 => Ok(&[1.0 / 2.0]),
        4 => Ok(&[2.0 / 3.0, -1.0 / 12.0]),
        6 => Ok(&[3.0 / 4.0, -3.0 / 20.0, 1.0 / 60.0]),
        8 => Ok(&[4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0]),
        _ => Err(UnsupportedOrder {
            order,
            operator: "centered first-derivative",
        }),
    }
}

/// [`try_centered_first`] for fixed-order call sites; panics on
/// unsupported orders.
pub fn centered_first(order: usize) -> &'static [f64] {
    try_centered_first(order).unwrap_or_else(|e| panic!("{e}"))
}

/// Staggered first-derivative coefficients on a half-offset grid.
///
/// du/dx|_{i+1/2} ≈ (1/h) · Σₖ cₖ·(u\[i+1+k\] − u\[i−k\])
///
/// These are the operators for the acoustic and elastic staggered-grid
/// first-order systems; the paper notes the staggered approach "has the
/// advantage of accuracy with less computational effort because it allows a
/// larger grid size".
pub fn try_staggered_first(order: usize) -> Result<&'static [f64], UnsupportedOrder> {
    match order {
        2 => Ok(&[1.0]),
        4 => Ok(&[9.0 / 8.0, -1.0 / 24.0]),
        6 => Ok(&[75.0 / 64.0, -25.0 / 384.0, 3.0 / 640.0]),
        8 => Ok(&[
            1225.0 / 1024.0,
            -245.0 / 3072.0,
            49.0 / 5120.0,
            -5.0 / 7168.0,
        ]),
        _ => Err(UnsupportedOrder {
            order,
            operator: "staggered first-derivative",
        }),
    }
}

/// [`try_staggered_first`] for fixed-order call sites; panics on
/// unsupported orders.
pub fn staggered_first(order: usize) -> &'static [f64] {
    try_staggered_first(order).unwrap_or_else(|e| panic!("{e}"))
}

/// The default 8th-order tables as `f32`, pre-cast for the hot kernels.
// The written digits intentionally mirror the exact rational values; the
// nearest-f32 roundings are checked against the f64 tables by test.
#[allow(clippy::excessive_precision)]
pub mod f32c {
    /// 8th-order centered second derivative, including the center weight.
    pub const C2: [f32; 5] = [
        -2.847_222_3,   // -205/72
        1.6,            // 8/5
        -0.2,           // -1/5
        0.025_396_826,  // 8/315
        -0.001_785_714, // -1/560
    ];

    /// 8th-order staggered first derivative.
    pub const S1: [f32; 4] = [
        1.196_289_1,      // 1225/1024
        -0.079_752_605,   // -245/3072
        0.009_570_313,    // 49/5120
        -0.000_697_544_7, // -5/7168
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Any consistent derivative stencil must annihilate constants and, for
    /// first derivatives, reproduce linear slopes exactly.
    #[test]
    fn centered_second_weights_sum_to_zero() {
        for order in [2, 4, 6, 8] {
            let c = centered_second(order);
            let total: f64 = c[0] + 2.0 * c[1..].iter().sum::<f64>();
            assert!(total.abs() < 1e-12, "order {order}: sum {total}");
        }
    }

    #[test]
    fn centered_first_reproduces_unit_slope() {
        for order in [2, 4, 6, 8] {
            let c = centered_first(order);
            // Σ cₖ·((i+k)−(i−k)) = Σ cₖ·2k must equal 1.
            let slope: f64 = c
                .iter()
                .enumerate()
                .map(|(j, &ck)| ck * 2.0 * (j + 1) as f64)
                .sum();
            assert!((slope - 1.0).abs() < 1e-12, "order {order}: slope {slope}");
        }
    }

    #[test]
    fn staggered_first_reproduces_unit_slope() {
        for order in [2, 4, 6, 8] {
            let c = staggered_first(order);
            // Offsets are (k+1/2) on each side: Σ cₖ·(2k+1) must equal 1.
            let slope: f64 = c
                .iter()
                .enumerate()
                .map(|(j, &ck)| ck * (2 * j + 1) as f64)
                .sum();
            assert!((slope - 1.0).abs() < 1e-12, "order {order}: slope {slope}");
        }
    }

    #[test]
    fn f32_tables_match_f64_tables() {
        let c2 = centered_second(8);
        for (a, b) in f32c::C2.iter().zip(c2.iter()) {
            assert!((*a as f64 - b).abs() < 1e-6);
        }
        let s1 = staggered_first(8);
        for (a, b) in f32c::S1.iter().zip(s1.iter()) {
            assert!((*a as f64 - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn odd_order_rejected() {
        centered_second(3);
    }

    /// The fallible variants return the typed error with the offending
    /// order and operator family, instead of panicking.
    #[test]
    fn unsupported_order_is_a_typed_error() {
        let e = try_centered_second(3).unwrap_err();
        assert_eq!(e.order, 3);
        assert!(e.to_string().contains("centered second-derivative order 3"));
        let e = try_centered_first(10).unwrap_err();
        assert_eq!(e.operator, "centered first-derivative");
        let e = try_staggered_first(0).unwrap_err();
        assert_eq!(e.order, 0);
        // Every supported order round-trips through the fallible path.
        for order in [2, 4, 6, 8] {
            assert_eq!(try_centered_second(order).unwrap(), centered_second(order));
            assert_eq!(try_centered_first(order).unwrap(), centered_first(order));
            assert_eq!(try_staggered_first(order).unwrap(), staggered_first(order));
        }
    }

    /// Empirical convergence check: the 8th-order second derivative of sin(x)
    /// must converge ~O(h⁸) (measured as a large reduction when h halves).
    #[test]
    fn second_derivative_convergence_order() {
        fn err(order: usize, h: f64) -> f64 {
            let c = centered_second(order);
            let x0 = 0.7f64;
            let mut acc = c[0] * x0.sin();
            for (j, &ck) in c.iter().enumerate().skip(1) {
                let k = j as f64;
                acc += ck * ((x0 + k * h).sin() + (x0 - k * h).sin());
            }
            let approx = acc / (h * h);
            (approx - (-x0.sin())).abs()
        }
        // Larger steps for the high orders keep truncation error above the
        // f64 rounding floor, which would otherwise mask the convergence rate.
        for order in [2usize, 4, 6, 8] {
            let h = 0.4;
            let e1 = err(order, h);
            let e2 = err(order, h / 2.0);
            let rate = (e1 / e2).log2();
            assert!(
                rate > order as f64 - 0.7,
                "order {order}: measured rate {rate}"
            );
        }
    }

    /// Staggered first derivative convergence on sin(x), evaluated mid-cell.
    #[test]
    fn staggered_derivative_convergence_order() {
        fn err(order: usize, h: f64) -> f64 {
            let c = staggered_first(order);
            let x0 = 0.3f64; // derivative evaluated here, samples at ±(k+1/2)h
            let mut acc = 0.0;
            for (j, &ck) in c.iter().enumerate() {
                let off = (j as f64 + 0.5) * h;
                acc += ck * ((x0 + off).sin() - (x0 - off).sin());
            }
            let approx = acc / h;
            (approx - x0.cos()).abs()
        }
        for order in [2usize, 4, 6, 8] {
            let e1 = err(order, 0.1);
            let e2 = err(order, 0.05);
            let rate = (e1 / e2).log2();
            assert!(
                rate > order as f64 - 0.5,
                "order {order}: measured rate {rate}"
            );
        }
    }
}
