//! Dense 3D `f32` field with halo.

use crate::Extent3;

/// A dense 3D scalar field stored flat, x fastest, z slowest.
///
/// 3D analogue of [`crate::Field2`]; see that type for the indexing
/// conventions. 3D fields are the memory hogs of the workspace — a single
/// 520³ field is ~560 MB — so the container never copies implicitly and the
/// propagators mutate it in place through the raw slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    extent: Extent3,
    data: Vec<f32>,
}

impl Field3 {
    /// Zero-filled field of the given extent.
    pub fn zeros(extent: Extent3) -> Self {
        Self {
            extent,
            data: vec![0.0; extent.len()],
        }
    }

    /// Field with every allocated point set to `value`.
    pub fn filled(extent: Extent3, value: f32) -> Self {
        Self {
            extent,
            data: vec![value; extent.len()],
        }
    }

    /// Build a field by evaluating `f(ix, iy, iz)` at every interior point.
    pub fn from_fn(extent: Extent3, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let mut out = Self::zeros(extent);
        for iz in 0..extent.nz {
            for iy in 0..extent.ny {
                for ix in 0..extent.nx {
                    let v = f(ix, iy, iz);
                    out.data[extent.idx(ix, iy, iz)] = v;
                }
            }
        }
        out
    }

    /// Extent of this field.
    #[inline(always)]
    pub fn extent(&self) -> Extent3 {
        self.extent
    }

    /// Flat interior index helper.
    #[inline(always)]
    pub fn idx(&self, ix: usize, iy: usize, iz: usize) -> usize {
        self.extent.idx(ix, iy, iz)
    }

    /// Interior read.
    #[inline(always)]
    pub fn get(&self, ix: usize, iy: usize, iz: usize) -> f32 {
        self.data[self.extent.idx(ix, iy, iz)]
    }

    /// Interior write.
    #[inline(always)]
    pub fn set(&mut self, ix: usize, iy: usize, iz: usize, v: f32) {
        let i = self.extent.idx(ix, iy, iz);
        self.data[i] = v;
    }

    /// Full backing slice, halo included.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Full mutable backing slice, halo included.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Zero every allocated value.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Swap storage with another field of the same extent (time-level swap).
    pub fn swap(&mut self, other: &mut Self) {
        assert_eq!(self.extent, other.extent, "swap requires equal extents");
        std::mem::swap(&mut self.data, &mut other.data);
    }

    /// Overwrite the whole allocation (halo included) from `other` — the
    /// allocation-free replacement for `clone()` when a recycled field of
    /// the same extent is at hand (snapshot slots, arena buffers).
    pub fn copy_from(&mut self, other: &Field3) {
        assert_eq!(
            self.extent, other.extent,
            "copy_from requires equal extents"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Maximum absolute interior value.
    pub fn max_abs(&self) -> f32 {
        let mut m = 0.0f32;
        for iz in 0..self.extent.nz {
            for iy in 0..self.extent.ny {
                for ix in 0..self.extent.nx {
                    m = m.max(self.get(ix, iy, iz).abs());
                }
            }
        }
        m
    }

    /// Sum of squared interior values.
    pub fn energy(&self) -> f64 {
        let mut s = 0.0f64;
        for iz in 0..self.extent.nz {
            for iy in 0..self.extent.ny {
                for ix in 0..self.extent.nx {
                    let v = self.get(ix, iy, iz) as f64;
                    s += v * v;
                }
            }
        }
        s
    }

    /// Extract the 2D x–z plane at interior `iy` (diagnostics / rendering).
    pub fn slice_y(&self, iy: usize) -> crate::Field2 {
        let e = self.extent;
        let e2 = crate::Extent2::new(e.nx, e.nz, e.halo);
        crate::Field2::from_fn(e2, |ix, iz| self.get(ix, iy, iz))
    }

    /// [`slice_y`](Self::slice_y) into a caller-owned plane without
    /// allocating. Only the interior is written (halos are left alone), so
    /// the result matches `slice_y` exactly when `out` started zeroed.
    pub fn write_slice_y_into(&self, iy: usize, out: &mut crate::Field2) {
        let e = self.extent;
        let e2 = out.extent();
        assert_eq!(
            (e2.nx, e2.nz, e2.halo),
            (e.nx, e.nz, e.halo),
            "plane extent mismatch"
        );
        for iz in 0..e.nz {
            for ix in 0..e.nx {
                out.set(ix, iz, self.get(ix, iy, iz));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext() -> Extent3 {
        Extent3::new(5, 4, 3, 2)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut f = Field3::zeros(ext());
        f.set(4, 3, 2, -2.5);
        assert_eq!(f.get(4, 3, 2), -2.5);
        assert_eq!(f.as_slice().len(), ext().len());
    }

    #[test]
    fn from_fn_matches_get() {
        let f = Field3::from_fn(ext(), |ix, iy, iz| (ix + 10 * iy + 100 * iz) as f32);
        assert_eq!(f.get(2, 3, 1), 132.0);
        assert_eq!(f.as_slice()[0], 0.0); // halo untouched
    }

    #[test]
    fn swap_and_energy() {
        let mut a = Field3::zeros(ext());
        let mut b = Field3::zeros(ext());
        a.set(0, 0, 0, 3.0);
        b.set(0, 0, 0, 4.0);
        a.swap(&mut b);
        assert_eq!(a.get(0, 0, 0), 4.0);
        assert_eq!(a.energy(), 16.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn slice_y_extracts_plane() {
        let f = Field3::from_fn(ext(), |ix, iy, iz| (ix * 100 + iy * 10 + iz) as f32);
        let p = f.slice_y(2);
        assert_eq!(p.get(3, 1), 321.0);
        assert_eq!(p.extent().nx, ext().nx);
        assert_eq!(p.extent().nz, ext().nz);
    }
}
