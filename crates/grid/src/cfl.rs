//! Courant–Friedrichs–Lewy stability helpers.
//!
//! Leapfrog time stepping of the wave equation is conditionally stable: the
//! time step must satisfy `dt ≤ C·h_min / v_max` where `C` depends on the
//! spatial order and dimensionality. The drivers in `rtm-core` pick `dt` via
//! [`stable_dt`]; the stability tests in `seismic-prop` deliberately violate
//! the bound and assert blow-up.

use crate::fd::{try_centered_second, UnsupportedOrder};

/// Courant number for the centered second-order-in-time scheme with a
/// centered spatial stencil of the given order, in `dims` dimensions.
///
/// Derived from von Neumann analysis: the worst-mode amplification stays
/// bounded iff `v·dt·sqrt(Σ_axis 4/h² · S)` ≤ 2 where `S = Σ|cₖ| / 2`-ish;
/// in the standard form the limit is `dt ≤ 2 / (v·sqrt(dims·Σ|cₖ|)/h)`.
pub fn try_courant_limit(order: usize, dims: usize) -> Result<f64, UnsupportedOrder> {
    let c = try_centered_second(order)?;
    let abs_sum: f64 = c[0].abs() + 2.0 * c[1..].iter().map(|x| x.abs()).sum::<f64>();
    Ok(2.0 / (dims as f64 * abs_sum).sqrt())
}

/// [`try_courant_limit`] for fixed-order call sites; panics on unsupported
/// orders.
pub fn courant_limit(order: usize, dims: usize) -> f64 {
    try_courant_limit(order, dims).unwrap_or_else(|e| panic!("{e}"))
}

/// Largest stable `dt` for max velocity `v_max` and smallest spacing `h_min`,
/// with a safety factor (default callers use 0.9).
pub fn try_stable_dt(
    order: usize,
    dims: usize,
    v_max: f32,
    h_min: f32,
    safety: f32,
) -> Result<f32, UnsupportedOrder> {
    assert!(v_max > 0.0 && h_min > 0.0 && safety > 0.0 && safety <= 1.0);
    Ok((try_courant_limit(order, dims)? as f32) * safety * h_min / v_max)
}

/// [`try_stable_dt`] for fixed-order call sites (the drivers all pass the
/// literal workspace order 8); panics on unsupported orders.
pub fn stable_dt(order: usize, dims: usize, v_max: f32, h_min: f32, safety: f32) -> f32 {
    try_stable_dt(order, dims, v_max, h_min, safety).unwrap_or_else(|e| panic!("{e}"))
}

/// Number of grid points per minimum wavelength for dispersion control.
///
/// `v_min / (f_max · h)`: 8th-order schemes typically need ≥ 3–4 points;
/// lower-order schemes need more. Used to pick the peak source frequency.
pub fn points_per_wavelength(v_min: f32, f_max: f32, h: f32) -> f32 {
    v_min / (f_max * h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn courant_shrinks_with_dims() {
        let c1 = courant_limit(8, 1);
        let c2 = courant_limit(8, 2);
        let c3 = courant_limit(8, 3);
        assert!(c1 > c2 && c2 > c3);
        // 2nd order 1D classic limit is exactly 1.
        assert!((courant_limit(2, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_order_is_more_restrictive() {
        assert!(courant_limit(8, 3) < courant_limit(2, 3));
    }

    #[test]
    fn stable_dt_scales_linearly() {
        let a = stable_dt(8, 2, 2000.0, 10.0, 0.9);
        let b = stable_dt(8, 2, 2000.0, 20.0, 0.9);
        assert!((b / a - 2.0).abs() < 1e-5);
        let c = stable_dt(8, 2, 4000.0, 10.0, 0.9);
        assert!((a / c - 2.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic]
    fn stable_dt_rejects_zero_velocity() {
        stable_dt(8, 2, 0.0, 10.0, 0.9);
    }

    /// Unsupported orders surface as the typed error through the CFL
    /// helpers instead of a panic deep in the coefficient table.
    #[test]
    fn unsupported_order_propagates() {
        assert!(try_courant_limit(5, 2).is_err());
        let e = try_stable_dt(12, 3, 2000.0, 10.0, 0.9).unwrap_err();
        assert_eq!(e.order, 12);
        assert_eq!(
            try_stable_dt(8, 2, 2000.0, 10.0, 0.9).unwrap(),
            stable_dt(8, 2, 2000.0, 10.0, 0.9)
        );
    }

    #[test]
    fn ppw_reasonable() {
        // 1500 m/s water, 25 Hz, 10 m spacing → 6 points per wavelength.
        assert!((points_per_wavelength(1500.0, 25.0, 10.0) - 6.0).abs() < 1e-6);
    }
}
