//! Dense 2D `f32` field with halo.

use crate::Extent2;

/// A dense 2D scalar field stored flat with the x axis contiguous.
///
/// All wavefields, model parameter grids, and image buffers in the 2D
/// propagators use this container. Indexing methods come in two flavours:
/// *interior* coordinates (`get`/`set`/[`Field2::idx`]) exclude the halo, and
/// *raw* coordinates include it. The raw slice is exposed for the hot kernels,
/// which do their own flat index arithmetic exactly like the original Fortran.
#[derive(Debug, Clone, PartialEq)]
pub struct Field2 {
    extent: Extent2,
    data: Vec<f32>,
}

impl Field2 {
    /// Zero-filled field of the given extent.
    pub fn zeros(extent: Extent2) -> Self {
        Self {
            extent,
            data: vec![0.0; extent.len()],
        }
    }

    /// Field with every allocated point (halo included) set to `value`.
    pub fn filled(extent: Extent2, value: f32) -> Self {
        Self {
            extent,
            data: vec![value; extent.len()],
        }
    }

    /// Build a field by evaluating `f(ix, iz)` at every *interior* point;
    /// halo points are zero.
    pub fn from_fn(extent: Extent2, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut out = Self::zeros(extent);
        for iz in 0..extent.nz {
            for ix in 0..extent.nx {
                let v = f(ix, iz);
                out.data[extent.idx(ix, iz)] = v;
            }
        }
        out
    }

    /// Extent of this field.
    #[inline(always)]
    pub fn extent(&self) -> Extent2 {
        self.extent
    }

    /// Flat interior index helper.
    #[inline(always)]
    pub fn idx(&self, ix: usize, iz: usize) -> usize {
        self.extent.idx(ix, iz)
    }

    /// Interior read.
    #[inline(always)]
    pub fn get(&self, ix: usize, iz: usize) -> f32 {
        self.data[self.extent.idx(ix, iz)]
    }

    /// Interior write.
    #[inline(always)]
    pub fn set(&mut self, ix: usize, iz: usize, v: f32) {
        let i = self.extent.idx(ix, iz);
        self.data[i] = v;
    }

    /// Full backing slice, halo included.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Full mutable backing slice, halo included.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Set every allocated value to zero (reused between shots).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Swap storage with another field of the same extent.
    ///
    /// This is the "logically swapping t_n and t_{n+1} arrays" step of the
    /// paper's forward phase: no data moves, only the buffers exchange roles.
    pub fn swap(&mut self, other: &mut Self) {
        assert_eq!(self.extent, other.extent, "swap requires equal extents");
        std::mem::swap(&mut self.data, &mut other.data);
    }

    /// Maximum absolute interior value (stability diagnostics).
    pub fn max_abs(&self) -> f32 {
        let mut m = 0.0f32;
        for iz in 0..self.extent.nz {
            for ix in 0..self.extent.nx {
                m = m.max(self.get(ix, iz).abs());
            }
        }
        m
    }

    /// Sum of squared interior values (discrete energy diagnostics).
    pub fn energy(&self) -> f64 {
        let mut s = 0.0f64;
        for iz in 0..self.extent.nz {
            for ix in 0..self.extent.nx {
                let v = self.get(ix, iz) as f64;
                s += v * v;
            }
        }
        s
    }

    /// Transposed copy: element (ix, iz) of the result equals (iz, ix) of
    /// `self`. Halo is transposed along with the interior.
    ///
    /// This is the transposition the paper performs on the GPU to restore
    /// coalesced access in the acoustic 2D backward kernel (Figure 13): after
    /// transposing, the formerly strided loop runs over the contiguous axis.
    pub fn transposed(&self) -> Field2 {
        let e = self.extent;
        let te = Extent2::new(e.nz, e.nx, e.halo);
        let mut out = Field2::zeros(te);
        let fnx = e.full_nx();
        let tfnx = te.full_nx();
        for iz in 0..e.full_nz() {
            for ix in 0..e.full_nx() {
                out.data[ix * tfnx + iz] = self.data[iz * fnx + ix];
            }
        }
        out
    }

    /// In-place `self += alpha * other` over the full allocation (image
    /// stacking, gradient accumulation).
    pub fn axpy(&mut self, alpha: f32, other: &Field2) {
        assert_eq!(self.extent, other.extent, "axpy requires equal extents");
        for (d, s) in self.data.iter_mut().zip(other.data.iter()) {
            *d += alpha * s;
        }
    }

    /// In-place scale of every allocated value.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Interior dot product (f64 accumulation).
    pub fn dot(&self, other: &Field2) -> f64 {
        assert_eq!(self.extent, other.extent, "dot requires equal extents");
        let mut acc = 0.0f64;
        for iz in 0..self.extent.nz {
            for ix in 0..self.extent.nx {
                acc += self.get(ix, iz) as f64 * other.get(ix, iz) as f64;
            }
        }
        acc
    }

    /// Overwrite the whole allocation (halo included) from `other` — the
    /// allocation-free replacement for `clone()` when a recycled field of
    /// the same extent is at hand (checkpoint slots, arena buffers).
    pub fn copy_from(&mut self, other: &Field2) {
        assert_eq!(
            self.extent, other.extent,
            "copy_from requires equal extents"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Copy interior values from `other` (same extent), leaving halo alone.
    pub fn copy_interior_from(&mut self, other: &Field2) {
        assert_eq!(self.extent, other.extent);
        for iz in 0..self.extent.nz {
            for ix in 0..self.extent.nx {
                let i = self.extent.idx(ix, iz);
                self.data[i] = other.data[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext() -> Extent2 {
        Extent2::new(6, 4, 2)
    }

    #[test]
    fn zeros_and_set_get() {
        let mut f = Field2::zeros(ext());
        assert_eq!(f.get(3, 2), 0.0);
        f.set(3, 2, 7.5);
        assert_eq!(f.get(3, 2), 7.5);
        assert_eq!(f.as_slice().len(), ext().len());
    }

    #[test]
    fn from_fn_fills_interior_only() {
        let f = Field2::from_fn(ext(), |ix, iz| (ix + 10 * iz) as f32);
        assert_eq!(f.get(5, 3), 35.0);
        // Raw halo corner must stay zero.
        assert_eq!(f.as_slice()[0], 0.0);
    }

    #[test]
    fn swap_exchanges_buffers() {
        let mut a = Field2::filled(ext(), 1.0);
        let mut b = Field2::filled(ext(), 2.0);
        a.swap(&mut b);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(b.get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "swap requires equal extents")]
    fn swap_rejects_mismatched_extents() {
        let mut a = Field2::zeros(Extent2::new(4, 4, 1));
        let mut b = Field2::zeros(Extent2::new(5, 4, 1));
        a.swap(&mut b);
    }

    #[test]
    fn transpose_roundtrip_is_identity() {
        let f = Field2::from_fn(ext(), |ix, iz| (1 + ix * 31 + iz * 7) as f32);
        let tt = f.transposed().transposed();
        assert_eq!(f, tt);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let f = Field2::from_fn(ext(), |ix, iz| (ix as f32) * 100.0 + iz as f32);
        let t = f.transposed();
        assert_eq!(t.extent().nx, ext().nz);
        assert_eq!(t.extent().nz, ext().nx);
        for iz in 0..ext().nz {
            for ix in 0..ext().nx {
                assert_eq!(t.get(iz, ix), f.get(ix, iz));
            }
        }
    }

    #[test]
    fn axpy_scale_dot() {
        let mut a = Field2::from_fn(ext(), |ix, iz| (ix + iz) as f32);
        let b = Field2::filled(ext(), 2.0);
        let d0 = a.dot(&b); // 2 * sum(ix+iz)
        a.axpy(0.5, &b); // every allocated value += 1
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(3, 2), 6.0);
        a.scale(2.0);
        assert_eq!(a.get(3, 2), 12.0);
        // dot is bilinear: <a0 + 0.5 b, b> = d0 + 0.5 <b,b>; then doubled.
        let bb = b.dot(&b);
        assert!((a.dot(&b) - 2.0 * (d0 + 0.5 * bb)).abs() < 1e-9);
        // energy is the self-dot.
        assert!((a.energy() - a.dot(&a)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "axpy requires equal extents")]
    fn axpy_extent_checked() {
        let mut a = Field2::zeros(Extent2::new(4, 4, 1));
        let b = Field2::zeros(Extent2::new(5, 4, 1));
        a.axpy(1.0, &b);
    }

    #[test]
    fn energy_and_max_abs() {
        let mut f = Field2::zeros(ext());
        f.set(1, 1, -3.0);
        f.set(2, 2, 4.0);
        assert_eq!(f.max_abs(), 4.0);
        assert_eq!(f.energy(), 25.0);
    }
}
