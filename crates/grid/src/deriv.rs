//! Reference derivative operators over [`Field2`] / [`Field3`].
//!
//! These are the *specification* implementations: simple, obviously-correct
//! loops used by the test-suite to validate the fused production kernels in
//! `seismic-prop`, and by small-scale experiments. They read the halo, so the
//! caller must have applied boundary conditions / ghost exchange first.
//!
//! The sweeps are cache-blocked along x (z-rows × x-tiles, tile width from
//! `exec_host::tile::tiles`). Blocking is bitwise-free: every output point
//! is written exactly once from inputs that never change during the sweep,
//! so any iteration order over points produces identical bits — the tuner
//! affects speed only.

use crate::fd::f32c;
use crate::{Field2, Field3, STENCIL_HALF};
use exec_host::tiles;

/// Stencil rows a Laplacian point touches along the slow axes.
const LAP_ROWS: usize = 2 * STENCIL_HALF + 1;

/// 8th-order Laplacian of `u` into `out` (interior points only), grid
/// spacings `dx`, `dz`.
pub fn laplacian2(u: &Field2, out: &mut Field2, dx: f32, dz: f32) {
    let e = u.extent();
    assert_eq!(e, out.extent());
    assert!(
        e.halo >= STENCIL_HALF,
        "halo too thin for 8th-order stencil"
    );
    let fnx = e.full_nx();
    let ui = u.as_slice();
    let oi = out.as_mut_slice();
    let rdx2 = 1.0 / (dx * dx);
    let rdz2 = 1.0 / (dz * dz);
    let tiling = tiles(e.nx, 2, LAP_ROWS);
    for (x0, x1) in tiling.ranges(0, e.nx) {
        for iz in 0..e.nz {
            for ix in x0..x1 {
                let c = e.idx(ix, iz);
                let mut lap = f32c::C2[0] * ui[c] * (rdx2 + rdz2);
                for k in 1..=STENCIL_HALF {
                    lap += f32c::C2[k] * ((ui[c + k] + ui[c - k]) * rdx2);
                    lap += f32c::C2[k] * ((ui[c + k * fnx] + ui[c - k * fnx]) * rdz2);
                }
                oi[c] = lap;
            }
        }
    }
}

/// 8th-order Laplacian in 3D.
pub fn laplacian3(u: &Field3, out: &mut Field3, dx: f32, dy: f32, dz: f32) {
    let e = u.extent();
    assert_eq!(e, out.extent());
    assert!(
        e.halo >= STENCIL_HALF,
        "halo too thin for 8th-order stencil"
    );
    let fnx = e.full_nx();
    let fnxy = fnx * e.full_ny();
    let ui = u.as_slice();
    let oi = out.as_mut_slice();
    let rdx2 = 1.0 / (dx * dx);
    let rdy2 = 1.0 / (dy * dy);
    let rdz2 = 1.0 / (dz * dz);
    let tiling = tiles(e.nx, 2, LAP_ROWS * LAP_ROWS);
    for (x0, x1) in tiling.ranges(0, e.nx) {
        for iz in 0..e.nz {
            for iy in 0..e.ny {
                for ix in x0..x1 {
                    let c = e.idx(ix, iy, iz);
                    let mut lap = f32c::C2[0] * ui[c] * (rdx2 + rdy2 + rdz2);
                    for k in 1..=STENCIL_HALF {
                        lap += f32c::C2[k] * ((ui[c + k] + ui[c - k]) * rdx2);
                        lap += f32c::C2[k] * ((ui[c + k * fnx] + ui[c - k * fnx]) * rdy2);
                        lap += f32c::C2[k] * ((ui[c + k * fnxy] + ui[c - k * fnxy]) * rdz2);
                    }
                    oi[c] = lap;
                }
            }
        }
    }
}

/// Axis selector for staggered derivatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Contiguous axis.
    X,
    /// Lateral axis (3D only).
    Y,
    /// Depth axis.
    Z,
}

/// 8th-order staggered forward first derivative along `axis` in 2D:
/// `out[i] = (1/h) Σ cₖ (u[i+1+k] − u[i−k])`, i.e. the derivative evaluated
/// at the half point `i + 1/2`.
pub fn stag_d_forward2(u: &Field2, out: &mut Field2, axis: Axis, h: f32) {
    let e = u.extent();
    assert_eq!(e, out.extent());
    assert!(e.halo >= STENCIL_HALF);
    let stride = match axis {
        Axis::X => 1,
        Axis::Z => e.full_nx(),
        Axis::Y => panic!("no Y axis in 2D"),
    };
    let rh = 1.0 / h;
    let ui = u.as_slice();
    let oi = out.as_mut_slice();
    for iz in 0..e.nz {
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let mut d = 0.0f32;
            for (k, &ck) in f32c::S1.iter().enumerate() {
                d += ck * (ui[c + (k + 1) * stride] - ui[c - k * stride]);
            }
            oi[c] = d * rh;
        }
    }
}

/// 8th-order staggered backward first derivative along `axis` in 2D:
/// derivative evaluated at the half point `i − 1/2`.
pub fn stag_d_backward2(u: &Field2, out: &mut Field2, axis: Axis, h: f32) {
    let e = u.extent();
    assert_eq!(e, out.extent());
    assert!(e.halo >= STENCIL_HALF);
    let stride = match axis {
        Axis::X => 1,
        Axis::Z => e.full_nx(),
        Axis::Y => panic!("no Y axis in 2D"),
    };
    let rh = 1.0 / h;
    let ui = u.as_slice();
    let oi = out.as_mut_slice();
    for iz in 0..e.nz {
        for ix in 0..e.nx {
            let c = e.idx(ix, iz);
            let mut d = 0.0f32;
            for (k, &ck) in f32c::S1.iter().enumerate() {
                d += ck * (ui[c + k * stride] - ui[c - (k + 1) * stride]);
            }
            oi[c] = d * rh;
        }
    }
}

/// 8th-order staggered forward first derivative along `axis` in 3D.
pub fn stag_d_forward3(u: &Field3, out: &mut Field3, axis: Axis, h: f32) {
    let e = u.extent();
    assert_eq!(e, out.extent());
    assert!(e.halo >= STENCIL_HALF);
    let stride = match axis {
        Axis::X => 1,
        Axis::Y => e.full_nx(),
        Axis::Z => e.full_nx() * e.full_ny(),
    };
    let rh = 1.0 / h;
    let ui = u.as_slice();
    let oi = out.as_mut_slice();
    for iz in 0..e.nz {
        for iy in 0..e.ny {
            for ix in 0..e.nx {
                let c = e.idx(ix, iy, iz);
                let mut d = 0.0f32;
                for (k, &ck) in f32c::S1.iter().enumerate() {
                    d += ck * (ui[c + (k + 1) * stride] - ui[c - k * stride]);
                }
                oi[c] = d * rh;
            }
        }
    }
}

/// 8th-order staggered backward first derivative along `axis` in 3D.
pub fn stag_d_backward3(u: &Field3, out: &mut Field3, axis: Axis, h: f32) {
    let e = u.extent();
    assert_eq!(e, out.extent());
    assert!(e.halo >= STENCIL_HALF);
    let stride = match axis {
        Axis::X => 1,
        Axis::Y => e.full_nx(),
        Axis::Z => e.full_nx() * e.full_ny(),
    };
    let rh = 1.0 / h;
    let ui = u.as_slice();
    let oi = out.as_mut_slice();
    for iz in 0..e.nz {
        for iy in 0..e.ny {
            for ix in 0..e.nx {
                let c = e.idx(ix, iy, iz);
                let mut d = 0.0f32;
                for (k, &ck) in f32c::S1.iter().enumerate() {
                    d += ck * (ui[c + k * stride] - ui[c - (k + 1) * stride]);
                }
                oi[c] = d * rh;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Extent2, Extent3};

    const H: usize = STENCIL_HALF;

    /// Laplacian of a quadratic is exact for any order ≥ 2.
    #[test]
    fn laplacian2_exact_on_quadratic() {
        let e = Extent2::new(16, 12, H);
        // u = x² + 2 z²  (in index units, h=1) → ∇²u = 2 + 4 = 6, but halo
        // values must also follow the quadratic for interior rows near edges.
        let mut u = Field2::zeros(e);
        for iz in 0..e.full_nz() {
            for ix in 0..e.full_nx() {
                let x = ix as f32;
                let z = iz as f32;
                u.as_mut_slice()[e.raw_idx(ix, iz)] = x * x + 2.0 * z * z;
            }
        }
        let mut out = Field2::zeros(e);
        laplacian2(&u, &mut out, 1.0, 1.0);
        for iz in 0..e.nz {
            for ix in 0..e.nx {
                assert!(
                    (out.get(ix, iz) - 6.0).abs() < 1e-2,
                    "({ix},{iz}) -> {}",
                    out.get(ix, iz)
                );
            }
        }
    }

    #[test]
    fn laplacian3_exact_on_quadratic() {
        let e = Extent3::new(10, 9, 8, H);
        let mut u = Field3::zeros(e);
        for iz in 0..e.full_nz() {
            for iy in 0..e.full_ny() {
                for ix in 0..e.full_nx() {
                    let (x, y, z) = (ix as f32, iy as f32, iz as f32);
                    u.as_mut_slice()[e.raw_idx(ix, iy, iz)] = x * x + y * y + 3.0 * z * z;
                }
            }
        }
        let mut out = Field3::zeros(e);
        laplacian3(&u, &mut out, 1.0, 1.0, 1.0);
        for iz in 0..e.nz {
            for iy in 0..e.ny {
                for ix in 0..e.nx {
                    assert!((out.get(ix, iy, iz) - 10.0).abs() < 5e-2);
                }
            }
        }
    }

    /// Forward/backward staggered derivatives of a linear ramp are exact and
    /// equal.
    #[test]
    fn staggered_derivatives_exact_on_linear() {
        let e = Extent2::new(12, 10, H);
        let mut u = Field2::zeros(e);
        for iz in 0..e.full_nz() {
            for ix in 0..e.full_nx() {
                u.as_mut_slice()[e.raw_idx(ix, iz)] = 3.0 * ix as f32 - 2.0 * iz as f32;
            }
        }
        let mut fx = Field2::zeros(e);
        let mut bx = Field2::zeros(e);
        let mut fz = Field2::zeros(e);
        stag_d_forward2(&u, &mut fx, Axis::X, 1.0);
        stag_d_backward2(&u, &mut bx, Axis::X, 1.0);
        stag_d_forward2(&u, &mut fz, Axis::Z, 1.0);
        for iz in 0..e.nz {
            for ix in 0..e.nx {
                assert!((fx.get(ix, iz) - 3.0).abs() < 1e-4);
                assert!((bx.get(ix, iz) - 3.0).abs() < 1e-4);
                assert!((fz.get(ix, iz) + 2.0).abs() < 1e-4);
            }
        }
    }

    /// Backward(Forward(u)) on a sine approximates the second derivative:
    /// the compound operator must be negative-definite-ish on a smooth bump.
    #[test]
    fn staggered_compound_acts_like_second_derivative() {
        let e = Extent2::new(64, 8, H);
        let h = 0.05f32;
        let mut u = Field2::zeros(e);
        for iz in 0..e.full_nz() {
            for ix in 0..e.full_nx() {
                let x = ix as f32 * h;
                u.as_mut_slice()[e.raw_idx(ix, iz)] = (2.0 * x).sin();
            }
        }
        let mut d1 = Field2::zeros(e);
        stag_d_forward2(&u, &mut d1, Axis::X, h);
        let mut d2 = Field2::zeros(e);
        stag_d_backward2(&d1, &mut d2, Axis::X, h);
        // d²/dx² sin(2x) = −4 sin(2x); check away from the unfilled halo of d1.
        for ix in 8..e.nx - 8 {
            let x = (ix + e.halo) as f32 * h;
            let want = -4.0 * (2.0 * x).sin();
            assert!(
                (d2.get(ix, 4) - want).abs() < 1e-2,
                "ix={ix}: {} vs {}",
                d2.get(ix, 4),
                want
            );
        }
    }

    #[test]
    fn staggered_3d_exact_on_linear() {
        let e = Extent3::new(8, 8, 8, H);
        let mut u = Field3::zeros(e);
        for iz in 0..e.full_nz() {
            for iy in 0..e.full_ny() {
                for ix in 0..e.full_nx() {
                    u.as_mut_slice()[e.raw_idx(ix, iy, iz)] =
                        1.0 * ix as f32 + 2.0 * iy as f32 + 4.0 * iz as f32;
                }
            }
        }
        let mut d = Field3::zeros(e);
        stag_d_forward3(&u, &mut d, Axis::Y, 1.0);
        assert!((d.get(4, 4, 4) - 2.0).abs() < 1e-4);
        stag_d_backward3(&u, &mut d, Axis::Z, 1.0);
        assert!((d.get(4, 4, 4) - 4.0).abs() < 1e-4);
        stag_d_forward3(&u, &mut d, Axis::X, 1.0);
        assert!((d.get(4, 4, 4) - 1.0).abs() < 1e-4);
    }

    /// Forcing a tiny x-tile produces bitwise-identical Laplacians: the
    /// blocking schedule may only change speed, never bits.
    #[test]
    fn tiling_is_bitwise_invariant() {
        let e = Extent2::new(57, 23, H);
        let mut u = Field2::zeros(e);
        for iz in 0..e.full_nz() {
            for ix in 0..e.full_nx() {
                let v = ((ix * 31 + iz * 17) % 101) as f32 * 0.013 - 0.5;
                u.as_mut_slice()[e.raw_idx(ix, iz)] = v;
            }
        }
        exec_host::tile::set_tile_override(0);
        let mut whole = Field2::zeros(e);
        laplacian2(&u, &mut whole, 0.7, 1.3);
        exec_host::tile::set_tile_override(8);
        let mut tiled = Field2::zeros(e);
        laplacian2(&u, &mut tiled, 0.7, 1.3);
        exec_host::tile::set_tile_override(0);
        assert_eq!(whole.as_slice(), tiled.as_slice());
    }

    #[test]
    #[should_panic(expected = "no Y axis in 2D")]
    fn y_axis_rejected_in_2d() {
        let e = Extent2::new(8, 8, H);
        let u = Field2::zeros(e);
        let mut out = Field2::zeros(e);
        stag_d_forward2(&u, &mut out, Axis::Y, 1.0);
    }
}
