//! Index-space bookkeeping for 2D and 3D grids.
//!
//! An *extent* describes the full allocated index space of a field, including
//! the halo (ghost) shell required by the finite-difference stencil. The
//! interior is the region actually updated by a propagator; the halo is either
//! filled by boundary conditions or exchanged with a neighbouring sub-domain
//! (`mpi-sim`).

use serde::{Deserialize, Serialize};

/// Allocated size of a 2D grid plus the halo width on every side.
///
/// Axis convention throughout the workspace: `x` is the contiguous (fastest)
/// axis, `z` is depth (slowest in 2D). This mirrors the Fortran layout of the
/// original code where the innermost loop runs over the first array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent2 {
    /// Interior points along x.
    pub nx: usize,
    /// Interior points along z (depth).
    pub nz: usize,
    /// Halo width on each side (stencil half-width).
    pub halo: usize,
}

impl Extent2 {
    /// New extent with the given interior size and halo.
    pub const fn new(nx: usize, nz: usize, halo: usize) -> Self {
        Self { nx, nz, halo }
    }

    /// Allocated points along x (interior + both halos).
    pub const fn full_nx(&self) -> usize {
        self.nx + 2 * self.halo
    }

    /// Allocated points along z.
    pub const fn full_nz(&self) -> usize {
        self.nz + 2 * self.halo
    }

    /// Total allocated points.
    pub const fn len(&self) -> usize {
        self.full_nx() * self.full_nz()
    }

    /// True when the interior is empty.
    pub const fn is_empty(&self) -> bool {
        self.nx == 0 || self.nz == 0
    }

    /// Total interior points.
    pub const fn interior_len(&self) -> usize {
        self.nx * self.nz
    }

    /// Flat index of an *interior* coordinate (0-based, excluding halo).
    #[inline(always)]
    pub fn idx(&self, ix: usize, iz: usize) -> usize {
        debug_assert!(ix < self.nx && iz < self.nz);
        (iz + self.halo) * self.full_nx() + (ix + self.halo)
    }

    /// Flat index of a *raw* coordinate (0-based, including halo).
    #[inline(always)]
    pub fn raw_idx(&self, ix: usize, iz: usize) -> usize {
        debug_assert!(ix < self.full_nx() && iz < self.full_nz());
        iz * self.full_nx() + ix
    }

    /// Memory footprint in bytes for one `f32` field of this extent.
    pub const fn bytes(&self) -> usize {
        self.len() * core::mem::size_of::<f32>()
    }
}

/// Allocated size of a 3D grid plus the halo width on every side.
///
/// Axis order (fastest → slowest): `x`, `y`, `z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent3 {
    /// Interior points along x (contiguous axis).
    pub nx: usize,
    /// Interior points along y (lateral axis).
    pub ny: usize,
    /// Interior points along z (depth, slowest axis).
    pub nz: usize,
    /// Halo width on each side.
    pub halo: usize,
}

impl Extent3 {
    /// New extent with the given interior size and halo.
    pub const fn new(nx: usize, ny: usize, nz: usize, halo: usize) -> Self {
        Self { nx, ny, nz, halo }
    }

    /// Allocated points along x.
    pub const fn full_nx(&self) -> usize {
        self.nx + 2 * self.halo
    }

    /// Allocated points along y.
    pub const fn full_ny(&self) -> usize {
        self.ny + 2 * self.halo
    }

    /// Allocated points along z.
    pub const fn full_nz(&self) -> usize {
        self.nz + 2 * self.halo
    }

    /// Total allocated points.
    pub const fn len(&self) -> usize {
        self.full_nx() * self.full_ny() * self.full_nz()
    }

    /// True when the interior is empty.
    pub const fn is_empty(&self) -> bool {
        self.nx == 0 || self.ny == 0 || self.nz == 0
    }

    /// Total interior points.
    pub const fn interior_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Flat index of an *interior* coordinate.
    #[inline(always)]
    pub fn idx(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny && iz < self.nz);
        ((iz + self.halo) * self.full_ny() + (iy + self.halo)) * self.full_nx() + (ix + self.halo)
    }

    /// Flat index of a *raw* coordinate (including halo).
    #[inline(always)]
    pub fn raw_idx(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.full_nx() && iy < self.full_ny() && iz < self.full_nz());
        (iz * self.full_ny() + iy) * self.full_nx() + ix
    }

    /// Memory footprint in bytes for one `f32` field of this extent.
    pub const fn bytes(&self) -> usize {
        self.len() * core::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent2_sizes() {
        let e = Extent2::new(10, 20, 4);
        assert_eq!(e.full_nx(), 18);
        assert_eq!(e.full_nz(), 28);
        assert_eq!(e.len(), 18 * 28);
        assert_eq!(e.interior_len(), 200);
        assert_eq!(e.bytes(), 18 * 28 * 4);
        assert!(!e.is_empty());
        assert!(Extent2::new(0, 5, 4).is_empty());
    }

    #[test]
    fn extent2_indexing_row_major_x_fastest() {
        let e = Extent2::new(8, 8, 2);
        // Consecutive ix must be consecutive in memory (coalescing premise).
        assert_eq!(e.idx(3, 5) + 1, e.idx(4, 5));
        // Moving one step in z jumps a full row.
        assert_eq!(e.idx(3, 5) + e.full_nx(), e.idx(3, 6));
        // Interior (0,0) sits halo rows/cols in.
        assert_eq!(e.idx(0, 0), 2 * e.full_nx() + 2);
        assert_eq!(e.raw_idx(2, 2), e.idx(0, 0));
    }

    #[test]
    fn extent3_sizes_and_indexing() {
        let e = Extent3::new(4, 5, 6, 3);
        assert_eq!(e.full_nx(), 10);
        assert_eq!(e.full_ny(), 11);
        assert_eq!(e.full_nz(), 12);
        assert_eq!(e.len(), 10 * 11 * 12);
        assert_eq!(e.interior_len(), 120);
        assert_eq!(e.idx(1, 2, 3) + 1, e.idx(2, 2, 3));
        assert_eq!(e.idx(1, 2, 3) + e.full_nx(), e.idx(1, 3, 3));
        assert_eq!(e.idx(1, 2, 3) + e.full_nx() * e.full_ny(), e.idx(1, 2, 4));
        assert_eq!(e.raw_idx(3, 3, 3), e.idx(0, 0, 0));
    }

    #[test]
    fn extent3_empty() {
        assert!(Extent3::new(3, 0, 3, 1).is_empty());
        assert!(!Extent3::new(1, 1, 1, 0).is_empty());
    }
}
