//! Dependency-free deterministic pseudo-random numbers for boundary
//! construction.
//!
//! The random-boundary migration path (Barbosa & Coutinho) needs a velocity
//! perturbation that is **bitwise reproducible**: the same seed must build the
//! same boundary on every platform, every rerun, and every resilient-executor
//! restart, or the reconstructed source wavefield (and therefore the stacked
//! image) drifts. Pulling in the `rand` crate would tie reproducibility to an
//! external dependency's version; instead this module carries the ~10 lines of
//! SplitMix64 (Steele, Lea & Flood, OOPSLA'14 — the `java.util.SplittableRandom`
//! finalizer) with a golden-output test pinning the stream forever.
//!
//! Two usage modes:
//!
//! * [`SplitMix64`] — a sequential stream, for callers that iterate in a fixed
//!   order;
//! * [`hash2`] / [`hash3`] — stateless coordinate hashes, so a perturbation at
//!   grid point `(ix, iz)` is a pure function of `(seed, ix, iz)` and does not
//!   depend on traversal order (slab decompositions and gang counts cannot
//!   change it).

/// Golden-ratio increment of the SplitMix64 stream.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer: a bijective avalanche mix of 64 bits.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform `f32` in `[0, 1)` using the top 24 bits (the full
/// mantissa width, so every representable value in the grid is reachable and
/// the mapping is exact in one rounding step).
#[inline]
pub fn unit_f32(h: u64) -> f32 {
    const SCALE: f32 = 1.0 / (1u64 << 24) as f32;
    (h >> 40) as f32 * SCALE
}

/// Stateless hash of a seed and a 2-D grid coordinate. Pure and
/// traversal-order independent: perturbing cells in any order, from any slab
/// decomposition, yields the same value per cell.
#[inline]
pub fn hash2(seed: u64, ix: usize, iz: usize) -> u64 {
    let mut h = seed ^ GOLDEN_GAMMA;
    h = mix64(h ^ (ix as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    mix64(h ^ (iz as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25))
}

/// Stateless hash of a seed and a 3-D grid coordinate (see [`hash2`]).
#[inline]
pub fn hash3(seed: u64, ix: usize, iy: usize, iz: usize) -> u64 {
    let mut h = seed ^ GOLDEN_GAMMA;
    h = mix64(h ^ (ix as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    h = mix64(h ^ (iy as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    mix64(h ^ (iz as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25))
}

/// The SplitMix64 sequential generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed` (the canonical SplitMix64 stream for that
    /// seed — no pre-mixing, so golden vectors from the reference
    /// implementation apply directly).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Next uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_unit_f32(&mut self) -> f32 {
        unit_f32(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seed-stability golden test: the first outputs of the canonical
    /// SplitMix64 stream for seed 0 and seed 1234567, as published by the
    /// reference implementation. If this test ever fails, the random
    /// boundary of every archived image has silently changed — fix the
    /// generator, never the constants.
    #[test]
    fn splitmix64_golden_outputs_are_stable() {
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(r.next_u64(), 0xF88B_B8A8_724C_81EC);

        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(r.next_u64(), 0x2C73_F084_5854_0FA5);
    }

    #[test]
    fn unit_f32_covers_the_half_open_interval() {
        assert_eq!(unit_f32(0), 0.0);
        assert!(unit_f32(u64::MAX) < 1.0);
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let u = r.next_unit_f32();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn coordinate_hashes_are_pure_and_distinct() {
        // Pure: the same (seed, coord) always hashes identically.
        assert_eq!(hash2(7, 3, 5), hash2(7, 3, 5));
        assert_eq!(hash3(7, 3, 5, 9), hash3(7, 3, 5, 9));
        // Axes are not interchangeable and the seed matters.
        assert_ne!(hash2(7, 3, 5), hash2(7, 5, 3));
        assert_ne!(hash2(7, 3, 5), hash2(8, 3, 5));
        assert_ne!(hash3(7, 3, 5, 9), hash3(7, 9, 5, 3));
        // A 2-D hash is not the y=0 slice of the 3-D hash (distinct domains).
        assert_ne!(hash2(7, 3, 5), hash3(7, 3, 0, 5));
    }

    #[test]
    fn hashed_units_look_uniform_enough() {
        // Crude moment check over a boundary-sized population: mean of
        // U[0,1) within a few percent of 1/2. Not a statistical test suite —
        // just a tripwire against e.g. dropping the finalizer.
        let mut sum = 0.0f64;
        let n = 64 * 64;
        for ix in 0..64 {
            for iz in 0..64 {
                sum += unit_f32(hash2(99, ix, iz)) as f64;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
