//! Numerical dispersion analysis of the FD schemes.
//!
//! Von Neumann analysis of the centered second-derivative stencil: a plane
//! wave `exp(i·k·x)` through the discrete Laplacian yields an effective
//! wavenumber, and the ratio of numerical to true phase velocity measures
//! grid dispersion. This is the analysis behind the "points per
//! wavelength" rule of thumb in [`crate::cfl::points_per_wavelength`] and
//! behind the paper's choice of an 8th-order operator (fewer points per
//! wavelength for the same accuracy → smaller grids for the same target
//! frequency).

use crate::fd::{try_centered_second, UnsupportedOrder};

/// Symbol of the centered second-derivative operator at normalised
/// wavenumber `kh ∈ (0, π]`: the discrete operator maps `exp(i·k·x)` to
/// `−K̂²·exp(i·k·x)` with `K̂² = −(c₀ + 2·Σ cₖ·cos(k·h·k)) / h²`; this
/// returns `K̂²·h²` (dimensionless, equals `(kh)²` for a perfect operator).
pub fn try_symbol_k2h2(order: usize, kh: f64) -> Result<f64, UnsupportedOrder> {
    let c = try_centered_second(order)?;
    let mut s = c[0];
    for (j, &ck) in c.iter().enumerate().skip(1) {
        s += 2.0 * ck * (kh * j as f64).cos();
    }
    Ok(-s)
}

/// [`try_symbol_k2h2`] for fixed-order call sites; panics on unsupported
/// orders.
pub fn symbol_k2h2(order: usize, kh: f64) -> f64 {
    try_symbol_k2h2(order, kh).unwrap_or_else(|e| panic!("{e}"))
}

/// Ratio of numerical to true phase velocity for a spatial-only
/// semi-discretisation at `ppw` points per wavelength (`kh = 2π/ppw`).
///
/// Values below 1 mean the grid lags the true wave (the usual behaviour of
/// centered schemes).
pub fn phase_velocity_ratio(order: usize, ppw: f64) -> f64 {
    assert!(
        ppw > 2.0,
        "need more than 2 points per wavelength (Nyquist)"
    );
    let kh = 2.0 * std::f64::consts::PI / ppw;
    (symbol_k2h2(order, kh)).sqrt() / kh
}

/// Points per wavelength needed to keep the phase-velocity error below
/// `tol` (bisection over the monotone error curve).
pub fn required_ppw(order: usize, tol: f64) -> f64 {
    assert!(tol > 0.0 && tol < 0.5);
    let err = |ppw: f64| (1.0 - phase_velocity_ratio(order, ppw)).abs();
    let (mut lo, mut hi) = (2.05f64, 200.0f64);
    assert!(err(hi) < tol, "tolerance unreachable");
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if err(mid) < tol {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The symbol approaches (kh)² as kh → 0 for every order.
    #[test]
    fn symbol_consistent_at_long_wavelengths() {
        for order in [2usize, 4, 6, 8] {
            let kh = 0.05;
            let s = symbol_k2h2(order, kh);
            assert!((s / (kh * kh) - 1.0).abs() < 1e-3, "order {order}: {s}");
        }
    }

    /// Dispersion error decreases monotonically with sampling and with
    /// operator order.
    #[test]
    fn error_improves_with_ppw_and_order() {
        for order in [2usize, 4, 6, 8] {
            let e_coarse = (1.0 - phase_velocity_ratio(order, 4.0)).abs();
            let e_fine = (1.0 - phase_velocity_ratio(order, 10.0)).abs();
            assert!(e_fine < e_coarse, "order {order}");
        }
        for ppw in [4.0f64, 6.0, 10.0] {
            let e2 = (1.0 - phase_velocity_ratio(2, ppw)).abs();
            let e8 = (1.0 - phase_velocity_ratio(8, ppw)).abs();
            assert!(e8 < e2, "ppw {ppw}: {e8} vs {e2}");
        }
    }

    /// The classical engineering numbers: ~4 points/wavelength suffice for
    /// 1 % phase error at 8th order, while 2nd order needs ~15.
    #[test]
    fn required_sampling_matches_folklore() {
        let p8 = required_ppw(8, 0.01);
        let p2 = required_ppw(2, 0.01);
        assert!(p8 > 2.5 && p8 < 5.5, "8th order: {p8}");
        assert!(p2 > 10.0 && p2 < 25.0, "2nd order: {p2}");
        assert!(p2 > 3.0 * p8);
    }

    /// The numerical wave always lags (ratio ≤ 1) for these stencils.
    #[test]
    fn centered_schemes_lag() {
        for order in [2usize, 4, 6, 8] {
            for ppw in [3.0f64, 4.0, 6.0, 12.0] {
                let r = phase_velocity_ratio(order, ppw);
                assert!(r <= 1.0 + 1e-12 && r > 0.5, "order {order} ppw {ppw}: {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn below_nyquist_rejected() {
        phase_velocity_ratio(8, 1.9);
    }
}
