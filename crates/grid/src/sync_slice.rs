//! Shared-mutable field views for slab-parallel kernels.
//!
//! Every propagator kernel updates grid points independently (leapfrog and
//! staggered updates read a point's neighbourhood from *other* fields and
//! write only that point, or read-then-write the same location). The
//! parallel executors (`openacc-sim` gangs, `mpi-sim` ranks-in-process)
//! therefore partition the interior z-range into disjoint slabs and run the
//! same kernel on each slab concurrently.
//!
//! [`SyncSlice`] is the narrow unsafe surface that makes this expressible:
//! a `Send + Sync` view of a `&mut [f32]` whose writes are unchecked-by-type
//! but governed by the documented contract — **concurrent users must write
//! disjoint index sets**. All kernels in `seismic-prop` uphold this by
//! construction (each slab writes only rows in its own z-range), and the
//! test-suite cross-checks parallel against sequential execution bit-for-bit.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A `Send + Sync` view over a mutable `f32` slice for slab-disjoint writes.
///
/// # Safety contract
///
/// * [`SyncSlice::set`] and [`SyncSlice::add`] are `unsafe`: callers must
///   guarantee no other thread concurrently reads or writes the same index.
/// * [`SyncSlice::get`] is safe **within the kernel discipline**: a slab only
///   reads indices that no concurrent slab writes (its own rows, or rows of
///   fields that are read-only during the current kernel phase).
#[derive(Clone, Copy)]
pub struct SyncSlice<'a> {
    ptr: *const UnsafeCell<f32>,
    len: usize,
    _marker: PhantomData<&'a mut [f32]>,
}

unsafe impl Send for SyncSlice<'_> {}
unsafe impl Sync for SyncSlice<'_> {}

impl<'a> SyncSlice<'a> {
    /// Wrap an exclusive slice. The borrow keeps the underlying field
    /// exclusively borrowed for the view's lifetime, so no *safe* alias can
    /// exist while slabs are running.
    pub fn new(slice: &'a mut [f32]) -> Self {
        let len = slice.len();
        let ptr = slice.as_mut_ptr() as *const UnsafeCell<f32>;
        Self {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read index `i`.
    ///
    /// Bounds-checked in debug builds only — hot-kernel discipline.
    #[inline(always)]
    pub fn get(&self, i: usize) -> f32 {
        debug_assert!(i < self.len);
        unsafe { *(*self.ptr.add(i)).get() }
    }

    /// Write `v` to index `i`.
    ///
    /// # Safety
    /// No other thread may access index `i` concurrently.
    #[inline(always)]
    pub unsafe fn set(&self, i: usize, v: f32) {
        debug_assert!(i < self.len);
        *(*self.ptr.add(i)).get() = v;
    }

    /// Add `v` to index `i` (read-modify-write, same contract as `set`).
    ///
    /// # Safety
    /// No other thread may access index `i` concurrently.
    #[inline(always)]
    pub unsafe fn add(&self, i: usize, v: f32) {
        debug_assert!(i < self.len);
        let p = (*self.ptr.add(i)).get();
        *p += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut v = vec![0.0f32; 8];
        let s = SyncSlice::new(&mut v);
        unsafe {
            s.set(3, 2.5);
            s.add(3, 0.5);
        }
        assert_eq!(s.get(3), 3.0);
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert_eq!(v[3], 3.0);
    }

    #[test]
    fn disjoint_parallel_writes_are_deterministic() {
        let n = 1024;
        let mut v = vec![0.0f32; n];
        let s = SyncSlice::new(&mut v);
        std::thread::scope(|scope| {
            for chunk in 0..4 {
                scope.spawn(move || {
                    let lo = chunk * n / 4;
                    let hi = (chunk + 1) * n / 4;
                    for i in lo..hi {
                        // Safety: each thread owns a disjoint index range.
                        unsafe { s.set(i, i as f32) };
                    }
                });
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as f32);
        }
    }
}
