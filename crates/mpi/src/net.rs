//! Interconnect and CPU-socket timing models for the baseline predictions.
//!
//! The paper's reference times come from "a full socket MPI implementation":
//! 10 Ivy Bridge cores on the CRAY XC30 (Aries-class network) and 8 Westmere
//! cores on the IBM cluster (older interconnect). Section 6.2: "The Cray XC30
//! supercomputer integrates a novel intercommunications technology ... This
//! makes our CPU implementation run much faster on CRAY ... This justifies
//! the higher speedup rates on IBM, compared with CRAY." These models supply
//! the CPU-side times for the Table 3/4 reproductions.

use serde::{Deserialize, Serialize};

/// Point-to-point interconnect performance profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Human-readable name.
    pub name: &'static str,
    /// One-way small-message latency, seconds.
    pub latency_s: f64,
    /// Sustained point-to-point bandwidth, byte/s.
    pub bandwidth_bs: f64,
}

impl Interconnect {
    /// CRAY XC30 Aries-class fabric.
    pub fn aries() -> Self {
        Self {
            name: "Aries (CRAY XC30)",
            latency_s: 1.5e-6,
            bandwidth_bs: 10e9,
        }
    }

    /// The older IBM-cluster interconnect of the paper's Table 1 platform.
    pub fn ibm_cluster() -> Self {
        Self {
            name: "IBM cluster interconnect",
            latency_s: 30e-6,
            bandwidth_bs: 2.0e9,
        }
    }

    /// Duration of one message of `bytes`.
    pub fn msg_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bs
    }

    /// Fault-aware variant of [`Self::msg_time`]: under a [`NetFaultPlan`]
    /// the `seq`-th message on the `(src, dst)` link may need retransmits,
    /// each failed attempt costing the plan's timeout before the resend.
    /// Returns `(total time, attempts)`; with `plan = None` this is exactly
    /// `(msg_time(bytes), 1)`.
    pub fn msg_time_faulty(
        &self,
        bytes: u64,
        plan: Option<&NetFaultPlan>,
        src: usize,
        dst: usize,
        seq: u64,
    ) -> (f64, u32) {
        match plan {
            None => (self.msg_time(bytes), 1),
            Some(p) => {
                let attempts = p.delivery_attempts(src, dst, seq);
                (
                    (attempts - 1) as f64 * p.timeout_s + self.msg_time(bytes),
                    attempts,
                )
            }
        }
    }
}

/// Deterministic message-loss model for the interconnect: the `seq`-th
/// message on a directed `(src, dst)` link drops with `drop_prob` per
/// attempt, independently per attempt, all derived from `seed` — the same
/// plan always drops the same attempts. Delivery always succeeds within
/// `max_attempts` (the final attempt is forced through), so a run under
/// faults is slower but never wedges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetFaultPlan {
    /// Seed every drop decision derives from.
    pub seed: u64,
    /// Per-attempt drop probability in `[0, 1)`.
    pub drop_prob: f64,
    /// Sender-side retransmission timeout charged per dropped attempt.
    pub timeout_s: f64,
    /// Attempts after which delivery is forced (≥ 1).
    pub max_attempts: u32,
}

impl NetFaultPlan {
    /// A plan with no drops (every query returns one attempt).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            timeout_s: 0.0,
            max_attempts: 1,
        }
    }

    fn draw(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> f64 {
        // One splitmix64 step over the mixed coordinates — stateless, so
        // the same (link, seq, attempt) cell always resolves identically.
        let mut s = self.seed
            ^ (src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (dst as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            ^ seq.wrapping_mul(0x1656_67b1_9e37_79f9)
            ^ (attempt as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Number of attempts the `seq`-th message on `(src, dst)` needs before
    /// it gets through (1 = delivered first try). Deterministic per cell.
    pub fn delivery_attempts(&self, src: usize, dst: usize, seq: u64) -> u32 {
        let cap = self.max_attempts.max(1);
        for attempt in 1..cap {
            if self.draw(src, dst, seq, attempt) >= self.drop_prob {
                return attempt;
            }
        }
        cap
    }
}

/// One CPU socket of the baseline platform (roofline parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Physical cores used by the full-socket MPI run.
    pub cores: u32,
    /// Single-precision peak per socket, flop/s.
    pub peak_flops_sp: f64,
    /// Socket DRAM bandwidth, byte/s.
    pub mem_bandwidth_bs: f64,
    /// Fraction of peak a well-tuned stencil sustains (vectorization,
    /// pipeline and TLB losses).
    pub stencil_efficiency: f64,
}

impl CpuSpec {
    /// Intel Xeon E5-2680 v2 (10-core Ivy Bridge @ 2.8 GHz) — the CRAY node
    /// socket. 8-wide AVX mul+add: 10 × 2.8e9 × 16 = 448 GFLOP/s SP.
    pub fn ivy_bridge_e5_2680v2() -> Self {
        Self {
            name: "Xeon E5-2680 v2 (10c Ivy Bridge)",
            cores: 10,
            peak_flops_sp: 448e9,
            mem_bandwidth_bs: 51e9,
            stencil_efficiency: 0.55,
        }
    }

    /// Intel Xeon E5640 (quad-core Westmere @ 2.8 GHz) — the IBM node
    /// socket (paper's Table 1 lists 8 cores per node = 2 sockets; the
    /// full-socket baseline used 8 ranks, i.e. both sockets of the older,
    /// much slower part). 4-wide SSE mul+add: 8 × 2.8e9 × 8 = 179 GFLOP/s.
    pub fn westmere_e5640_pair() -> Self {
        Self {
            name: "2× Xeon E5640 (8c Westmere)",
            cores: 8,
            peak_flops_sp: 179e9,
            // Two triple-channel DDR3 sockets roughly match one Ivy Bridge
            // socket on bandwidth; the big gap to the CRAY node is compute
            // (SSE vs AVX, 8 slow cores vs 10 fast ones).
            mem_bandwidth_bs: 48e9,
            stencil_efficiency: 0.55,
        }
    }

    /// Roofline time for a kernel sweep of `points` grid points at
    /// `flops_per_point` and `bytes_per_point` (effective DRAM traffic).
    pub fn kernel_time(&self, points: u64, flops_per_point: f64, bytes_per_point: f64) -> f64 {
        let n = points as f64;
        let t_cmp = n * flops_per_point / (self.peak_flops_sp * self.stencil_efficiency);
        let t_mem = n * bytes_per_point / self.mem_bandwidth_bs;
        t_cmp.max(t_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aries_beats_ibm_everywhere() {
        let a = Interconnect::aries();
        let i = Interconnect::ibm_cluster();
        for bytes in [0u64, 1 << 10, 1 << 20, 1 << 26] {
            assert!(a.msg_time(bytes) < i.msg_time(bytes));
        }
    }

    #[test]
    fn msg_time_components() {
        let a = Interconnect::aries();
        assert_eq!(a.msg_time(0), a.latency_s);
        let t = a.msg_time(10_000_000_000);
        assert!((t - (a.latency_s + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn net_faults_are_deterministic_and_bounded() {
        let p = NetFaultPlan {
            seed: 99,
            drop_prob: 0.5,
            timeout_s: 1e-3,
            max_attempts: 8,
        };
        for seq in 0..2000u64 {
            let a = p.delivery_attempts(0, 1, seq);
            assert_eq!(a, p.delivery_attempts(0, 1, seq), "stateless");
            assert!((1..=8).contains(&a));
        }
        // At 50 % drop, mean attempts ≈ 2 over many messages.
        let total: u32 = (0..2000u64).map(|s| p.delivery_attempts(0, 1, s)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 2.0).abs() < 0.2, "mean {mean}");
        // No-drop plan never retransmits; time matches the plain model.
        let clean = NetFaultPlan::none(1);
        assert_eq!(clean.delivery_attempts(3, 4, 17), 1);
        let a = Interconnect::aries();
        assert_eq!(
            a.msg_time_faulty(1 << 20, None, 0, 1, 0),
            (a.msg_time(1 << 20), 1)
        );
        let (t, att) = a.msg_time_faulty(1 << 20, Some(&p), 0, 1, 0);
        assert_eq!(t, (att - 1) as f64 * p.timeout_s + a.msg_time(1 << 20));
    }

    #[test]
    fn socket_asymmetry_is_compute_not_bandwidth() {
        let cray = CpuSpec::ivy_bridge_e5_2680v2();
        let ibm = CpuSpec::westmere_e5640_pair();
        // Memory-bound kernels run comparably (similar bandwidth), but
        // compute-heavy kernels are far slower on the Westmere pair — the
        // asymmetry behind the per-case speedup differences of Table 3.
        let t_cray_mem = cray.kernel_time(1 << 24, 58.0, 22.4);
        let t_ibm_mem = ibm.kernel_time(1 << 24, 58.0, 22.4);
        assert!(
            t_ibm_mem / t_cray_mem < 1.8,
            "mem ratio {}",
            t_ibm_mem / t_cray_mem
        );
        let t_cray_cmp = cray.kernel_time(1 << 24, 400.0, 8.0);
        let t_ibm_cmp = ibm.kernel_time(1 << 24, 400.0, 8.0);
        assert!(
            t_ibm_cmp / t_cray_cmp > 2.0,
            "cmp ratio {}",
            t_ibm_cmp / t_cray_cmp
        );
    }

    #[test]
    fn stencils_are_compute_or_memory_bound_consistently() {
        let cpu = CpuSpec::ivy_bridge_e5_2680v2();
        // Very high intensity → compute term dominates.
        let t1 = cpu.kernel_time(1 << 20, 1000.0, 4.0);
        let expect = (1u64 << 20) as f64 * 1000.0 / (cpu.peak_flops_sp * cpu.stencil_efficiency);
        assert!((t1 - expect).abs() / expect < 1e-9);
        // Very low intensity → bandwidth term dominates.
        let t2 = cpu.kernel_time(1 << 20, 1.0, 100.0);
        let expect2 = (1u64 << 20) as f64 * 100.0 / cpu.mem_bandwidth_bs;
        assert!((t2 - expect2).abs() / expect2 < 1e-9);
    }
}
