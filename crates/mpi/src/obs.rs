//! Halo-exchange observability: a thread-safe event log the tracing layer
//! turns into MPI-rank timeline spans.
//!
//! The communicator runs ranks as OS threads in *host* time, so the log
//! records the structural facts of each exchange (who talked to whom, how
//! many bytes, under which tag) rather than timestamps; the simulated-time
//! placement of halo spans comes from the interconnect timing model that
//! prices the same traffic.

use std::sync::Mutex;

/// Which way a logged halo payload travelled relative to the logging rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaloDir {
    /// Payload sent to the neighbour.
    Send,
    /// Payload received from the neighbour.
    Recv,
}

/// One logged halo transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloEvent {
    /// Rank that logged the event.
    pub rank: usize,
    /// The neighbour on the other end.
    pub neighbor: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Message tag (namespaces concurrent field exchanges).
    pub tag: u64,
    /// Send or receive, from `rank`'s point of view.
    pub dir: HaloDir,
}

/// Thread-safe halo-event collector shared across rank threads.
#[derive(Debug, Default)]
pub struct HaloLog {
    events: Mutex<Vec<HaloEvent>>,
}

impl HaloLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one transfer.
    pub fn record(&self, ev: HaloEvent) {
        self.events.lock().expect("halo log poisoned").push(ev);
    }

    /// Snapshot sorted by (rank, neighbor, tag) — deterministic regardless
    /// of rank-thread interleaving.
    pub fn events(&self) -> Vec<HaloEvent> {
        let mut out = self.events.lock().expect("halo log poisoned").clone();
        out.sort_by(|a, b| {
            a.rank
                .cmp(&b.rank)
                .then(a.neighbor.cmp(&b.neighbor))
                .then(a.tag.cmp(&b.tag))
                .then((a.dir == HaloDir::Recv).cmp(&(b.dir == HaloDir::Recv)))
        });
        out
    }

    /// Number of logged transfers.
    pub fn len(&self) -> usize {
        self.events.lock().expect("halo log poisoned").len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.events.lock().expect("halo log poisoned").is_empty()
    }

    /// Total bytes a given rank *sent* (each exchanged byte is counted once
    /// per direction, matching how the timing model prices one leg).
    pub fn sent_bytes(&self, rank: usize) -> u64 {
        self.events
            .lock()
            .expect("halo log poisoned")
            .iter()
            .filter(|e| e.rank == rank && e.dir == HaloDir::Send)
            .map(|e| e.bytes)
            .sum()
    }

    /// Total bytes sent across all ranks.
    pub fn total_sent_bytes(&self) -> u64 {
        self.events
            .lock()
            .expect("halo log poisoned")
            .iter()
            .filter(|e| e.dir == HaloDir::Send)
            .map(|e| e.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_collects_and_sorts() {
        let log = HaloLog::new();
        log.record(HaloEvent {
            rank: 1,
            neighbor: 0,
            bytes: 64,
            tag: 5,
            dir: HaloDir::Send,
        });
        log.record(HaloEvent {
            rank: 0,
            neighbor: 1,
            bytes: 64,
            tag: 5,
            dir: HaloDir::Recv,
        });
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].rank, 0);
        assert_eq!(log.sent_bytes(1), 64);
        assert_eq!(log.sent_bytes(0), 0);
        assert_eq!(log.total_sent_bytes(), 64);
        assert!(!log.is_empty());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let log = std::sync::Arc::new(HaloLog::new());
        std::thread::scope(|s| {
            for r in 0..4usize {
                let log = log.clone();
                s.spawn(move || {
                    for t in 0..25u64 {
                        log.record(HaloEvent {
                            rank: r,
                            neighbor: (r + 1) % 4,
                            bytes: 128,
                            tag: t,
                            dir: HaloDir::Send,
                        });
                    }
                });
            }
        });
        assert_eq!(log.len(), 100);
        assert_eq!(log.total_sent_bytes(), 100 * 128);
    }
}
