//! Ghost-node (halo) exchange between neighbouring slabs.
//!
//! Implements the `exchange_boundaries` step of Algorithm 1: each rank sends
//! its outermost owned rows to its z-neighbours and receives their rows into
//! its halo shell, using the nonblocking post-all-then-wait pattern of the
//! paper's reference code.

use crate::comm::{RankCtx, Request};
use crate::decomp::Slab;
use crate::obs::{HaloDir, HaloEvent, HaloLog};
use bytes::{BufMut, Bytes, BytesMut};
use seismic_grid::{Field2, Field3};

/// Log both directions of one neighbour exchange, when a log is attached.
fn log_exchange(log: Option<&HaloLog>, rank: usize, neighbor: usize, bytes: u64, tag: u64) {
    if let Some(l) = log {
        l.record(HaloEvent {
            rank,
            neighbor,
            bytes,
            tag,
            dir: HaloDir::Send,
        });
        l.record(HaloEvent {
            rank,
            neighbor,
            bytes,
            tag,
            dir: HaloDir::Recv,
        });
    }
}

/// Pack `count` raw rows starting at raw row `rz0` into a byte buffer.
fn pack_rows2(f: &Field2, rz0: usize, count: usize) -> Bytes {
    let e = f.extent();
    let fnx = e.full_nx();
    let mut buf = BytesMut::with_capacity(count * fnx * 4);
    let s = f.as_slice();
    for rz in rz0..rz0 + count {
        for v in &s[rz * fnx..(rz + 1) * fnx] {
            buf.put_f32_le(*v);
        }
    }
    buf.freeze()
}

/// Unpack rows from [`pack_rows2`] into raw rows starting at `rz0`.
fn unpack_rows2(f: &mut Field2, rz0: usize, count: usize, data: &Bytes) {
    let e = f.extent();
    let fnx = e.full_nx();
    assert_eq!(data.len(), count * fnx * 4, "halo payload size mismatch");
    let s = f.as_mut_slice();
    for (i, chunk) in data.chunks_exact(4).enumerate() {
        let v = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        s[rz0 * fnx + i] = v;
    }
}

fn pack_planes3(f: &Field3, rz0: usize, count: usize) -> Bytes {
    let e = f.extent();
    let plane = e.full_nx() * e.full_ny();
    let mut buf = BytesMut::with_capacity(count * plane * 4);
    let s = f.as_slice();
    for rz in rz0..rz0 + count {
        for v in &s[rz * plane..(rz + 1) * plane] {
            buf.put_f32_le(*v);
        }
    }
    buf.freeze()
}

fn unpack_planes3(f: &mut Field3, rz0: usize, count: usize, data: &Bytes) {
    let e = f.extent();
    let plane = e.full_nx() * e.full_ny();
    assert_eq!(data.len(), count * plane * 4, "halo payload size mismatch");
    let s = f.as_mut_slice();
    for (i, chunk) in data.chunks_exact(4).enumerate() {
        let v = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        s[rz0 * plane + i] = v;
    }
}

/// Exchange z-halos of a 2D field with both neighbours.
///
/// The local field's interior depth must equal `slab.nz()` and its halo the
/// decomposition ghost width. `tag_base` namespaces concurrent exchanges of
/// different fields (each exchange uses `tag_base` and `tag_base + 1`).
pub fn exchange_halo2(ctx: &mut RankCtx, field: &mut Field2, slab: &Slab, tag_base: u64) {
    exchange_halo2_logged(ctx, field, slab, tag_base, None)
}

/// [`exchange_halo2`] that additionally records each transfer (bytes,
/// neighbour, tag, direction) into `log` for the observability layer.
pub fn exchange_halo2_logged(
    ctx: &mut RankCtx,
    field: &mut Field2,
    slab: &Slab,
    tag_base: u64,
    log: Option<&HaloLog>,
) {
    let e = field.extent();
    let g = e.halo;
    assert_eq!(e.nz, slab.nz(), "field depth must match the slab");
    let mut reqs: Vec<Request> = Vec::with_capacity(4);
    let mut incoming: Vec<(usize, usize)> = Vec::new(); // (raw row, req idx)

    // Post receives first (good MPI hygiene), then sends.
    if let Some(lo) = slab.lo_neighbor {
        incoming.push((0, reqs.len()));
        let r = ctx.irecv(lo, tag_base);
        reqs.push(r);
    }
    if let Some(hi) = slab.hi_neighbor {
        incoming.push((g + e.nz, reqs.len()));
        let r = ctx.irecv(hi, tag_base + 1);
        reqs.push(r);
    }
    if let Some(lo) = slab.lo_neighbor {
        // My lowest owned rows become lo's high halo; lo receives them with
        // tag_base + 1 (message travelling downward).
        let payload = pack_rows2(field, g, g);
        log_exchange(log, ctx.rank(), lo, payload.len() as u64, tag_base + 1);
        reqs.push(ctx.isend(lo, tag_base + 1, payload));
    }
    if let Some(hi) = slab.hi_neighbor {
        let payload = pack_rows2(field, e.nz, g); // raw rows g+nz-g .. = interior top
        log_exchange(log, ctx.rank(), hi, payload.len() as u64, tag_base);
        reqs.push(ctx.isend(hi, tag_base, payload));
    }
    ctx.wait_all(&mut reqs);
    for (rz0, idx) in incoming {
        let data = match &reqs[idx] {
            Request::Recv { data: Some(b), .. } => b.clone(),
            _ => unreachable!("receive completed by wait_all"),
        };
        unpack_rows2(field, rz0, g, &data);
    }
}

/// Exchange z-halos of a 3D field with both neighbours.
pub fn exchange_halo3(ctx: &mut RankCtx, field: &mut Field3, slab: &Slab, tag_base: u64) {
    exchange_halo3_logged(ctx, field, slab, tag_base, None)
}

/// [`exchange_halo3`] that additionally records each transfer into `log`.
pub fn exchange_halo3_logged(
    ctx: &mut RankCtx,
    field: &mut Field3,
    slab: &Slab,
    tag_base: u64,
    log: Option<&HaloLog>,
) {
    let e = field.extent();
    let g = e.halo;
    assert_eq!(e.nz, slab.nz(), "field depth must match the slab");
    let mut reqs: Vec<Request> = Vec::with_capacity(4);
    let mut incoming: Vec<(usize, usize)> = Vec::new();

    if let Some(lo) = slab.lo_neighbor {
        incoming.push((0, reqs.len()));
        let r = ctx.irecv(lo, tag_base);
        reqs.push(r);
    }
    if let Some(hi) = slab.hi_neighbor {
        incoming.push((g + e.nz, reqs.len()));
        let r = ctx.irecv(hi, tag_base + 1);
        reqs.push(r);
    }
    if let Some(lo) = slab.lo_neighbor {
        let payload = pack_planes3(field, g, g);
        log_exchange(log, ctx.rank(), lo, payload.len() as u64, tag_base + 1);
        reqs.push(ctx.isend(lo, tag_base + 1, payload));
    }
    if let Some(hi) = slab.hi_neighbor {
        let payload = pack_planes3(field, e.nz, g);
        log_exchange(log, ctx.rank(), hi, payload.len() as u64, tag_base);
        reqs.push(ctx.isend(hi, tag_base, payload));
    }
    ctx.wait_all(&mut reqs);
    for (rz0, idx) in incoming {
        let data = match &reqs[idx] {
            Request::Recv { data: Some(b), .. } => b.clone(),
            _ => unreachable!("receive completed by wait_all"),
        };
        unpack_planes3(field, rz0, g, &data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Communicator;
    use crate::decomp::SlabDecomp;
    use seismic_grid::{Extent2, Extent3};

    /// Fill a rank-local field with a function of *global* coordinates,
    /// interior only.
    fn fill_local(e: Extent2, z_off: usize, f: impl Fn(usize, usize) -> f32) -> Field2 {
        Field2::from_fn(e, |ix, iz| f(ix, iz + z_off))
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let e = Extent2::new(6, 5, 2);
        let f = Field2::from_fn(e, |ix, iz| (ix + 10 * iz) as f32);
        let b = pack_rows2(&f, 2, 2);
        let mut g = Field2::zeros(e);
        unpack_rows2(&mut g, 2, 2, &b);
        for iz in 0..2 {
            for ix in 0..e.nx {
                assert_eq!(g.get(ix, iz), f.get(ix, iz));
            }
        }
    }

    /// After one exchange, every rank's halo must equal the neighbour's
    /// interior rows — i.e. exactly match the global field.
    #[test]
    fn halo2_matches_global_field() {
        let nx = 8;
        let nz_global = 23;
        let ghost = 4;
        let d = SlabDecomp::new(nz_global, 3, ghost);
        let global = |ix: usize, iz: usize| (100 * iz + ix) as f32;
        Communicator::run(3, |ctx| {
            let slab = d.slab(ctx.rank());
            let e = Extent2::new(nx, slab.nz(), ghost);
            let mut f = fill_local(e, slab.z0, global);
            exchange_halo2(ctx, &mut f, &slab, 10);
            let fnx = e.full_nx();
            // Low halo (only for ranks with a lo neighbour).
            if slab.lo_neighbor.is_some() {
                for hz in 0..ghost {
                    let gz = slab.z0 - ghost + hz;
                    for ix in 0..nx {
                        let raw = hz * fnx + (ix + ghost);
                        assert_eq!(
                            f.as_slice()[raw],
                            global(ix, gz),
                            "rank {} low halo",
                            ctx.rank()
                        );
                    }
                }
            }
            if slab.hi_neighbor.is_some() {
                for hz in 0..ghost {
                    let gz = slab.z1 + hz;
                    for ix in 0..nx {
                        let raw = (ghost + slab.nz() + hz) * fnx + (ix + ghost);
                        assert_eq!(
                            f.as_slice()[raw],
                            global(ix, gz),
                            "rank {} high halo",
                            ctx.rank()
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn halo3_matches_global_field() {
        let (nx, ny) = (5, 4);
        let nz_global = 18;
        let ghost = 3;
        let d = SlabDecomp::new(nz_global, 2, ghost);
        let global = |ix: usize, iy: usize, iz: usize| (1000 * iz + 10 * iy + ix) as f32;
        Communicator::run(2, |ctx| {
            let slab = d.slab(ctx.rank());
            let e = Extent3::new(nx, ny, slab.nz(), ghost);
            let mut f = Field3::from_fn(e, |ix, iy, iz| global(ix, iy, iz + slab.z0));
            exchange_halo3(ctx, &mut f, &slab, 20);
            let plane = e.full_nx() * e.full_ny();
            if slab.hi_neighbor.is_some() {
                for hz in 0..ghost {
                    let gz = slab.z1 + hz;
                    let raw = (ghost + slab.nz() + hz) * plane + ghost * e.full_nx() + ghost;
                    assert_eq!(f.as_slice()[raw], global(0, 0, gz));
                }
            }
            if slab.lo_neighbor.is_some() {
                for hz in 0..ghost {
                    let gz = slab.z0 - ghost + hz;
                    let raw = hz * plane + ghost * e.full_nx() + ghost;
                    assert_eq!(f.as_slice()[raw], global(0, 0, gz));
                }
            }
        });
    }

    /// The logged traffic matches the exchanged shell exactly: every rank
    /// sends `ghost · full_nx · 4` bytes per neighbour, and the aggregate
    /// equals the slab-boundary count times the plane size.
    #[test]
    fn halo_log_accounts_exchanged_bytes() {
        let nx = 8;
        let nz_global = 23;
        let ghost = 4;
        let ranks = 3;
        let d = SlabDecomp::new(nz_global, ranks, ghost);
        let log = std::sync::Arc::new(HaloLog::new());
        Communicator::run(ranks, {
            let log = log.clone();
            move |ctx| {
                let slab = d.slab(ctx.rank());
                let e = Extent2::new(nx, slab.nz(), ghost);
                let mut f = Field2::filled(e, 1.0);
                exchange_halo2_logged(ctx, &mut f, &slab, 10, Some(&log));
            }
        });
        let plane_bytes = (nx + 2 * ghost) as u64 * ghost as u64 * 4;
        // Interior rank sends to both neighbours; edge ranks to one each.
        assert_eq!(log.sent_bytes(0), plane_bytes);
        assert_eq!(log.sent_bytes(1), 2 * plane_bytes);
        assert_eq!(log.sent_bytes(2), plane_bytes);
        assert_eq!(log.total_sent_bytes(), 4 * plane_bytes);
        // Every send has a matching receive record on the same rank.
        let evs = log.events();
        let sends = evs.iter().filter(|e| e.dir == HaloDir::Send).count();
        let recvs = evs.iter().filter(|e| e.dir == HaloDir::Recv).count();
        assert_eq!(sends, recvs);
    }

    #[test]
    fn single_rank_exchange_is_noop() {
        let d = SlabDecomp::new(16, 1, 4);
        Communicator::run(1, |ctx| {
            let slab = d.slab(0);
            let e = Extent2::new(4, 16, 4);
            let mut f = Field2::filled(e, 7.0);
            let before = f.clone();
            exchange_halo2(ctx, &mut f, &slab, 0);
            assert_eq!(f, before);
        });
    }
}
