//! # mpi-sim
//!
//! A message-passing runtime standing in for the paper's MPICH 3.1 baseline.
//!
//! The paper's reference implementation (Algorithm 1) is "based on domain
//! decomposition where each domain may be divided into sub-domains ...
//! Ghost nodes are exchanged via MPI non-blocking standard send (MPI_ISEND)
//! and receive (MPI_IRECV). When all required sends and receives are posted,
//! the communication request handles are then immediately checked for
//! completion via corresponding number of MPI_WAITANY calls."
//!
//! This crate provides exactly that API surface, executed for real:
//!
//! * [`comm`] — ranks as OS threads, [`comm::RankCtx::isend`] /
//!   [`comm::RankCtx::irecv`] / [`comm::RankCtx::wait_any`] over channels,
//!   barriers and reductions,
//! * [`decomp`] — 1-D slab domain decomposition along the slowest (z) axis
//!   with stencil-width ghost shells,
//! * [`halo`] — pack/exchange/unpack of ghost rows for 2D and 3D fields,
//! * [`net`] — interconnect and CPU-socket *timing models* used by the
//!   Table 3/4 baseline predictions ("Aries"-class CRAY XC30 vs the older
//!   IBM cluster network, whose difference the paper blames for the CRAY
//!   speedups being lower), plus a seeded message-drop/timeout model
//!   ([`net::NetFaultPlan`]) whose retransmit cost the communicator
//!   accounts without ever losing a payload,
//! * [`obs`] — a thread-safe halo-exchange event log (bytes, neighbour,
//!   tag, direction) the tracing layer turns into MPI-rank timeline spans.

pub mod comm;
pub mod decomp;
pub mod halo;
pub mod net;
pub mod obs;

pub use comm::{Communicator, RankCtx, Request};
pub use decomp::SlabDecomp;
pub use net::{CpuSpec, Interconnect, NetFaultPlan};
pub use obs::{HaloDir, HaloEvent, HaloLog};
