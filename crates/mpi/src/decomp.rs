//! 1-D slab domain decomposition along the slowest (z) axis.
//!
//! "This implementation is based on domain decomposition where each domain
//! may be divided into sub-domains mapped onto several hosts to fit into
//! memory and to decrease simulation time. ... Ghost node thickness is
//! determined by the stencil used to solve the wave equation."

use serde::{Deserialize, Serialize};

/// A rank's slab of the global interior z-range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slab {
    /// First global interior z row owned by this rank.
    pub z0: usize,
    /// One past the last owned row.
    pub z1: usize,
    /// Rank below (smaller z), if any.
    pub lo_neighbor: Option<usize>,
    /// Rank above (larger z), if any.
    pub hi_neighbor: Option<usize>,
}

impl Slab {
    /// Rows owned by this rank.
    pub fn nz(&self) -> usize {
        self.z1 - self.z0
    }
}

/// Decomposition of `nz_global` rows over `n_ranks` ranks with ghost
/// shells of `ghost` rows (the stencil half-width).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlabDecomp {
    /// Global interior depth.
    pub nz_global: usize,
    /// Number of ranks.
    pub n_ranks: usize,
    /// Ghost thickness in rows.
    pub ghost: usize,
    slabs: Vec<Slab>,
}

impl SlabDecomp {
    /// Balanced decomposition; every rank gets `nz/n` ± 1 rows. Each rank
    /// must own at least `ghost` rows so neighbouring ghost exchanges don't
    /// reach past one rank.
    pub fn new(nz_global: usize, n_ranks: usize, ghost: usize) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        assert!(
            nz_global >= n_ranks * ghost.max(1),
            "domain too shallow to split into {n_ranks} slabs of ≥{ghost} rows"
        );
        let base = nz_global / n_ranks;
        let rem = nz_global % n_ranks;
        let mut slabs = Vec::with_capacity(n_ranks);
        let mut z = 0usize;
        for r in 0..n_ranks {
            let rows = base + usize::from(r < rem);
            slabs.push(Slab {
                z0: z,
                z1: z + rows,
                lo_neighbor: (r > 0).then(|| r - 1),
                hi_neighbor: (r + 1 < n_ranks).then_some(r + 1),
            });
            z += rows;
        }
        Self {
            nz_global,
            n_ranks,
            ghost,
            slabs,
        }
    }

    /// Slab of `rank`.
    pub fn slab(&self, rank: usize) -> Slab {
        self.slabs[rank]
    }

    /// All slabs in rank order.
    pub fn slabs(&self) -> &[Slab] {
        &self.slabs
    }

    /// Which rank owns global row `z`.
    pub fn owner(&self, z: usize) -> usize {
        assert!(z < self.nz_global);
        self.slabs
            .iter()
            .position(|s| z >= s.z0 && z < s.z1)
            .expect("row inside the global range")
    }

    /// Bytes exchanged per step per interior plane of `plane_points` points:
    /// each internal boundary moves `2 · ghost` planes (one ghost shell in
    /// each direction).
    pub fn ghost_bytes_per_step(&self, plane_points: usize) -> u64 {
        let internal_boundaries = self.n_ranks.saturating_sub(1) as u64;
        internal_boundaries * 2 * self.ghost as u64 * plane_points as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_domain_without_overlap() {
        let d = SlabDecomp::new(103, 10, 4);
        let mut z = 0;
        for r in 0..10 {
            let s = d.slab(r);
            assert_eq!(s.z0, z);
            z = s.z1;
            assert!(s.nz() >= 10);
        }
        assert_eq!(z, 103);
    }

    #[test]
    fn remainder_spread_over_leading_ranks() {
        let d = SlabDecomp::new(10, 3, 1);
        assert_eq!(d.slab(0).nz(), 4);
        assert_eq!(d.slab(1).nz(), 3);
        assert_eq!(d.slab(2).nz(), 3);
    }

    #[test]
    fn neighbors_form_a_chain() {
        let d = SlabDecomp::new(40, 4, 4);
        assert_eq!(d.slab(0).lo_neighbor, None);
        assert_eq!(d.slab(0).hi_neighbor, Some(1));
        assert_eq!(d.slab(2).lo_neighbor, Some(1));
        assert_eq!(d.slab(3).hi_neighbor, None);
    }

    #[test]
    fn owner_lookup() {
        let d = SlabDecomp::new(40, 4, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(9), 0);
        assert_eq!(d.owner(10), 1);
        assert_eq!(d.owner(39), 3);
    }

    #[test]
    #[should_panic(expected = "too shallow")]
    fn rejects_too_many_ranks() {
        SlabDecomp::new(10, 8, 4);
    }

    #[test]
    fn ghost_traffic_scales_with_ranks() {
        let plane = 512 * 512;
        let d2 = SlabDecomp::new(512, 2, 4);
        let d8 = SlabDecomp::new(512, 8, 4);
        assert_eq!(d2.ghost_bytes_per_step(plane), 2 * 4 * plane as u64 * 4);
        assert!(d8.ghost_bytes_per_step(plane) == 7 * d2.ghost_bytes_per_step(plane));
        assert_eq!(SlabDecomp::new(512, 1, 4).ghost_bytes_per_step(plane), 0);
    }
}
