//! Rank runtime: threads + channels with an MPI-flavoured nonblocking API.

use crate::net::NetFaultPlan;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::Cell;
use std::sync::{Arc, Barrier};

/// A message in flight.
#[derive(Debug, Clone)]
struct Msg {
    src: usize,
    tag: u64,
    payload: Bytes,
}

/// A nonblocking communication request handle.
///
/// Sends complete eagerly (buffered, like small-message MPI); receives
/// complete when a matching message arrives.
#[derive(Debug)]
pub enum Request {
    /// A posted send (always complete — eager buffering).
    Send,
    /// A posted receive for (source, tag).
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Filled once matched.
        data: Option<Bytes>,
    },
}

impl Request {
    /// True when the request has completed.
    pub fn is_complete(&self) -> bool {
        match self {
            Request::Send => true,
            Request::Recv { data, .. } => data.is_some(),
        }
    }

    /// Take the received payload (panics on sends or incomplete receives).
    pub fn take(self) -> Bytes {
        match self {
            Request::Recv { data: Some(b), .. } => b,
            _ => panic!("take() on a send or incomplete receive"),
        }
    }
}

/// Per-rank communication context handed to the rank closure.
pub struct RankCtx {
    rank: usize,
    size: usize,
    inbox: Receiver<Msg>,
    peers: Vec<Sender<Msg>>,
    pending: Vec<Msg>,
    barrier: Arc<Barrier>,
    reduce_tx: Sender<(usize, f64)>,
    reduce_rx: Receiver<(usize, f64)>,
    net_faults: Option<NetFaultPlan>,
    send_seq: Cell<u64>,
    retransmits: Cell<u64>,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Retransmits this rank's sends have needed so far under the
    /// communicator's [`NetFaultPlan`] (0 without one). Delivery always
    /// eventually succeeds — the plan models the *cost* of loss, so faulty
    /// runs stay deadlock-free and bitwise-identical in payload.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    /// Post a nonblocking send (eager: the payload is buffered immediately).
    pub fn isend(&self, dest: usize, tag: u64, payload: Bytes) -> Request {
        assert!(dest < self.size, "destination rank out of range");
        if let Some(p) = &self.net_faults {
            let seq = self.send_seq.get();
            self.send_seq.set(seq + 1);
            let attempts = p.delivery_attempts(self.rank, dest, seq);
            self.retransmits
                .set(self.retransmits.get() + u64::from(attempts - 1));
        }
        self.peers[dest]
            .send(Msg {
                src: self.rank,
                tag,
                payload,
            })
            .expect("peer hung up");
        Request::Send
    }

    /// Post a nonblocking receive for a message from `src` with `tag`.
    pub fn irecv(&mut self, src: usize, tag: u64) -> Request {
        assert!(src < self.size, "source rank out of range");
        // Check messages that already arrived out of order.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let m = self.pending.remove(pos);
            return Request::Recv {
                src,
                tag,
                data: Some(m.payload),
            };
        }
        Request::Recv {
            src,
            tag,
            data: None,
        }
    }

    /// Block until one incomplete request finishes; returns its index.
    /// Mirrors `MPI_WAITANY` over the request array of Algorithm 1.
    pub fn wait_any(&mut self, reqs: &mut [Request]) -> usize {
        if let Some(i) = reqs.iter().position(Request::is_complete) {
            return i;
        }
        loop {
            let msg = self.inbox.recv().expect("communicator shut down");
            let matched = reqs.iter_mut().position(|r| {
                matches!(r, Request::Recv { src, tag, data } if *src == msg.src && *tag == msg.tag && data.is_none())
            });
            match matched {
                Some(i) => {
                    if let Request::Recv { data, .. } = &mut reqs[i] {
                        *data = Some(msg.payload);
                    }
                    return i;
                }
                None => self.pending.push(msg),
            }
        }
    }

    /// Wait for every request in the slice.
    pub fn wait_all(&mut self, reqs: &mut [Request]) {
        while reqs.iter().any(|r| !r.is_complete()) {
            let msg = self.inbox.recv().expect("communicator shut down");
            let matched = reqs.iter_mut().position(|r| {
                matches!(r, Request::Recv { src, tag, data } if *src == msg.src && *tag == msg.tag && data.is_none())
            });
            match matched {
                Some(j) => {
                    if let Request::Recv { data, .. } = &mut reqs[j] {
                        *data = Some(msg.payload);
                    }
                }
                None => self.pending.push(msg),
            }
        }
    }

    /// Blocking receive convenience.
    pub fn recv(&mut self, src: usize, tag: u64) -> Bytes {
        let mut reqs = [self.irecv(src, tag)];
        self.wait_any(&mut reqs);
        match reqs {
            [Request::Recv { data: Some(b), .. }] => b,
            _ => unreachable!(),
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-reduce a scalar with `op` (commutative+associative); every rank
    /// returns the same result.
    pub fn allreduce(&mut self, v: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        // Simple gather-to-all through a shared channel, fenced by barriers.
        self.barrier();
        self.reduce_tx.send((self.rank, v)).expect("reduce channel");
        self.barrier();
        let mut vals = vec![None::<f64>; self.size];
        // Every rank drains exactly `size` values then re-publishes for
        // the others? Instead: each rank reads all messages then barriers —
        // but a channel consumer steals. Use the pending trick: rank 0
        // collects and rebroadcasts point-to-point.
        if self.rank == 0 {
            for _ in 0..self.size {
                let (r, x) = self.reduce_rx.recv().expect("reduce recv");
                vals[r] = Some(x);
            }
            let acc = vals
                .into_iter()
                .map(|x| x.expect("missing rank contribution"))
                .reduce(&op)
                .expect("non-empty communicator");
            for dest in 1..self.size {
                self.isend(dest, u64::MAX, Bytes::copy_from_slice(&acc.to_le_bytes()));
            }
            self.barrier();
            acc
        } else {
            let b = self.recv(0, u64::MAX);
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&b);
            self.barrier();
            f64::from_le_bytes(buf)
        }
    }
}

/// Factory for running SPMD closures across ranks.
pub struct Communicator;

impl Communicator {
    /// Run `f` on `size` ranks (threads); returns each rank's result in
    /// rank order. Panics in any rank propagate.
    pub fn run<T: Send>(size: usize, f: impl Fn(&mut RankCtx) -> T + Sync) -> Vec<T> {
        Self::run_with_faults(size, None, f)
    }

    /// [`Self::run`] with an optional deterministic message-loss model:
    /// every rank accounts retransmits for its sends (see
    /// [`RankCtx::retransmits`]); payload delivery is unchanged.
    pub fn run_with_faults<T: Send>(
        size: usize,
        net_faults: Option<NetFaultPlan>,
        f: impl Fn(&mut RankCtx) -> T + Sync,
    ) -> Vec<T> {
        assert!(size > 0, "communicator needs at least one rank");
        let mut txs = Vec::with_capacity(size);
        let mut rxs = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<Msg>();
            txs.push(tx);
            rxs.push(rx);
        }
        let barrier = Arc::new(Barrier::new(size));
        let (rtx, rrx) = unbounded::<(usize, f64)>();
        let f = &f;
        let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(rank, inbox)| {
                    let peers = txs.clone();
                    let barrier = Arc::clone(&barrier);
                    let reduce_tx = rtx.clone();
                    let reduce_rx = rrx.clone();
                    s.spawn(move || {
                        let mut ctx = RankCtx {
                            rank,
                            size,
                            inbox,
                            peers,
                            pending: Vec::new(),
                            barrier,
                            reduce_tx,
                            reduce_rx,
                            net_faults,
                            send_seq: Cell::new(0),
                            retransmits: Cell::new(0),
                        };
                        f(&mut ctx)
                    })
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => out[rank] = Some(v),
                    // Re-raise with the original payload so callers (and
                    // `#[should_panic]` tests) see the rank's own message.
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
        out.into_iter().map(|x| x.expect("rank result")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = Communicator::run(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.isend(
                next,
                7,
                Bytes::copy_from_slice(&(c.rank() as u64).to_le_bytes()),
            );
            let b = c.recv(prev, 7);
            u64::from_le_bytes(b.as_ref().try_into().unwrap())
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn requests_match_out_of_order() {
        let results = Communicator::run(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1 — receiver posts 1 before 2.
                c.isend(1, 2, Bytes::from_static(b"two"));
                c.isend(1, 1, Bytes::from_static(b"one"));
                Bytes::new()
            } else {
                let mut reqs = vec![c.irecv(0, 1), c.irecv(0, 2)];
                let first = c.wait_any(&mut reqs);
                assert!(reqs[first].is_complete());
                c.wait_all(&mut reqs);
                assert!(reqs.iter().all(Request::is_complete));
                let mut it = reqs.into_iter();
                let one = it.next().unwrap().take();
                assert_eq!(one.as_ref(), b"one");
                it.next().unwrap().take()
            }
        });
        assert_eq!(results[1].as_ref(), b"two");
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = Communicator::run(5, |c| c.allreduce(c.rank() as f64, |a, b| a + b));
        assert!(sums.iter().all(|&s| s == 10.0));
        let maxes = Communicator::run(3, |c| c.allreduce((c.rank() * 2) as f64, f64::max));
        assert!(maxes.iter().all(|&m| m == 4.0));
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        Communicator::run(4, |c| {
            phase1.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must see all 4 increments.
            assert_eq!(phase1.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn single_rank_works() {
        let r = Communicator::run(1, |c| {
            assert_eq!(c.size(), 1);
            c.allreduce(42.0, f64::max)
        });
        assert_eq!(r, vec![42.0]);
    }

    #[test]
    #[should_panic(expected = "destination rank out of range")]
    fn send_out_of_range_panics() {
        Communicator::run(2, |c| {
            if c.rank() == 0 {
                c.isend(5, 0, Bytes::new());
            }
        });
    }

    #[test]
    fn faulty_run_delivers_everything_and_counts_retransmits() {
        let plan = NetFaultPlan {
            seed: 5,
            drop_prob: 0.6,
            timeout_s: 1e-3,
            max_attempts: 16,
        };
        let results = Communicator::run_with_faults(4, Some(plan), |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            for i in 0..50u64 {
                c.isend(next, i, Bytes::copy_from_slice(&i.to_le_bytes()));
            }
            for i in 0..50u64 {
                let b = c.recv(prev, i);
                assert_eq!(u64::from_le_bytes(b.as_ref().try_into().unwrap()), i);
            }
            c.retransmits()
        });
        // Payloads all arrived intact; at 60 % drop the retransmit count
        // must be substantial and is identical across reruns (same seed).
        let total: u64 = results.iter().sum();
        assert!(total > 50, "retransmits {total}");
        let again: u64 = Communicator::run_with_faults(4, Some(plan), |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            for i in 0..50u64 {
                c.isend(next, i, Bytes::copy_from_slice(&i.to_le_bytes()));
            }
            for i in 0..50u64 {
                c.recv(prev, i);
            }
            c.retransmits()
        })
        .iter()
        .sum();
        assert_eq!(total, again);
        // No plan → no accounting.
        let clean = Communicator::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 0, Bytes::new());
            } else {
                c.recv(0, 0);
            }
            c.retransmits()
        });
        assert_eq!(clean, vec![0, 0]);
    }

    #[test]
    fn wait_all_completes_everything() {
        Communicator::run(3, |c| {
            let mut reqs = Vec::new();
            for dest in 0..c.size() {
                if dest != c.rank() {
                    reqs.push(c.isend(dest, 9, Bytes::from_static(b"x")));
                }
            }
            for src in 0..c.size() {
                if src != c.rank() {
                    reqs.push(c.irecv(src, 9));
                }
            }
            c.wait_all(&mut reqs);
            assert!(reqs.iter().all(Request::is_complete));
        });
    }
}
