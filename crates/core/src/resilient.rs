//! Resilient survey execution: retry, reschedule, checkpoint-restart.
//!
//! A production survey occupies a cluster for hours, long enough that the
//! fault processes modeled in `accel_sim::fault` fire several times. This
//! module wraps the plain drivers so a seeded [`FaultPlan`] degrades a run
//! instead of killing it:
//!
//! * **Retry with backoff** — transient failures (allocation, transfer)
//!   retry under a [`RetryPolicy`] whose jittered exponential delays are
//!   deterministic per plan seed, bounded, and monotone in the attempt,
//! * **Blacklisting & rescheduling** — a rank whose device is lost (or
//!   that exhausts its retries) is blacklisted by the [`HealthTracker`]
//!   and its unfinished shots move to surviving ranks; the survey
//!   completes on fewer GPUs,
//! * **Bitwise-identical images** — the stacked image under any fault
//!   plan that leaves one healthy rank equals the fault-free
//!   [`rtm_shot_parallel`] result *bit for bit*: shots are re-placed but
//!   the reduction keeps the fault-free topology (per-nominal-rank
//!   partials in shot order, partials summed in rank order), and every
//!   per-shot image is bitwise deterministic wherever it runs,
//! * **Checkpoint-restart** — [`run_rtm_with_restart`] resumes an
//!   interrupted forward pass from the most recent stored state, redoing
//!   strictly fewer steps than a restart from zero, with bitwise-identical
//!   output (replay overwrites are idempotent),
//! * **Accounting** — [`ResilienceStats`] splits simulated seconds into
//!   useful, wasted (lost to mid-shot failures), and backoff time, the
//!   inputs to the overhead-vs-MTTI tables in `repro`, and
//!   [`optimal_checkpoint_interval`] sizes the checkpoint period from the
//!   MTTI (Young's first-order rule).

use crate::case::OptimizationConfig;
use crate::error::{ConfigError, RtmError};
use crate::modeling::{Medium2, State2};
use crate::multi_gpu::{modeling_time_multi, CommMode, GhostPacking, MultiGpuTiming};
use crate::rand_boundary::migrate_random_boundary;
use crate::rtm::{migrate_shot, mute_direct, run_rtm, RtmResult};
use crate::shot_parallel::{shots_for_rank, Shot};
use acc_obs::{ObsSession, Span, SpanCat, Track};
use accel_sim::fault::{FaultPlan, FaultView};
use bytes::Bytes;
use mpi_sim::comm::Communicator;
use openacc_sim::Compiler;
use seismic_grid::Field2;
use seismic_model::IsoModel2;
use seismic_pml::{DampProfile, RandomBoundarySpec};
use seismic_source::{Seismogram, Wavelet};
use std::collections::VecDeque;

use crate::case::{Cluster, SeismicCase, Workload};

/// `splitmix64` over mixed coordinates — the jitter draw for backoff.
fn jitter_unit(seed: u64, salt: u64, a: u64) -> f64 {
    let mut s =
        seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ a.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Bounded retry with jittered exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries before an operation is declared permanently failed.
    pub max_retries: u32,
    /// Delay before the first retry, seconds.
    pub base_delay_s: f64,
    /// Ceiling on any single delay, seconds.
    pub max_delay_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_delay_s: 0.5,
            max_delay_s: 60.0,
        }
    }
}

/// Doublings after which the un-jittered delay is clamped: `2^52` keeps
/// `base · 2^a` finite for any base below `~4e255`, and any realistic cap
/// is reached orders of magnitude earlier.
const MAX_BACKOFF_DOUBLINGS: u32 = 52;

impl RetryPolicy {
    /// Delay before retry number `attempt` (0-based), seconds. The jitter
    /// factor lies in `[1, 2)` so the sequence is monotone non-decreasing
    /// (`base·2^(a+1)·1 ≥ base·2^a·2 > base·2^a·jitter`), never exceeds
    /// `max_delay_s`, and is a pure function of `(seed, attempt)`. The
    /// exponent is clamped (and the raw delay capped *before* the jitter
    /// multiply) so arbitrarily large attempt counts can never overflow to
    /// a non-finite delay that would poison the simulated clock.
    pub fn backoff_delay(&self, seed: u64, attempt: u32) -> f64 {
        let expo = (self.base_delay_s * 2f64.powi(attempt.min(MAX_BACKOFF_DOUBLINGS) as i32))
            .min(self.max_delay_s);
        let jitter = 1.0 + jitter_unit(seed, 0xBAC0FF, u64::from(attempt));
        (expo * jitter).min(self.max_delay_s)
    }
}

/// Cooperative cancellation latch shared between a job's submitter (the
/// `acc-serve` scheduler) and whatever is executing its shots: cancelling
/// is one-way and visible across threads.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latch the token; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Has the token been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// Per-rank health: consecutive-failure counting with blacklisting.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    consecutive: Vec<u32>,
    blacklisted: Vec<bool>,
    threshold: u32,
}

impl HealthTracker {
    /// Track `n` ranks; blacklist after `threshold` consecutive failures.
    pub fn new(n: usize, threshold: u32) -> Self {
        Self {
            consecutive: vec![0; n],
            blacklisted: vec![false; n],
            threshold: threshold.max(1),
        }
    }

    /// Record a success (resets the failure streak).
    pub fn record_success(&mut self, rank: usize) {
        self.consecutive[rank] = 0;
    }

    /// Record a failure; returns true when the rank just got blacklisted.
    pub fn record_failure(&mut self, rank: usize) -> bool {
        self.consecutive[rank] += 1;
        if self.consecutive[rank] >= self.threshold && !self.blacklisted[rank] {
            self.blacklisted[rank] = true;
            return true;
        }
        false
    }

    /// Blacklist immediately (terminal faults like a lost device).
    pub fn blacklist(&mut self, rank: usize) {
        self.blacklisted[rank] = true;
    }

    /// Is the rank still usable?
    pub fn is_healthy(&self, rank: usize) -> bool {
        !self.blacklisted[rank]
    }

    /// Usable ranks, ascending.
    pub fn healthy(&self) -> Vec<usize> {
        (0..self.blacklisted.len())
            .filter(|&r| !self.blacklisted[r])
            .collect()
    }
}

/// Resilience accounting for one survey or modeling run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceStats {
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Shots moved off their nominal rank after a failure.
    pub rescheduled_shots: usize,
    /// Ranks blacklisted during the run, in failure order.
    pub dead_ranks: Vec<usize>,
    /// Simulated seconds of completed (kept) shot work.
    pub useful_s: f64,
    /// Simulated seconds lost to interrupted attempts.
    pub wasted_s: f64,
    /// Simulated seconds spent sleeping between retries.
    pub backoff_s: f64,
    /// Message retransmits accounted by the communicator, if any.
    pub net_retransmits: u64,
}

impl ResilienceStats {
    /// Fraction of total simulated time that was overhead (wasted work +
    /// backoff sleep). 0 for a fault-free run.
    pub fn overhead_frac(&self) -> f64 {
        let over = self.wasted_s + self.backoff_s;
        let total = self.useful_s + over;
        if total > 0.0 {
            over / total
        } else {
            0.0
        }
    }
}

/// Young's first-order optimal checkpoint interval `√(2·C·MTTI)` for a
/// checkpoint costing `ckpt_cost_s` under mean time to interrupt
/// `mtti_s`. Infinite MTTI (no faults) → infinite interval (never
/// checkpoint for resilience).
pub fn optimal_checkpoint_interval(ckpt_cost_s: f64, mtti_s: f64) -> f64 {
    if ckpt_cost_s <= 0.0 || !mtti_s.is_finite() || mtti_s <= 0.0 {
        return f64::INFINITY;
    }
    (2.0 * ckpt_cost_s * mtti_s).sqrt()
}

/// One timeline event produced while attempting a shot, in device-local
/// simulated time. Callers map these onto observability spans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShotEvent {
    /// Event name (`shot`, `backoff`, `shot:lost`, `blacklist:*`,
    /// `cancel:*`) — stable, used as the span name.
    pub name: &'static str,
    /// Event start, simulated seconds.
    pub start_s: f64,
    /// Event duration, simulated seconds (0 for point events).
    pub dur_s: f64,
}

impl ShotEvent {
    fn point(name: &'static str, at_s: f64) -> Self {
        Self {
            name,
            start_s: at_s,
            dur_s: 0.0,
        }
    }
}

/// Terminal state of one shot's retry loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShotOutcome {
    /// The shot ran to completion.
    Completed {
        /// Start of the successful attempt.
        start_s: f64,
        /// Duration of the successful attempt (slowdown included).
        dur_s: f64,
    },
    /// The device was (or became) permanently lost; the shot must move.
    DeviceLost {
        /// When the loss struck.
        at_s: f64,
    },
    /// Transient failures exhausted the retry budget on this device.
    RetriesExhausted {
        /// When the final failing draw happened.
        at_s: f64,
    },
    /// The shot could no longer finish before its deadline and was
    /// cancelled early, before burning more device time.
    DeadlineCancelled {
        /// When the infeasibility was detected.
        at_s: f64,
    },
    /// The job's cancellation token was observed latched.
    Cancelled {
        /// When the cancellation was observed.
        at_s: f64,
    },
}

/// Everything one retry loop did: terminal state, the device clock after
/// the loop, accounting deltas, and the span-able event list.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotAttempt {
    /// Terminal state.
    pub outcome: ShotOutcome,
    /// Device clock when the loop ended (start time plus backoff sleeps
    /// plus executed work).
    pub end_s: f64,
    /// Transient-failure draws consumed (the `shot_retries` series).
    pub retries: u64,
    /// Seconds slept between retries.
    pub backoff_s: f64,
    /// Seconds of partial work lost to a mid-shot device loss.
    pub wasted_s: f64,
    /// Timeline events, in order.
    pub events: Vec<ShotEvent>,
}

/// The single-shot retry loop shared by [`plan_survey`] and the
/// `acc-serve` job server: run one shot on `device` starting at
/// `start_s`, retrying transient allocation failures under `policy` with
/// deterministic jittered backoff, honouring an optional absolute
/// deadline (the shot is cancelled as soon as it provably cannot finish
/// in time — `slowdown ≥ 1`, so `shot_cost_s` is the optimistic duration)
/// and an optional cooperative [`CancellationToken`]. Pure apart from
/// `attempt_seq`, which advances by one per transient-failure draw so the
/// stateless fault process sees a per-device sequence number. With no
/// deadline and no token this reproduces the PR 1 retry loop exactly.
#[allow(clippy::too_many_arguments)]
pub fn run_shot_attempts<F: FaultView>(
    device: usize,
    start_s: f64,
    shot_cost_s: f64,
    plan: &F,
    policy: &RetryPolicy,
    attempt_seq: &mut u64,
    deadline_s: Option<f64>,
    cancel: Option<&CancellationToken>,
) -> ShotAttempt {
    let mut att = ShotAttempt {
        outcome: ShotOutcome::Cancelled { at_s: start_s },
        end_s: start_s,
        retries: 0,
        backoff_s: 0.0,
        wasted_s: 0.0,
        events: Vec::new(),
    };
    let mut t0 = start_s;
    let mut retries_this_shot = 0u32;
    loop {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            att.events.push(ShotEvent::point("cancel:token", t0));
            att.outcome = ShotOutcome::Cancelled { at_s: t0 };
            att.end_s = t0;
            return att;
        }
        if plan.device_lost(device, t0) {
            // Device already gone when the attempt starts.
            att.events
                .push(ShotEvent::point("blacklist:device_lost", t0));
            att.outcome = ShotOutcome::DeviceLost { at_s: t0 };
            att.end_s = t0;
            return att;
        }
        if let Some(d) = deadline_s {
            if t0 + shot_cost_s > d {
                att.events.push(ShotEvent::point("cancel:deadline", t0));
                att.outcome = ShotOutcome::DeadlineCancelled { at_s: t0 };
                att.end_s = t0;
                return att;
            }
        }
        // Transient launch failure (deterministic per (device, seq)).
        let seq = *attempt_seq;
        *attempt_seq += 1;
        if plan.alloc_fails(device, seq) {
            att.retries += 1;
            if retries_this_shot >= policy.max_retries {
                att.events
                    .push(ShotEvent::point("blacklist:retries_exhausted", t0));
                att.outcome = ShotOutcome::RetriesExhausted { at_s: t0 };
                att.end_s = t0;
                return att;
            }
            let delay = policy.backoff_delay(plan.seed() ^ device as u64, retries_this_shot);
            if let Some(d) = deadline_s {
                if t0 + delay + shot_cost_s > d {
                    // Sleeping would already bust the deadline: give up now
                    // and hand the slot back instead of sleeping into it.
                    att.events.push(ShotEvent::point("cancel:deadline", t0));
                    att.outcome = ShotOutcome::DeadlineCancelled { at_s: t0 };
                    att.end_s = t0;
                    return att;
                }
            }
            att.events.push(ShotEvent {
                name: "backoff",
                start_s: t0,
                dur_s: delay,
            });
            t0 += delay;
            att.backoff_s += delay;
            retries_this_shot += 1;
            continue;
        }
        let dur = shot_cost_s * plan.slowdown(device, t0);
        if let Some(d) = deadline_s {
            if t0 + dur > d {
                att.events.push(ShotEvent::point("cancel:deadline", t0));
                att.outcome = ShotOutcome::DeadlineCancelled { at_s: t0 };
                att.end_s = t0;
                return att;
            }
        }
        if let Some(lost) = plan.device_lost_at(device) {
            if lost < t0 + dur {
                // Dies mid-shot: the partial work is lost.
                att.events.push(ShotEvent {
                    name: "shot:lost",
                    start_s: t0,
                    dur_s: lost - t0,
                });
                att.events
                    .push(ShotEvent::point("blacklist:device_lost", lost));
                att.wasted_s += lost - t0;
                att.outcome = ShotOutcome::DeviceLost { at_s: lost };
                att.end_s = lost;
                return att;
            }
        }
        att.events.push(ShotEvent {
            name: "shot",
            start_s: t0,
            dur_s: dur,
        });
        att.outcome = ShotOutcome::Completed {
            start_s: t0,
            dur_s: dur,
        };
        att.end_s = t0 + dur;
        return att;
    }
}

/// Which rank ended up executing each shot, plus the accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveySchedule {
    /// `placement[s]` = rank that successfully ran shot `s`.
    pub placement: Vec<usize>,
    /// Ranks still healthy when the survey completed, ascending.
    pub survivors: Vec<usize>,
    /// Accounting for the scheduling simulation.
    pub stats: ResilienceStats,
}

/// Deterministically simulate the survey schedule under a fault plan:
/// round-robin initial placement (matching [`rtm_shot_parallel`]),
/// per-rank clocks, transient failures retried under `policy`, lost
/// devices blacklisted with their queued shots rescheduled onto the
/// least-loaded survivor. Pure: same arguments → same schedule.
pub fn plan_survey(
    n_shots: usize,
    ranks: usize,
    shot_cost_s: f64,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<SurveySchedule, RtmError> {
    plan_survey_obs(n_shots, ranks, shot_cost_s, plan, policy, None)
}

/// Emit one resilience-timeline span on a rank track, when observing.
fn resilience_span(
    obs: Option<&ObsSession>,
    rank: usize,
    name: &str,
    start_s: f64,
    dur_s: f64,
    shot: Option<usize>,
) {
    if let Some(o) = obs {
        let mut s = Span::new(
            Track::MpiRank(rank as u32),
            SpanCat::Resilience,
            name,
            start_s,
            dur_s,
        );
        if let Some(sh) = shot {
            s = s.with_arg("shot", sh.to_string());
        }
        o.span(s);
    }
}

/// [`plan_survey`] with an optional observability session: every shot
/// attempt, backoff sleep, mid-shot loss, and blacklisting lands as a
/// span on that rank's timeline track (per-rank clocks are monotone, so
/// each track stays serial), and the registry accumulates `shot_retries`
/// and `ranks_blacklisted`. Observation never changes the schedule.
pub fn plan_survey_obs(
    n_shots: usize,
    ranks: usize,
    shot_cost_s: f64,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    obs: Option<&ObsSession>,
) -> Result<SurveySchedule, RtmError> {
    if n_shots == 0 {
        return Err(ConfigError::NoShots.into());
    }
    if ranks == 0 {
        return Err(ConfigError::ZeroRanks.into());
    }
    let mut queues: Vec<VecDeque<usize>> = (0..ranks)
        .map(|r| shots_for_rank(n_shots, r, ranks).into())
        .collect();
    let mut clock = vec![0.0f64; ranks];
    let mut attempt_seq = vec![0u64; ranks];
    let mut health = HealthTracker::new(ranks, policy.max_retries.max(1));
    let mut placement = vec![usize::MAX; n_shots];
    let mut stats = ResilienceStats::default();

    // Reassign a failed rank's remaining shots to the least-loaded healthy
    // rank (ties → lowest id); errors out once nobody is left.
    fn reschedule(
        mut work: Vec<usize>,
        queues: &mut [VecDeque<usize>],
        clock: &[f64],
        health: &HealthTracker,
        stats: &mut ResilienceStats,
    ) -> Result<(), RtmError> {
        work.sort_unstable();
        for s in work {
            let dest = health
                .healthy()
                .into_iter()
                .min_by(|&a, &b| {
                    let la = clock[a] + queues[a].len() as f64;
                    let lb = clock[b] + queues[b].len() as f64;
                    la.total_cmp(&lb).then(a.cmp(&b))
                })
                .ok_or(RtmError::NoHealthyRanks)?;
            queues[dest].push_back(s);
            stats.rescheduled_shots += 1;
        }
        Ok(())
    }

    // Next healthy rank with work, earliest clock first.
    while let Some(r) = (0..ranks)
        .filter(|&r| health.is_healthy(r) && !queues[r].is_empty())
        .min_by(|&a, &b| clock[a].total_cmp(&clock[b]).then(a.cmp(&b)))
    {
        let Some(s) = queues[r].pop_front() else {
            return Err(RtmError::MalformedPlan(format!(
                "scheduler selected rank {r} with an empty work queue"
            )));
        };
        let att = run_shot_attempts(
            r,
            clock[r],
            shot_cost_s,
            plan,
            policy,
            &mut attempt_seq[r],
            None,
            None,
        );
        for ev in &att.events {
            resilience_span(obs, r, ev.name, ev.start_s, ev.dur_s, Some(s));
        }
        if let Some(o) = obs {
            if att.retries > 0 {
                o.registry.inc("shot_retries", att.retries);
            }
        }
        clock[r] = att.end_s;
        stats.retries += att.retries;
        stats.backoff_s += att.backoff_s;
        stats.wasted_s += att.wasted_s;
        match att.outcome {
            ShotOutcome::Completed { dur_s, .. } => {
                stats.useful_s += dur_s;
                health.record_success(r);
                placement[s] = r;
            }
            ShotOutcome::DeviceLost { .. } | ShotOutcome::RetriesExhausted { .. } => {
                // Rank is gone (or keeps failing): blacklist it and move its
                // remaining work to the least-loaded survivor.
                if let Some(o) = obs {
                    o.registry.inc("ranks_blacklisted", 1);
                }
                health.blacklist(r);
                stats.dead_ranks.push(r);
                let mut work: Vec<usize> = queues[r].drain(..).collect();
                work.push(s);
                reschedule(work, &mut queues, &clock, &health, &mut stats)?;
            }
            ShotOutcome::DeadlineCancelled { .. } | ShotOutcome::Cancelled { .. } => {
                // plan_survey passes neither a deadline nor a token, so these
                // outcomes cannot occur here.
                return Err(RtmError::MalformedPlan(format!(
                    "shot {s} cancelled in a survey planned without deadlines"
                )));
            }
        }
    }
    debug_assert!(placement.iter().all(|&r| r != usize::MAX));
    Ok(SurveySchedule {
        placement,
        survivors: health.healthy(),
        stats,
    })
}

/// Resilient shot-parallel RTM: schedule under the fault plan, execute the
/// physics on the surviving ranks, and stack with the *fault-free*
/// reduction topology so the image is bitwise-identical to
/// [`rtm_shot_parallel`] with the same nominal `ranks` — no matter which
/// ranks failed or where shots actually ran. Fails with
/// [`RtmError::NoHealthyRanks`] only when every rank is lost.
#[allow(clippy::too_many_arguments)]
pub fn rtm_survey_resilient(
    medium: &Medium2,
    shots: &[Shot],
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs_per_rank: usize,
    ranks: usize,
    shot_cost_s: f64,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<(Field2, ResilienceStats), RtmError> {
    let schedule = plan_survey(shots.len(), ranks, shot_cost_s, plan, policy)?;
    let exec = &schedule.survivors;
    let e = medium.extent();

    // Physics phase on the survivors. A shot may have completed on a rank
    // that died *afterwards* (its image was delivered before the loss), so
    // for the replay each such shot is recomputed on a survivor — per-shot
    // images are bitwise deterministic wherever they run, which is what
    // lets the reduction below ignore actual placement entirely.
    let thread_of: Vec<usize> = (0..shots.len())
        .map(|s| {
            exec.iter()
                .position(|&x| x == schedule.placement[s])
                .unwrap_or(s % exec.len())
        })
        .collect();
    let mut results = Communicator::run(exec.len(), |ctx| {
        let mine: Vec<usize> = (0..shots.len())
            .filter(|&s| thread_of[s] == ctx.rank())
            .collect();
        let mut local: Vec<(usize, Field2)> = Vec::with_capacity(mine.len());
        for s in mine {
            let r = run_rtm(
                medium,
                &shots[s],
                wavelet,
                config,
                steps,
                snap_period,
                gangs_per_rank,
            );
            local.push((s, r.image));
        }
        if ctx.rank() == 0 {
            let mut images: Vec<Option<Field2>> = vec![None; shots.len()];
            for (s, img) in local {
                images[s] = Some(img);
            }
            for s in 0..shots.len() {
                if images[s].is_none() {
                    let b = ctx.recv(thread_of[s], s as u64);
                    let mut f = Field2::zeros(e);
                    for (d, chunk) in f.as_mut_slice().iter_mut().zip(b.chunks_exact(4)) {
                        *d = f32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                    }
                    images[s] = Some(f);
                }
            }
            Some(images)
        } else {
            for (s, img) in local {
                let mut payload = Vec::with_capacity(img.as_slice().len() * 4);
                for v in img.as_slice() {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
                ctx.isend(0, s as u64, Bytes::from(payload));
            }
            None
        }
    });
    let images = results.remove(0).ok_or_else(|| {
        RtmError::MalformedPlan("first survivor returned no collected images".to_string())
    })?;

    // Reduction with the fault-free topology: nominal rank r's partial is
    // its round-robin shots summed in shot order; partials then add in
    // rank order — exactly the per-pixel operation order of
    // `rtm_shot_parallel`, so the bits match.
    let mut stack = Field2::zeros(e);
    for r in 0..ranks {
        let mut partial = Field2::zeros(e);
        for s in shots_for_rank(shots.len(), r, ranks) {
            let img = images[s]
                .as_ref()
                .ok_or_else(|| RtmError::MalformedPlan(format!("shot {s} produced no image")))?;
            for (d, v) in partial.as_mut_slice().iter_mut().zip(img.as_slice()) {
                *d += *v;
            }
        }
        if r == 0 {
            stack = partial;
        } else {
            for (d, v) in stack.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                *d += *v;
            }
        }
    }
    Ok((stack, schedule.stats))
}

/// Outcome of a checkpoint-restarted RTM run.
pub struct RestartOutcome {
    /// The migrated result — bitwise-identical to an uninterrupted
    /// [`run_rtm`] of the same shot.
    pub result: RtmResult,
    /// Forward steps executed, including replayed ones (the recompute
    /// metric: equals `steps` when nothing was interrupted).
    pub forward_steps_executed: usize,
    /// Checkpoint restores performed (one per interrupt).
    pub restores: usize,
}

/// [`run_rtm`] with an interruptible, checkpointed forward pass: a full
/// propagation state is stored every `ckpt_every` steps; each entry of
/// `interrupts` kills the forward pass when it first reaches that step,
/// and execution resumes from the most recent stored state. Replay
/// overwrites the seismogram and snapshot slots it re-produces, and the
/// propagator is bitwise deterministic, so the final result is identical
/// to the uninterrupted run — only `forward_steps_executed` grows.
/// Setting `ckpt_every >= steps` keeps only the step-0 state, i.e. a
/// restart-from-zero baseline.
#[allow(clippy::too_many_arguments)]
pub fn run_rtm_with_restart(
    medium: &Medium2,
    acq: &Shot,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
    ckpt_every: usize,
    interrupts: &[usize],
) -> Result<RestartOutcome, RtmError> {
    if ckpt_every == 0 {
        return Err(ConfigError::ZeroSlots.into());
    }
    let schedule: Vec<usize> = (0..steps).step_by(ckpt_every).collect();
    run_rtm_with_restart_at(
        medium,
        acq,
        wavelet,
        config,
        steps,
        snap_period,
        gangs,
        &schedule,
        interrupts,
    )
}

/// [`run_rtm_with_restart`] storing states at the bounded-memory
/// [`plan_checkpoints`](crate::checkpoint::plan_checkpoints) schedule for
/// `slots` stored states — a failed shot resumes from the nearest planned
/// checkpoint instead of restarting from step 0, with the same memory
/// budget the store-vs-recompute migration already pays.
#[allow(clippy::too_many_arguments)]
pub fn run_rtm_with_restart_planned(
    medium: &Medium2,
    acq: &Shot,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
    slots: usize,
    interrupts: &[usize],
) -> Result<RestartOutcome, RtmError> {
    let schedule = crate::checkpoint::plan_checkpoints(steps, slots)?;
    run_rtm_with_restart_at(
        medium,
        acq,
        wavelet,
        config,
        steps,
        snap_period,
        gangs,
        &schedule,
        interrupts,
    )
}

/// The general form: `ckpt_steps` is the sorted list of steps whose
/// pre-step state gets stored (step 0 is always an implicit checkpoint —
/// the initial quiescent state).
#[allow(clippy::too_many_arguments)]
fn run_rtm_with_restart_at(
    medium: &Medium2,
    acq: &Shot,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
    ckpt_steps: &[usize],
    interrupts: &[usize],
) -> Result<RestartOutcome, RtmError> {
    if steps == 0 {
        return Err(ConfigError::ZeroSteps.into());
    }
    let dt = medium.dt();
    let mut state = State2::new(medium);
    let mut ckpt_step = 0usize;
    // The checkpoint slot is allocated once; stores and restores are
    // `copy_from` overwrites, so interrupts never reallocate the state.
    let mut ckpt_state = State2::new(medium);
    let mut seismogram = Seismogram::zeros(acq.n_receivers(), steps);
    let mut snapshots: Vec<Field2> = Vec::new();
    let mut pending: Vec<usize> = interrupts.iter().copied().filter(|&i| i < steps).collect();
    pending.sort_unstable();
    let mut next_interrupt = 0usize;
    let mut executed = 0usize;
    let mut restores = 0usize;

    let mut t = 0usize;
    while t < steps {
        if next_interrupt < pending.len() && pending[next_interrupt] == t {
            // Crash before executing step t: drop in-flight state, restore
            // the last checkpoint. Each interrupt fires once.
            next_interrupt += 1;
            restores += 1;
            state.copy_from(&ckpt_state);
            t = ckpt_step;
            continue;
        }
        if ckpt_steps.binary_search(&t).is_ok() {
            ckpt_step = t;
            ckpt_state.copy_from(&state);
        }
        state.step(medium, config, gangs);
        state.inject(
            medium,
            acq.src_ix,
            acq.src_iz,
            wavelet.sample(t as f32 * dt),
        );
        for (r, rcv) in acq.receivers.iter().enumerate() {
            seismogram.record(r, t, state.sample(rcv.ix, rcv.iz));
        }
        if t.is_multiple_of(snap_period) {
            let idx = t / snap_period;
            if idx < snapshots.len() {
                // Replay after a restore: overwrite the slot in place.
                state.write_wavefield_into(&mut snapshots[idx]);
            } else {
                snapshots.push(state.wavefield());
            }
        }
        executed += 1;
        t += 1;
    }

    // Backward phase — same pipeline as `run_rtm`.
    let (h, v_src, dtf) = crate::rtm::medium_surface_params(medium, acq);
    let taper = 2.4 / wavelet.f_peak();
    let muted = mute_direct(&seismogram, acq, h, v_src, dtf, taper);
    let result = migrate_shot(
        medium,
        acq,
        &muted,
        &snapshots,
        config,
        steps,
        snap_period,
        gangs,
    );
    Ok(RestartOutcome {
        result,
        forward_steps_executed: executed,
        restores,
    })
}

/// Outcome of a checkpoint-restarted random-boundary RTM run.
pub struct RandBoundRestartOutcome {
    /// The migrated result — bitwise-identical to an uninterrupted
    /// [`run_rtm_random_boundary`] of the same shot and seed.
    pub result: RtmResult,
    /// Forward acquisition steps executed, including replayed ones.
    pub forward_steps_executed: usize,
    /// Checkpoint restores performed (one per interrupt).
    pub restores: usize,
}

/// [`crate::rand_boundary::run_rtm_random_boundary`] with an
/// interruptible, checkpointed forward
/// acquisition pass (the recorded-data modeling run): a full propagation
/// state is stored every `ckpt_every` steps and each entry of `interrupts`
/// kills the pass once when it first reaches that step. The migration
/// itself stores nothing to restart *from* — its source wavefield is a
/// pure function of the seed — so a restarted shot reproduces the
/// uninterrupted image **bit for bit** for a fixed
/// [`RandomBoundarySpec`]: replay overwrites are idempotent and the
/// randomized halo is a pure function of `(seed, cell)`.
#[allow(clippy::too_many_arguments)]
pub fn run_rand_boundary_with_restart(
    medium: &Medium2,
    acq: &Shot,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    spec: &RandomBoundarySpec,
    gangs: usize,
    ckpt_every: usize,
    interrupts: &[usize],
) -> Result<RandBoundRestartOutcome, RtmError> {
    if ckpt_every == 0 {
        return Err(ConfigError::ZeroSlots.into());
    }
    if steps == 0 {
        return Err(ConfigError::ZeroSteps.into());
    }
    let dt = medium.dt();
    let mut state = State2::new(medium);
    let mut ckpt_step = 0usize;
    let mut ckpt_state = State2::new(medium);
    let mut seismogram = Seismogram::zeros(acq.n_receivers(), steps);
    let mut pending: Vec<usize> = interrupts.iter().copied().filter(|&i| i < steps).collect();
    pending.sort_unstable();
    let mut next_interrupt = 0usize;
    let mut executed = 0usize;
    let mut restores = 0usize;

    let mut t = 0usize;
    while t < steps {
        if next_interrupt < pending.len() && pending[next_interrupt] == t {
            next_interrupt += 1;
            restores += 1;
            state.copy_from(&ckpt_state);
            t = ckpt_step;
            continue;
        }
        if t.is_multiple_of(ckpt_every) {
            ckpt_step = t;
            ckpt_state.copy_from(&state);
        }
        state.step(medium, config, gangs);
        state.inject(
            medium,
            acq.src_ix,
            acq.src_iz,
            wavelet.sample(t as f32 * dt),
        );
        for (r, rcv) in acq.receivers.iter().enumerate() {
            seismogram.record(r, t, state.sample(rcv.ix, rcv.iz));
        }
        executed += 1;
        t += 1;
    }

    let (h, v_src, dtf) = crate::rtm::medium_surface_params(medium, acq);
    let taper = 2.4 / wavelet.f_peak();
    let muted = mute_direct(&seismogram, acq, h, v_src, dtf, taper);
    let image = migrate_random_boundary(
        medium,
        acq,
        &muted,
        wavelet,
        config,
        steps,
        snap_period,
        spec,
        gangs,
    )?;
    Ok(RandBoundRestartOutcome {
        result: RtmResult {
            image,
            seismogram: muted,
            snapshots_saved: 0,
        },
        forward_steps_executed: executed,
        restores,
    })
}

/// [`modeling_time_multi`] under a fault plan: devices already lost are
/// dropped (the run degrades to the survivors), and transient allocation
/// failures retry with backoff. Returns the timing on the surviving card
/// count plus the accounting.
#[allow(clippy::too_many_arguments)]
pub fn modeling_time_multi_resilient(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    cluster: Cluster,
    w: &Workload,
    n_gpus: usize,
    packing: GhostPacking,
    mode: CommMode,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<(MultiGpuTiming, ResilienceStats), RtmError> {
    if n_gpus == 0 {
        return Err(ConfigError::ZeroGpus.into());
    }
    let mut stats = ResilienceStats::default();
    let mut alive: Vec<usize> = (0..n_gpus)
        .filter(|&g| plan.device_lost_at(g).is_none())
        .collect();
    stats.dead_ranks = (0..n_gpus).filter(|&g| !alive.contains(&g)).collect();
    // Each surviving card must get through its allocation, retrying
    // transient failures; a card that exhausts its retries is dropped too.
    let mut seq = vec![0u64; n_gpus];
    alive.retain(|&g| {
        for attempt in 0..=policy.max_retries {
            let s = seq[g];
            seq[g] += 1;
            if !plan.alloc_fails(g, s) {
                return true;
            }
            stats.retries += 1;
            if attempt < policy.max_retries {
                stats.backoff_s += policy.backoff_delay(plan.seed() ^ g as u64, attempt);
            }
        }
        stats.dead_ranks.push(g);
        false
    });
    if alive.is_empty() {
        return Err(RtmError::NoHealthyRanks);
    }
    let timing = modeling_time_multi(
        case,
        config,
        compiler,
        cluster,
        w,
        alive.len(),
        packing,
        mode,
    )?;
    stats.useful_s = timing.total_s;
    Ok((timing, stats))
}

/// Decomposed 2D modeling that degrades gracefully: ranks whose device is
/// already lost under `plan` are dropped and the run proceeds on the
/// survivors. The decomposed propagator is bitwise-identical for *any*
/// rank count, so the degraded field equals the full-cluster field
/// exactly. Returns the field and the rank count actually used.
#[allow(clippy::too_many_arguments)]
pub fn modeling_iso2_mpi_resilient(
    model: &IsoModel2,
    damp_x: &DampProfile,
    damp_z: &DampProfile,
    src: (usize, usize),
    wavelet: &Wavelet,
    steps: usize,
    ranks: usize,
    plan: &FaultPlan,
) -> Result<(Field2, usize), RtmError> {
    if ranks == 0 {
        return Err(ConfigError::ZeroRanks.into());
    }
    let alive = (0..ranks)
        .filter(|&r| plan.device_lost_at(r).is_none())
        .count();
    if alive == 0 {
        return Err(RtmError::NoHealthyRanks);
    }
    Ok((
        crate::mpi_run::modeling_iso2_mpi(model, damp_x, damp_z, src, wavelet, steps, alive),
        alive,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shot_parallel::rtm_shot_parallel;
    use accel_sim::fault::FaultRates;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic2_layered, iso2_constant, Layer};
    use seismic_model::{extent2, Geometry};
    use seismic_pml::CpmlAxis;
    use seismic_source::Acquisition2;

    fn medium(n: usize) -> Medium2 {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3000.0, h, 0.6);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: n / 2,
                vp: 3000.0,
                vs: 0.0,
                rho: 2400.0,
            },
        ];
        let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
        Medium2::Acoustic {
            model,
            cpml: [c.clone(), c],
        }
    }

    #[test]
    fn backoff_is_bounded_monotone_deterministic() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay_s: 0.25,
            max_delay_s: 30.0,
        };
        let mut prev = 0.0;
        for a in 0..12 {
            let d = p.backoff_delay(77, a);
            assert!(d >= prev, "attempt {a}: {d} < {prev}");
            assert!(d <= p.max_delay_s);
            assert!(d > 0.0);
            assert_eq!(d, p.backoff_delay(77, a), "deterministic");
            prev = d;
        }
        assert_eq!(p.backoff_delay(77, 11), p.max_delay_s, "cap reached");
    }

    #[test]
    fn backoff_stays_finite_to_attempt_64() {
        // Attempt counts far past f64's exponent range must clamp, not
        // overflow to infinity or NaN.
        let p = RetryPolicy {
            max_retries: 64,
            base_delay_s: 0.5,
            max_delay_s: 60.0,
        };
        let mut prev = 0.0;
        for a in 0..=64u32 {
            let d = p.backoff_delay(9, a);
            assert!(d.is_finite(), "attempt {a}: {d} not finite");
            assert!(d > 0.0 && d <= p.max_delay_s, "attempt {a}: {d}");
            assert!(d >= prev, "attempt {a}: {d} < {prev}");
            prev = d;
        }
        // Even a pathological base near f64::MAX must respect the cap.
        let extreme = RetryPolicy {
            max_retries: 64,
            base_delay_s: 1e300,
            max_delay_s: 120.0,
        };
        for a in [0u32, 1, 7, 52, 53, 63, 64] {
            let d = extreme.backoff_delay(9, a);
            assert!(
                d.is_finite() && d <= extreme.max_delay_s,
                "attempt {a}: {d}"
            );
        }
    }

    #[test]
    fn shot_attempt_cancels_on_infeasible_deadline() {
        let plan = FaultPlan::generate(0, 1, 1e6, FaultRates::none());
        let policy = RetryPolicy::default();
        let mut seq = 0u64;
        // Plenty of budget: completes.
        let ok = run_shot_attempts(0, 0.0, 10.0, &plan, &policy, &mut seq, Some(100.0), None);
        assert!(matches!(ok.outcome, ShotOutcome::Completed { .. }));
        assert_eq!(ok.end_s, 10.0);
        // Too little budget: cancelled before burning any device time, and
        // no transient-failure draw is consumed.
        let draws_before = seq;
        let cut = run_shot_attempts(0, 0.0, 10.0, &plan, &policy, &mut seq, Some(5.0), None);
        assert_eq!(cut.outcome, ShotOutcome::DeadlineCancelled { at_s: 0.0 });
        assert_eq!(cut.end_s, 0.0);
        assert_eq!(seq, draws_before, "no fault draw for a cancelled attempt");
        assert_eq!(cut.events, vec![ShotEvent::point("cancel:deadline", 0.0)]);
    }

    #[test]
    fn shot_attempt_deadline_accounts_for_backoff() {
        // Every allocation fails: the loop must give up once sleeping would
        // bust the deadline instead of sleeping into it.
        let rates = FaultRates {
            transient_oom_prob: 1.0,
            ..FaultRates::none()
        };
        let plan = FaultPlan::generate(1, 1, 1e6, rates);
        let policy = RetryPolicy {
            max_retries: 100,
            base_delay_s: 4.0,
            max_delay_s: 60.0,
        };
        let mut seq = 0u64;
        let att = run_shot_attempts(0, 0.0, 10.0, &plan, &policy, &mut seq, Some(15.0), None);
        assert_eq!(
            att.outcome,
            ShotOutcome::DeadlineCancelled { at_s: att.end_s }
        );
        assert!(att.end_s <= 15.0, "never slept past the deadline");
        assert!(att.retries >= 1, "at least one failing draw happened");
        assert_eq!(att.events.last().unwrap().name, "cancel:deadline");
    }

    #[test]
    fn shot_attempt_honors_cancellation_token() {
        let plan = FaultPlan::generate(0, 1, 1e6, FaultRates::none());
        let policy = RetryPolicy::default();
        let token = CancellationToken::new();
        let mut seq = 0u64;
        let before = run_shot_attempts(0, 2.0, 1.0, &plan, &policy, &mut seq, None, Some(&token));
        assert!(matches!(before.outcome, ShotOutcome::Completed { .. }));
        token.cancel();
        assert!(token.is_cancelled());
        let after = run_shot_attempts(0, 3.0, 1.0, &plan, &policy, &mut seq, None, Some(&token));
        assert_eq!(after.outcome, ShotOutcome::Cancelled { at_s: 3.0 });
        assert_eq!(after.end_s, 3.0);
        assert_eq!(after.events, vec![ShotEvent::point("cancel:token", 3.0)]);
    }

    #[test]
    fn health_tracker_blacklists_after_streak() {
        let mut h = HealthTracker::new(3, 2);
        assert!(!h.record_failure(1));
        h.record_success(1);
        assert!(!h.record_failure(1), "streak was reset");
        assert!(h.record_failure(1), "second consecutive blacklists");
        assert!(!h.is_healthy(1));
        assert_eq!(h.healthy(), vec![0, 2]);
        h.blacklist(0);
        assert_eq!(h.healthy(), vec![2]);
    }

    #[test]
    fn young_interval_scaling() {
        let i = optimal_checkpoint_interval(2.0, 3600.0);
        assert!((i - (2.0 * 2.0 * 3600.0f64).sqrt()).abs() < 1e-12);
        // 4× the MTTI → 2× the interval.
        assert!((optimal_checkpoint_interval(2.0, 4.0 * 3600.0) / i - 2.0).abs() < 1e-12);
        assert_eq!(
            optimal_checkpoint_interval(2.0, f64::INFINITY),
            f64::INFINITY
        );
        assert_eq!(optimal_checkpoint_interval(0.0, 100.0), f64::INFINITY);
    }

    /// First seed whose plan kills at least one rank but not all of them
    /// mid-survey — deterministic given the scan order.
    fn seed_with_partial_loss(ranks: usize, horizon: f64, rates: FaultRates) -> (u64, FaultPlan) {
        for seed in 0..1000u64 {
            let p = FaultPlan::generate(seed, ranks, horizon, rates);
            let survivors = p.surviving_devices().len();
            let early_loss =
                (0..ranks).any(|d| p.device_lost_at(d).is_some_and(|t| t < horizon * 0.5));
            if survivors >= 1 && survivors < ranks && early_loss {
                return (seed, p);
            }
        }
        panic!("no seed with partial loss in range");
    }

    #[test]
    fn schedule_is_deterministic_and_covers_all_shots() {
        let rates = FaultRates {
            device_lost_mtti_s: 40.0,
            transient_oom_prob: 0.05,
            ..FaultRates::none()
        };
        let (_, plan) = seed_with_partial_loss(3, 100.0, rates);
        let policy = RetryPolicy::default();
        let a = plan_survey(11, 3, 7.0, &plan, &policy).unwrap();
        let b = plan_survey(11, 3, 7.0, &plan, &policy).unwrap();
        assert_eq!(a, b);
        // Every shot placed exactly once, on a valid rank; a placement on a
        // now-dead rank means the shot finished before that rank died.
        assert_eq!(a.placement.len(), 11);
        for (s, &r) in a.placement.iter().enumerate() {
            assert!(r < 3, "shot {s} unplaced");
        }
        assert!(!a.stats.dead_ranks.is_empty());
        assert!(a.stats.rescheduled_shots > 0);
        assert!(a.stats.useful_s > 0.0);
    }

    /// Observing the survey planner changes nothing about the schedule,
    /// yields a valid per-rank timeline, and its registry counters agree
    /// with the returned stats.
    #[test]
    fn observed_survey_matches_plain_and_validates() {
        let rates = FaultRates {
            device_lost_mtti_s: 40.0,
            transient_oom_prob: 0.05,
            ..FaultRates::none()
        };
        let (_, plan) = seed_with_partial_loss(3, 100.0, rates);
        let policy = RetryPolicy::default();
        let plain = plan_survey(11, 3, 7.0, &plan, &policy).unwrap();
        let obs = ObsSession::new();
        let traced = plan_survey_obs(11, 3, 7.0, &plan, &policy, Some(&obs)).unwrap();
        assert_eq!(plain, traced, "observation must not perturb the schedule");
        obs.tracer.validate_tracks().expect("serial rank tracks");
        // One track per rank that did anything; spans carry shot ids.
        assert!(!obs.tracer.tracks().is_empty());
        assert!(obs
            .tracer
            .spans()
            .iter()
            .all(|s| matches!(s.track, Track::MpiRank(_))));
        assert_eq!(obs.registry.counter("shot_retries"), traced.stats.retries);
        assert_eq!(
            obs.registry.counter("ranks_blacklisted"),
            traced.stats.dead_ranks.len() as u64
        );
        // Useful seconds equal the summed successful-shot span durations.
        let useful: f64 = obs
            .tracer
            .spans()
            .iter()
            .filter(|s| s.name == "shot")
            .map(|s| s.dur_s)
            .sum();
        assert!((useful - traced.stats.useful_s).abs() < 1e-9);
    }

    #[test]
    fn all_ranks_lost_is_an_error() {
        let rates = FaultRates {
            device_lost_mtti_s: 0.5,
            ..FaultRates::none()
        };
        // A horizon of many MTTIs kills everything for the first seed that
        // schedules a loss per device before any work finishes.
        for seed in 0..1000u64 {
            let plan = FaultPlan::generate(seed, 2, 1000.0, rates);
            if plan.surviving_devices().is_empty()
                && (0..2).all(|d| plan.device_lost_at(d).unwrap() < 1.0)
            {
                let r = plan_survey(4, 2, 5.0, &plan, &RetryPolicy::default());
                assert_eq!(r.unwrap_err(), RtmError::NoHealthyRanks);
                return;
            }
        }
        panic!("no fully-lethal seed found");
    }

    /// The headline tentpole property: under a fault plan that kills some
    /// (not all) ranks, the resilient survey completes and its stacked
    /// image is bitwise-identical to the fault-free run.
    #[test]
    fn faulted_survey_image_is_bitwise_identical() {
        let n = 48;
        let m = medium(n);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let shots: Vec<Shot> = [n / 4, n / 2, 3 * n / 4, n / 3]
            .into_iter()
            .map(|sx| Acquisition2::surface_line(n, sx, 5, 5, 3))
            .collect();
        let steps = 120;
        let ranks = 3;
        let reference = rtm_shot_parallel(&m, &shots, &w, &cfg, steps, 4, 2, ranks).unwrap();

        let rates = FaultRates {
            device_lost_mtti_s: 30.0,
            transient_oom_prob: 0.08,
            straggler_mtti_s: 25.0,
            straggler_duration_s: 10.0,
            straggler_slowdown: 2.0,
            ..FaultRates::none()
        };
        let (_, plan) = seed_with_partial_loss(ranks, 200.0, rates);
        let (img, stats) = rtm_survey_resilient(
            &m,
            &shots,
            &w,
            &cfg,
            steps,
            4,
            2,
            ranks,
            10.0,
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(!stats.dead_ranks.is_empty(), "a rank must actually die");
        assert_eq!(img, reference, "bitwise-identical stacked image");
        assert!(stats.overhead_frac() > 0.0);
    }

    /// Checkpoint-restart redoes strictly fewer forward steps than a
    /// restart from zero, with bitwise-identical output.
    #[test]
    fn restart_recompute_is_strictly_less_than_from_zero() {
        let n = 48;
        let m = medium(n);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 3);
        let steps = 160;
        let interrupts = [140usize];

        let plain = run_rtm(&m, &acq, &w, &cfg, steps, 4, 2);
        let ck = run_rtm_with_restart(&m, &acq, &w, &cfg, steps, 4, 2, 25, &interrupts).unwrap();
        let zero =
            run_rtm_with_restart(&m, &acq, &w, &cfg, steps, 4, 2, steps, &interrupts).unwrap();

        assert_eq!(ck.restores, 1);
        assert_eq!(zero.restores, 1);
        // Checkpointed: replays 140-125 = 15 steps; from zero: 140.
        assert_eq!(ck.forward_steps_executed, steps + (140 - 125));
        assert_eq!(zero.forward_steps_executed, steps + 140);
        assert!(ck.forward_steps_executed < zero.forward_steps_executed);
        // Both reproduce the uninterrupted run exactly.
        assert_eq!(ck.result.image, plain.image);
        assert_eq!(ck.result.seismogram, plain.seismogram);
        assert_eq!(zero.result.image, plain.image);
        // No interrupts → no replay at all.
        let clean = run_rtm_with_restart(&m, &acq, &w, &cfg, steps, 4, 2, 25, &[]).unwrap();
        assert_eq!(clean.forward_steps_executed, steps);
        assert_eq!(clean.restores, 0);
        assert_eq!(clean.result.image, plain.image);
        // The plan_checkpoints-driven schedule also resumes mid-shot with
        // strictly less recompute than from-zero, bit-exact.
        let planned =
            run_rtm_with_restart_planned(&m, &acq, &w, &cfg, steps, 4, 2, 6, &interrupts).unwrap();
        assert_eq!(planned.restores, 1);
        assert!(
            planned.forward_steps_executed > steps,
            "some replay happened"
        );
        assert!(planned.forward_steps_executed < zero.forward_steps_executed);
        assert_eq!(planned.result.image, plain.image);
        assert_eq!(planned.result.seismogram, plain.seismogram);
    }

    /// Random-boundary shots survive interrupts with the same guarantee as
    /// checkpointed ones: the restarted run's image is bitwise-identical to
    /// the uninterrupted run for a fixed seed, with strictly less recompute
    /// than restarting from zero.
    #[test]
    fn rand_boundary_restart_is_bitwise_identical() {
        let n = 48;
        let m = medium(n);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 3);
        let steps = 160;
        let spec = RandomBoundarySpec::new(8, 2024);
        let interrupts = [140usize];

        let plain =
            crate::rand_boundary::run_rtm_random_boundary(&m, &acq, &w, &cfg, steps, 4, &spec, 2)
                .unwrap();
        let ck =
            run_rand_boundary_with_restart(&m, &acq, &w, &cfg, steps, 4, &spec, 2, 25, &interrupts)
                .unwrap();
        let zero = run_rand_boundary_with_restart(
            &m,
            &acq,
            &w,
            &cfg,
            steps,
            4,
            &spec,
            2,
            steps,
            &interrupts,
        )
        .unwrap();

        assert_eq!(ck.restores, 1);
        assert_eq!(ck.forward_steps_executed, steps + (140 - 125));
        assert_eq!(zero.forward_steps_executed, steps + 140);
        assert!(ck.forward_steps_executed < zero.forward_steps_executed);
        assert_eq!(ck.result.image, plain.image, "restart must not change bits");
        assert_eq!(ck.result.seismogram, plain.seismogram);
        assert_eq!(zero.result.image, plain.image);
        assert_eq!(ck.result.snapshots_saved, 0);
        // Clean run does no replay.
        let clean = run_rand_boundary_with_restart(&m, &acq, &w, &cfg, steps, 4, &spec, 2, 25, &[])
            .unwrap();
        assert_eq!(clean.forward_steps_executed, steps);
        assert_eq!(clean.restores, 0);
        assert_eq!(clean.result.image, plain.image);
    }

    #[test]
    fn multi_gpu_resilient_degrades_and_retries() {
        use openacc_sim::PgiVersion;
        use seismic_model::footprint::{Dims, Formulation};
        let case = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Three,
        };
        let w = Workload {
            nx: 256,
            ny: 256,
            nz: 256,
            steps: 100,
            snap_period: 10,
            n_receivers: 100,
        };
        let cfg = OptimizationConfig::default();
        let pgi = Compiler::Pgi(PgiVersion::V14_6);
        let rates = FaultRates {
            device_lost_mtti_s: 50.0,
            transient_oom_prob: 0.3,
            ..FaultRates::none()
        };
        // A plan that loses at least one of 4 devices inside the horizon.
        let (_, plan) = {
            let mut found = None;
            for seed in 0..1000u64 {
                let p = FaultPlan::generate(seed, 4, 100.0, rates);
                let s = p.surviving_devices().len();
                if (1..4).contains(&s) {
                    found = Some((seed, p));
                    break;
                }
            }
            found.expect("partial-loss seed")
        };
        let (t, stats) = modeling_time_multi_resilient(
            &case,
            &cfg,
            pgi,
            Cluster::CrayXc30,
            &w,
            4,
            GhostPacking::DevicePacked,
            CommMode::Blocking,
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(t.n_gpus < 4, "degraded below the nominal count");
        assert!(t.n_gpus >= 1);
        assert!(!stats.dead_ranks.is_empty());
        // Fault-free plan reproduces the plain pricing exactly.
        let clean = FaultPlan::generate(0, 4, 100.0, FaultRates::none());
        let (tc, sc) = modeling_time_multi_resilient(
            &case,
            &cfg,
            pgi,
            Cluster::CrayXc30,
            &w,
            4,
            GhostPacking::DevicePacked,
            CommMode::Blocking,
            &clean,
            &RetryPolicy::default(),
        )
        .unwrap();
        let plain = modeling_time_multi(
            &case,
            &cfg,
            pgi,
            Cluster::CrayXc30,
            &w,
            4,
            GhostPacking::DevicePacked,
            CommMode::Blocking,
        )
        .unwrap();
        assert_eq!(tc, plain);
        assert_eq!(sc.retries, 0);
    }

    /// Degraded decomposed runs keep the exact field — the rank-count
    /// bitwise-identity of the mpi driver is what makes degradation
    /// "graceful" in the strongest sense.
    #[test]
    fn mpi_degradation_preserves_field_exactly() {
        let n = 40;
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 2000.0, h, 0.5);
        let model = iso2_constant(e, 2000.0, Geometry::uniform(h, dt));
        let damp = DampProfile::new(n, e.halo, 12, 2000.0, h, 1e-4);
        let w = Wavelet::ricker(18.0);
        let full =
            crate::mpi_run::modeling_iso2_mpi(&model, &damp, &damp, (n / 2, n / 2), &w, 60, 4);
        let rates = FaultRates {
            device_lost_mtti_s: 20.0,
            ..FaultRates::none()
        };
        let (_, plan) = {
            let mut found = None;
            for seed in 0..1000u64 {
                let p = FaultPlan::generate(seed, 4, 100.0, rates);
                let s = p.surviving_devices().len();
                if (1..4).contains(&s) {
                    found = Some((seed, p));
                    break;
                }
            }
            found.expect("partial-loss seed")
        };
        let (degraded, used) =
            modeling_iso2_mpi_resilient(&model, &damp, &damp, (n / 2, n / 2), &w, 60, 4, &plan)
                .unwrap();
        assert!((1..4).contains(&used));
        assert_eq!(degraded, full, "bitwise-equal under degradation");
        // Total loss is a typed error.
        let lethal = FaultRates {
            device_lost_mtti_s: 1e-6,
            ..FaultRates::none()
        };
        let dead = FaultPlan::generate(3, 4, 100.0, lethal);
        if dead.surviving_devices().is_empty() {
            let r =
                modeling_iso2_mpi_resilient(&model, &damp, &damp, (n / 2, n / 2), &w, 60, 4, &dead);
            assert_eq!(r.unwrap_err(), RtmError::NoHealthyRanks);
        }
    }
}
