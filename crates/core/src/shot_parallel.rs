//! Shot-parallel RTM over message-passing ranks.
//!
//! The production pattern above the paper's per-shot pipeline: a survey has
//! many shots, each an independent forward+backward run ("a one shot
//! profile" in the paper's measurements), so shots distribute
//! embarrassingly across ranks and the migrated images stack on the root.
//! This is the level at which the paper's cluster would actually be used —
//! one GPU (or socket) per shot — and the level its multi-node story
//! implies.

use crate::case::OptimizationConfig;
use crate::error::ConfigError;
use crate::modeling::Medium2;
use crate::rtm::run_rtm;
use bytes::Bytes;
use mpi_sim::comm::Communicator;
use seismic_grid::Field2;
use seismic_source::{Acquisition2, Wavelet};

/// One shot's acquisition (source position varies; receivers may too).
pub type Shot = Acquisition2;

/// Round-robin assignment of shot indices to a rank.
pub fn shots_for_rank(n_shots: usize, rank: usize, ranks: usize) -> Vec<usize> {
    (0..n_shots).filter(|s| s % ranks == rank).collect()
}

/// Migrate `shots` distributed over `ranks` ranks; every rank runs its
/// shots' full RTM pipelines locally and the stacked image is assembled on
/// rank 0 (returned; identical on a single rank to sequential stacking).
#[allow(clippy::too_many_arguments)]
pub fn rtm_shot_parallel(
    medium: &Medium2,
    shots: &[Shot],
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs_per_rank: usize,
    ranks: usize,
) -> Result<Field2, ConfigError> {
    if shots.is_empty() {
        return Err(ConfigError::NoShots);
    }
    if ranks == 0 {
        return Err(ConfigError::ZeroRanks);
    }
    let e = medium.extent();
    let mut results = Communicator::run(ranks, |ctx| {
        let mine = shots_for_rank(shots.len(), ctx.rank(), ctx.size());
        let mut local = Field2::zeros(e);
        for s in mine {
            let r = run_rtm(
                medium,
                &shots[s],
                wavelet,
                config,
                steps,
                snap_period,
                gangs_per_rank,
            );
            for (d, v) in local.as_mut_slice().iter_mut().zip(r.image.as_slice()) {
                *d += *v;
            }
        }
        if ctx.rank() == 0 {
            let mut stack = local;
            for r in 1..ctx.size() {
                let b = ctx.recv(r, 777);
                for (i, chunk) in b.chunks_exact(4).enumerate() {
                    stack.as_mut_slice()[i] +=
                        f32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                }
            }
            Some(stack)
        } else {
            let mut payload = Vec::with_capacity(local.as_slice().len() * 4);
            for v in local.as_slice() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            ctx.isend(0, 777, Bytes::from(payload));
            None
        }
    });
    Ok(results.remove(0).expect("rank 0 returns the stack"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic2_layered, Layer};
    use seismic_model::{extent2, Geometry};
    use seismic_pml::CpmlAxis;

    fn medium(n: usize) -> Medium2 {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3000.0, h, 0.6);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: n / 2,
                vp: 3000.0,
                vs: 0.0,
                rho: 2400.0,
            },
        ];
        let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
        Medium2::Acoustic {
            model,
            cpml: [c.clone(), c],
        }
    }

    #[test]
    fn degenerate_surveys_are_typed_errors() {
        let m = medium(24);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        assert_eq!(
            rtm_shot_parallel(&m, &[], &w, &cfg, 10, 2, 1, 2),
            Err(ConfigError::NoShots)
        );
        let shots = [Acquisition2::surface_line(24, 12, 5, 5, 2)];
        assert_eq!(
            rtm_shot_parallel(&m, &shots, &w, &cfg, 10, 2, 1, 0),
            Err(ConfigError::ZeroRanks)
        );
    }

    #[test]
    fn round_robin_partition() {
        let a = shots_for_rank(7, 0, 3);
        let b = shots_for_rank(7, 1, 3);
        let c = shots_for_rank(7, 2, 3);
        assert_eq!(a, vec![0, 3, 6]);
        assert_eq!(b, vec![1, 4]);
        assert_eq!(c, vec![2, 5]);
        let mut all: Vec<_> = a.into_iter().chain(b).chain(c).collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    /// Distributed stacking must match single-rank stacking bitwise: shots
    /// are independent and addition order per pixel is rank-count
    /// invariant under round-robin assignment... it is not in general —
    /// so the implementation stacks locally in shot order and the test
    /// pins the 2-rank result against the sequential sum in the same
    /// grouping order.
    #[test]
    fn distributed_stack_matches_sequential() {
        let n = 56;
        let m = medium(n);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let shots: Vec<Shot> = [n / 3, n / 2, 2 * n / 3]
            .into_iter()
            .map(|sx| Acquisition2::surface_line(n, sx, 5, 5, 4))
            .collect();
        let steps = 150;
        // Sequential reference replicating the distributed reduction order:
        // rank 0 holds shots {0, 2}, rank 1 holds {1}; stack = local0 + local1.
        let img = |s: &Shot| run_rtm(&m, s, &w, &cfg, steps, 4, 2).image;
        let mut local0 = Field2::zeros(m.extent());
        for s in [&shots[0], &shots[2]] {
            for (d, v) in local0.as_mut_slice().iter_mut().zip(img(s).as_slice()) {
                *d += *v;
            }
        }
        let local1 = img(&shots[1]);
        let mut expect = local0;
        for (d, v) in expect.as_mut_slice().iter_mut().zip(local1.as_slice()) {
            *d += *v;
        }

        let got = rtm_shot_parallel(&m, &shots, &w, &cfg, steps, 4, 2, 2).unwrap();
        assert_eq!(got, expect);
        // And a single rank reproduces the same physics (different addition
        // grouping ⇒ compare with tolerance).
        let got1 = rtm_shot_parallel(&m, &shots, &w, &cfg, steps, 4, 2, 1).unwrap();
        let scale = got.max_abs().max(1e-12);
        for (a, b) in got.as_slice().iter().zip(got1.as_slice()) {
            assert!((a - b).abs() <= 1e-5 * scale, "{a} vs {b}");
        }
    }
}
