//! Directive-program extraction for the verifier.
//!
//! `acc-verify` checks a [`Program`]: the ordered data directives, kernel
//! launches, and waits a driver issues. This module builds that program for
//! every seismic case by walking the *same* launch plans
//! ([`crate::plan::step_phases`] and friends) the timing estimator and the
//! real-execution drivers consume, so the verified sequence is the executed
//! sequence. Time loops are unrolled to [`VERIFY_STEPS`] steps — the steps
//! are identical, so two iterations reach the checkers' fixpoint — with the
//! snapshot branch taken on the first step.
//!
//! ## Access declarations
//!
//! Each kernel's footprint is declared over *sub-field slots* of the one
//! mapped block its case uses (`"fields"`, `"forward"`, `"backward"`):
//! slot `k` starts at `k·slot_size + pad` elements, sized so an 8th-order
//! stencil star never crosses a slot boundary. A kernel writes its own
//! slot and reads the slots the previous phase wrote (for the first phase:
//! the last phase's slots — the leapfrog time-level rotation). This is the
//! real data flow of the propagators, and it makes the paper's directives
//! verifiably correct: writes never alias reads within a launch, async
//! phases touch disjoint slots, and the inter-phase `wait` is what keeps
//! cross-queue readers off in-flight writes.

use crate::case::{ImagePlacement, OptimizationConfig, SeismicCase, Workload};
use crate::plan::{self, LaunchSpec, Phase};
use acc_verify::vectorize::{VectorCertificate, VECTOR_ALIGN};
use acc_verify::{Launch, Op, Program};
use openacc_sim::access::{AccessSet, ReduceOp};
use openacc_sim::{Clause, Compiler, ConstructKind, LoopNest};
use seismic_grid::STENCIL_HALF;
use seismic_model::footprint::Formulation;

/// Time steps each program unrolls (the steps are identical; two reach the
/// abstract-interpretation fixpoint).
pub const VERIFY_STEPS: usize = 2;

/// Sub-field slot layout within one mapped array.
#[derive(Debug, Clone, Copy)]
struct SlotLayout {
    /// Elements per innermost row (the z-neighbour stride of the star).
    row: i64,
    /// Halo margin before/after each slot's live range.
    pad: i64,
    /// Elements per slot.
    slot: i64,
}

impl SlotLayout {
    fn new(w: &Workload) -> Self {
        let row = w.nx as i64;
        // Pad and slot size are rounded up to the vector alignment so
        // every slot base lands on a VECTOR_ALIGN boundary: the store
        // streams the vectorization verifier certifies start aligned, and
        // the `misalign_base` mutation is a genuine 0 → nonzero flip.
        let pad = align_up(STENCIL_HALF as i64 * row + STENCIL_HALF as i64);
        SlotLayout {
            row,
            pad,
            slot: align_up(w.alloc_points(STENCIL_HALF) as i64 + 2 * pad),
        }
    }

    fn base(&self, slot: usize) -> i64 {
        slot as i64 * self.slot + self.pad
    }
}

/// Round up to the next multiple of [`VECTOR_ALIGN`].
fn align_up(v: i64) -> i64 {
    (v + VECTOR_ALIGN - 1) / VECTOR_ALIGN * VECTOR_ALIGN
}

/// The FD-star footprint: write `array[out + i]`, read the full 8th-order
/// star around `array[b + i]` for every input base `b`.
fn stencil_access(
    spec: &LaunchSpec,
    array: &str,
    out: i64,
    ins: &[i64],
    lay: &SlotLayout,
) -> AccessSet {
    let trip = spec.nest.points();
    let mut a = AccessSet::new(trip).write(array, out, 1);
    for &b in ins {
        a = a.read(array, b, 1);
        for k in 1..=STENCIL_HALF as i64 {
            for d in [k, -k, k * lay.row, -k * lay.row] {
                a = a.read(array, b + d, 1);
            }
        }
    }
    a
}

fn to_launch(spec: &LaunchSpec, access: AccessSet) -> Launch {
    Launch {
        name: spec.desc.name.to_string(),
        nest: spec.nest.clone(),
        kind: spec.kind,
        clauses: spec.clauses.clone(),
        access,
        regs: spec.desc.regs,
    }
}

fn is_async(spec: &LaunchSpec) -> bool {
    spec.clauses.iter().any(|c| matches!(c, Clause::Async(_)))
}

/// Emit one time step's phases. Slot 0 is the input bank; phase `p` kernel
/// `i` writes slot `phase_slots[p][i]` and reads the previous phase's
/// slots (the last phase's, for `p == 0`).
fn emit_step(
    ops: &mut Vec<Op>,
    phases: &[Phase],
    array: &str,
    lay: &SlotLayout,
    phase_slots: &[Vec<usize>],
) {
    let n = phases.len();
    for (p, phase) in phases.iter().enumerate() {
        let prev: Vec<i64> = if p == 0 && n == 1 {
            vec![lay.base(0)]
        } else {
            phase_slots[(p + n - 1) % n]
                .iter()
                .map(|&s| lay.base(s))
                .collect()
        };
        let mut any_async = false;
        for (i, spec) in phase.iter().enumerate() {
            let out = lay.base(phase_slots[p][i]);
            ops.push(Op::Launch(to_launch(
                spec,
                stencil_access(spec, array, out, &prev, lay),
            )));
            any_async |= is_async(spec);
        }
        if any_async {
            ops.push(Op::Wait);
        }
    }
}

fn assign_slots(phases: &[Phase]) -> (Vec<Vec<usize>>, usize) {
    let mut next = 1; // slot 0 is the input bank
    let mut per_phase = Vec::with_capacity(phases.len());
    for phase in phases {
        let slots: Vec<usize> = (0..phase.len())
            .map(|_| {
                let s = next;
                next += 1;
                s
            })
            .collect();
        per_phase.push(slots);
    }
    (per_phase, next)
}

fn source_op(
    case: &SeismicCase,
    compiler: Compiler,
    config: &OptimizationConfig,
    array: &str,
    lay: &SlotLayout,
    slot: usize,
) -> Op {
    let src = plan::source_injection(case, compiler, config);
    let access = AccessSet::new(src.nest.points()).write(array, lay.base(slot), 0);
    Op::Launch(to_launch(&src, access))
}

/// The per-step QC energy norm: a flat `sum(u[i]²)` sweep over the newest
/// wavefield slot, accumulated with a declared `reduction(+:...)` into a
/// dedicated (aligned) cell of `qc_slot`. This is the drivers' solver-QC
/// / convergence check, and it gives every program a declared FP
/// reduction for the vectorization verifier to judge: lane-private
/// partials are race-free, but a vectorized `+` combine reassociates, so
/// the certificate carries a documented ULP bound instead of `Legal`.
fn qc_norm_op(array: &str, lay: &SlotLayout, in_slot: usize, qc_slot: usize, trip: u64) -> Op {
    Op::Launch(Launch {
        name: "qc_energy_norm".into(),
        nest: LoopNest::new(&[trip]),
        kind: ConstructKind::Kernels,
        clauses: vec![Clause::Independent],
        access: AccessSet::new(trip)
            .read(array, lay.base(in_slot), 1)
            .reduce(array, lay.base(qc_slot), ReduceOp::Sum),
        regs: 16,
    })
}

/// The modeling driver's directive program (mirrors
/// [`crate::gpu_time::modeling_time`]).
pub fn modeling_program(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    w: &Workload,
) -> Program {
    let lay = SlotLayout::new(w);
    let phases = plan::step_phases(case, config, w, compiler);
    let (slots, n_slots) = assign_slots(&phases);
    let newest_slot = slots.last().and_then(|s| s.last()).copied().unwrap_or(0);
    let qc_trip = (lay.slot - 2 * lay.pad) as u64;
    let mut p = Program::new(format!("{} modeling", case.label()));
    p.push(Op::EnterDataCopyin {
        array: "fields".into(),
    });
    let steps = w.steps.clamp(1, VERIFY_STEPS);
    for step in 0..steps {
        emit_step(&mut p.ops, &phases, "fields", &lay, &slots);
        p.push(source_op(case, compiler, config, "fields", &lay, n_slots));
        p.push(qc_norm_op(
            "fields",
            &lay,
            newest_slot,
            n_slots + 1,
            qc_trip,
        ));
        if step % w.snap_period == 0 {
            p.push(Op::UpdateHost {
                array: "fields".into(),
            })
            .push(Op::HostRead {
                array: "fields".into(),
            });
        }
    }
    p.push(Op::ExitDataDelete {
        array: "fields".into(),
    });
    p
}

/// The RTM driver's directive program (mirrors
/// [`crate::gpu_time::rtm_time`]): forward phase, data-environment swap,
/// backward phase with receiver injection and the imaging condition.
pub fn rtm_program(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    w: &Workload,
) -> Program {
    let lay = SlotLayout::new(w);
    let phases = plan::step_phases(case, config, w, compiler);
    let (slots, n_slots) = assign_slots(&phases);
    let iso_consistency = case.formulation == Formulation::Isotropic;
    let steps = w.steps.clamp(1, VERIFY_STEPS);
    let src_slot = n_slots;
    let rcv_slot = n_slots + 1;
    let img_slot = n_slots + 2;
    let qc_slot = n_slots + 3;
    let newest_slot = slots.last().and_then(|s| s.last()).copied().unwrap_or(0);
    let qc_trip = (lay.slot - 2 * lay.pad) as u64;

    let mut p = Program::new(format!("{} RTM", case.label()));

    // Step 1/2: forward allocation and forward sweep with snapshot saves.
    p.push(Op::EnterDataCopyin {
        array: "forward".into(),
    });
    for step in 0..steps {
        emit_step(&mut p.ops, &phases, "forward", &lay, &slots);
        p.push(source_op(case, compiler, config, "forward", &lay, src_slot));
        p.push(qc_norm_op("forward", &lay, newest_slot, qc_slot, qc_trip));
        if step % w.snap_period == 0 {
            p.push(Op::UpdateHost {
                array: "forward".into(),
            })
            .push(Op::HostRead {
                array: "forward".into(),
            });
        }
        if iso_consistency {
            // "requires many host-GPU updates ... to keep the variables
            // consistent": host refreshes its slice, mutates, re-uploads.
            p.push(Op::UpdateHost {
                array: "forward".into(),
            })
            .push(Op::HostWrite {
                array: "forward".into(),
            })
            .push(Op::UpdateDevice {
                array: "forward".into(),
            });
        }
    }

    // Step 3: offload forward scratch, upload the backward/imaging set.
    p.push(Op::ExitDataDelete {
        array: "forward".into(),
    })
    .push(Op::EnterDataCopyin {
        array: "forward_wavefield".into(),
    })
    .push(Op::EnterDataCopyin {
        array: "backward".into(),
    });

    // Step 4: backward sweep with receiver injection + imaging condition.
    let rcv = plan::receiver_injection(case, compiler, config, w.n_receivers);
    let img = plan::imaging_kernel(case, compiler, config, w);
    let last_slot = slots.last().and_then(|s| s.last()).copied().unwrap_or(0);
    for step in 0..steps {
        if step % w.snap_period == 0 {
            // The host stages the saved forward snapshot, then uploads it.
            p.push(Op::HostWrite {
                array: "forward_wavefield".into(),
            })
            .push(Op::UpdateDevice {
                array: "forward_wavefield".into(),
            });
            match config.image_placement {
                ImagePlacement::Gpu => {
                    let access = AccessSet::new(img.nest.points())
                        .read("forward_wavefield", lay.pad, 1)
                        .read("backward", lay.base(last_slot), 1)
                        .write("backward", lay.base(img_slot), 1);
                    p.push(Op::Launch(to_launch(&img, access)));
                }
                ImagePlacement::Cpu => {
                    p.push(Op::UpdateHost {
                        array: "backward".into(),
                    })
                    .push(Op::HostRead {
                        array: "backward".into(),
                    });
                }
            }
        }
        emit_step(&mut p.ops, &phases, "backward", &lay, &slots);
        for r in &rcv {
            // Read the recorded trace, scatter into the receiver slot; the
            // offset-by-one strided pair is conflict-free (gcd 7 ∤ 1).
            let base = lay.base(rcv_slot);
            let access = AccessSet::new(r.nest.points())
                .read("backward", base + 1, 7)
                .write("backward", base, 7);
            p.push(Op::Launch(to_launch(r, access)));
        }
        p.push(qc_norm_op("backward", &lay, newest_slot, qc_slot, qc_trip));
        if iso_consistency {
            p.push(Op::UpdateHost {
                array: "backward".into(),
            })
            .push(Op::HostWrite {
                array: "backward".into(),
            })
            .push(Op::UpdateDevice {
                array: "backward".into(),
            });
        }
    }

    // Step 5: store the image, free the device.
    p.push(Op::UpdateHost {
        array: "backward".into(),
    })
    .push(Op::HostRead {
        array: "backward".into(),
    })
    .push(Op::ExitDataDelete {
        array: "backward".into(),
    })
    .push(Op::ExitDataDelete {
        array: "forward_wavefield".into(),
    });
    p
}

/// Both programs of a case, labeled.
pub fn case_programs(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    w: &Workload,
) -> Vec<Program> {
    vec![
        modeling_program(case, config, compiler, w),
        rtm_program(case, config, compiler, w),
    ]
}

/// Mutation: make the `nth` parallelized stencil launch update *in place*
/// (reads re-aimed at its own write slot) — the classic false-`independent`
/// bug. Returns the op index mutated, or `None` if there is no eligible
/// launch.
pub fn break_kernel_inplace(p: &mut Program, nth: usize) -> Option<usize> {
    let mut seen = 0;
    for (i, op) in p.ops.iter_mut().enumerate() {
        if let Op::Launch(l) = op {
            let parallelized = l.claims_independent() || !l.nest.innermost_dependence;
            let unit_write = l.access.writes.iter().any(|w| w.stride == 1);
            if parallelized && unit_write && !l.access.reads.is_empty() {
                if seen == nth {
                    let w = l.access.writes.iter().find(|w| w.stride == 1).cloned()?;
                    let row = *l.nest.sizes.last().unwrap_or(&1) as i64;
                    l.access = AccessSet::stencil_inplace(
                        l.access.trip,
                        w.array.clone(),
                        w.offset,
                        STENCIL_HALF as i64,
                        row.max(2),
                    );
                    return Some(i);
                }
                seen += 1;
            }
        }
    }
    None
}

/// Count of launches [`break_kernel_inplace`] could target.
pub fn breakable_launches(p: &Program) -> usize {
    p.launches()
        .filter(|(_, l)| {
            (l.claims_independent() || !l.nest.innermost_dependence)
                && l.access.writes.iter().any(|w| w.stride == 1)
                && !l.access.reads.is_empty()
        })
        .count()
}

/// Mutation: remove every `wait`, letting async phases collide — the
/// cross-queue hazard the checker must catch.
pub fn drop_waits(p: &mut Program) -> usize {
    let before = p.ops.len();
    p.ops
        .retain(|op| !matches!(op, Op::Wait | Op::WaitQueue(_)));
    before - p.ops.len()
}

/// Whether a launch is a target for the vector-legality mutations: a
/// parallelized loop with a unit-stride store stream (the shape the
/// verifier certifies at width ≥ 2 on the clean programs).
fn vector_breakable(l: &Launch) -> bool {
    (l.claims_independent() || !l.nest.innermost_dependence)
        && l.access.writes.iter().any(|w| w.stride == 1)
}

/// Mutation: give the `nth` vectorizable launch a distance-1 carried
/// dependence — `u[i] = f(u[i−1])`, the running recurrence — so any two
/// adjacent iterations share an element and no lane width ≥ 2 is legal.
/// Both tiers must flip: the static certificate to `Illegal` with a
/// distance-1 witness, and the chunked lane replay to a conflict in every
/// chunk. Returns the mutated op index.
pub fn break_vector_distance1(p: &mut Program, nth: usize) -> Option<usize> {
    let mut seen = 0;
    for (i, op) in p.ops.iter_mut().enumerate() {
        if let Op::Launch(l) = op {
            if vector_breakable(l) {
                if seen == nth {
                    let w = l.access.writes.iter().find(|w| w.stride == 1).cloned()?;
                    l.access = AccessSet::new(l.access.trip)
                        .write(w.array.clone(), w.offset, 1)
                        .read(w.array, w.offset - 1, 1);
                    return Some(i);
                }
                seen += 1;
            }
        }
    }
    None
}

/// Mutation: shift the `nth` vectorizable launch's unit-stride store
/// bases by one element. Slot bases are [`VECTOR_ALIGN`]-aligned by
/// construction, so this flips the certificate's alignment residue from
/// 0 to 1 — every vector store now straddles an alignment boundary —
/// without introducing any dependence. Returns the mutated op index.
pub fn misalign_base(p: &mut Program, nth: usize) -> Option<usize> {
    let mut seen = 0;
    for (i, op) in p.ops.iter_mut().enumerate() {
        if let Op::Launch(l) = op {
            if vector_breakable(l) {
                if seen == nth {
                    for w in &mut l.access.writes {
                        if w.stride == 1 {
                            w.offset += 1;
                        }
                    }
                    return Some(i);
                }
                seen += 1;
            }
        }
    }
    None
}

/// Mutation: swap the `nth` declared-reduction launch's `reduction(+:...)`
/// for a running prefix recurrence — `acc[i] = acc[i−1] + u[i]` spelled as
/// plain writes/reads. The lane-private-partials exemption no longer
/// applies: the loop now carries a genuine distance-1 dependence, and both
/// tiers must flip from `LegalWithUlp` to illegal. Returns the op index.
pub fn break_reduction_recurrence(p: &mut Program, nth: usize) -> Option<usize> {
    let mut seen = 0;
    for (i, op) in p.ops.iter_mut().enumerate() {
        if let Op::Launch(l) = op {
            if !l.access.reductions.is_empty() {
                if seen == nth {
                    let r = l.access.reductions[0].clone();
                    let mut access = l.access.clone();
                    access.reductions.clear();
                    l.access =
                        access
                            .write(r.array.clone(), r.offset, 1)
                            .read(r.array, r.offset - 1, 1);
                    return Some(i);
                }
                seen += 1;
            }
        }
    }
    None
}

/// Count of launches [`break_vector_distance1`] / [`misalign_base`] could
/// target.
pub fn vector_breakable_launches(p: &Program) -> usize {
    p.launches().filter(|(_, l)| vector_breakable(l)).count()
}

/// Count of launches [`break_reduction_recurrence`] could target.
pub fn reduction_launches(p: &Program) -> usize {
    p.launches()
        .filter(|(_, l)| !l.access.reductions.is_empty())
        .count()
}

/// Feed a program's vector certificates to the host engine's SIMD width
/// registry ([`exec_host::simd`]): a certified-legal loop publishes its
/// proven width, anything else publishes scalar (1). `exec_host::tiles_for`
/// then annotates the matching host sweeps, so the loop scheduler's lane
/// assumption is exactly what the verifier proved — never more.
pub fn publish_certificates(certs: &[VectorCertificate]) {
    for c in certs {
        let width = if c.certified_legal() { c.width } else { 1 };
        exec_host::simd::publish_width(&c.kernel, width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Cluster;
    use crate::gpu_time::test_workload;
    use acc_verify::{sanitize, Rule, Severity, VerifyContext};
    use openacc_sim::PgiVersion;
    use seismic_model::footprint::Dims;

    const PGI: Compiler = Compiler::Pgi(PgiVersion::V14_6);

    fn ctx() -> VerifyContext {
        VerifyContext {
            compiler: PGI,
            device: Cluster::CrayXc30.device(),
        }
    }

    fn errors_and_warnings(diags: &[acc_verify::Diagnostic]) -> Vec<String> {
        diags
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .map(|d| d.render())
            .collect()
    }

    #[test]
    fn all_cases_verify_clean_under_best_config() {
        let cfg = OptimizationConfig::default();
        for case in SeismicCase::all() {
            let w = test_workload(case.dims);
            for prog in case_programs(&case, &cfg, PGI, &w) {
                let diags = acc_verify::verify_program(&prog, &ctx());
                let bad = errors_and_warnings(&diags);
                assert!(bad.is_empty(), "{}: {bad:?}", prog.name);
            }
        }
    }

    #[test]
    fn broken_independent_flagged_and_confirmed_by_sanitizer() {
        let case = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Three,
        };
        let w = test_workload(Dims::Three);
        let mut prog = modeling_program(&case, &OptimizationConfig::default(), PGI, &w);
        let op = break_kernel_inplace(&mut prog, 0).expect("an eligible launch");
        let diags = acc_verify::verify_program(&prog, &ctx());
        let race: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::IndependentRace)
            .collect();
        assert!(!race.is_empty(), "{diags:?}");
        assert!(race.iter().any(|d| d.span.op == op));
        // Tier 2 witnesses the same race on a small grid.
        let Op::Launch(l) = &prog.ops[op] else {
            panic!("mutated op must be a launch")
        };
        let cc = sanitize::crosscheck(l);
        assert!(cc.static_race && cc.dynamic.is_race() && cc.agree());
    }

    #[test]
    fn dropped_waits_become_async_hazards() {
        let case = SeismicCase {
            formulation: Formulation::Elastic,
            dims: Dims::Two,
        };
        let w = test_workload(Dims::Two);
        let mut prog = modeling_program(&case, &OptimizationConfig::default(), PGI, &w);
        assert!(drop_waits(&mut prog) > 0, "elastic must have waits");
        let diags = acc_verify::verify_program(&prog, &ctx());
        assert!(
            diags.iter().any(|d| d.rule == Rule::AsyncHazard),
            "{diags:?}"
        );
    }

    #[test]
    fn skipped_update_host_becomes_stale_read() {
        let case = SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Two,
        };
        let w = test_workload(Dims::Two);
        let mut prog = modeling_program(&case, &OptimizationConfig::default(), PGI, &w);
        let i = prog
            .ops
            .iter()
            .position(|o| matches!(o, Op::UpdateHost { .. }))
            .expect("modeling snapshots");
        prog.ops.remove(i);
        let diags = acc_verify::verify_program(&prog, &ctx());
        assert!(
            diags.iter().any(|d| d.rule == Rule::StaleHostRead),
            "{diags:?}"
        );
    }

    #[test]
    fn naive_config_trips_perf_lints() {
        let case = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Three,
        };
        let w = test_workload(Dims::Three);
        let prog = modeling_program(&case, &OptimizationConfig::naive(), PGI, &w);
        let diags = acc_verify::verify_program(&prog, &ctx());
        // The fused 96-register pressure kernel starves occupancy on the
        // uncapped K40 (Figure 10's motivation).
        assert!(
            diags.iter().any(|d| d.rule == Rule::RegisterPressure),
            "{diags:?}"
        );
        // And the naive 2D acoustic sweep is uncoalesced (Figure 13).
        let case2 = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Two,
        };
        let prog2 = modeling_program(
            &case2,
            &OptimizationConfig::naive(),
            PGI,
            &test_workload(Dims::Two),
        );
        let diags2 = acc_verify::verify_program(&prog2, &ctx());
        assert!(
            diags2
                .iter()
                .any(|d| d.rule == Rule::UncoalescedAccess && d.severity == Severity::Warning),
            "{diags2:?}"
        );
    }

    #[test]
    fn double_delete_mutation_flagged() {
        let case = SeismicCase {
            formulation: Formulation::Elastic,
            dims: Dims::Three,
        };
        let w = test_workload(Dims::Three);
        let mut prog = rtm_program(&case, &OptimizationConfig::default(), PGI, &w);
        prog.push(Op::ExitDataDelete {
            array: "backward".into(),
        });
        let diags = acc_verify::verify_program(&prog, &ctx());
        assert!(
            diags.iter().any(|d| d.rule == Rule::DoubleDelete),
            "{diags:?}"
        );
    }

    /// Every one of the 12 programs carries the QC reduction kernel, and
    /// every program has at least one innermost loop certified legal at
    /// width ≥ 2 — with the Tier-2 lane replay agreeing on every verdict.
    #[test]
    fn all_programs_get_vector_certificates_with_a_legal_loop() {
        use acc_verify::vectorize;
        let cfg = OptimizationConfig::default();
        for case in SeismicCase::all() {
            let w = test_workload(case.dims);
            for prog in case_programs(&case, &cfg, PGI, &w) {
                let certs = vectorize::certify_program(&prog, &ctx());
                assert!(
                    certs
                        .iter()
                        .any(|c| c.kernel == "qc_energy_norm" && c.ulp_bound > 0),
                    "{}: QC reduction kernel missing or unbounded",
                    prog.name
                );
                assert!(
                    certs.iter().any(|c| c.certified_legal()),
                    "{}: no certified-legal innermost loop: {certs:?}",
                    prog.name
                );
                for cc in vectorize::lane_crosscheck_program(&prog) {
                    assert!(cc.agree(), "{}: tiers disagree: {cc:?}", prog.name);
                }
            }
        }
    }

    /// Seeded mutation 1: a distance-1 carried dependence flips the loop's
    /// verdict in the static tier (certificate → Illegal, width 1) AND in
    /// the dynamic tier (lane replay conflicts at every width ≥ 2).
    #[test]
    fn distance1_mutation_flips_both_tiers() {
        use acc_verify::vectorize;
        let case = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Two,
        };
        let w = test_workload(Dims::Two);
        let cfg = OptimizationConfig::default();
        let clean = modeling_program(&case, &cfg, PGI, &w);
        let mut broken = modeling_program(&case, &cfg, PGI, &w);
        assert!(vector_breakable_launches(&clean) > 0);
        let op = break_vector_distance1(&mut broken, 0).expect("an eligible launch");
        let (Op::Launch(before), Op::Launch(after)) = (&clean.ops[op], &broken.ops[op]) else {
            panic!("mutated op must be a launch");
        };
        // Static tier flips.
        let c0 = vectorize::certify_launch(op, before, &ctx());
        let c1 = vectorize::certify_launch(op, after, &ctx());
        assert!(c0.certified_legal(), "{c0:?}");
        assert!(!c1.legality.is_legal() && c1.width == 1, "{c1:?}");
        assert_eq!(c1.min_distance, Some(1));
        // Dynamic tier flips, and both tiers agree before and after.
        let l0 = vectorize::lane_crosscheck(before);
        let l1 = vectorize::lane_crosscheck(after);
        assert!(l0.agree() && l0.per_width.iter().all(|wc| wc.dynamic_safe));
        assert!(l1.agree() && l1.per_width.iter().all(|wc| !wc.dynamic_safe));
        // And the program-level run reports the lane-dependence error.
        let diags = acc_verify::verify_program(&broken, &ctx());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::VectorLaneDependence && d.span.op == op),
            "{diags:?}"
        );
    }

    /// Seeded mutation 2: shifting an aligned store base by one element
    /// flips the alignment residue from 0 to 1 in the certificate, and the
    /// Tier-2 replay observes the same residue (crosscheck still agrees).
    #[test]
    fn misaligned_base_mutation_flips_residue() {
        use acc_verify::vectorize;
        let case = SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Three,
        };
        let w = test_workload(Dims::Three);
        let cfg = OptimizationConfig::default();
        let clean = modeling_program(&case, &cfg, PGI, &w);
        let mut broken = modeling_program(&case, &cfg, PGI, &w);
        let op = misalign_base(&mut broken, 0).expect("an eligible launch");
        let (Op::Launch(before), Op::Launch(after)) = (&clean.ops[op], &broken.ops[op]) else {
            panic!("mutated op must be a launch");
        };
        let c0 = vectorize::certify_launch(op, before, &ctx());
        let c1 = vectorize::certify_launch(op, after, &ctx());
        assert_eq!(c0.align_residue, 0, "slot bases must start aligned: {c0:?}");
        assert_eq!(c1.align_residue, 1, "{c1:?}");
        // Still legal (no dependence was introduced) — just unaligned.
        assert!(c1.certified_legal(), "{c1:?}");
        let l1 = vectorize::lane_crosscheck(after);
        assert!(
            l1.agree() && l1.residue_agrees,
            "replay must see it: {l1:?}"
        );
        let diags = acc_verify::verify_program(&broken, &ctx());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::VectorMisalignment && d.span.op == op),
            "{diags:?}"
        );
    }

    /// Seeded mutation 3: swapping the declared `reduction(+:...)` for a
    /// running prefix recurrence loses the lane-private exemption — both
    /// tiers flip from LegalWithUlp to a distance-1 illegal verdict.
    #[test]
    fn reduction_recurrence_mutation_flips_both_tiers() {
        use acc_verify::vectorize;
        let case = SeismicCase {
            formulation: Formulation::Elastic,
            dims: Dims::Two,
        };
        let w = test_workload(Dims::Two);
        let cfg = OptimizationConfig::default();
        let clean = rtm_program(&case, &cfg, PGI, &w);
        let mut broken = rtm_program(&case, &cfg, PGI, &w);
        assert!(reduction_launches(&clean) > 0, "QC kernels must be present");
        let op = break_reduction_recurrence(&mut broken, 0).expect("a reduction launch");
        let (Op::Launch(before), Op::Launch(after)) = (&clean.ops[op], &broken.ops[op]) else {
            panic!("mutated op must be a launch");
        };
        let c0 = vectorize::certify_launch(op, before, &ctx());
        let c1 = vectorize::certify_launch(op, after, &ctx());
        assert!(
            matches!(c0.legality, acc_verify::VectorLegality::LegalWithUlp { .. })
                && c0.ulp_bound > 0,
            "{c0:?}"
        );
        assert!(
            !c1.legality.is_legal() && c1.min_distance == Some(1),
            "{c1:?}"
        );
        let l0 = vectorize::lane_crosscheck(before);
        let l1 = vectorize::lane_crosscheck(after);
        assert!(l0.agree() && l0.per_width.iter().all(|wc| wc.dynamic_safe));
        assert!(l1.agree() && l1.per_width.iter().all(|wc| !wc.dynamic_safe));
    }

    /// Certified widths flow into the host engine: publishing a program's
    /// certificates makes `exec_host::tiles_for` annotate the matching
    /// sweep with the proven width.
    #[test]
    fn certificates_publish_to_host_registry() {
        use acc_verify::vectorize;
        let case = SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Two,
        };
        let w = test_workload(Dims::Two);
        let prog = modeling_program(&case, &OptimizationConfig::default(), PGI, &w);
        let certs = vectorize::certify_program(&prog, &ctx());
        publish_certificates(&certs);
        let legal = certs
            .iter()
            .find(|c| c.certified_legal())
            .expect("a certified loop");
        assert_eq!(exec_host::simd::certified_width(&legal.kernel), legal.width);
        let tiling = exec_host::tiles_for(&legal.kernel, 100_000, 3, 9);
        assert_eq!(tiling.vector_width, legal.width);
    }

    #[test]
    fn cray_programs_also_verify_clean() {
        let cfg = OptimizationConfig::default();
        let ctx = VerifyContext {
            compiler: Compiler::Cray,
            device: Cluster::CrayXc30.device(),
        };
        for case in SeismicCase::all() {
            let w = test_workload(case.dims);
            for prog in case_programs(&case, &cfg, Compiler::Cray, &w) {
                let diags = acc_verify::verify_program(&prog, &ctx);
                let bad = errors_and_warnings(&diags);
                assert!(bad.is_empty(), "{}: {bad:?}", prog.name);
            }
        }
    }
}
