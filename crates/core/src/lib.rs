//! # rtm-core
//!
//! Seismic modeling and Reverse Time Migration — the paper's contribution —
//! on two back-ends:
//!
//! * **CPU-MPI** (the reference of Algorithm 1): domain decomposition over
//!   `mpi-sim` ranks with nonblocking ghost exchange, plus the full-socket
//!   roofline/interconnect *timing model* used as the baseline of
//!   Tables 3/4,
//! * **OpenACC-GPU**: the five-step port of Figure 4 — (1) enter-data
//!   allocation, (2) forward phase with partial ghost transfers and
//!   snapshot saves, (3) offload-forward/upload-backward swap, (4) backward
//!   phase with imaging condition on GPU or CPU, (5) image store and
//!   deallocation — executing the physics on host gangs while the
//!   `openacc-sim`/`accel-sim` stack prices every launch and transfer.
//!
//! Modules:
//!
//! * [`case`] — the twelve seismic cases, clusters, optimization knobs,
//! * [`plan`] — per-time-step kernel launch schedules (directives included)
//!   for each case and optimization configuration,
//! * [`gpu_time`] — production-scale GPU timing estimates (Tables 3/4),
//! * [`cpu_time`] — full-socket MPI baseline timing estimates,
//! * [`modeling`] — real-execution 2D forward modeling driver,
//! * [`modeling3`] — real-execution 3D forward modeling driver,
//! * [`rtm`] — real-execution 2D RTM driver (Algorithm 1, both phases),
//! * [`rtm3`] — real-execution 3D RTM driver,
//! * [`mpi_run`] — real decomposed CPU execution over `mpi-sim` ranks,
//! * [`multi_gpu`] — the paper's "path forward": decomposed multi-GPU
//!   pricing with ghost packing and communication/computation overlap,
//! * [`checkpoint`] — bounded-memory RTM via store-vs-recompute
//!   checkpointing of the source wavefield,
//! * [`rand_boundary`] — checkpoint-free RTM: seeded random-boundary media
//!   and time-reversed source-wavefield reconstruction (2D and 3D), zero
//!   snapshot storage,
//! * [`shot_parallel`] — survey-level shot distribution over ranks with
//!   image stacking on the root,
//! * [`resilient`] — fault-tolerant execution under a seeded
//!   `accel_sim::fault::FaultPlan`: retry with jittered backoff, device
//!   blacklisting and shot rescheduling, checkpoint-restart, and the
//!   resilience accounting behind the overhead-vs-MTTI tables,
//! * [`verify`] — directive-program extraction for `acc-verify`: the same
//!   launch plans as checkable [`acc_verify::Program`]s, plus the seeded
//!   mutations the verification tests break them with.

pub mod case;
pub mod checkpoint;
pub mod cpu_time;
pub mod error;
pub mod gpu_time;
pub mod modeling;
pub mod modeling3;
pub mod mpi_run;
pub mod multi_gpu;
pub mod plan;
pub mod rand_boundary;
pub mod resilient;
pub mod rtm;
pub mod rtm3;
pub mod shot_parallel;
pub mod verify;

pub use case::{Cluster, OptimizationConfig, SeismicCase};
pub use error::{ConfigError, RtmError};
pub use gpu_time::TimingBreakdown;
pub use resilient::{ResilienceStats, RetryPolicy};
