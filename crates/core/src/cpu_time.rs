//! Full-socket MPI baseline timing estimates (the CPU references of
//! Tables 3/4).
//!
//! "The reference CPU total time is the time to process the entire domain
//! while using sub-domain decomposition. It is given by running a full
//! socket MPI implementation" — 10 ranks on the CRAY Ivy Bridge socket,
//! 8 on the IBM node. The model combines the socket roofline
//! ([`mpi_sim::CpuSpec`]), per-step ghost exchange over the cluster fabric,
//! and — for RTM — snapshot I/O, which on production 3D grids exceeds node
//! RAM and goes to the cluster filesystem (fast Lustre on the XC30, slow
//! NFS on the older IBM cluster; the mechanism behind the paper's 10×
//! acoustic-3D RTM speedup on IBM vs 1.3× on CRAY).

use crate::case::{Cluster, SeismicCase, Workload};
use seismic_model::footprint::{self, Dims, Formulation};
use seismic_prop::desc;
use serde::{Deserialize, Serialize};

/// Baseline time split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuBreakdown {
    /// Propagation kernel time.
    pub kernel_s: f64,
    /// MPI ghost-exchange time.
    pub comm_s: f64,
    /// Snapshot filesystem I/O time (RTM only).
    pub io_s: f64,
}

impl CpuBreakdown {
    /// End-to-end baseline time.
    pub fn total_s(&self) -> f64 {
        self.kernel_s + self.comm_s + self.io_s
    }
}

/// Cluster filesystem streaming bandwidth for snapshot I/O, byte/s.
pub fn disk_bandwidth(cluster: Cluster) -> f64 {
    match cluster {
        // XC30 Lustre scratch.
        Cluster::CrayXc30 => 2.5e9,
        // Aging NFS on the IBM cluster (~65 MB/s sustained).
        Cluster::Ibm => 0.065e9,
    }
}

/// Wavefields exchanged at sub-domain boundaries each step.
fn exchanged_fields(case: &SeismicCase) -> u64 {
    match (case.formulation, case.dims) {
        (Formulation::Isotropic, _) => 1,
        (Formulation::Acoustic, Dims::Two) => 3,
        (Formulation::Acoustic, Dims::Three) => 4,
        (Formulation::Elastic, Dims::Two) => 5,
        (Formulation::Elastic, Dims::Three) => 9,
    }
}

/// The CPU runs the *original* (un-restructured) kernels: one reference
/// source version, as the paper maintains.
fn cpu_descs(case: &SeismicCase) -> Vec<desc::KernelDesc> {
    match (case.formulation, case.dims) {
        (Formulation::Isotropic, Dims::Two) => {
            desc::iso2d(seismic_prop::IsoPmlVariant::OriginalIfs)
        }
        (Formulation::Isotropic, Dims::Three) => {
            desc::iso3d(seismic_prop::IsoPmlVariant::OriginalIfs)
        }
        (Formulation::Acoustic, Dims::Two) => {
            desc::acoustic2d(seismic_prop::TransposeVariant::Direct)
        }
        (Formulation::Acoustic, Dims::Three) => {
            desc::acoustic3d(seismic_prop::FissionVariant::Fused)
        }
        (Formulation::Elastic, Dims::Two) => desc::elastic2d(),
        (Formulation::Elastic, Dims::Three) => desc::elastic3d(),
    }
}

/// Per-step propagation time on the full socket.
///
/// Two CPU-specific adjustments to the kernels' (GPU-effective) byte
/// counts: the sockets' multi-megabyte caches block the stencil far better
/// than the cards' small L2s (≈ 0.7× the traffic), while streaming many
/// concurrent arrays (the elastic model walks 30) degrades sustained
/// socket bandwidth through TLB and prefetcher pressure.
fn step_kernel_time(case: &SeismicCase, cluster: Cluster, w: &Workload) -> f64 {
    // The 2nd-order isotropic formulation re-reads a big centered stencil:
    // socket-sized caches block it well (0.55x traffic), whereas the
    // staggered 1st-order systems stream their many arrays with little
    // reusable overlap (no discount).
    let blocking = match case.formulation {
        Formulation::Isotropic => 0.55,
        Formulation::Acoustic | Formulation::Elastic => 1.0,
    };
    // 2D working sets partially fit the sockets' L3 (a 1600^2 f32 plane is
    // ~10 MB), halving effective DRAM traffic; nothing comparable exists on
    // the cards.
    let dims_bonus = match case.dims {
        Dims::Two => 0.5,
        Dims::Three => 1.0,
    };
    let arrays = footprint::modeling_array_count(case.formulation, case.dims) as f64;
    let stream_eff = (4.0 / arrays.sqrt()).min(1.0);
    let cpu = cluster.cpu();
    cpu_descs(case)
        .iter()
        .map(|d| {
            cpu.kernel_time(
                w.points(),
                d.flops,
                d.bytes_per_point() * blocking * dims_bonus / stream_eff,
            )
        })
        .sum()
}

/// Per-step ghost-exchange time across the baseline's ranks.
fn step_comm_time(case: &SeismicCase, cluster: Cluster, w: &Workload) -> f64 {
    let ranks = cluster.baseline_ranks();
    if ranks <= 1 {
        return 0.0;
    }
    let net = cluster.interconnect();
    let plane_points = match case.dims {
        Dims::Two => w.nx as u64,
        Dims::Three => (w.nx * w.ny) as u64,
    };
    let ghost = seismic_grid::STENCIL_HALF as u64;
    let fields = exchanged_fields(case);
    // Each rank exchanges with ≤ 2 neighbours concurrently; the step's comm
    // time is one up + one down exchange of every wavefield's ghost shell.
    let bytes = ghost * plane_points * 4;
    2.0 * fields as f64 * net.msg_time(bytes)
}

/// Baseline time for forward modeling.
pub fn modeling_cpu_time(case: &SeismicCase, cluster: Cluster, w: &Workload) -> CpuBreakdown {
    let kernel_s = w.steps as f64 * step_kernel_time(case, cluster, w);
    let comm_s = w.steps as f64 * step_comm_time(case, cluster, w);
    CpuBreakdown {
        kernel_s,
        comm_s,
        io_s: 0.0,
    }
}

/// Baseline time for RTM: forward + backward propagation, host imaging,
/// and snapshot I/O through the cluster filesystem when the snapshot
/// volume exceeds what node RAM can buffer.
pub fn rtm_cpu_time(case: &SeismicCase, cluster: Cluster, w: &Workload) -> CpuBreakdown {
    let fwd = modeling_cpu_time(case, cluster, w);
    let n_snaps = (w.steps / w.snap_period.max(1)) as f64;
    let snap_bytes = w.points() as f64 * 4.0;
    // Imaging condition on the host at every snapshot.
    let imaging_s = n_snaps * cluster.cpu().kernel_time(w.points(), 2.0, 16.0);
    match case.formulation {
        // The 2nd-order isotropic scheme is time-reversible: the CPU
        // implementation *recomputes* the source wavefield backwards during
        // the migration pass instead of storing it (a standard
        // recompute-vs-store checkpointing trade), stepping the
        // reconstructed source field and the receiver field in one fused
        // loop that shares the velocity-model reads — ≈2.2 propagations'
        // worth of traffic, no snapshot I/O. This is why the paper's
        // isotropic RTM baselines sit at ≈2× modeling on both clusters.
        Formulation::Isotropic => CpuBreakdown {
            kernel_s: 2.2 * fwd.kernel_s + imaging_s,
            comm_s: 2.2 * fwd.comm_s,
            io_s: 0.0,
        },
        // The staggered C-PML schemes are dissipative — not reversible —
        // so the forward pressure field is checkpointed each snap_period
        // and read back during migration. 2D volumes sit in the page
        // cache; production 3D volumes (hundreds of GB) stream through the
        // cluster filesystem, which is what blows up the IBM baseline
        // (10× acoustic-3D RTM speedup) while the XC30's Lustre keeps the
        // CRAY baseline almost flat.
        Formulation::Acoustic | Formulation::Elastic => {
            let ram_bytes = 16e9; // usable page cache
            let total_snap = n_snaps * snap_bytes;
            let io_s = if total_snap > ram_bytes {
                2.0 * total_snap / disk_bandwidth(cluster)
            } else {
                0.0
            };
            CpuBreakdown {
                kernel_s: 2.0 * fwd.kernel_s + imaging_s,
                comm_s: 2.0 * fwd.comm_s,
                io_s,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu_time::test_workload;

    fn case(f: Formulation, d: Dims) -> SeismicCase {
        SeismicCase {
            formulation: f,
            dims: d,
        }
    }

    #[test]
    fn elastic_costs_most_iso_least() {
        let w = test_workload(Dims::Three);
        let t = |f| modeling_cpu_time(&case(f, Dims::Three), Cluster::CrayXc30, &w).total_s();
        let iso = t(Formulation::Isotropic);
        let ac = t(Formulation::Acoustic);
        let el = t(Formulation::Elastic);
        assert!(iso < ac && ac < el, "{iso} {ac} {el}");
    }

    #[test]
    fn cray_baseline_faster_than_ibm() {
        let w = test_workload(Dims::Three);
        // The gap is compute-driven, so it is widest on the flop-heavy
        // elastic model; memory-bound cases run comparably (Section 6.1's
        // near-equal iso/acoustic CPU times across clusters).
        let el = case(Formulation::Elastic, Dims::Three);
        let cray = modeling_cpu_time(&el, Cluster::CrayXc30, &w).total_s();
        let ibm = modeling_cpu_time(&el, Cluster::Ibm, &w).total_s();
        assert!(ibm > 1.1 * cray, "ibm {ibm} vs cray {cray}");
    }

    #[test]
    fn comm_grows_with_exchanged_fields() {
        let w = test_workload(Dims::Three);
        let iso = modeling_cpu_time(&case(Formulation::Isotropic, Dims::Three), Cluster::Ibm, &w);
        let el = modeling_cpu_time(&case(Formulation::Elastic, Dims::Three), Cluster::Ibm, &w);
        assert!(el.comm_s > 5.0 * iso.comm_s);
    }

    /// 3D RTM at production scale pays filesystem I/O; 2D does not.
    #[test]
    fn snapshot_io_only_for_big_3d() {
        let w3 = Workload {
            nx: 400,
            ny: 400,
            nz: 400,
            steps: 500,
            snap_period: 5,
            n_receivers: 400,
        };
        let c3 = case(Formulation::Acoustic, Dims::Three);
        let r3 = rtm_cpu_time(&c3, Cluster::Ibm, &w3);
        assert!(r3.io_s > 0.0);
        let w2 = test_workload(Dims::Two);
        let c2 = case(Formulation::Acoustic, Dims::Two);
        let r2 = rtm_cpu_time(&c2, Cluster::Ibm, &w2);
        assert_eq!(r2.io_s, 0.0);
        // The IBM filesystem is the slow one.
        let r3c = rtm_cpu_time(&c3, Cluster::CrayXc30, &w3);
        assert!(r3.io_s > 5.0 * r3c.io_s);
    }

    #[test]
    fn rtm_at_least_doubles_modeling() {
        let w = test_workload(Dims::Two);
        let c = case(Formulation::Elastic, Dims::Two);
        let m = modeling_cpu_time(&c, Cluster::Ibm, &w).total_s();
        let r = rtm_cpu_time(&c, Cluster::Ibm, &w).total_s();
        assert!(r >= 2.0 * m);
    }
}
