//! Real-execution 3D Reverse Time Migration.
//!
//! Volumetric Algorithm 1: identical structure to [`crate::rtm`] over
//! [`crate::modeling3::Medium3`] — forward modeling with volume snapshots,
//! direct-wave muting, backward receiver propagation, and the 3D
//! cross-correlation imaging condition. Snapshot volumes make this
//! memory-hungry; it runs the paper's 3D cases at laptop scale (the
//! production-scale costs go through [`crate::gpu_time`] /
//! [`crate::cpu_time`], which model exactly this schedule).

use crate::case::OptimizationConfig;
use crate::modeling3::{Medium3, State3};
use seismic_grid::Field3;
use seismic_source::{Acquisition3, Seismogram, Wavelet};

/// Output of a 3D RTM run.
pub struct Rtm3Result {
    /// The migrated image volume.
    pub image: Field3,
    /// The forward-modeled (muted) shot record that was migrated.
    pub seismogram: Seismogram,
    /// Snapshot volumes stored during the forward phase.
    pub snapshots_saved: usize,
}

/// Grid spacing, near-source velocity, and dt of a 3D medium.
pub(crate) fn medium_params3(medium: &Medium3, acq: &Acquisition3) -> (f32, f32, f32) {
    let (ix, iy, iz) = (acq.src_ix, acq.src_iy, acq.src_iz);
    match medium {
        Medium3::Iso { model, .. } => (model.geom.dx, model.vp.get(ix, iy, iz), model.geom.dt),
        Medium3::Acoustic { model, .. } => (model.geom.dx, model.vp.get(ix, iy, iz), model.geom.dt),
        Medium3::Elastic { model, .. } => {
            let vp = ((model.lam.get(ix, iy, iz) + 2.0 * model.mu.get(ix, iy, iz))
                / model.rho.get(ix, iy, iz))
            .sqrt();
            (model.geom.dx, vp, model.geom.dt)
        }
    }
}

/// Mute the direct wave of a 3D shot record (3D offsets, same taper logic
/// as the 2D [`crate::rtm::mute_direct`]).
pub fn mute_direct3(
    seis: &Seismogram,
    acq: &Acquisition3,
    h: f32,
    v_surface: f32,
    dt: f32,
    taper_s: f32,
) -> Seismogram {
    let mut out = Seismogram::zeros(seis.n_receivers(), seis.nt());
    let ramp = ((0.25 * taper_s / dt) as usize).max(8);
    for (r, rcv) in acq.receivers.iter().enumerate() {
        let dx = (rcv.ix as f32 - acq.src_ix as f32) * h;
        let dy = (rcv.iy as f32 - acq.src_iy as f32) * h;
        let dz = (rcv.iz as f32 - acq.src_iz as f32) * h;
        let t_direct = (dx * dx + dy * dy + dz * dz).sqrt() / v_surface + taper_s;
        let first = (t_direct / dt).ceil() as usize;
        for t in first.min(seis.nt())..seis.nt() {
            let w = if t < first + ramp {
                let x = (t - first) as f32 / ramp as f32;
                0.5 * (1.0 - (std::f32::consts::PI * x).cos())
            } else {
                1.0
            };
            out.record(r, t, seis.get(r, t) * w);
        }
    }
    out
}

/// Run 3D RTM for one shot.
pub fn run_rtm3(
    medium: &Medium3,
    acq: &Acquisition3,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
) -> Rtm3Result {
    // Forward phase with volume snapshots, sized up front so the time loop
    // itself performs no allocation.
    let mut fstate = State3::new(medium);
    let mut seismogram = Seismogram::zeros(acq.n_receivers(), steps);
    let n_snaps = steps.div_ceil(snap_period);
    let mut snapshots: Vec<Field3> = (0..n_snaps)
        .map(|_| Field3::zeros(medium.extent()))
        .collect();
    let dt = medium.dt();
    // Wall-clock forward phase (no-op unless the host profiler is on).
    let t_forward = exec_host::prof::begin();
    for t in 0..steps {
        fstate.step(medium, config, gangs);
        fstate.inject(
            medium,
            acq.src_ix,
            acq.src_iy,
            acq.src_iz,
            wavelet.sample(t as f32 * dt),
        );
        for (r, rcv) in acq.receivers.iter().enumerate() {
            seismogram.record(r, t, fstate.sample(rcv.ix, rcv.iy, rcv.iz));
        }
        if t % snap_period == 0 {
            fstate.write_wavefield_into(&mut snapshots[t / snap_period]);
        }
    }
    exec_host::prof::end(
        t_forward,
        exec_host::prof::EventKind::Phase,
        exec_host::prof::PHASE_FORWARD,
        0,
    );

    let (h, v_src, dt) = medium_params3(medium, acq);
    let taper = 2.4 / wavelet.f_peak();
    let muted = mute_direct3(&seismogram, acq, h, v_src, dt, taper);

    // Backward phase with the 3D imaging condition.
    let e = medium.extent();
    let mut image = Field3::zeros(e);
    let mut rstate = State3::new(medium);
    let t_backward = exec_host::prof::begin();
    for t in (0..steps).rev() {
        if t % snap_period == 0 {
            if let Some(s) = snapshots.get(t / snap_period) {
                let t_imaging = exec_host::prof::begin();
                for iz in 0..e.nz {
                    for iy in 0..e.ny {
                        for ix in 0..e.nx {
                            let v = image.get(ix, iy, iz)
                                + s.get(ix, iy, iz) * rstate.sample(ix, iy, iz);
                            image.set(ix, iy, iz, v);
                        }
                    }
                }
                exec_host::prof::end(
                    t_imaging,
                    exec_host::prof::EventKind::Phase,
                    exec_host::prof::PHASE_IMAGING,
                    0,
                );
            }
        }
        rstate.step(medium, config, gangs);
        for (r, rcv) in acq.receivers.iter().enumerate() {
            rstate.inject(medium, rcv.ix, rcv.iy, rcv.iz, muted.get(r, t));
        }
    }
    exec_host::prof::end(
        t_backward,
        exec_host::prof::EventKind::Phase,
        exec_host::prof::PHASE_BACKWARD,
        0,
    );
    Rtm3Result {
        image,
        seismogram: muted,
        snapshots_saved: snapshots.len(),
    }
}

/// 3D Laplacian post-filter (see [`crate::rtm::laplacian_filter`]): removes
/// the smooth backscatter artifact, sharpens reflectors. Returns `−∇²I`.
pub fn laplacian_filter3(image: &Field3, dx: f32, dy: f32, dz: f32) -> Field3 {
    let mut out = Field3::zeros(image.extent());
    seismic_grid::deriv::laplacian3(image, &mut out, dx, dy, dz);
    for v in out.as_mut_slice().iter_mut() {
        *v = -*v;
    }
    out
}

/// Depth profile of an image volume: max |I| per depth, normalised,
/// skipping a margin near the lateral boundaries.
pub fn depth_profile3(image: &Field3, margin: usize) -> Vec<f32> {
    let e = image.extent();
    let mut prof = vec![0.0f32; e.nz];
    for (iz, p) in prof.iter_mut().enumerate() {
        for iy in margin..e.ny.saturating_sub(margin) {
            for ix in margin..e.nx.saturating_sub(margin) {
                *p = p.max(image.get(ix, iy, iz).abs());
            }
        }
    }
    let peak = prof.iter().cloned().fold(0.0f32, f32::max).max(1e-30);
    for p in &mut prof {
        *p /= peak;
    }
    prof
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic3_layered, Layer};
    use seismic_model::{extent3, Geometry};
    use seismic_pml::CpmlAxis;

    /// End-to-end volumetric imaging: a flat reflector in a small 3D model
    /// is recovered near its true depth.
    #[test]
    fn images_flat_reflector_3d() {
        let n = 48;
        let z_if = 24;
        let e = extent3(n, n, n);
        let h = 10.0;
        let dt = stable_dt(8, 3, 3000.0, h, 0.55);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: z_if,
                vp: 3000.0,
                vs: 0.0,
                rho: 2400.0,
            },
        ];
        let model = acoustic3_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 8, dt, 3000.0, h, 1e-4);
        let medium = Medium3::Acoustic {
            model,
            cpml: [c.clone(), c.clone(), c],
        };
        let acq = Acquisition3::surface_patch(n, n, (n / 2, n / 2, 4), 4, 2);
        // Two-way time to the reflector: 2·200 m / 1500 ≈ 0.27 s.
        let steps = 650;
        let r = run_rtm3(
            &medium,
            &acq,
            &Wavelet::ricker(18.0),
            &OptimizationConfig::default(),
            steps,
            3,
            6,
        );
        assert!(r.snapshots_saved > 100);
        let img = laplacian_filter3(&r.image, h, h, h);
        let prof = depth_profile3(&img, 10);
        // Search below the acquisition-artifact zone (the 2D driver uses
        // the same skip; 3D spreading makes the reflector weaker still).
        let (z_peak, _) = prof
            .iter()
            .enumerate()
            .skip(16)
            .take(n - 24)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            (z_peak as isize - z_if as isize).unsigned_abs() <= 4,
            "peak at z = {z_peak}, reflector at {z_if}"
        );
    }

    #[test]
    fn mute3_removes_direct_preserves_late() {
        let acq = Acquisition3::surface_patch(20, 20, (10, 10, 2), 2, 5);
        let nt = 200;
        let mut s = Seismogram::zeros(acq.n_receivers(), nt);
        for r in 0..acq.n_receivers() {
            for t in 0..nt {
                s.record(r, t, 1.0);
            }
        }
        let m = mute_direct3(&s, &acq, 10.0, 1500.0, 1e-3, 0.05);
        // At the source-adjacent receiver the mute ends after ~taper.
        for r in 0..acq.n_receivers() {
            assert_eq!(m.get(r, 0), 0.0, "receiver {r}: early sample muted");
            assert_eq!(m.get(r, nt - 1), 1.0, "receiver {r}: late sample kept");
        }
    }
}
