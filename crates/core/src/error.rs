//! Typed errors for the survey-level drivers.
//!
//! A production survey runs for hours across many ranks; an `assert!` on a
//! malformed argument aborts the whole process and loses every completed
//! shot. The drivers instead return [`ConfigError`] for caller mistakes
//! (checkable before any work starts) and [`RtmError`] for failures that
//! surface mid-run (device OOM, a missing replay snapshot, an exhausted
//! cluster), so the resilient executor can catch, retry, or degrade.

use openacc_sim::data::DataError;
use std::fmt;

/// Invalid driver arguments, detected before any propagation starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A survey needs at least one shot.
    NoShots,
    /// A time loop needs at least one step.
    ZeroSteps,
    /// Checkpointing needs at least one storage slot.
    ZeroSlots,
    /// Decomposition needs at least one GPU.
    ZeroGpus,
    /// Execution needs at least one rank.
    ZeroRanks,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoShots => write!(f, "survey has no shots"),
            ConfigError::ZeroSteps => write!(f, "time loop has zero steps"),
            ConfigError::ZeroSlots => write!(f, "checkpoint plan has zero slots"),
            ConfigError::ZeroGpus => write!(f, "decomposition over zero GPUs"),
            ConfigError::ZeroRanks => write!(f, "execution over zero ranks"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A failure surfacing while a migration or modeling run executes.
#[derive(Debug, Clone, PartialEq)]
pub enum RtmError {
    /// The run was misconfigured (see [`ConfigError`]).
    Config(ConfigError),
    /// The device runtime rejected the run (OOM, unmapped data).
    Data(DataError),
    /// The backward pass needed a forward snapshot that the replay did not
    /// produce — the checkpoint schedule and snapshot period disagree.
    MissingSnapshot {
        /// Time step whose snapshot was requested.
        step: usize,
    },
    /// Every rank in the cluster has been blacklisted; the survey cannot
    /// make progress.
    NoHealthyRanks,
    /// A survey schedule or result-collection invariant was violated
    /// (empty work queue popped, a shot with no image, a missing collector
    /// rank) — the submission is rejected as malformed instead of
    /// panicking a worker thread.
    MalformedPlan(String),
    /// An emitted observability artifact failed its self-validation
    /// (malformed trace JSON, overlapping timeline spans).
    Observability(String),
}

impl fmt::Display for RtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtmError::Config(e) => write!(f, "configuration error: {e}"),
            RtmError::Data(e) => write!(f, "device data error: {e}"),
            RtmError::MissingSnapshot { step } => {
                write!(f, "no replayed snapshot for step {step}")
            }
            RtmError::NoHealthyRanks => write!(f, "all ranks blacklisted"),
            RtmError::MalformedPlan(what) => write!(f, "malformed survey plan: {what}"),
            RtmError::Observability(msg) => write!(f, "observability artifact invalid: {msg}"),
        }
    }
}

impl std::error::Error for RtmError {}

impl From<ConfigError> for RtmError {
    fn from(e: ConfigError) -> Self {
        RtmError::Config(e)
    }
}

impl From<DataError> for RtmError {
    fn from(e: DataError) -> Self {
        RtmError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ConfigError::NoShots.to_string().contains("no shots"));
        let e: RtmError = ConfigError::ZeroSlots.into();
        assert!(e.to_string().contains("zero slots"));
        let m = RtmError::MissingSnapshot { step: 12 };
        assert!(m.to_string().contains("12"));
    }
}
