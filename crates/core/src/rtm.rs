//! Real-execution 2D Reverse Time Migration (Algorithm 1).
//!
//! Forward phase: propagate the source wavefield through the migration
//! model, saving snapshots each `snap_period`. Backward phase: re-inject
//! the recorded shot record time-reversed at the receiver positions,
//! propagate backward, and at each snapshot time apply the imaging
//! condition `I(x, z) += S(x, z, t) · R(x, z, t)` — the cross-correlation
//! of Figure 2 — producing the seismic image of Figure 5.

use crate::case::OptimizationConfig;
use crate::modeling::{run_modeling, Medium2, State2};
use seismic_grid::Field2;
use seismic_source::{Acquisition2, Seismogram, Wavelet};

/// The imaging condition applied during the backward phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImagingCondition {
    /// Plain cross-correlation `I += S·R` (the paper's condition, Fig. 2).
    #[default]
    CrossCorrelation,
    /// Source-normalised (deconvolution-style) condition
    /// `I = Σ S·R / (Σ S² + ε)`: compensates geometric spreading of the
    /// source illumination so deep reflectors keep their amplitude.
    SourceNormalized,
}

/// Output of an RTM run.
pub struct RtmResult {
    /// The migrated image (cross-correlation stack).
    pub image: Field2,
    /// The forward-modeled shot record that was migrated.
    pub seismogram: Seismogram,
    /// Snapshots saved during the forward phase.
    pub snapshots_saved: usize,
}

/// Zero every sample that arrives before the direct wave plus a taper —
/// standard pre-migration processing: un-muted direct arrivals correlate
/// along the whole near-surface and swamp the reflectivity.
pub fn mute_direct(
    seis: &Seismogram,
    acq: &Acquisition2,
    h: f32,
    v_surface: f32,
    dt: f32,
    taper_s: f32,
) -> Seismogram {
    let mut out = Seismogram::zeros(seis.n_receivers(), seis.nt());
    // Soft edge: a hard cut would back-propagate as broadband noise.
    let ramp = ((0.25 * taper_s / dt) as usize).max(8);
    for (r, rcv) in acq.receivers.iter().enumerate() {
        let dx = (rcv.ix as f32 - acq.src_ix as f32) * h;
        let dz = (rcv.iz as f32 - acq.src_iz as f32) * h;
        let t_direct = (dx * dx + dz * dz).sqrt() / v_surface + taper_s;
        let first = (t_direct / dt).ceil() as usize;
        for t in first.min(seis.nt())..seis.nt() {
            let w = if t < first + ramp {
                let x = (t - first) as f32 / ramp as f32;
                0.5 * (1.0 - (std::f32::consts::PI * x).cos())
            } else {
                1.0
            };
            out.record(r, t, seis.get(r, t) * w);
        }
    }
    out
}

/// Run RTM for one shot: forward modeling through `medium`, direct-wave
/// muting of the recorded data, then backward receiver propagation and
/// imaging.
pub fn run_rtm(
    medium: &Medium2,
    acq: &Acquisition2,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
) -> RtmResult {
    // Forward phase (seismic modeling is "the forwarding phase of RTM").
    let fwd = run_modeling(medium, acq, wavelet, config, steps, snap_period, gangs);
    let (h, v_src, dt) = medium_surface_params(medium, acq);
    let taper = 2.4 / wavelet.f_peak();
    let muted = mute_direct(&fwd.seismogram, acq, h, v_src, dt, taper);
    migrate_shot(
        medium,
        acq,
        &muted,
        &fwd.snapshots,
        config,
        steps,
        snap_period,
        gangs,
    )
}

/// Grid spacing, near-source velocity, and dt of a medium (mute inputs).
pub(crate) fn medium_surface_params(medium: &Medium2, acq: &Acquisition2) -> (f32, f32, f32) {
    let (ix, iz) = (acq.src_ix, acq.src_iz);
    match medium {
        Medium2::Iso { model, .. } => (model.geom.dx, model.vp.get(ix, iz), model.geom.dt),
        Medium2::Acoustic { model, .. } => (model.geom.dx, model.vp.get(ix, iz), model.geom.dt),
        Medium2::Elastic { model, .. } => {
            let vp = ((model.lam.get(ix, iz) + 2.0 * model.mu.get(ix, iz)) / model.rho.get(ix, iz))
                .sqrt();
            (model.geom.dx, vp, model.geom.dt)
        }
        Medium2::Vti { model, .. } => {
            // Mute along the fastest (horizontal) velocity so the taper is
            // conservative for receivers offset along x.
            let v = model.vp.get(ix, iz) * (1.0 + 2.0 * model.epsilon.get(ix, iz)).sqrt();
            (model.geom.dx, v, model.geom.dt)
        }
    }
}

/// Backward phase only: migrate a recorded shot given saved forward
/// snapshots (exposed separately so field data could be migrated through a
/// different velocity model than the one that generated it).
#[allow(clippy::too_many_arguments)]
pub fn migrate_shot(
    medium: &Medium2,
    acq: &Acquisition2,
    seismogram: &Seismogram,
    snapshots: &[Field2],
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
) -> RtmResult {
    migrate_shot_with(
        medium,
        acq,
        seismogram,
        snapshots,
        config,
        steps,
        snap_period,
        gangs,
        ImagingCondition::CrossCorrelation,
    )
}

/// [`migrate_shot`] with an explicit imaging condition.
#[allow(clippy::too_many_arguments)]
pub fn migrate_shot_with(
    medium: &Medium2,
    acq: &Acquisition2,
    seismogram: &Seismogram,
    snapshots: &[Field2],
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
    condition: ImagingCondition,
) -> RtmResult {
    let e = medium.extent();
    let mut image = Field2::zeros(e);
    let mut illum = Field2::zeros(e);
    let mut rstate = State2::new(medium);
    // Backward time loop: t = t_end → t_start. The wall-clock backward
    // phase wraps the whole loop; imaging spans nest inside it.
    let t_backward = exec_host::prof::begin();
    for t in (0..steps).rev() {
        // Imaging condition at snapshot times, against the *stored* forward
        // wavefield ("read saved snapshot(time); apply imaging condition").
        if t % snap_period == 0 {
            let snap_idx = t / snap_period;
            if let Some(s) = snapshots.get(snap_idx) {
                let t_imaging = exec_host::prof::begin();
                for iz in 0..e.nz {
                    for ix in 0..e.nx {
                        let fwd = s.get(ix, iz);
                        let v = image.get(ix, iz) + fwd * rstate.sample(ix, iz);
                        image.set(ix, iz, v);
                        if condition == ImagingCondition::SourceNormalized {
                            let w = illum.get(ix, iz) + fwd * fwd;
                            illum.set(ix, iz, w);
                        }
                    }
                }
                exec_host::prof::end(
                    t_imaging,
                    exec_host::prof::EventKind::Phase,
                    exec_host::prof::PHASE_IMAGING,
                    0,
                );
            }
        }
        rstate.step(medium, config, gangs);
        // Receiver injection: add the recorded trace samples, reversed in
        // time, at each receiver position.
        for (r, rcv) in acq.receivers.iter().enumerate() {
            rstate.inject(medium, rcv.ix, rcv.iz, seismogram.get(r, t));
        }
    }
    exec_host::prof::end(
        t_backward,
        exec_host::prof::EventKind::Phase,
        exec_host::prof::PHASE_BACKWARD,
        0,
    );
    if condition == ImagingCondition::SourceNormalized {
        // ε keeps un-illuminated corners from exploding. The peak sits at
        // the source point and is orders of magnitude above the body of the
        // domain, so ε must be far below it or it flattens the
        // compensation everywhere.
        let peak = {
            let mut m = 0.0f32;
            for iz in 0..e.nz {
                for ix in 0..e.nx {
                    m = m.max(illum.get(ix, iz));
                }
            }
            m.max(1e-30)
        };
        let eps = 1e-6 * peak;
        for iz in 0..e.nz {
            for ix in 0..e.nx {
                let v = image.get(ix, iz) / (illum.get(ix, iz) + eps);
                image.set(ix, iz, v);
            }
        }
    }
    RtmResult {
        image,
        seismogram: seismogram.clone(),
        snapshots_saved: snapshots.len(),
    }
}

/// Laplacian post-filter: the standard low-cut that removes the smooth
/// backscatter artifact of cross-correlation RTM (long-wavelength energy
/// along raypaths) and sharpens reflectors. Returns `−∇²I`.
pub fn laplacian_filter(image: &Field2, dx: f32, dz: f32) -> Field2 {
    let mut out = Field2::zeros(image.extent());
    seismic_grid::deriv::laplacian2(image, &mut out, dx, dz);
    let s = out.as_mut_slice();
    for v in s.iter_mut() {
        *v = -*v;
    }
    out
}

/// Column-wise envelope of an image: max |I| per depth row, normalised to
/// its peak — used by tests and examples to locate imaged reflectors.
pub fn depth_profile(image: &Field2) -> Vec<f32> {
    let e = image.extent();
    let mut prof = vec![0.0f32; e.nz];
    for (iz, p) in prof.iter_mut().enumerate() {
        // Skip the PML strips where injection artifacts concentrate.
        for ix in 20..e.nx.saturating_sub(20) {
            *p = p.max(image.get(ix, iz).abs());
        }
    }
    let peak = prof.iter().cloned().fold(0.0f32, f32::max).max(1e-30);
    for p in &mut prof {
        *p /= peak;
    }
    prof
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic2_layered, Layer};
    use seismic_model::{extent2, Geometry};
    use seismic_pml::CpmlAxis;

    /// Two-layer acoustic medium with a strong contrast at `z_if`.
    fn two_layer(n: usize, z_if: usize) -> Medium2 {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3000.0, h, 0.6);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: z_if,
                vp: 3000.0,
                vs: 0.0,
                rho: 2400.0,
            },
        ];
        let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 12, dt, 3000.0, h, 1e-4);
        Medium2::Acoustic {
            model,
            cpml: [c.clone(), c],
        }
    }

    /// The headline correctness property of RTM: the image peaks at the
    /// reflector depth.
    #[test]
    fn image_peaks_at_reflector() {
        let n = 128;
        let z_if = 64;
        let medium = two_layer(n, z_if);
        let acq = Acquisition2::surface_line(n, n / 2, 6, 6, 2);
        let r = run_rtm(
            &medium,
            &acq,
            &Wavelet::ricker(18.0),
            &OptimizationConfig::default(),
            1100, // two-way time to the reflector is ~0.78 s = ~700 steps
            3,
            4,
        );
        assert!(r.snapshots_saved > 0);
        let filtered = laplacian_filter(&r.image, 10.0, 10.0);
        let prof = depth_profile(&filtered);
        // Find the depth of the maximum image amplitude outside the source
        // and receiver rows (which carry injection artifacts).
        let (z_peak, _) = prof
            .iter()
            .enumerate()
            .skip(20)
            .take(n - 40)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            (z_peak as isize - z_if as isize).unsigned_abs() <= 6,
            "image peak at z = {z_peak}, reflector at {z_if}"
        );
    }

    /// Without a reflector there is (almost) nothing to image: a constant
    /// medium must produce far weaker image energy away from the
    /// acquisition rows than a layered one.
    #[test]
    fn homogeneous_medium_images_nothing() {
        let n = 96;
        let layered = two_layer(n, n / 2);
        let constant = two_layer(n, n + 10); // interface outside the grid
        let acq = Acquisition2::surface_line(n, n / 2, 6, 6, 2);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(18.0);
        let a = run_rtm(&layered, &acq, &w, &cfg, 800, 3, 4);
        let b = run_rtm(&constant, &acq, &w, &cfg, 800, 3, 4);
        // Energy in the mid-depth band (where the reflector sits).
        let band = |raw: &Field2| {
            let img = &laplacian_filter(raw, 10.0, 10.0);
            let e = img.extent();
            let mut s = 0.0f64;
            for iz in n / 2 - 6..n / 2 + 6 {
                for ix in 20..e.nx - 20 {
                    s += (img.get(ix, iz) as f64).powi(2);
                }
            }
            s
        };
        let ea = band(&a.image);
        let eb = band(&b.image);
        assert!(ea > 20.0 * eb, "layered {ea} vs constant {eb}");
    }

    /// The source-normalised condition boosts the deep reflector relative
    /// to shallow artifacts compared with plain cross-correlation.
    #[test]
    fn source_normalization_rebalances_depth() {
        let n = 112;
        let z_if = 62;
        let medium = two_layer(n, z_if);
        let acq = Acquisition2::surface_line(n, n / 2, 6, 6, 2);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(18.0);
        let steps = 1000;
        let fwd = crate::modeling::run_modeling(&medium, &acq, &w, &cfg, steps, 3, 4);
        let (h, v, dt) = super::medium_surface_params(&medium, &acq);
        let muted = mute_direct(&fwd.seismogram, &acq, h, v, dt, 2.4 / 18.0);
        let ratio_at_reflector = |cond: ImagingCondition| {
            let r = migrate_shot_with(
                &medium,
                &acq,
                &muted,
                &fwd.snapshots,
                &cfg,
                steps,
                3,
                4,
                cond,
            );
            let img = laplacian_filter(&r.image, 10.0, 10.0);
            let prof = depth_profile(&img);
            // Reflector amplitude relative to the shallow artifact band.
            let refl: f32 = prof[z_if - 2..z_if + 3].iter().cloned().fold(0.0, f32::max);
            let shallow: f32 = prof[16..30].iter().cloned().fold(0.0, f32::max);
            refl / shallow.max(1e-12)
        };
        let plain = ratio_at_reflector(ImagingCondition::CrossCorrelation);
        let norm = ratio_at_reflector(ImagingCondition::SourceNormalized);
        assert!(
            norm > plain,
            "normalisation must rebalance depth: {norm} vs {plain}"
        );
        assert!(plain > 0.0);
    }

    #[test]
    fn gang_invariance_of_image() {
        let n = 64;
        let medium = two_layer(n, 32);
        let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 4);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let a = run_rtm(&medium, &acq, &w, &cfg, 120, 4, 1);
        let b = run_rtm(&medium, &acq, &w, &cfg, 120, 4, 6);
        assert_eq!(a.image, b.image);
    }
}
