//! Random-boundary RTM: checkpoint-free source-wavefield reconstruction.
//!
//! [`crate::rtm`] stores forward snapshots and [`crate::checkpoint`] trades
//! that storage for recompute; both keep *some* stored state whose size
//! grows with the run. This module removes the storage entirely with the
//! random-boundary method: the source wavefield is propagated forward
//! through a medium whose absorbing layer is replaced by a seeded
//! **randomized-velocity halo** over **transparent** (lossless) absorbers
//! ([`randomize_medium2`]/[`randomize_medium3`]), and during migration the
//! same propagation is run *backward in time* from its final state
//! ([`crate::modeling::State2::step_reverse`]). Because the randomized
//! medium dissipates nothing, the reversed propagation reconstructs the
//! forward states step for step, and the imaging condition correlates the
//! reconstructed source field with the receiver field in lockstep — no
//! snapshots, no checkpoints, no per-segment replay buffers.
//!
//! The randomized halo exists to scramble what the absorbing layer used to
//! remove: energy hitting the boundary scatters off the velocity jitter
//! into incoherent noise instead of reflecting coherently back across the
//! reflectors, and incoherent noise stacks out of the cross-correlation
//! image. The receiver field still propagates through the **original
//! absorbing medium** — only the source propagation (forward and
//! reconstructed) uses the randomized one.
//!
//! Costs and guarantees:
//!
//! * memory: two resident propagation states (source + receiver) and the
//!   image — `O(1)` in `steps` (see
//!   `seismic_model::footprint::rtm_breakdown`),
//! * compute: one extra source propagation (the backward reconstruction),
//!   the same price checkpointing pays for its replay,
//! * determinism: the halo is a pure function of `(seed, cell)` and the
//!   propagators are bitwise deterministic, so a fixed
//!   [`RandomBoundarySpec`] reproduces the image **bit for bit** across
//!   reruns, gang counts, and resilient-executor restarts,
//! * the time loops allocate nothing after setup: states are stepped in
//!   place and the image accumulates into one preallocated field.

use crate::case::OptimizationConfig;
use crate::error::{ConfigError, RtmError};
use crate::modeling::{run_modeling, Medium2, State2};
use crate::modeling3::{Medium3, State3};
use crate::rtm::{medium_surface_params, mute_direct, RtmResult};
use crate::rtm3::{medium_params3, mute_direct3, Rtm3Result};
use acc_obs::{ObsSession, Span, SpanCat, Track};
use seismic_grid::{Field2, Field3};
use seismic_model::random_boundary as rb;
use seismic_pml::{CpmlAxis, DampProfile, RandomBoundarySpec};
use seismic_source::{Acquisition2, Acquisition3, Seismogram, Wavelet};

/// Replace a 2-D medium's absorbing machinery with transparent absorbers
/// and a seeded randomized-velocity halo. The interior model is untouched;
/// the returned medium is what the source propagation (forward and
/// time-reversed) runs through.
pub fn randomize_medium2(medium: &Medium2, spec: &RandomBoundarySpec) -> Medium2 {
    let e = medium.extent();
    match medium {
        Medium2::Iso { model, .. } => Medium2::Iso {
            model: rb::randomize_iso2(model, spec),
            damp_x: DampProfile::transparent(e.nx, e.halo),
            damp_z: DampProfile::transparent(e.nz, e.halo),
        },
        Medium2::Acoustic { model, .. } => Medium2::Acoustic {
            model: rb::randomize_acoustic2(model, spec),
            cpml: [
                CpmlAxis::transparent(e.nx, e.halo),
                CpmlAxis::transparent(e.nz, e.halo),
            ],
        },
        Medium2::Elastic { model, .. } => Medium2::Elastic {
            model: rb::randomize_elastic2(model, spec),
            cpml: [
                CpmlAxis::transparent(e.nx, e.halo),
                CpmlAxis::transparent(e.nz, e.halo),
            ],
        },
        Medium2::Vti { model, .. } => Medium2::Vti {
            model: rb::randomize_vti2(model, spec),
            damp_x: DampProfile::transparent(e.nx, e.halo),
            damp_z: DampProfile::transparent(e.nz, e.halo),
        },
    }
}

/// 3-D analogue of [`randomize_medium2`].
pub fn randomize_medium3(medium: &Medium3, spec: &RandomBoundarySpec) -> Medium3 {
    let e = medium.extent();
    match medium {
        Medium3::Iso { model, .. } => Medium3::Iso {
            model: rb::randomize_iso3(model, spec),
            damp: [
                DampProfile::transparent(e.nx, e.halo),
                DampProfile::transparent(e.ny, e.halo),
                DampProfile::transparent(e.nz, e.halo),
            ],
        },
        Medium3::Acoustic { model, .. } => Medium3::Acoustic {
            model: rb::randomize_acoustic3(model, spec),
            cpml: [
                CpmlAxis::transparent(e.nx, e.halo),
                CpmlAxis::transparent(e.ny, e.halo),
                CpmlAxis::transparent(e.nz, e.halo),
            ],
        },
        Medium3::Elastic { model, .. } => Medium3::Elastic {
            model: rb::randomize_elastic3(model, spec),
            cpml: [
                CpmlAxis::transparent(e.nx, e.halo),
                CpmlAxis::transparent(e.ny, e.halo),
                CpmlAxis::transparent(e.nz, e.halo),
            ],
        },
    }
}

/// Backward phase with checkpoint-free source reconstruction: migrate a
/// recorded (muted) shot with **zero snapshot storage**. The source field
/// is propagated forward through the randomized medium (storing nothing),
/// then both fields walk backward in lockstep — the source by exact time
/// reversal, the receiver by ordinary back-propagation — and the imaging
/// condition fires at every `snap_period`-th step, exactly the times
/// [`crate::rtm::migrate_shot`] images at.
#[allow(clippy::too_many_arguments)]
pub fn migrate_random_boundary(
    medium: &Medium2,
    acq: &Acquisition2,
    seismogram: &Seismogram,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    spec: &RandomBoundarySpec,
    gangs: usize,
) -> Result<Field2, RtmError> {
    migrate_random_boundary_obs(
        medium,
        acq,
        seismogram,
        wavelet,
        config,
        steps,
        snap_period,
        spec,
        gangs,
        None,
    )
}

/// Emit one remodeling phase span on the host track (wall-clock seconds;
/// observability never changes the image) and return the phase end time.
fn remodel_span(obs: Option<&ObsSession>, name: &'static str, start_s: f64, dur_s: f64) -> f64 {
    if let Some(o) = obs {
        o.span(Span::new(Track::Host, SpanCat::Phase, name, start_s, dur_s));
    }
    start_s + dur_s
}

/// [`migrate_random_boundary`] with an optional observability session:
/// `remodel_forward` / `remodel_backward` phase spans plus a
/// `checkpoint_bytes_avoided` counter — the snapshot bytes a dense
/// [`crate::rtm::migrate_shot`] of the same run would have stored.
#[allow(clippy::too_many_arguments)]
pub fn migrate_random_boundary_obs(
    medium: &Medium2,
    acq: &Acquisition2,
    seismogram: &Seismogram,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    spec: &RandomBoundarySpec,
    gangs: usize,
    obs: Option<&ObsSession>,
) -> Result<Field2, RtmError> {
    if steps == 0 {
        return Err(ConfigError::ZeroSteps.into());
    }
    let e = medium.extent();
    let dt = medium.dt();
    let rmedium = randomize_medium2(medium, spec);

    // Forward source pass through the randomized, lossless medium. Nothing
    // is stored: the final state *is* the storage.
    let wall = std::time::Instant::now();
    let mut sstate = State2::new(&rmedium);
    for t in 0..steps {
        sstate.step(&rmedium, config, gangs);
        sstate.inject(
            &rmedium,
            acq.src_ix,
            acq.src_iz,
            wavelet.sample(t as f32 * dt),
        );
    }
    let bwd_start = remodel_span(obs, "remodel_forward", 0.0, wall.elapsed().as_secs_f64());

    // Lockstep backward walk. At the top of iteration `t`, `sstate` holds
    // the forward state after step `t` (what the dense driver snapshotted)
    // and `rstate` has absorbed the receiver data of steps `t+1..steps` —
    // the exact pairing of `migrate_shot`'s imaging condition.
    let wall = std::time::Instant::now();
    let mut image = Field2::zeros(e);
    let mut rstate = State2::new(medium);
    for t in (0..steps).rev() {
        if t % snap_period == 0 {
            for iz in 0..e.nz {
                for ix in 0..e.nx {
                    let v = image.get(ix, iz) + sstate.sample(ix, iz) * rstate.sample(ix, iz);
                    image.set(ix, iz, v);
                }
            }
        }
        // Undo forward body `t` on the source field: remove the injection,
        // then reverse the step (lossless medium ⇒ exact up to roundoff).
        sstate.inject(
            &rmedium,
            acq.src_ix,
            acq.src_iz,
            -wavelet.sample(t as f32 * dt),
        );
        sstate.step_reverse(&rmedium, config, gangs);
        rstate.step(medium, config, gangs);
        for (r, rcv) in acq.receivers.iter().enumerate() {
            rstate.inject(medium, rcv.ix, rcv.iz, seismogram.get(r, t));
        }
    }
    remodel_span(
        obs,
        "remodel_backward",
        bwd_start,
        wall.elapsed().as_secs_f64(),
    );
    if let Some(o) = obs {
        let snap_bytes = (image.as_slice().len() * 4) as u64;
        let n_snaps = steps.div_ceil(snap_period) as u64;
        o.registry
            .inc("checkpoint_bytes_avoided", n_snaps * snap_bytes);
    }
    Ok(image)
}

/// Run random-boundary RTM for one shot: forward modeling through the
/// **original absorbing** medium records the shot (the acquisition is
/// unchanged by the migration backend), the direct wave is muted, and the
/// shot is migrated checkpoint-free. `snapshots_saved` is 0 by
/// construction.
#[allow(clippy::too_many_arguments)]
pub fn run_rtm_random_boundary(
    medium: &Medium2,
    acq: &Acquisition2,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    spec: &RandomBoundarySpec,
    gangs: usize,
) -> Result<RtmResult, RtmError> {
    // Snapshot period `steps` keeps the forward driver from accumulating
    // the snapshot stream this subsystem exists to avoid.
    let fwd = run_modeling(medium, acq, wavelet, config, steps, steps, gangs);
    let (h, v_src, dt) = medium_surface_params(medium, acq);
    let taper = 2.4 / wavelet.f_peak();
    let muted = mute_direct(&fwd.seismogram, acq, h, v_src, dt, taper);
    let image = migrate_random_boundary(
        medium,
        acq,
        &muted,
        wavelet,
        config,
        steps,
        snap_period,
        spec,
        gangs,
    )?;
    Ok(RtmResult {
        image,
        seismogram: muted,
        snapshots_saved: 0,
    })
}

/// 3-D [`migrate_random_boundary`]: volumetric lockstep correlation with
/// zero snapshot volumes — the configuration where dense storage hurts
/// most (each snapshot is a full `nx·ny·nz` volume).
#[allow(clippy::too_many_arguments)]
pub fn migrate_random_boundary3(
    medium: &Medium3,
    acq: &Acquisition3,
    seismogram: &Seismogram,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    spec: &RandomBoundarySpec,
    gangs: usize,
) -> Result<Field3, RtmError> {
    if steps == 0 {
        return Err(ConfigError::ZeroSteps.into());
    }
    let e = medium.extent();
    let dt = medium.dt();
    let rmedium = randomize_medium3(medium, spec);

    let mut sstate = State3::new(&rmedium);
    for t in 0..steps {
        sstate.step(&rmedium, config, gangs);
        sstate.inject(
            &rmedium,
            acq.src_ix,
            acq.src_iy,
            acq.src_iz,
            wavelet.sample(t as f32 * dt),
        );
    }

    let mut image = Field3::zeros(e);
    let mut rstate = State3::new(medium);
    for t in (0..steps).rev() {
        if t % snap_period == 0 {
            for iz in 0..e.nz {
                for iy in 0..e.ny {
                    for ix in 0..e.nx {
                        let v = image.get(ix, iy, iz)
                            + sstate.sample(ix, iy, iz) * rstate.sample(ix, iy, iz);
                        image.set(ix, iy, iz, v);
                    }
                }
            }
        }
        sstate.inject(
            &rmedium,
            acq.src_ix,
            acq.src_iy,
            acq.src_iz,
            -wavelet.sample(t as f32 * dt),
        );
        sstate.step_reverse(&rmedium, config, gangs);
        rstate.step(medium, config, gangs);
        for (r, rcv) in acq.receivers.iter().enumerate() {
            rstate.inject(medium, rcv.ix, rcv.iy, rcv.iz, seismogram.get(r, t));
        }
    }
    Ok(image)
}

/// 3-D [`run_rtm_random_boundary`].
#[allow(clippy::too_many_arguments)]
pub fn run_rtm_random_boundary3(
    medium: &Medium3,
    acq: &Acquisition3,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    spec: &RandomBoundarySpec,
    gangs: usize,
) -> Result<Rtm3Result, RtmError> {
    if steps == 0 {
        return Err(ConfigError::ZeroSteps.into());
    }
    let dt = medium.dt();
    let mut fstate = State3::new(medium);
    let mut seismogram = Seismogram::zeros(acq.n_receivers(), steps);
    for t in 0..steps {
        fstate.step(medium, config, gangs);
        fstate.inject(
            medium,
            acq.src_ix,
            acq.src_iy,
            acq.src_iz,
            wavelet.sample(t as f32 * dt),
        );
        for (r, rcv) in acq.receivers.iter().enumerate() {
            seismogram.record(r, t, fstate.sample(rcv.ix, rcv.iy, rcv.iz));
        }
    }
    let (h, v_src, dtm) = medium_params3(medium, acq);
    let taper = 2.4 / wavelet.f_peak();
    let muted = mute_direct3(&seismogram, acq, h, v_src, dtm, taper);
    let image = migrate_random_boundary3(
        medium,
        acq,
        &muted,
        wavelet,
        config,
        steps,
        snap_period,
        spec,
        gangs,
    )?;
    Ok(Rtm3Result {
        image,
        seismogram: muted,
        snapshots_saved: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::migrate_checkpointed;
    use crate::rtm::{depth_profile, laplacian_filter};
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic2_layered, acoustic3_layered, Layer};
    use seismic_model::{extent2, extent3, Geometry};
    use seismic_pml::CpmlAxis;

    fn two_layer(n: usize, z_if: usize) -> Medium2 {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3000.0, h, 0.6);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: z_if,
                vp: 3000.0,
                vs: 0.0,
                rho: 2400.0,
            },
        ];
        let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
        Medium2::Acoustic {
            model,
            cpml: [c.clone(), c],
        }
    }

    fn spec() -> RandomBoundarySpec {
        RandomBoundarySpec::new(10, 4242)
    }

    /// The randomized medium keeps the interior model and geometry; only
    /// the halo strip scatters.
    #[test]
    fn randomized_medium_keeps_interior() {
        let n = 64;
        let m = two_layer(n, n / 2);
        let r = randomize_medium2(&m, &spec());
        assert_eq!(r.extent(), m.extent());
        assert_eq!(r.dt(), m.dt());
        let (Medium2::Acoustic { model: rm, .. }, Medium2::Acoustic { model: om, .. }) = (&r, &m)
        else {
            panic!("formulation changed");
        };
        assert_eq!(rm.vp.get(n / 2, n / 2), om.vp.get(n / 2, n / 2));
        assert_eq!(rm.rho.as_slice(), om.rho.as_slice());
        // The edge strip is actually perturbed somewhere.
        let perturbed = (0..n).any(|ix| rm.vp.get(ix, 0) != om.vp.get(ix, 0));
        assert!(perturbed, "halo unperturbed");
    }

    /// The headline determinism contract: a fixed seed reproduces the image
    /// bit for bit; a different seed does not.
    #[test]
    fn same_seed_same_image_bitwise() {
        let n = 64;
        let m = two_layer(n, n / 2);
        let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 4);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let run = |s: &RandomBoundarySpec| {
            run_rtm_random_boundary(&m, &acq, &w, &cfg, 240, 4, s, 3)
                .unwrap()
                .image
        };
        let a = run(&spec());
        let b = run(&spec());
        assert_eq!(a, b, "fixed seed must be bitwise reproducible");
        let c = run(&RandomBoundarySpec::new(10, 4243));
        assert_ne!(a, c, "a different seed must change the image");
    }

    /// Gang count must not change a single bit (coordinate-hashed halo +
    /// deterministic kernels).
    #[test]
    fn gang_invariance_of_image() {
        let n = 64;
        let m = two_layer(n, 32);
        let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 4);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let s = spec();
        let a = run_rtm_random_boundary(&m, &acq, &w, &cfg, 120, 4, &s, 1).unwrap();
        let b = run_rtm_random_boundary(&m, &acq, &w, &cfg, 120, 4, &s, 6).unwrap();
        assert_eq!(a.image, b.image);
        assert_eq!(a.snapshots_saved, 0);
    }

    /// The checkpoint-free image still finds the reflector, and stays close
    /// to the checkpointed reference: the boundary difference (randomized
    /// halo vs C-PML) is bounded incoherent noise, not a structural change.
    #[test]
    fn image_close_to_checkpointed_reference() {
        let n = 96;
        let z_if = 48;
        let m = two_layer(n, z_if);
        let acq = Acquisition2::surface_line(n, n / 2, 6, 6, 2);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(18.0);
        let steps = 700;
        let snap = 3;

        let fwd = run_modeling(&m, &acq, &w, &cfg, steps, steps, 4);
        let (h, v, dt) = medium_surface_params(&m, &acq);
        let muted = mute_direct(&fwd.seismogram, &acq, h, v, dt, 2.4 / 18.0);
        let reference =
            migrate_checkpointed(&m, &acq, &muted, &w, &cfg, steps, snap, 6, 4).unwrap();
        let rand =
            migrate_random_boundary(&m, &acq, &muted, &w, &cfg, steps, snap, &spec(), 4).unwrap();

        // Both images peak at the reflector.
        let peak_depth = |img: &Field2| {
            let prof = depth_profile(&laplacian_filter(img, 10.0, 10.0));
            prof.iter()
                .enumerate()
                .skip(20)
                .take(n - 40)
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        let z_ref = peak_depth(&reference);
        let z_rand = peak_depth(&rand);
        assert!(
            (z_rand as isize - z_if as isize).unsigned_abs() <= 6,
            "random-boundary peak at z = {z_rand}, reflector at {z_if}"
        );
        assert!(
            (z_rand as isize - z_ref as isize).unsigned_abs() <= 4,
            "peaks disagree: random {z_rand} vs checkpointed {z_ref}"
        );

        // Bounded delta: relative L2 difference well below the signal.
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for (a, b) in rand.as_slice().iter().zip(reference.as_slice()) {
            num += ((a - b) as f64).powi(2);
            den += (*b as f64).powi(2);
        }
        let rel = (num / den.max(1e-300)).sqrt();
        assert!(rel < 0.8, "image delta too large: rel L2 = {rel}");
        assert!(rel > 0.0, "images cannot be identical across backends");
    }

    /// The obs variant reports the avoided snapshot traffic and a serial
    /// host timeline, without perturbing the image.
    #[test]
    fn obs_counts_avoided_checkpoint_bytes() {
        let n = 48;
        let m = two_layer(n, n / 2);
        let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 4);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let steps = 60;
        let snap = 4;
        let fwd = run_modeling(&m, &acq, &w, &cfg, steps, steps, 2);
        let obs = ObsSession::new();
        let plain =
            migrate_random_boundary(&m, &acq, &fwd.seismogram, &w, &cfg, steps, snap, &spec(), 2)
                .unwrap();
        let traced = migrate_random_boundary_obs(
            &m,
            &acq,
            &fwd.seismogram,
            &w,
            &cfg,
            steps,
            snap,
            &spec(),
            2,
            Some(&obs),
        )
        .unwrap();
        assert_eq!(plain, traced, "observation must not perturb the image");
        let field_bytes = (plain.as_slice().len() * 4) as u64;
        assert_eq!(
            obs.registry.counter("checkpoint_bytes_avoided"),
            steps.div_ceil(snap) as u64 * field_bytes
        );
        assert_eq!(obs.registry.counter("checkpoints_written"), 0);
        let names: Vec<_> = obs.tracer.spans().iter().map(|s| s.name.clone()).collect();
        assert!(names.contains(&"remodel_forward".to_string()));
        assert!(names.contains(&"remodel_backward".to_string()));
        obs.tracer.validate_tracks().expect("serial host track");
    }

    #[test]
    fn zero_steps_is_a_typed_error() {
        let n = 32;
        let m = two_layer(n, 16);
        let acq = Acquisition2::surface_line(n, n / 2, 3, 5, 4);
        let seis = Seismogram::zeros(acq.n_receivers(), 1);
        let r = migrate_random_boundary(
            &m,
            &acq,
            &seis,
            &Wavelet::ricker(20.0),
            &OptimizationConfig::default(),
            0,
            4,
            &spec(),
            2,
        );
        assert_eq!(r.unwrap_err(), RtmError::Config(ConfigError::ZeroSteps));
    }

    /// 3-D: fixed seed ⇒ bitwise-identical volume, zero snapshots, and a
    /// nontrivial image.
    #[test]
    fn volume_image_is_seed_deterministic() {
        let n = 36;
        let e = extent3(n, n, n);
        let h = 10.0;
        let dt = stable_dt(8, 3, 3000.0, h, 0.55);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: n / 2,
                vp: 3000.0,
                vs: 0.0,
                rho: 2400.0,
            },
        ];
        let model = acoustic3_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 8, dt, 3000.0, h, 1e-4);
        let medium = Medium3::Acoustic {
            model,
            cpml: [c.clone(), c.clone(), c],
        };
        let acq = Acquisition3::surface_patch(n, n, (n / 2, n / 2, 4), 4, 3);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(18.0);
        let s = RandomBoundarySpec::new(6, 99);
        let a = run_rtm_random_boundary3(&medium, &acq, &w, &cfg, 220, 3, &s, 4).unwrap();
        let b = run_rtm_random_boundary3(&medium, &acq, &w, &cfg, 220, 3, &s, 2).unwrap();
        assert_eq!(a.snapshots_saved, 0);
        assert_eq!(
            a.image, b.image,
            "fixed seed, any gang count: bitwise-identical volume"
        );
        let peak = a
            .image
            .as_slice()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(peak > 0.0 && peak.is_finite());
    }
}
