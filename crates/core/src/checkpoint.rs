//! Checkpointed RTM: bounded-memory source-wavefield storage.
//!
//! The paper's Algorithm 1 stores a snapshot every `snap_period` — at
//! production 3D sizes that stream is what exhausts node RAM and spills to
//! the filesystem (see `crate::cpu_time`). The standard remedy is
//! checkpointing (Griewank-style store-vs-recompute): keep only `slots`
//! full propagation states, and during migration re-run the forward
//! propagator segment by segment from the nearest checkpoint, correlating
//! while the receiver field walks backward.
//!
//! Memory drops from `O(steps/snap_period)` snapshots to
//! `O(slots + steps/slots)` states, at the cost of one extra forward
//! propagation. Because the propagators are bitwise deterministic, the
//! checkpointed image equals the full-storage image **exactly** — which is
//! the headline test of this module.

use crate::case::OptimizationConfig;
use crate::error::{ConfigError, RtmError};
use crate::modeling::{Medium2, State2};
use exec_host::Arena;
use seismic_grid::Field2;
use seismic_source::{Acquisition2, Seismogram, Wavelet};

/// Evenly spaced checkpoint schedule: which forward steps get a stored
/// state. Always includes step 0; never exceeds `slots` entries.
pub fn plan_checkpoints(steps: usize, slots: usize) -> Result<Vec<usize>, ConfigError> {
    if slots == 0 {
        return Err(ConfigError::ZeroSlots);
    }
    if steps == 0 {
        return Err(ConfigError::ZeroSteps);
    }
    let n = slots.min(steps);
    Ok((0..n).map(|k| k * steps / n).collect())
}

/// Peak states resident under the schedule: the stored checkpoints plus
/// the replay buffer for the longest segment (in snapshot units).
pub fn peak_states(steps: usize, slots: usize, snap_period: usize) -> Result<usize, ConfigError> {
    let cps = plan_checkpoints(steps, slots)?;
    let longest = cps
        .windows(2)
        .map(|w| w[1] - w[0])
        .chain(std::iter::once(steps - cps.last().copied().unwrap_or(0)))
        .max()
        .unwrap_or(steps);
    Ok(slots + longest.div_ceil(snap_period.max(1)))
}

/// Run RTM with at most `slots` stored forward states (plus one segment's
/// worth of replay snapshots). Produces exactly the image of
/// [`crate::rtm::migrate_shot`] run on densely stored snapshots.
#[allow(clippy::too_many_arguments)]
pub fn migrate_checkpointed(
    medium: &Medium2,
    acq: &Acquisition2,
    seismogram: &Seismogram,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    slots: usize,
    gangs: usize,
) -> Result<Field2, RtmError> {
    let e = medium.extent();
    let dt = medium.dt();
    let checkpoints = plan_checkpoints(steps, slots)?;

    // Forward pass: store full states at checkpoint steps only.
    // `stored[k]` is the state *before* executing step `checkpoints[k]`.
    // The slots are allocated up front and filled by `copy_from`, so the
    // time loop itself never allocates (a `clone()` per checkpoint used to
    // reallocate every field of the state).
    let mut stored: Vec<State2> = (0..checkpoints.len())
        .map(|_| State2::new(medium))
        .collect();
    {
        let mut state = State2::new(medium);
        let mut next = 0usize;
        for t in 0..steps {
            if next < checkpoints.len() && checkpoints[next] == t {
                stored[next].copy_from(&state);
                next += 1;
            }
            state.step(medium, config, gangs);
            state.inject(
                medium,
                acq.src_ix,
                acq.src_iz,
                wavelet.sample(t as f32 * dt),
            );
        }
    }

    // Backward pass: walk segments last → first; replay each segment's
    // snapshots from its checkpoint, then correlate against the receiver
    // field stepping backward through the same time range.
    let mut image = Field2::zeros(e);
    let mut rstate = State2::new(medium);
    // One forward-replay state reused across every segment, and an arena
    // recycling the per-segment snapshot buffers: after the first (longest)
    // segment the backward pass reaches steady state and allocates nothing.
    let mut fstate = State2::new(medium);
    let snap_arena: Arena<Field2> = Arena::new();
    let mut replay: Vec<(usize, Field2)> = Vec::new();
    let mut seg_end = steps;
    for (k, &seg_start) in checkpoints.iter().enumerate().rev() {
        // Replay the forward field across [seg_start, seg_end), keeping the
        // snapshots that fall in the segment.
        fstate.copy_from(&stored[k]);
        for t in seg_start..seg_end {
            fstate.step(medium, config, gangs);
            fstate.inject(
                medium,
                acq.src_ix,
                acq.src_iz,
                wavelet.sample(t as f32 * dt),
            );
            // migrate_shot images against the snapshot taken *after* step t
            // when t % snap_period == 0 in the forward driver (which saves
            // after stepping+injecting).
            if t % snap_period == 0 {
                let mut snap = snap_arena.take_with(|| Field2::zeros(e));
                fstate.write_wavefield_into(&mut snap);
                replay.push((t, snap));
            }
        }
        // Receiver field walks t = seg_end-1 .. seg_start, imaging at the
        // same times migrate_shot does. Replay entries are pushed in
        // increasing step order, so the by-step lookup is a binary search.
        for t in (seg_start..seg_end).rev() {
            if t % snap_period == 0 {
                let idx = replay
                    .binary_search_by_key(&t, |(ts, _)| *ts)
                    .map_err(|_| RtmError::MissingSnapshot { step: t })?;
                let snap = &replay[idx].1;
                for iz in 0..e.nz {
                    for ix in 0..e.nx {
                        let v = image.get(ix, iz) + snap.get(ix, iz) * rstate.sample(ix, iz);
                        image.set(ix, iz, v);
                    }
                }
            }
            rstate.step(medium, config, gangs);
            for (r, rcv) in acq.receivers.iter().enumerate() {
                rstate.inject(medium, rcv.ix, rcv.iz, seismogram.get(r, t));
            }
        }
        for (_, snap) in replay.drain(..) {
            snap_arena.put(snap);
        }
        seg_end = seg_start;
    }
    Ok(image)
}

impl Clone for State2 {
    fn clone(&self) -> Self {
        match self {
            State2::Iso(s) => State2::Iso(s.clone()),
            State2::Acoustic(s) => State2::Acoustic(s.clone()),
            State2::Elastic(s) => State2::Elastic(s.clone()),
            State2::Vti(s) => State2::Vti(s.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeling::run_modeling;
    use crate::rtm::migrate_shot;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic2_layered, Layer};
    use seismic_model::{extent2, Geometry};
    use seismic_pml::CpmlAxis;

    fn medium(n: usize) -> Medium2 {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3000.0, h, 0.6);
        let layers = [
            Layer {
                z_top: 0,
                vp: 1500.0,
                vs: 0.0,
                rho: 1000.0,
            },
            Layer {
                z_top: n / 2,
                vp: 3000.0,
                vs: 0.0,
                rho: 2400.0,
            },
        ];
        let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
        Medium2::Acoustic {
            model,
            cpml: [c.clone(), c],
        }
    }

    #[test]
    fn schedule_properties() {
        let cps = plan_checkpoints(100, 4).unwrap();
        assert_eq!(cps, vec![0, 25, 50, 75]);
        assert_eq!(
            plan_checkpoints(10, 100).unwrap(),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(plan_checkpoints(100, 1).unwrap(), vec![0]);
        // Peak memory shrinks as slots grow (until the replay buffer floor).
        let p2 = peak_states(1000, 2, 5).unwrap();
        let p10 = peak_states(1000, 10, 5).unwrap();
        assert!(p10 < p2, "{p10} vs {p2}");
    }

    /// The headline property: checkpointed migration reproduces the
    /// dense-storage image bit for bit (deterministic replay).
    #[test]
    fn checkpointed_image_is_bitwise_identical() {
        let n = 64;
        let m = medium(n);
        let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 4);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let steps = 240;
        let snap = 4;
        // Dense reference: store every snapshot.
        let fwd = run_modeling(&m, &acq, &w, &cfg, steps, snap, 3);
        let dense = migrate_shot(
            &m,
            &acq,
            &fwd.seismogram,
            &fwd.snapshots,
            &cfg,
            steps,
            snap,
            3,
        );
        for slots in [1usize, 3, 7] {
            let img =
                migrate_checkpointed(&m, &acq, &fwd.seismogram, &w, &cfg, steps, snap, slots, 3)
                    .unwrap();
            assert_eq!(img, dense.image, "slots = {slots}");
        }
    }

    /// Memory accounting: the checkpointed plan stores far fewer states
    /// than dense snapshots for long runs.
    #[test]
    fn checkpointing_reduces_resident_states() {
        let steps = 4000;
        let snap = 4;
        let dense_states = steps / snap;
        let ckpt = peak_states(steps, 16, snap).unwrap();
        assert!(
            ckpt < dense_states / 8,
            "checkpointed {ckpt} vs dense {dense_states}"
        );
    }

    #[test]
    fn bad_schedules_are_typed_errors() {
        use crate::error::ConfigError;
        assert_eq!(plan_checkpoints(10, 0), Err(ConfigError::ZeroSlots));
        assert_eq!(plan_checkpoints(0, 4), Err(ConfigError::ZeroSteps));
        assert_eq!(peak_states(0, 4, 2), Err(ConfigError::ZeroSteps));
    }
}
