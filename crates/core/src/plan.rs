//! Per-time-step kernel launch schedules.
//!
//! A *plan* is what the OpenACC port of a propagator looks like to the
//! device: an ordered list of phases, each a set of kernels that are
//! mutually independent (the elastic model's velocity kernels, say) and can
//! go on async streams, with an implicit wait between phases. Both the
//! production-scale timing estimator ([`crate::gpu_time`]) and the
//! real-execution drivers consume these plans, so the simulated tables and
//! the executed examples price identical launch sequences.

use crate::case::{OptimizationConfig, SeismicCase, Workload};
use openacc_sim::{Clause, Compiler, ConstructKind, LoopNest, LoopSched};
use seismic_model::footprint::{Dims, Formulation};
use seismic_prop::desc::{self, KernelDesc};
use seismic_prop::{IsoPmlVariant, TransposeVariant};

/// One kernel launch: descriptor + loop nest + directives.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Arithmetic descriptor.
    pub desc: KernelDesc,
    /// Iteration space.
    pub nest: LoopNest,
    /// Compute construct.
    pub kind: ConstructKind,
    /// Clauses on the construct.
    pub clauses: Vec<Clause>,
}

/// A group of independent launches (async candidates); groups execute in
/// order with a wait between them.
pub type Phase = Vec<LaunchSpec>;

/// Width of the absorbing strips assumed by the plan's point counts.
pub const PML_WIDTH: usize = 20;

/// The construct and base clauses each compiler performs best with
/// (Section 5.2): PGI wants `kernels` + `independent`; CRAY wants
/// `parallel` with explicit gang/worker/vector scheduling.
pub fn preferred_construct(compiler: Compiler, depth: usize) -> (ConstructKind, Vec<LoopSched>) {
    match compiler {
        Compiler::Pgi(_) => (ConstructKind::Kernels, vec![LoopSched::Auto; depth]),
        Compiler::Cray => {
            let mut sched = vec![LoopSched::Gang; 1];
            if depth >= 3 {
                sched.push(LoopSched::Worker);
            }
            while sched.len() + 1 < depth {
                sched.push(LoopSched::Auto);
            }
            sched.push(LoopSched::Vector(128));
            (ConstructKind::Parallel, sched)
        }
    }
}

fn nest_for(case: &SeismicCase, w: &Workload, points_scale: f64) -> LoopNest {
    let sizes: Vec<u64> = match case.dims {
        Dims::Two => vec![((w.nz as f64 * points_scale) as u64).max(1), w.nx as u64],
        Dims::Three => vec![
            ((w.nz as f64 * points_scale) as u64).max(1),
            w.ny as u64,
            w.nx as u64,
        ],
    };
    LoopNest::new(&sizes)
}

fn spec(
    case: &SeismicCase,
    w: &Workload,
    compiler: Compiler,
    config: &OptimizationConfig,
    d: KernelDesc,
    points_scale: f64,
    stream: Option<u32>,
) -> LaunchSpec {
    let mut nest = nest_for(case, w, points_scale);
    let (kind, sched) = preferred_construct(compiler, nest.depth());
    nest = nest.with_sched(&sched);
    if !d.coalesced {
        // The direct acoustic-2D backward kernel sweeps the strided axis
        // innermost and the compiler must assume the inner dependence.
        nest = nest.strided().with_dependence();
    }
    let mut clauses = Vec::new();
    if matches!(compiler, Compiler::Pgi(_)) && d.coalesced {
        clauses.push(Clause::Independent);
        if nest.depth() >= 3 {
            // "Our 3D loop nest case led to the collapsing of the 2
            // innermost loops to generate a 2D grid."
            clauses.push(Clause::Collapse(2));
        }
    }
    if let Some(m) = config.maxregcount {
        clauses.push(Clause::MaxRegCount(m));
    }
    if let Some(q) = stream {
        clauses.push(Clause::Async(q));
    }
    LaunchSpec {
        desc: d,
        nest,
        kind,
        clauses,
    }
}

/// Fraction of the domain inside the absorbing strips (boundary kernels of
/// the restructured isotropic variant cover only this share of points).
pub fn pml_fraction(case: &SeismicCase, w: &Workload) -> f64 {
    let fx = 1.0 - 2.0 * PML_WIDTH as f64 / w.nx as f64;
    let fz = 1.0 - 2.0 * PML_WIDTH as f64 / w.nz as f64;
    let interior = match case.dims {
        Dims::Two => fx.max(0.0) * fz.max(0.0),
        Dims::Three => {
            let fy = 1.0 - 2.0 * PML_WIDTH as f64 / w.ny as f64;
            fx.max(0.0) * fy.max(0.0) * fz.max(0.0)
        }
    };
    1.0 - interior
}

/// The per-time-step launch phases of a propagator under a configuration.
pub fn step_phases(
    case: &SeismicCase,
    config: &OptimizationConfig,
    w: &Workload,
    compiler: Compiler,
) -> Vec<Phase> {
    // Async streams apply where kernels within a phase are independent —
    // the elastic model in the paper's study.
    let use_async = config.async_streams && case.formulation == Formulation::Elastic;
    let stream = |i: usize| use_async.then_some(i as u32);

    match (case.formulation, case.dims) {
        (Formulation::Isotropic, dims) => {
            let descs = match dims {
                Dims::Two => desc::iso2d(config.iso_pml),
                Dims::Three => desc::iso3d(config.iso_pml),
            };
            let phase: Phase = match config.iso_pml {
                IsoPmlVariant::RestructuredIndices => {
                    let pml_frac = pml_fraction(case, w);
                    descs
                        .into_iter()
                        .enumerate()
                        .map(|(i, d)| {
                            let scale = if i == 0 { 1.0 - pml_frac } else { pml_frac };
                            spec(case, w, compiler, config, d, scale, None)
                        })
                        .collect()
                }
                _ => descs
                    .into_iter()
                    .map(|d| spec(case, w, compiler, config, d, 1.0, None))
                    .collect(),
            };
            vec![phase]
        }
        (Formulation::Acoustic, Dims::Two) => {
            let descs = desc::acoustic2d(config.transpose);
            match config.transpose {
                TransposeVariant::Direct => {
                    // velocity kernel phase, then pressure kernel phase.
                    descs
                        .into_iter()
                        .map(|d| vec![spec(case, w, compiler, config, d, 1.0, None)])
                        .collect()
                }
                TransposeVariant::Transposed => {
                    // transpose-in; velocity; pressure; transpose-out.
                    descs
                        .into_iter()
                        .map(|d| vec![spec(case, w, compiler, config, d, 1.0, None)])
                        .collect()
                }
            }
        }
        (Formulation::Acoustic, Dims::Three) => {
            let descs = desc::acoustic3d(config.fission);
            let mut phases: Vec<Phase> = Vec::new();
            // First desc is the velocity kernel, the rest are the pressure
            // kernel(s); fissioned pressure kernels are independent of one
            // another only through ψ, so they stay sequential phases.
            for d in descs {
                phases.push(vec![spec(case, w, compiler, config, d, 1.0, None)]);
            }
            phases
        }
        (Formulation::Elastic, dims) => {
            let descs = match dims {
                Dims::Two => desc::elastic2d(),
                Dims::Three => desc::elastic3d(),
            };
            let n_vel = match dims {
                Dims::Two => 2,
                Dims::Three => 3,
            };
            let (vel, stress) = descs.split_at(n_vel);
            let vel_phase: Phase = vel
                .iter()
                .enumerate()
                .map(|(i, d)| spec(case, w, compiler, config, d.clone(), 1.0, stream(i)))
                .collect();
            let stress_phase: Phase = stress
                .iter()
                .enumerate()
                .map(|(i, d)| spec(case, w, compiler, config, d.clone(), 1.0, stream(i)))
                .collect();
            vec![vel_phase, stress_phase]
        }
    }
}

/// Source injection: a single-point kernel (the 0.04 %-utilization kernel
/// of Figure 14).
pub fn source_injection(
    case: &SeismicCase,
    compiler: Compiler,
    config: &OptimizationConfig,
) -> LaunchSpec {
    let d = KernelDesc {
        name: "source_injection",
        flops: 8.0,
        reads: 2.0,
        writes: 1.0,
        regs: 16,
        coalesced: true,
        divergence: 0.0,
    };
    let w1 = Workload {
        nx: 1,
        ny: 1,
        nz: 1,
        steps: 0,
        snap_period: 1,
        n_receivers: 0,
    };
    spec(case, &w1, compiler, config, d, 1.0, None)
}

/// Receiver injection: either one inlined kernel over all receivers (the
/// CRAY-compiled version; 26 % utilization in Figure 14) or one launch per
/// receiver (what PGI's failed inlining produced —
/// `#receivers × #timesteps` launches, Section 6.2).
pub fn receiver_injection(
    case: &SeismicCase,
    compiler: Compiler,
    config: &OptimizationConfig,
    n_receivers: usize,
) -> Vec<LaunchSpec> {
    let d = KernelDesc {
        name: "receiver_injection",
        flops: 10.0,
        reads: 3.0,
        writes: 1.0,
        regs: 18,
        coalesced: false, // receivers scatter across the grid
        divergence: 0.0,
    };
    let w = Workload {
        nx: n_receivers.max(1),
        ny: 1,
        nz: 1,
        steps: 0,
        snap_period: 1,
        n_receivers,
    };
    let case1 = SeismicCase {
        dims: Dims::Two,
        ..*case
    };
    let inlined = config.inline_receiver_injection && matches!(compiler, Compiler::Cray);
    let mut s = spec(
        &case1,
        &w,
        compiler,
        config,
        d,
        1.0 / n_receivers.max(1) as f64,
        None,
    );
    if inlined {
        // CRAY's successful inlining produces one clean kernel over all
        // receivers (26 % utilization in Figure 14); accesses still scatter
        // (the desc stays uncoalesced) but the loop parallelises.
        s.nest.innermost_dependence = false;
    } else {
        // PGI "could not" inline the receiver routine: the loop over
        // receivers stays sequential inside one kernel (and the paper notes
        // the unresolved "loop carried dependencies between the different
        // receivers" hurt especially the 2D cases).
        s.nest = s.nest.with_dependence();
        s.clauses.retain(|c| !matches!(c, Clause::Independent));
    }
    vec![s]
}

/// The imaging-condition kernel (cross-correlation accumulate): low
/// intensity, ~1.9 % utilization in Figure 15.
pub fn imaging_kernel(
    case: &SeismicCase,
    compiler: Compiler,
    config: &OptimizationConfig,
    w: &Workload,
) -> LaunchSpec {
    let d = KernelDesc {
        name: "imaging_condition",
        flops: 2.0,
        reads: 3.0,
        writes: 1.0,
        regs: 12,
        coalesced: true,
        divergence: 0.0,
    };
    spec(case, w, compiler, config, d, 1.0, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Cluster;
    use openacc_sim::PgiVersion;
    use seismic_prop::FissionVariant;

    fn w2() -> Workload {
        Workload {
            nx: 1000,
            ny: 1,
            nz: 1000,
            steps: 100,
            snap_period: 10,
            n_receivers: 200,
        }
    }

    fn w3() -> Workload {
        Workload {
            nx: 200,
            ny: 200,
            nz: 200,
            steps: 100,
            snap_period: 10,
            n_receivers: 400,
        }
    }

    fn cfg() -> OptimizationConfig {
        OptimizationConfig::default()
    }

    #[test]
    fn construct_preference_by_compiler() {
        let (k, _) = preferred_construct(Compiler::Pgi(PgiVersion::V14_6), 3);
        assert_eq!(k, ConstructKind::Kernels);
        let (k, sched) = preferred_construct(Compiler::Cray, 3);
        assert_eq!(k, ConstructKind::Parallel);
        assert!(matches!(sched.last(), Some(LoopSched::Vector(_))));
        assert_eq!(sched.len(), 3);
        let (_, s2) = preferred_construct(Compiler::Cray, 2);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn elastic_gets_async_streams() {
        let case = SeismicCase {
            formulation: Formulation::Elastic,
            dims: Dims::Three,
        };
        let phases = step_phases(&case, &cfg(), &w3(), Compiler::Cray);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].len(), 3); // vx, vy, vz
        assert_eq!(phases[1].len(), 3); // stress groups
        assert!(phases[0]
            .iter()
            .all(|s| s.clauses.iter().any(|c| matches!(c, Clause::Async(_)))));
        // Acoustic never gets async.
        let ac = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Three,
        };
        let ap = step_phases(&ac, &cfg(), &w3(), Compiler::Cray);
        assert!(ap
            .iter()
            .flatten()
            .all(|s| !s.clauses.iter().any(|c| matches!(c, Clause::Async(_)))));
    }

    #[test]
    fn restructured_iso_splits_points() {
        let case = SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Two,
        };
        let phases = step_phases(&case, &cfg(), &w2(), Compiler::Pgi(PgiVersion::V14_3));
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].len(), 2);
        let total: u64 = phases[0].iter().map(|s| s.nest.points()).sum();
        let full = w2().points();
        // Interior + strip points ≈ the full domain (within row rounding).
        let rel = (total as f64 - full as f64).abs() / (full as f64);
        assert!(rel < 0.05, "rel {rel}");
        // Strip kernel is the smaller one.
        assert!(phases[0][1].nest.points() < phases[0][0].nest.points());
    }

    #[test]
    fn fission_changes_kernel_count() {
        let case = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Three,
        };
        let fused = step_phases(
            &case,
            &OptimizationConfig {
                fission: FissionVariant::Fused,
                ..cfg()
            },
            &w3(),
            Compiler::Cray,
        );
        let fiss = step_phases(&case, &cfg(), &w3(), Compiler::Cray);
        assert_eq!(fused.iter().flatten().count(), 2);
        assert_eq!(fiss.iter().flatten().count(), 4);
    }

    #[test]
    fn receiver_injection_inlining() {
        let case = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Two,
        };
        let inl = receiver_injection(&case, Compiler::Cray, &cfg(), 200);
        assert_eq!(inl.len(), 1);
        assert_eq!(inl[0].nest.points(), 200);
        assert!(!inl[0].nest.innermost_dependence, "CRAY inlines cleanly");
        // PGI "could not" inline: the receiver loop stays sequential
        // inside its kernel (the unresolved loop-carried dependence).
        let per = receiver_injection(&case, Compiler::Pgi(PgiVersion::V14_6), &cfg(), 200);
        assert_eq!(per.len(), 1);
        assert!(per[0].nest.innermost_dependence);
        let _ = Cluster::Ibm;
    }

    #[test]
    fn pml_fraction_reasonable() {
        let case2 = SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Two,
        };
        let f = pml_fraction(&case2, &w2());
        assert!(f > 0.05 && f < 0.2, "f = {f}");
        let case3 = SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Three,
        };
        let f3 = pml_fraction(&case3, &w3());
        assert!(f3 > f, "3D has relatively more boundary");
    }

    #[test]
    fn direct_transpose_variant_is_strided_and_dependent() {
        let case = SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Two,
        };
        let direct = step_phases(
            &case,
            &OptimizationConfig {
                transpose: TransposeVariant::Direct,
                ..cfg()
            },
            &w2(),
            Compiler::Cray,
        );
        assert!(direct
            .iter()
            .flatten()
            .all(|s| s.nest.innermost_dependence && !s.nest.innermost_contiguous));
        let trans = step_phases(&case, &cfg(), &w2(), Compiler::Cray);
        assert_eq!(trans.len(), 4); // in, vel, prs, out
        assert!(trans.iter().flatten().all(|s| !s.nest.innermost_dependence));
    }
}
