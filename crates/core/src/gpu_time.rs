//! Production-scale GPU timing estimates (the GPU columns of Tables 3/4).
//!
//! These run the exact launch/transfer sequence of the drivers through the
//! `openacc-sim` runtime *without* executing the physics, so Table-scale
//! workloads (hundreds of steps over 400³ grids) are priced in
//! milliseconds of host time. The real-execution drivers in
//! [`crate::modeling`] / [`crate::rtm`] issue the same sequences, so what
//! the tables price is what the examples run.

use crate::case::{Cluster, ImagePlacement, OptimizationConfig, SeismicCase, Workload};
use crate::plan;
use acc_obs::{ObsSession, Span, SpanCat, Track};
use accel_sim::pcie::TransferKind;
use accel_sim::SimTime;
use openacc_sim::data::DataError;
use openacc_sim::{AccRuntime, Compiler};
use seismic_grid::STENCIL_HALF;
use seismic_model::footprint::{self, Dims, Formulation};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Simulated time split of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// End-to-end simulated time (the tables' "Total GPU time").
    pub total_s: SimTime,
    /// Pure kernel time (the tables' "Kernels time").
    pub kernel_s: SimTime,
    /// PCIe transfer time.
    pub transfer_s: SimTime,
}

/// A finished simulated run: breakdown plus the runtime (profiler access).
pub struct GpuRun {
    /// Timing split.
    pub breakdown: TimingBreakdown,
    /// The runtime with its profiler ledger.
    pub runtime: AccRuntime,
}

fn breakdown(rt: &AccRuntime) -> TimingBreakdown {
    TimingBreakdown {
        total_s: rt.elapsed(),
        kernel_s: rt.profiler().compute_time(),
        transfer_s: rt.profiler().transfer_time(),
    }
}

fn wavefield_bytes(case: &SeismicCase, w: &Workload) -> u64 {
    let _ = case;
    w.alloc_points(STENCIL_HALF) * 4
}

fn run_phases(rt: &mut AccRuntime, phases: &[plan::Phase]) {
    for phase in phases {
        let mut any_async = false;
        for s in phase {
            let t = rt.launch(&s.desc, &s.nest, s.kind, &s.clauses);
            let _ = t;
            any_async |= s
                .clauses
                .iter()
                .any(|c| matches!(c, openacc_sim::Clause::Async(_)));
        }
        if any_async {
            rt.wait_async();
        }
    }
}

/// Price a seismic-modeling run (forward only) on `cluster`'s GPU under
/// `compiler`. Fails with the allocation error for cases that do not fit
/// the card (elastic 3D on the 6 GB Fermi — the `X` cells).
pub fn modeling_time(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    cluster: Cluster,
    w: &Workload,
) -> Result<GpuRun, DataError> {
    modeling_time_obs(case, config, compiler, cluster, w, None)
}

/// [`modeling_time`] with an optional observability session: the runtime
/// records directive/kernel/transfer spans, and the driver adds the
/// forward-phase span plus per-snapshot checkpoint spans. Observability
/// never changes the modeled timings.
pub fn modeling_time_obs(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    cluster: Cluster,
    w: &Workload,
    obs: Option<Arc<ObsSession>>,
) -> Result<GpuRun, DataError> {
    let mut rt = AccRuntime::new(cluster.device(), compiler);
    if let Some(o) = &obs {
        rt.attach_obs(o.clone());
    }
    rt.default_maxregcount = config.maxregcount;
    let alloc = w.alloc_points(STENCIL_HALF) as usize;
    let bytes = footprint::modeling_bytes(case.formulation, case.dims, alloc);
    rt.enter_data_copyin("fields", bytes)?;

    let phases = plan::step_phases(case, config, w, compiler);
    let src = plan::source_injection(case, compiler, config);
    let wf_bytes = wavefield_bytes(case, w);
    let t0 = rt.elapsed();
    for step in 0..w.steps {
        run_phases(&mut rt, &phases);
        rt.launch(&src.desc, &src.nest, src.kind, &src.clauses);
        if step % w.snap_period == 0 {
            // "A branch condition was needed to ensure that the host
            // snapshot data will not be updated at each time step."
            let c0 = rt.elapsed();
            rt.update_host("fields", Some(wf_bytes), TransferKind::Contiguous)
                .expect("fields present");
            checkpoint_span(&obs, "snapshot_write", c0, rt.elapsed(), wf_bytes, true);
        }
    }
    if let Some(o) = &obs {
        o.span(Span::new(
            Track::Host,
            SpanCat::Phase,
            "forward",
            t0,
            rt.elapsed() - t0,
        ));
    }
    rt.exit_data_delete("fields").expect("fields present");
    Ok(GpuRun {
        breakdown: breakdown(&rt),
        runtime: rt,
    })
}

/// Emit one checkpoint write/restore span plus its registry series.
fn checkpoint_span(
    obs: &Option<Arc<ObsSession>>,
    name: &str,
    start: SimTime,
    end: SimTime,
    bytes: u64,
    write: bool,
) {
    if let Some(o) = obs {
        o.span(
            Span::new(Track::Host, SpanCat::Checkpoint, name, start, end - start).with_bytes(bytes),
        );
        o.registry.inc(
            if write {
                "checkpoints_written"
            } else {
                "checkpoints_restored"
            },
            1,
        );
        o.registry.inc("checkpoint_bytes", bytes);
    }
}

/// Price a full RTM run (forward + backward + imaging) on `cluster`'s GPU.
pub fn rtm_time(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    cluster: Cluster,
    w: &Workload,
) -> Result<GpuRun, DataError> {
    rtm_time_obs(case, config, compiler, cluster, w, None)
}

/// [`rtm_time`] with an optional observability session: adds per-shot
/// forward/backward phase spans, per-snapshot checkpoint write/restore
/// spans (the `update host`/`update device` dance around the forward
/// wavefield), and imaging spans, on top of the runtime's own
/// directive/kernel/transfer instrumentation.
pub fn rtm_time_obs(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    cluster: Cluster,
    w: &Workload,
    obs: Option<Arc<ObsSession>>,
) -> Result<GpuRun, DataError> {
    let mut rt = AccRuntime::new(cluster.device(), compiler);
    if let Some(o) = &obs {
        rt.attach_obs(o.clone());
    }
    rt.default_maxregcount = config.maxregcount;
    let alloc = w.alloc_points(STENCIL_HALF) as usize;
    let fwd_bytes = footprint::modeling_bytes(case.formulation, case.dims, alloc);
    let wf_bytes = wavefield_bytes(case, w);
    // The isotropic formulation "requires many host-GPU updates within the
    // (enter data/exit data) region to keep the variables consistent".
    let iso_consistency = case.formulation == Formulation::Isotropic;

    // Step 1: forward data allocation.
    rt.enter_data_copyin("forward", fwd_bytes)?;

    // Step 2: forward phase with snapshot saves.
    let phases = plan::step_phases(case, config, w, compiler);
    let src = plan::source_injection(case, compiler, config);
    let fwd_t0 = rt.elapsed();
    for step in 0..w.steps {
        run_phases(&mut rt, &phases);
        rt.launch(&src.desc, &src.nest, src.kind, &src.clauses);
        if step % w.snap_period == 0 {
            let c0 = rt.elapsed();
            rt.update_host("forward", Some(wf_bytes), TransferKind::Contiguous)
                .expect("forward present");
            checkpoint_span(&obs, "checkpoint_write", c0, rt.elapsed(), wf_bytes, true);
        }
        if iso_consistency {
            rt.update_host("forward", Some(wf_bytes / 8), TransferKind::Contiguous)
                .expect("forward present");
            rt.update_device("forward", Some(wf_bytes / 8), TransferKind::Contiguous)
                .expect("forward present");
        }
    }

    if let Some(o) = &obs {
        o.span(Span::new(
            Track::Host,
            SpanCat::Phase,
            "forward",
            fwd_t0,
            rt.elapsed() - fwd_t0,
        ));
    }

    // Step 3: offload forward scratch (keep the forward wavefield), upload
    // the backward/imaging set.
    rt.exit_data_delete("forward").expect("forward present");
    rt.enter_data_copyin("forward_wavefield", wf_bytes)?;
    // The backward/receiver propagator re-uses a full modeling-sized field
    // set plus the accumulating image — this phased peak (rather than
    // forward + backward co-resident) is what the paper's enter/exit data
    // restructuring buys.
    rt.enter_data_copyin("backward", fwd_bytes + wf_bytes)?;

    // Step 4: backward phase with receiver injection + imaging condition.
    let rcv = plan::receiver_injection(case, compiler, config, w.n_receivers);
    let img = plan::imaging_kernel(case, compiler, config, w);
    let bwd_t0 = rt.elapsed();
    for step in 0..w.steps {
        if step % w.snap_period == 0 {
            // Load the saved forward snapshot...
            let c0 = rt.elapsed();
            rt.update_device(
                "forward_wavefield",
                Some(wf_bytes),
                TransferKind::Contiguous,
            )
            .expect("forward wavefield present");
            checkpoint_span(
                &obs,
                "checkpoint_restore",
                c0,
                rt.elapsed(),
                wf_bytes,
                false,
            );
            let i0 = rt.elapsed();
            match config.image_placement {
                ImagePlacement::Gpu => {
                    rt.launch(&img.desc, &img.nest, img.kind, &img.clauses);
                }
                ImagePlacement::Cpu => {
                    // Host needs the receiver wavefield every snapshot; the
                    // cross-correlation itself is host time.
                    rt.update_host("backward", Some(wf_bytes), TransferKind::Contiguous)
                        .expect("backward present");
                    let cpu = cluster.cpu();
                    rt.advance_host(cpu.kernel_time(w.points(), 2.0, 16.0));
                }
            }
            if let Some(o) = &obs {
                o.span(Span::new(
                    Track::Host,
                    SpanCat::Phase,
                    "imaging",
                    i0,
                    rt.elapsed() - i0,
                ));
            }
        }
        run_phases(&mut rt, &phases);
        for r in &rcv {
            rt.launch(&r.desc, &r.nest, r.kind, &r.clauses);
        }
        if iso_consistency {
            rt.update_host("backward", Some(wf_bytes / 8), TransferKind::Contiguous)
                .expect("backward present");
            rt.update_device("backward", Some(wf_bytes / 8), TransferKind::Contiguous)
                .expect("backward present");
        }
    }

    if let Some(o) = &obs {
        o.span(Span::new(
            Track::Host,
            SpanCat::Phase,
            "backward",
            bwd_t0,
            rt.elapsed() - bwd_t0,
        ));
    }

    // Step 5: store the image and free the device.
    rt.update_host("backward", Some(w.points() * 4), TransferKind::Contiguous)
        .expect("backward present");
    rt.exit_data_delete("backward").expect("backward present");
    rt.exit_data_delete("forward_wavefield")
        .expect("forward wavefield present");
    Ok(GpuRun {
        breakdown: breakdown(&rt),
        runtime: rt,
    })
}

/// Price a random-boundary RTM run (forward remodeling + lockstep
/// backward) on `cluster`'s GPU. Trades the checkpoint traffic of
/// [`rtm_time`] for a second source propagation: the forward pass never
/// updates the host (no snapshot stream), and the backward pass runs the
/// source phases *again* in reverse, in lockstep with the receiver
/// phases, with no snapshot restores. Both full field sets are
/// co-resident during the backward pass — that is the method's memory
/// price on-device, while host-side snapshot storage drops to zero.
pub fn rand_bound_time(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    cluster: Cluster,
    w: &Workload,
) -> Result<GpuRun, DataError> {
    rand_bound_time_obs(case, config, compiler, cluster, w, None)
}

/// [`rand_bound_time`] with an optional observability session:
/// `remodel_forward`/`remodel_backward` phase spans, imaging spans, and a
/// `checkpoint_bytes_avoided` registry counter (the snapshot bytes
/// [`rtm_time`] would have moved to the host). No checkpoint spans are
/// ever emitted — there are none.
pub fn rand_bound_time_obs(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    cluster: Cluster,
    w: &Workload,
    obs: Option<Arc<ObsSession>>,
) -> Result<GpuRun, DataError> {
    let mut rt = AccRuntime::new(cluster.device(), compiler);
    if let Some(o) = &obs {
        rt.attach_obs(o.clone());
    }
    rt.default_maxregcount = config.maxregcount;
    let alloc = w.alloc_points(STENCIL_HALF) as usize;
    let fwd_bytes = footprint::modeling_bytes(case.formulation, case.dims, alloc);
    let wf_bytes = wavefield_bytes(case, w);
    let iso_consistency = case.formulation == Formulation::Isotropic;

    // Step 1: source field set (randomized medium — identical sizes).
    rt.enter_data_copyin("source", fwd_bytes)?;

    // Step 2: forward remodeling pass. No snapshot `update host` — the
    // branch the paper needed to throttle host updates disappears
    // entirely.
    let phases = plan::step_phases(case, config, w, compiler);
    let src = plan::source_injection(case, compiler, config);
    let fwd_t0 = rt.elapsed();
    for step in 0..w.steps {
        run_phases(&mut rt, &phases);
        rt.launch(&src.desc, &src.nest, src.kind, &src.clauses);
        if step % w.snap_period == 0 {
            if let Some(o) = &obs {
                o.registry.inc("checkpoint_bytes_avoided", wf_bytes);
            }
        }
        if iso_consistency {
            rt.update_host("source", Some(wf_bytes / 8), TransferKind::Contiguous)
                .expect("source present");
            rt.update_device("source", Some(wf_bytes / 8), TransferKind::Contiguous)
                .expect("source present");
        }
    }
    if let Some(o) = &obs {
        o.span(Span::new(
            Track::Host,
            SpanCat::Phase,
            "remodel_forward",
            fwd_t0,
            rt.elapsed() - fwd_t0,
        ));
    }

    // Step 3: the receiver/imaging set joins the source set on device —
    // no `forward_wavefield` staging buffer, but both propagation states
    // co-resident for the whole backward phase.
    rt.enter_data_copyin("backward", fwd_bytes + wf_bytes)?;

    // Step 4: lockstep backward — source phases re-run in reverse plus
    // receiver phases, imaging straight off the live fields (no
    // restores).
    let rcv = plan::receiver_injection(case, compiler, config, w.n_receivers);
    let img = plan::imaging_kernel(case, compiler, config, w);
    let bwd_t0 = rt.elapsed();
    for step in 0..w.steps {
        if step % w.snap_period == 0 {
            let i0 = rt.elapsed();
            match config.image_placement {
                ImagePlacement::Gpu => {
                    rt.launch(&img.desc, &img.nest, img.kind, &img.clauses);
                }
                ImagePlacement::Cpu => {
                    rt.update_host("backward", Some(wf_bytes), TransferKind::Contiguous)
                        .expect("backward present");
                    let cpu = cluster.cpu();
                    rt.advance_host(cpu.kernel_time(w.points(), 2.0, 16.0));
                }
            }
            if let Some(o) = &obs {
                o.span(Span::new(
                    Track::Host,
                    SpanCat::Phase,
                    "imaging",
                    i0,
                    rt.elapsed() - i0,
                ));
            }
        }
        // Source reconstruction: same per-step kernel cost as forward.
        run_phases(&mut rt, &phases);
        rt.launch(&src.desc, &src.nest, src.kind, &src.clauses);
        // Receiver propagation.
        run_phases(&mut rt, &phases);
        for r in &rcv {
            rt.launch(&r.desc, &r.nest, r.kind, &r.clauses);
        }
        if iso_consistency {
            rt.update_host("backward", Some(wf_bytes / 8), TransferKind::Contiguous)
                .expect("backward present");
            rt.update_device("backward", Some(wf_bytes / 8), TransferKind::Contiguous)
                .expect("backward present");
        }
    }
    if let Some(o) = &obs {
        o.span(Span::new(
            Track::Host,
            SpanCat::Phase,
            "remodel_backward",
            bwd_t0,
            rt.elapsed() - bwd_t0,
        ));
    }

    // Step 5: store the image and free the device.
    rt.update_host("backward", Some(w.points() * 4), TransferKind::Contiguous)
        .expect("backward present");
    rt.exit_data_delete("backward").expect("backward present");
    rt.exit_data_delete("source").expect("source present");
    Ok(GpuRun {
        breakdown: breakdown(&rt),
        runtime: rt,
    })
}

/// Dimensionality-aware default workloads used by tests.
pub fn test_workload(dims: Dims) -> Workload {
    match dims {
        Dims::Two => Workload {
            nx: 1000,
            ny: 1,
            nz: 1000,
            steps: 50,
            snap_period: 5,
            n_receivers: 200,
        },
        Dims::Three => Workload {
            nx: 200,
            ny: 200,
            nz: 200,
            steps: 20,
            snap_period: 4,
            n_receivers: 400,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openacc_sim::PgiVersion;

    const PGI: Compiler = Compiler::Pgi(PgiVersion::V14_6);

    fn case(f: Formulation, d: Dims) -> SeismicCase {
        SeismicCase {
            formulation: f,
            dims: d,
        }
    }

    #[test]
    fn modeling_produces_consistent_breakdown() {
        let c = case(Formulation::Acoustic, Dims::Three);
        let w = test_workload(Dims::Three);
        let run = modeling_time(
            &c,
            &OptimizationConfig::default(),
            PGI,
            Cluster::CrayXc30,
            &w,
        )
        .expect("fits on K40");
        let b = run.breakdown;
        assert!(b.total_s > 0.0);
        assert!(b.kernel_s > 0.0 && b.kernel_s < b.total_s);
        assert!(b.transfer_s > 0.0 && b.transfer_s < b.total_s);
        // Kernel + transfer cannot exceed total.
        assert!(b.kernel_s + b.transfer_s <= b.total_s * 1.0001);
    }

    /// The `X` cells: elastic 3D at production scale OOMs the Fermi card
    /// but fits the K40.
    #[test]
    fn elastic3d_oom_on_fermi_fits_on_kepler() {
        let c = case(Formulation::Elastic, Dims::Three);
        let w = Workload {
            nx: 400,
            ny: 400,
            nz: 400,
            steps: 2,
            snap_period: 1,
            n_receivers: 100,
        };
        let cfg = OptimizationConfig::default();
        let err = modeling_time(&c, &cfg, PGI, Cluster::Ibm, &w);
        assert!(matches!(err, Err(DataError::Oom(_))), "Fermi must OOM");
        let ok = modeling_time(&c, &cfg, PGI, Cluster::CrayXc30, &w);
        assert!(ok.is_ok(), "K40 must fit");
    }

    /// Kernel speedup ≥ total speedup: transfers only hurt (Table 3's
    /// "Kernel speedup was better than total speedup in all
    /// implementations" given equal CPU references).
    #[test]
    fn transfers_only_add_time() {
        let c = case(Formulation::Isotropic, Dims::Two);
        let w = test_workload(Dims::Two);
        let run = modeling_time(&c, &OptimizationConfig::default(), PGI, Cluster::Ibm, &w).unwrap();
        assert!(run.breakdown.total_s > run.breakdown.kernel_s);
    }

    /// RTM must cost more than modeling on the same case (backward phase +
    /// imaging + snapshot traffic).
    #[test]
    fn rtm_costs_more_than_modeling() {
        let c = case(Formulation::Acoustic, Dims::Two);
        let w = test_workload(Dims::Two);
        let cfg = OptimizationConfig::default();
        let m = modeling_time(&c, &cfg, PGI, Cluster::Ibm, &w).unwrap();
        let r = rtm_time(&c, &cfg, PGI, Cluster::Ibm, &w).unwrap();
        assert!(r.breakdown.total_s > 1.5 * m.breakdown.total_s);
    }

    /// Figures 14/15: imaging on GPU beats imaging on CPU, but only
    /// slightly (low-utilization kernel vs extra transfers).
    #[test]
    fn image_on_gpu_slightly_better() {
        let c = case(Formulation::Isotropic, Dims::Two);
        let w = test_workload(Dims::Two);
        let gpu_cfg = OptimizationConfig::default();
        let cpu_cfg = OptimizationConfig {
            image_placement: ImagePlacement::Cpu,
            ..gpu_cfg
        };
        let g = rtm_time(&c, &gpu_cfg, PGI, Cluster::Ibm, &w).unwrap();
        let h = rtm_time(&c, &cpu_cfg, PGI, Cluster::Ibm, &w).unwrap();
        assert!(
            g.breakdown.total_s < h.breakdown.total_s,
            "gpu {} vs cpu {}",
            g.breakdown.total_s,
            h.breakdown.total_s
        );
        let gain = h.breakdown.total_s / g.breakdown.total_s;
        assert!(gain < 1.6, "advantage should be modest, got {gain}x");
    }

    /// Async streams speed up the elastic case under the CRAY compiler
    /// (Figure 11's effect surfacing in the driver-level pricing).
    #[test]
    fn elastic_async_helps_under_cray() {
        let c = case(Formulation::Elastic, Dims::Two);
        // Small grid: launch lag matters (the regime of Figure 11).
        let w = Workload {
            nx: 400,
            ny: 1,
            nz: 400,
            steps: 400,
            snap_period: 40,
            n_receivers: 100,
        };
        let run = |async_on| {
            let cfg = OptimizationConfig {
                async_streams: async_on,
                ..OptimizationConfig::default()
            };
            modeling_time(&c, &cfg, Compiler::Cray, Cluster::CrayXc30, &w)
                .unwrap()
                .breakdown
                .total_s
        };
        let sync_t = run(false);
        let async_t = run(true);
        assert!(async_t < sync_t, "async {async_t} vs sync {sync_t}");
    }

    /// Random-boundary RTM trades transfers for kernels: no snapshot
    /// traffic (less transfer time than checkpointed RTM) at the price of
    /// a second source propagation (more kernel time).
    #[test]
    fn rand_bound_trades_transfers_for_kernels() {
        let c = case(Formulation::Acoustic, Dims::Two);
        let w = test_workload(Dims::Two);
        let cfg = OptimizationConfig::default();
        let rtm = rtm_time(&c, &cfg, PGI, Cluster::Ibm, &w).unwrap().breakdown;
        let rb = rand_bound_time(&c, &cfg, PGI, Cluster::Ibm, &w)
            .unwrap()
            .breakdown;
        assert!(
            rb.transfer_s < rtm.transfer_s,
            "no snapshot traffic: {} vs {}",
            rb.transfer_s,
            rtm.transfer_s
        );
        assert!(
            rb.kernel_s > rtm.kernel_s,
            "remodeling reruns the source phases: {} vs {}",
            rb.kernel_s,
            rtm.kernel_s
        );
        // It still costs more than plain modeling (three propagations).
        let m = modeling_time(&c, &cfg, PGI, Cluster::Ibm, &w)
            .unwrap()
            .breakdown;
        assert!(rb.total_s > 2.0 * m.total_s);
    }

    /// Observed random-boundary pricing: remodeling spans present, zero
    /// checkpoint spans/counters, avoided bytes accounted.
    #[test]
    fn rand_bound_obs_reports_avoided_bytes() {
        let c = case(Formulation::Acoustic, Dims::Two);
        let w = test_workload(Dims::Two);
        let cfg = OptimizationConfig::default();
        let obs = Arc::new(ObsSession::new());
        let plain = rand_bound_time(&c, &cfg, PGI, Cluster::Ibm, &w)
            .unwrap()
            .breakdown;
        let traced = rand_bound_time_obs(&c, &cfg, PGI, Cluster::Ibm, &w, Some(obs.clone()))
            .unwrap()
            .breakdown;
        assert_eq!(plain, traced, "observation must not change the pricing");
        let n_snaps = w.steps.div_ceil(w.snap_period) as u64;
        assert_eq!(
            obs.registry.counter("checkpoint_bytes_avoided"),
            n_snaps * wavefield_bytes(&c, &w)
        );
        assert_eq!(obs.registry.counter("checkpoints_written"), 0);
        assert_eq!(obs.registry.counter("checkpoints_restored"), 0);
        let names: Vec<String> = obs.tracer.spans().iter().map(|s| s.name.clone()).collect();
        assert!(names.contains(&"remodel_forward".to_string()));
        assert!(names.contains(&"remodel_backward".to_string()));
        assert!(!names.contains(&"checkpoint_write".to_string()));
        assert!(!names.contains(&"checkpoint_restore".to_string()));
    }

    /// The isotropic consistency updates make iso RTM transfer-heavy —
    /// the paper's explanation for its sub-1 total speedups.
    #[test]
    fn iso_rtm_is_transfer_dominated() {
        let w = test_workload(Dims::Two);
        let cfg = OptimizationConfig::default();
        let iso = rtm_time(
            &case(Formulation::Isotropic, Dims::Two),
            &cfg,
            PGI,
            Cluster::Ibm,
            &w,
        )
        .unwrap();
        let ac = rtm_time(
            &case(Formulation::Acoustic, Dims::Two),
            &cfg,
            PGI,
            Cluster::Ibm,
            &w,
        )
        .unwrap();
        let iso_frac = iso.breakdown.transfer_s / iso.breakdown.total_s;
        let ac_frac = ac.breakdown.transfer_s / ac.breakdown.total_s;
        assert!(iso_frac > ac_frac, "iso {iso_frac} vs acoustic {ac_frac}");
    }
}
